"""Setuptools entry point.

Kept alongside pyproject.toml so that the package installs in offline
environments whose setuptools predates PEP 660 editable wheels
(``pip install -e . --no-build-isolation`` then uses the legacy
``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LS3DF: linearly scaling 3D fragment method for large-scale "
        "electronic structure calculations (SC'08 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    entry_points={
        "console_scripts": [
            "repro-worker = repro.parallel.remote:worker_main",
            "repro-serve = repro.store.server:serve_main",
            "repro-submit = repro.store.client:client_main",
        ],
    },
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
