"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
pip-installed (useful on offline machines where editable installs via PEP
660 are unavailable); an installed ``repro`` takes precedence.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
