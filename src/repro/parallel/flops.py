"""Analytic floating-point operation counts of the LS3DF kernels.

The paper converts measured wall-clock times into Tflop/s using CrayPat
operation counts (and, for the largest problems, an extrapolation from the
per-fragment counts that was verified to be within 1% of measurement).
This module plays the same role for the performance model: it computes,
from the physical problem parameters, how many floating-point operations
one self-consistent iteration of LS3DF performs in each of the four
subroutines, broken down by fragment size class.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.fragments import fragment_weight


@dataclass(frozen=True)
class FragmentWork:
    """Work content of one fragment of a given size class.

    Attributes
    ----------
    size:
        Fragment size in cells, e.g. ``(2, 1, 1)``.
    natoms:
        Number of (real + passivation) atoms.
    nbands:
        Number of bands solved.
    nplanewaves:
        Plane waves in the fragment basis.
    grid_points:
        Real-space grid points of the fragment box.
    flops_per_iteration:
        Floating-point operations for one LS3DF outer iteration's solve of
        this fragment (all conjugate-gradient steps included).
    """

    size: tuple[int, int, int]
    natoms: float
    nbands: float
    nplanewaves: float
    grid_points: float
    flops_per_iteration: float


class LS3DFWorkload:
    """Physical problem description and its operation counts.

    Parameters
    ----------
    supercell_dims:
        ``(m1, m2, m3)`` in eight-atom cells (the fragment grid).
    atoms_per_cell:
        Atoms in the smallest fragment cell (8 for the paper's systems).
    electrons_per_atom:
        Average valence electrons per atom (4 for ZnTeO without Zn d).
    grid_per_cell:
        Real-space grid points per cell axis (40 on Franklin/Jaguar,
        32 on Intrepid).
    ecut_ry:
        Plane-wave cutoff in Rydberg (50 or 40).
    buffer_fraction:
        Fragment buffer as a fraction of a cell on each side.
    cg_steps_per_iteration:
        Conjugate-gradient steps performed per band per outer iteration.
    passivation_atoms_per_surface_cell:
        Extra pseudo-H atoms per exposed cell face (bookkeeping only).
    """

    def __init__(
        self,
        supercell_dims: tuple[int, int, int],
        atoms_per_cell: int = 8,
        electrons_per_atom: float = 4.0,
        grid_per_cell: int = 40,
        ecut_ry: float = 50.0,
        buffer_fraction: float = 0.5,
        cg_steps_per_iteration: int = 13,
        passivation_atoms_per_surface_cell: float = 4.0,
        cell_edge_bohr: float = 11.53,
    ) -> None:
        dims = tuple(int(m) for m in supercell_dims)
        if len(dims) != 3 or any(m < 1 for m in dims):
            raise ValueError("supercell_dims must be three positive integers")
        self.supercell_dims = dims
        self.atoms_per_cell = int(atoms_per_cell)
        self.electrons_per_atom = float(electrons_per_atom)
        self.grid_per_cell = int(grid_per_cell)
        self.ecut_ry = float(ecut_ry)
        self.buffer_fraction = float(buffer_fraction)
        self.cg_steps = int(cg_steps_per_iteration)
        self.passivation_per_face = float(passivation_atoms_per_surface_cell)
        self.cell_edge_bohr = float(cell_edge_bohr)

    # -- problem sizes -----------------------------------------------------
    @property
    def ncells(self) -> int:
        """Total number of fragment-grid cells M = m1*m2*m3."""
        return int(np.prod(self.supercell_dims))

    @property
    def natoms(self) -> int:
        """Total atom count of the physical system (no passivants)."""
        return self.ncells * self.atoms_per_cell

    @property
    def nfragments(self) -> int:
        """8 fragments per grid corner (the paper's count)."""
        per_corner = int(
            np.prod([1 if m == 1 else 2 for m in (2, 2, 2)])
        )  # = 8 for the standard 3D case
        return per_corner * self.ncells

    @property
    def global_grid_points(self) -> int:
        """Real-space points of the global FFT grid."""
        return self.ncells * self.grid_per_cell**3

    def planewaves_per_cell(self) -> float:
        """Plane waves within the cutoff sphere per eight-atom cell.

        npw = Omega * (2 Ecut)^{3/2} / (6 pi^2) with Ecut in Hartree and
        Omega the eight-atom cell volume (edge 11.53 Bohr for ZnTe); for the
        paper's 50 Ry cutoff this evaluates to ~9,200 plane waves per cell.
        """
        ecut_ha = 0.5 * self.ecut_ry
        volume = self.cell_edge_bohr**3
        return volume * (2.0 * ecut_ha) ** 1.5 / (6.0 * np.pi**2)

    def bands_per_cell(self) -> float:
        """Occupied + a few empty bands per cell."""
        return self.atoms_per_cell * self.electrons_per_atom / 2.0 * 1.10

    # -- per-fragment work ----------------------------------------------------
    def fragment_work(self, size: tuple[int, int, int]) -> FragmentWork:
        """Work content of one fragment of the given size class."""
        size = tuple(int(s) for s in size)
        ncells = int(np.prod(size))
        # Buffered box volume relative to the bare fragment region.
        box_cells = float(np.prod([s + 2.0 * self.buffer_fraction for s in size]))
        natoms = ncells * self.atoms_per_cell
        # Exposed surface cells ~ passivation atom count (bookkeeping).
        surface_cells = 2.0 * (
            size[0] * size[1] + size[1] * size[2] + size[0] * size[2]
        )
        natoms_pass = natoms + self.passivation_per_face * surface_cells
        nbands = self.bands_per_cell() * ncells
        npw = self.planewaves_per_cell() * box_cells
        grid_points = self.grid_per_cell**3 * box_cells

        # Per CG step and per band: one FFT pair over the box grid plus the
        # BLAS-3 nonlocal/orthogonalisation/subspace work.
        fft_flops = 2.0 * 5.0 * grid_points * np.log2(max(grid_points, 2))
        nproj = natoms_pass  # one KB projector per atom
        blas3_flops = 8.0 * npw * (nproj + 2.0 * nbands)
        per_band_step = fft_flops + blas3_flops
        # Subspace diagonalisation per outer CG step: O(nbands^2 npw).
        subspace = 8.0 * nbands * nbands * npw / max(self.cg_steps, 1)
        flops = self.cg_steps * (nbands * per_band_step + subspace)
        return FragmentWork(
            size=size,
            natoms=natoms_pass,
            nbands=nbands,
            nplanewaves=npw,
            grid_points=grid_points,
            flops_per_iteration=flops,
        )

    def fragment_size_classes(self) -> dict[tuple[int, int, int], int]:
        """Number of fragments of each size class in the whole system."""
        counts: dict[tuple[int, int, int], int] = {}
        for size in product((1, 2), repeat=3):
            counts[size] = counts.get(size, 0) + self.ncells
        return counts

    def all_fragment_work(self) -> list[tuple[FragmentWork, int, int]]:
        """(work, count, weight) per fragment size class."""
        out = []
        for size, count in self.fragment_size_classes().items():
            out.append((self.fragment_work(size), count, fragment_weight(size)))
        return out

    # -- aggregate counts -----------------------------------------------------
    def petot_f_flops(self) -> float:
        """Total PEtot_F flops for one LS3DF outer iteration."""
        return float(
            sum(work.flops_per_iteration * count for work, count, _ in self.all_fragment_work())
        )

    def genpot_flops(self) -> float:
        """GENPOT flops: global FFT Poisson solve + XC evaluation."""
        n = self.global_grid_points
        return float(2.0 * 5.0 * n * np.log2(max(n, 2)) + 60.0 * n)

    def gen_vf_data_bytes(self) -> float:
        """Bytes moved by Gen_VF (global potential -> all fragment boxes)."""
        total_box_points = sum(
            work.grid_points * count for work, count, _ in self.all_fragment_work()
        )
        return 8.0 * float(total_box_points)

    def gen_dens_data_bytes(self) -> float:
        """Bytes moved by Gen_dens (all fragment densities -> global grid)."""
        return self.gen_vf_data_bytes()

    def total_flops_per_iteration(self) -> float:
        """All useful flops of one LS3DF outer iteration."""
        return self.petot_f_flops() + self.genpot_flops()
