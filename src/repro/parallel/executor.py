"""Fragment-execution backends: serial, thread-pool and process-pool.

The paper's parallelism comes from solving independent fragments on
independent processor groups.  This module provides the local-machine
equivalents of those groups as interchangeable backends behind the
:class:`repro.core.fragment_task.FragmentExecutor` protocol:

* :class:`SerialFragmentExecutor` — one task after another in the calling
  process; the default used by :class:`repro.core.scf.LS3DFSCF`.
* :class:`ThreadPoolFragmentExecutor` — a thread pool; the heavy BLAS-3
  eigensolver work releases the GIL, so this already overlaps fragments.
* :class:`ProcessPoolFragmentExecutor` — a *persistent* process pool; one
  worker process per "group", each keeping its own static-problem cache
  alive across outer iterations (the paper's cheap-second-iteration
  property holds inside the workers).

All three call the same kernel, :func:`repro.core.fragment_task.
solve_fragment_task`, on the same picklable :class:`FragmentTask`
descriptions — there is no backend-specific solve path.  Every backend
also implements ``run_pipeline`` for fused
:class:`repro.core.fragment_task.FragmentPipelineTask` batches (restrict
-> solve -> weighted-density contribution in one worker round trip; see
:func:`repro.core.fragment_task.run_fragment_pipeline_task`),
``run_global`` for the per-slab global-step tasks of the sharded GENPOT
path (:class:`repro.parallel.distributed.GlobalStepTask` — the paper's
1D-slab layout of the Poisson/XC/mixing work; see
:func:`repro.parallel.distributed.run_global_step_task`), and
``run_bands`` for the per-slice band tasks of the band-parallel
eigensolver (:class:`repro.parallel.bands.BandBlockTask` — the paper's
Np-cores-per-group distribution of one fragment's all-band CG; see
:func:`repro.parallel.bands.run_band_block_task`).  The pool
backends order submissions heaviest-first, the greedy longest-processing-
time (LPT) heuristic :mod:`repro.parallel.scheduler` uses to balance
fragment classes whose costs differ by ~8x (1x1x1 vs 2x2x2 cells), and
attach the scheduler's predicted assignment to the report.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

import numpy as np

# Re-exported so existing `from repro.parallel.executor import ...` sites
# keep working; the canonical home is now repro.core.fragment_task.  Note
# the kernel's signature changed with the move: solve_fragment_task takes
# an optional TaskProblem (not the old return_coefficients flag — that is
# now the task's `return_coefficients` field, default True).
from repro.core.fragment_task import (
    ExecutionReport,
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentPipelineTask,
    FragmentTask,
    FragmentTaskResult,
    PipelineFragmentExecutor,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.parallel.bands import (
    BandBlockTask,
    BandGroupExecutor,
    run_band_block_task,
)
from repro.parallel.distributed import (
    GlobalStepExecutor,
    GlobalStepTask,
    run_global_step_task,
)
from repro.parallel.scheduler import FragmentScheduler, ScheduleSummary

__all__ = [
    "BandBlockTask",
    "BandGroupExecutor",
    "ExecutionReport",
    "FragmentExecutor",
    "FragmentPipelineResult",
    "FragmentPipelineTask",
    "FragmentScheduler",
    "FragmentTask",
    "FragmentTaskResult",
    "GlobalStepExecutor",
    "GlobalStepTask",
    "PipelineFragmentExecutor",
    "ProcessPoolFragmentExecutor",
    "ScheduleSummary",
    "SerialFragmentExecutor",
    "ThreadPoolFragmentExecutor",
    "run_band_block_task",
    "run_fragment_pipeline_task",
    "run_global_step_task",
    "solve_fragment_task",
]


def _resolve_worker_count(n_workers: int | None, nworkers: int | None) -> int:
    """Merge the ``n_workers`` spelling with the legacy ``nworkers`` one."""
    n = n_workers if n_workers is not None else nworkers
    if n is not None and n < 1:
        raise ValueError("n_workers must be positive")
    return int(n or os.cpu_count() or 1)


class SerialFragmentExecutor:
    """Executes fragment tasks one after another in the calling process.

    ``tasks_submitted`` counts every task ever handed to this executor
    (plain and pipeline alike) — the bookkeeping the fused-pipeline tests
    use to assert "exactly one submission per fragment per iteration".
    """

    def __init__(self) -> None:
        self.n_workers = 1
        self.tasks_submitted = 0

    @property
    def nworkers(self) -> int:
        """Worker count under the legacy spelling (same as ``n_workers``)."""
        return self.n_workers

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        """Run fragment solve tasks sequentially via the shared kernel.

        Parameters
        ----------
        tasks:
            The batch to solve.

        Returns
        -------
        ExecutionReport
            Results in task order, ``worker_count`` 1.
        """
        return self._execute(tasks, solve_fragment_task)

    def run_pipeline(
        self, tasks: Sequence[FragmentPipelineTask]
    ) -> ExecutionReport:
        """Run fused Gen_VF -> solve -> Gen_dens tasks, one after another."""
        return self._execute(tasks, run_fragment_pipeline_task)

    def run_global(self, tasks: Sequence[GlobalStepTask]) -> ExecutionReport:
        """Run per-slab GENPOT global-step tasks, one after another."""
        return self._execute(tasks, run_global_step_task)

    def run_bands(self, tasks: Sequence[BandBlockTask]) -> ExecutionReport:
        """Run per-slice band-eigensolver tasks, one after another."""
        return self._execute(tasks, run_band_block_task)

    def _execute(self, tasks: Sequence, kernel) -> ExecutionReport:
        t0 = time.perf_counter()
        self.tasks_submitted += len(tasks)
        results = [kernel(t) for t in tasks]
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=1,
        )

    def close(self) -> None:
        """No pool to release; provided for interface uniformity."""

    def __enter__(self) -> "SerialFragmentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PoolFragmentExecutor:
    """Shared machinery of the thread- and process-pool backends."""

    def __init__(self, n_workers: int | None = None, nworkers: int | None = None) -> None:
        self.n_workers = _resolve_worker_count(n_workers, nworkers)
        self._pool: Executor | None = None
        self._scheduler = FragmentScheduler()
        # Count of every task handed to the pool (or run on the in-process
        # fast path) over this executor's lifetime; the pipeline tests use
        # it to assert one submission per fragment per SCF iteration.
        self.tasks_submitted = 0

    @property
    def nworkers(self) -> int:
        """Worker count under the legacy spelling (same as ``n_workers``)."""
        return self.n_workers

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def schedule(self, tasks: Sequence[FragmentTask]) -> ScheduleSummary:
        """LPT assignment of the batch onto the workers (predicted loads)."""
        return self._scheduler.schedule_tasks(tasks, self.n_workers)

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        """Run fragment solve tasks through the pool (LPT, heaviest-first).

        Parameters
        ----------
        tasks:
            The batch to solve; batches of one (or single-worker pools)
            take the in-process fast path.

        Returns
        -------
        ExecutionReport
            Results in task order, with the scheduler's predicted
            assignment attached as ``schedule``.
        """
        return self._execute(tasks, solve_fragment_task)

    def run_pipeline(
        self, tasks: Sequence[FragmentPipelineTask]
    ) -> ExecutionReport:
        """Run fused Gen_VF -> solve -> Gen_dens tasks through the pool.

        Each fragment is exactly one pool submission: the worker gathers
        the restriction, solves, and extracts the weighted interior in a
        single round trip (the unfused path needs the same submission plus
        two driver-side serial loops around it).
        """
        return self._execute(tasks, run_fragment_pipeline_task)

    def run_global(self, tasks: Sequence[GlobalStepTask]) -> ExecutionReport:
        """Run per-slab GENPOT global-step tasks through the pool.

        Each stage of the sharded global step is exactly one submission
        per slab; the report's ``results`` stay in slab order, so every
        downstream reduction sees the deterministic slab ordering that
        keeps sharded results bit-identical to the unsharded path.
        """
        return self._execute(tasks, run_global_step_task)

    def run_bands(self, tasks: Sequence[BandBlockTask]) -> ExecutionReport:
        """Run per-slice band-eigensolver tasks through the pool.

        Each sliced stage of a grouped all-band CG sweep is exactly one
        submission per band slice; ``results`` stay in slice order, so
        the group root's gathers see the deterministic row ordering that
        keeps grouped eigensolves bit-identical to single-worker ones.
        """
        return self._execute(tasks, run_band_block_task)

    def _execute(self, tasks: Sequence, kernel) -> ExecutionReport:
        t0 = time.perf_counter()
        self.tasks_submitted += len(tasks)
        if self.n_workers == 1 or len(tasks) <= 1:
            results = [kernel(t) for t in tasks]
            return ExecutionReport(
                results=results,
                wall_time=time.perf_counter() - t0,
                worker_count=1,
            )
        schedule = self.schedule(tasks)
        # Submit heaviest-first: workers pulling from the shared queue then
        # realise exactly the greedy LPT balancing of the scheduler.
        order = np.argsort([t.cost() for t in tasks])[::-1]
        pool = self._ensure_pool()
        futures = {int(i): pool.submit(kernel, tasks[int(i)]) for i in order}
        results = [futures[i].result() for i in range(len(tasks))]
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=self.n_workers,
            schedule=schedule,
        )

    def close(self) -> None:
        """Shut the pool down; a later :meth:`run` transparently restarts it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ThreadPoolFragmentExecutor(_PoolFragmentExecutor):
    """Executes fragment tasks concurrently in a thread pool.

    Threads share the per-process static-problem cache, so nothing is
    rebuilt, and the BLAS-3 block operations dominating the eigensolver
    release the GIL — fragments genuinely overlap.

    Parameters
    ----------
    n_workers:
        Number of worker threads ("groups"); defaults to the CPU count.
    """

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.n_workers)


class ProcessPoolFragmentExecutor(_PoolFragmentExecutor):
    """Executes fragment tasks concurrently in a persistent process pool.

    The pool is created on first use and kept alive across :meth:`run`
    calls, so every worker's static-problem cache (and hence the cheap
    second LS3DF iteration) survives from one outer iteration to the
    next.  Call :meth:`close` (or use as a context manager) to release
    the workers.

    Parameters
    ----------
    n_workers:
        Number of worker processes ("groups"); defaults to the CPU count.
        The legacy spelling ``nworkers`` is also accepted.
    """

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)
