"""Fragment-execution backends: serial, thread-pool and process-pool.

The paper's parallelism comes from solving independent fragments on
independent processor groups.  This module provides the local-machine
equivalents of those groups as interchangeable backends behind the
:class:`repro.core.fragment_task.FragmentExecutor` protocol:

* :class:`SerialFragmentExecutor` — one task after another in the calling
  process; the default used by :class:`repro.core.scf.LS3DFSCF`.
* :class:`ThreadPoolFragmentExecutor` — a thread pool; the heavy BLAS-3
  eigensolver work releases the GIL, so this already overlaps fragments.
* :class:`ProcessPoolFragmentExecutor` — a *persistent* process pool; one
  worker process per "group", each keeping its own static-problem cache
  alive across outer iterations (the paper's cheap-second-iteration
  property holds inside the workers).

All three call the same kernel, :func:`repro.core.fragment_task.
solve_fragment_task`, on the same picklable :class:`FragmentTask`
descriptions — there is no backend-specific solve path.  Every backend
also implements ``run_pipeline`` for fused
:class:`repro.core.fragment_task.FragmentPipelineTask` batches (restrict
-> solve -> weighted-density contribution in one worker round trip; see
:func:`repro.core.fragment_task.run_fragment_pipeline_task`),
``run_global`` for the per-slab global-step tasks of the sharded GENPOT
path (:class:`repro.parallel.distributed.GlobalStepTask` — the paper's
1D-slab layout of the Poisson/XC/mixing work; see
:func:`repro.parallel.distributed.run_global_step_task`), and
``run_bands`` for the per-slice band tasks of the band-parallel
eigensolver (:class:`repro.parallel.bands.BandBlockTask` — the paper's
Np-cores-per-group distribution of one fragment's all-band CG; see
:func:`repro.parallel.bands.run_band_block_task`).  The pool
backends order submissions heaviest-first, the greedy longest-processing-
time (LPT) heuristic :mod:`repro.parallel.scheduler` uses to balance
fragment classes whose costs differ by ~8x (1x1x1 vs 2x2x2 cells), and
attach the scheduler's predicted assignment to the report.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

import numpy as np

# Re-exported so existing `from repro.parallel.executor import ...` sites
# keep working; the canonical home is now repro.core.fragment_task.  Note
# the kernel's signature changed with the move: solve_fragment_task takes
# an optional TaskProblem (not the old return_coefficients flag — that is
# now the task's `return_coefficients` field, default True).
from repro.core.fragment_task import (
    ExecutionReport,
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentPipelineTask,
    FragmentTask,
    FragmentTaskResult,
    PipelineFragmentExecutor,
    PotentialNotInstalledError,
    StackedPipelineResult,
    StackedPipelineTask,
    install_potential,
    potential_fingerprint,
    run_fragment_pipeline_task,
    run_stacked_pipeline_task,
    solve_fragment_task,
)
from repro.parallel.bands import (
    BandBlockTask,
    BandGroupExecutor,
    run_band_block_task,
)
from repro.parallel.distributed import (
    GlobalStepExecutor,
    GlobalStepTask,
    run_global_step_task,
)
from repro.parallel.scheduler import FragmentScheduler, ScheduleSummary, pack_stacks

__all__ = [
    "BandBlockTask",
    "BandGroupExecutor",
    "ExecutionReport",
    "FragmentExecutor",
    "FragmentPipelineResult",
    "FragmentPipelineTask",
    "FragmentScheduler",
    "FragmentTask",
    "FragmentTaskResult",
    "GlobalStepExecutor",
    "GlobalStepTask",
    "PipelineFragmentExecutor",
    "PotentialNotInstalledError",
    "ProcessPoolFragmentExecutor",
    "ScheduleSummary",
    "SerialFragmentExecutor",
    "StackedPipelineResult",
    "StackedPipelineTask",
    "ThreadPoolFragmentExecutor",
    "install_potential",
    "pack_stacks",
    "potential_fingerprint",
    "run_band_block_task",
    "run_fragment_pipeline_task",
    "run_global_step_task",
    "run_stacked_pipeline_task",
    "solve_fragment_task",
]


def _run_pipeline_unit(unit):
    """Kernel dispatcher for stacked pipeline batches (picklable).

    One physical submission is either a plain pipeline task or a stack of
    small ones; both run the same per-fragment kernel underneath.
    """
    if isinstance(unit, StackedPipelineTask):
        return run_stacked_pipeline_task(unit)
    return run_fragment_pipeline_task(unit)


class _ImmediateFuture:
    """A future that already completed: in-process backends run at submit.

    The streaming GENPOT engine and the overlapped Gen_dens reduce drive
    every backend through the same ``submit_*`` future surface; the
    serial executor (and single-worker pools) resolve each submission
    synchronously, so streaming degenerates to exactly the synchronous
    task order — which is what keeps it bit-identical there.
    """

    def __init__(self, result=None, error: BaseException | None = None):
        self._result = result
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._result

    def add_done_callback(self, fn) -> None:
        fn(self)


class _HealingFuture:
    """Pool future wrapper that heals a missed potential install on resolve.

    ``result()`` routes through the owning executor's ``_gather`` — the
    same one-shot resubmission with the driver's payload attached that the
    batch paths use — so futures-based submission keeps the install-once
    machinery's failure mode covered.
    """

    def __init__(self, executor, future, task, kernel):
        self._executor = executor
        self._future = future
        self._task = task
        self._kernel = kernel

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout=None):
        return self._executor._gather(self._future, self._task, self._kernel)

    def add_done_callback(self, fn) -> None:
        self._future.add_done_callback(lambda _inner: fn(self))


class _StackedMemberFuture:
    """One fragment's slice of a stacked pipeline submission.

    The PR 6 small-task stacking packs several fragments into one pool
    submission; the streaming consumers want one future per fragment, so
    each member resolves the shared unit future (healing included) and
    picks out its own result.
    """

    def __init__(self, unit_future: "_HealingFuture", member: int):
        self._unit_future = unit_future
        self._member = member

    def done(self) -> bool:
        return self._unit_future.done()

    def result(self, timeout=None):
        return self._unit_future.result(timeout).results[self._member]

    def add_done_callback(self, fn) -> None:
        self._unit_future.add_done_callback(lambda _inner: fn(self))


def _immediate(task, kernel) -> _ImmediateFuture:
    try:
        return _ImmediateFuture(result=kernel(task))
    except Exception as exc:  # resolved, but carrying the kernel's error
        return _ImmediateFuture(error=exc)


def _resolve_worker_count(n_workers: int | None, nworkers: int | None) -> int:
    """Merge the ``n_workers`` spelling with the legacy ``nworkers`` one."""
    n = n_workers if n_workers is not None else nworkers
    if n is not None and n < 1:
        raise ValueError("n_workers must be positive")
    return int(n or os.cpu_count() or 1)


class SerialFragmentExecutor:
    """Executes fragment tasks one after another in the calling process.

    ``tasks_submitted`` counts every *logical* task ever handed to this
    executor (plain and pipeline alike) — the bookkeeping the
    fused-pipeline tests use to assert "exactly one submission per
    fragment per iteration".  ``pool_submissions`` counts physical kernel
    invocations; serially the two coincide.
    """

    def __init__(self) -> None:
        self.n_workers = 1
        self.tasks_submitted = 0
        self.pool_submissions = 0
        self.install_broadcasts = 0
        self._counter_mutex = threading.Lock()
        self._counter_root: "SerialFragmentExecutor" = self
        self._partitions: dict[int, list["SerialFragmentExecutor"]] = {}

    @property
    def nworkers(self) -> int:
        """Worker count under the legacy spelling (same as ``n_workers``)."""
        return self.n_workers

    def _bump(self, logical: int, physical: int) -> None:
        """Thread-safely count submissions on the partition root.

        Partition children route their accounting here so the parent's
        one-submission-per-fragment/slice invariants keep holding when
        band groups run concurrently.
        """
        root = self._counter_root
        with root._counter_mutex:
            root.tasks_submitted += logical
            root.pool_submissions += physical

    def partition(self, ngroups: int) -> list["SerialFragmentExecutor"]:
        """Split into ``ngroups`` sub-executors for concurrent band groups.

        Serial children run their group's kernels in the calling (group)
        thread — concurrency then comes from the driver's per-group
        threads and the GIL-releasing BLAS underneath, the closest
        serial analogue of per-group worker pools.  All submission
        counters accumulate on this parent; partitions are cached per
        ``ngroups`` so repeated iterations reuse the same children.
        """
        if ngroups < 1:
            raise ValueError("ngroups must be positive")
        cached = self._partitions.get(ngroups)
        if cached is None:
            cached = []
            for _ in range(ngroups):
                child = SerialFragmentExecutor()
                child._counter_root = self._counter_root
                cached.append(child)
            self._partitions[ngroups] = cached
        return cached

    def install_state(self, key: str, payload: np.ndarray) -> None:
        """Install a shared potential under ``key`` (in-process store).

        The serial backend runs every kernel in the calling process, so
        one :func:`repro.core.fragment_task.install_potential` call makes
        the payload visible to all subsequent key-carrying tasks.
        """
        install_potential(key, payload)

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        """Run fragment solve tasks sequentially via the shared kernel.

        Parameters
        ----------
        tasks:
            The batch to solve.

        Returns
        -------
        ExecutionReport
            Results in task order, ``worker_count`` 1.
        """
        return self._execute(tasks, solve_fragment_task)

    def run_pipeline(
        self, tasks: Sequence[FragmentPipelineTask]
    ) -> ExecutionReport:
        """Run fused Gen_VF -> solve -> Gen_dens tasks, one after another."""
        return self._execute(tasks, run_fragment_pipeline_task)

    def run_global(self, tasks: Sequence[GlobalStepTask]) -> ExecutionReport:
        """Run per-slab GENPOT global-step tasks, one after another."""
        return self._execute(tasks, run_global_step_task)

    def run_bands(self, tasks: Sequence[BandBlockTask]) -> ExecutionReport:
        """Run per-slice band-eigensolver tasks, one after another."""
        return self._execute(tasks, run_band_block_task)

    def submit_global(self, task: GlobalStepTask) -> _ImmediateFuture:
        """Submit one global-step task; resolves synchronously at submit.

        The future surface of the streaming GENPOT engine: serially every
        submission runs immediately in the calling process, so a stream
        degenerates to the synchronous stage order (bit-identical by
        construction) while the engine code stays backend-agnostic.
        """
        self._bump(1, 1)
        return _immediate(task, run_global_step_task)

    def submit_pipeline_batch(self, tasks: Sequence) -> list:
        """Per-fragment futures for a pipeline batch (resolved at submit)."""
        self._bump(len(tasks), len(tasks))
        return [_immediate(t, run_fragment_pipeline_task) for t in tasks]

    def _execute(self, tasks: Sequence, kernel) -> ExecutionReport:
        t0 = time.perf_counter()
        self._bump(len(tasks), len(tasks))
        results = [kernel(t) for t in tasks]
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=1,
        )

    def close(self) -> None:
        """No pool to release; provided for interface uniformity."""

    def __enter__(self) -> "SerialFragmentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PoolFragmentExecutor:
    """Shared machinery of the thread- and process-pool backends."""

    # Process pools must push installed potentials into the workers; the
    # thread pool shares the driver's process-level store.
    _broadcast_installs = False
    _INSTALL_PAYLOAD_MAX = 64

    def __init__(
        self,
        n_workers: int | None = None,
        nworkers: int | None = None,
        stack_small_tasks: bool = True,
    ) -> None:
        self.n_workers = _resolve_worker_count(n_workers, nworkers)
        self._pool: Executor | None = None
        self._scheduler = FragmentScheduler()
        # Count of every *logical* task handed to this executor over its
        # lifetime; the pipeline tests use it to assert one submission per
        # fragment per SCF iteration.  Stacking does not change it.
        self.tasks_submitted = 0
        # Physical submissions (pool futures or fast-path kernel calls);
        # stacking makes this smaller than tasks_submitted.
        self.pool_submissions = 0
        # Install-channel broadcasts (not counted as pool submissions).
        self.install_broadcasts = 0
        self.stack_small_tasks = bool(stack_small_tasks)
        # Driver-side copies of installed potentials, for the retry path
        # when a pool worker misses a broadcast (LRU-bounded).  Partition
        # children share the root's store (any group can heal any key)
        # but keep their own _broadcast_keys: each group's pool workers
        # are distinct processes and need their own broadcast.
        self._install_payloads: OrderedDict[str, np.ndarray] = OrderedDict()
        self._broadcast_keys: set[str] = set()
        self._counter_mutex = threading.Lock()
        self._counter_root: "_PoolFragmentExecutor" = self
        self._partitions: dict[int, list["_PoolFragmentExecutor"]] = {}

    def _bump(self, logical: int, physical: int) -> None:
        """Thread-safely count submissions on the partition root."""
        root = self._counter_root
        with root._counter_mutex:
            root.tasks_submitted += logical
            root.pool_submissions += physical

    def partition(self, ngroups: int) -> list["_PoolFragmentExecutor"]:
        """Split into ``ngroups`` sub-pools for concurrent band groups.

        Each child is a backend of the same type owning ``n_workers //
        ngroups`` (at least 1) of the parent's worker budget and its own
        pool — a genuinely independent per-group task queue, the local
        analogue of the paper giving every fragment group its own Np
        cores.  Children share the parent's driver-side install store
        (for healing) and route all submission counters to it; they are
        cached per ``ngroups``, so each group's worker processes — and
        their warm static-problem caches — survive across iterations.
        """
        if ngroups < 1:
            raise ValueError("ngroups must be positive")
        cached = self._partitions.get(ngroups)
        if cached is None:
            from repro.parallel.groups import partition_worker_counts

            cached = []
            for per_group in partition_worker_counts(self.n_workers, ngroups):
                child = type(self)(
                    n_workers=per_group, stack_small_tasks=self.stack_small_tasks
                )
                child._counter_root = self._counter_root
                child._install_payloads = self._install_payloads
                cached.append(child)
            self._partitions[ngroups] = cached
        return cached

    @property
    def nworkers(self) -> int:
        """Worker count under the legacy spelling (same as ``n_workers``)."""
        return self.n_workers

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def install_state(self, key: str, payload: np.ndarray) -> None:
        """Install a shared potential once per worker under ``key``.

        The driver's process-level store always receives the payload
        (covering the in-process fast paths and the thread pool, whose
        workers share it); process pools additionally broadcast one
        install per worker.  A broadcast is best-effort — a busy worker
        may miss it — so key-carrying kernels raise
        :class:`repro.core.fragment_task.PotentialNotInstalledError` and
        :meth:`_gather` retries that one task with the payload attached.
        Re-installing an already-known key is a no-op.
        """
        arr = np.asarray(payload)
        root = self._counter_root
        with root._counter_mutex:
            if key in self._install_payloads:
                self._install_payloads.move_to_end(key)
            else:
                install_potential(key, arr)
                self._install_payloads[key] = arr
                while len(self._install_payloads) > self._INSTALL_PAYLOAD_MAX:
                    self._install_payloads.popitem(last=False)
        if not (self._broadcast_installs and self.n_workers > 1):
            return
        if key in self._broadcast_keys:
            return
        pool = self._ensure_pool()
        futures = [
            pool.submit(install_potential, key, arr)
            for _ in range(self.n_workers)
        ]
        for f in futures:
            f.result()
        self._broadcast_keys.add(key)
        with root._counter_mutex:
            root.install_broadcasts += self.n_workers

    def schedule(self, tasks: Sequence[FragmentTask]) -> ScheduleSummary:
        """LPT assignment of the batch onto the workers (predicted loads)."""
        return self._scheduler.schedule_tasks(tasks, self.n_workers)

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        """Run fragment solve tasks through the pool (LPT, heaviest-first).

        Parameters
        ----------
        tasks:
            The batch to solve; batches of one (or single-worker pools)
            take the in-process fast path.

        Returns
        -------
        ExecutionReport
            Results in task order, with the scheduler's predicted
            assignment attached as ``schedule``.
        """
        return self._execute(tasks, solve_fragment_task)

    def run_pipeline(
        self, tasks: Sequence[FragmentPipelineTask]
    ) -> ExecutionReport:
        """Run fused Gen_VF -> solve -> Gen_dens tasks through the pool.

        Each fragment is one *logical* submission: the worker gathers the
        restriction, solves, and extracts the weighted interior in a
        single round trip (the unfused path needs the same submission plus
        two driver-side serial loops around it).  With
        ``stack_small_tasks`` (the default) the small fragments of a
        mixed batch are LPT-binned into
        :class:`~repro.core.fragment_task.StackedPipelineTask` stacks, so
        they share pool submissions without touching the logical-task
        accounting or any result bit.
        """
        if self.stack_small_tasks and self.n_workers > 1 and len(tasks) > 2:
            groups = pack_stacks([t.cost() for t in tasks], self.n_workers)
            if any(len(g) > 1 for g in groups):
                return self._execute_stacked(tasks, groups)
        return self._execute(tasks, run_fragment_pipeline_task)

    def run_global(self, tasks: Sequence[GlobalStepTask]) -> ExecutionReport:
        """Run per-slab GENPOT global-step tasks through the pool.

        Each stage of the sharded global step is exactly one submission
        per slab; the report's ``results`` stay in slab order, so every
        downstream reduction sees the deterministic slab ordering that
        keeps sharded results bit-identical to the unsharded path.
        """
        return self._execute(tasks, run_global_step_task)

    def run_bands(self, tasks: Sequence[BandBlockTask]) -> ExecutionReport:
        """Run per-slice band-eigensolver tasks through the pool.

        Each sliced stage of a grouped all-band CG sweep is exactly one
        submission per band slice; ``results`` stay in slice order, so
        the group root's gathers see the deterministic row ordering that
        keeps grouped eigensolves bit-identical to single-worker ones.
        """
        return self._execute(tasks, run_band_block_task)

    def submit_global(self, task: GlobalStepTask):
        """Submit one global-step task to the pool; returns a future.

        The streaming GENPOT engine issues per-slab stage tasks the
        moment their inputs are assembled, instead of batching a whole
        stage behind a scatter barrier; single-worker pools resolve
        synchronously (the stream then replays the synchronous order).
        """
        self._bump(1, 1)
        if self.n_workers == 1:
            return _immediate(task, run_global_step_task)
        future = self._ensure_pool().submit(run_global_step_task, task)
        return _HealingFuture(self, future, task, run_global_step_task)

    def submit_pipeline_batch(self, tasks: Sequence) -> list:
        """Per-fragment futures for a pipeline batch (stacking preserved).

        The overlapped Gen_dens reduce consumes fragments in order while
        the batch tail is still draining; physical submissions are the
        same heaviest-first (optionally stacked, PR 6) units as
        :meth:`run_pipeline`, so the pool sees an identical schedule —
        only the driver stops idling between the last submit and the
        first reduce.
        """
        if self.n_workers == 1 or len(tasks) <= 1:
            self._bump(len(tasks), len(tasks))
            return [_immediate(t, run_fragment_pipeline_task) for t in tasks]
        groups = [[i] for i in range(len(tasks))]
        if self.stack_small_tasks and len(tasks) > 2:
            packed = pack_stacks([t.cost() for t in tasks], self.n_workers)
            if any(len(g) > 1 for g in packed):
                groups = packed
        self._bump(len(tasks), len(groups))
        units: list = [
            tasks[g[0]] if len(g) == 1 else StackedPipelineTask([tasks[i] for i in g])
            for g in groups
        ]
        order = np.argsort([u.cost() for u in units])[::-1]
        pool = self._ensure_pool()
        unit_futures: dict[int, object] = {}
        for i in order:
            gi = int(i)
            unit_futures[gi] = _HealingFuture(
                self,
                pool.submit(_run_pipeline_unit, units[gi]),
                units[gi],
                _run_pipeline_unit,
            )
        futures: list = [None] * len(tasks)
        for gi, g in enumerate(groups):
            if len(g) == 1:
                futures[g[0]] = unit_futures[gi]
            else:
                for member, idx in enumerate(g):
                    futures[idx] = _StackedMemberFuture(unit_futures[gi], member)
        return futures

    def _gather(self, future, task, kernel):
        """Resolve one future, healing a missed potential install.

        A pool worker that never received an ``install_state`` broadcast
        raises :class:`PotentialNotInstalledError`; the task is resubmitted
        once with the driver's payload attached (bit-identical bytes, so
        the result is unchanged).  Tasks without an install channel, or
        keys the driver does not hold, re-raise.
        """
        try:
            return future.result()
        except PotentialNotInstalledError as exc:
            attach = getattr(task, "with_potential_payload", None)
            payload = self._install_payloads.get(exc.key)
            if attach is None or payload is None:
                raise
            self._bump(0, 1)
            return self._ensure_pool().submit(kernel, attach(exc.key, payload)).result()

    def _execute(self, tasks: Sequence, kernel) -> ExecutionReport:
        t0 = time.perf_counter()
        self._bump(len(tasks), len(tasks))
        if self.n_workers == 1 or len(tasks) <= 1:
            results = [kernel(t) for t in tasks]
            return ExecutionReport(
                results=results,
                wall_time=time.perf_counter() - t0,
                worker_count=1,
            )
        schedule = self.schedule(tasks)
        # Submit heaviest-first: workers pulling from the shared queue then
        # realise exactly the greedy LPT balancing of the scheduler.
        order = np.argsort([t.cost() for t in tasks])[::-1]
        pool = self._ensure_pool()
        futures = {int(i): pool.submit(kernel, tasks[int(i)]) for i in order}
        results = [
            self._gather(futures[i], tasks[i], kernel) for i in range(len(tasks))
        ]
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=self.n_workers,
            schedule=schedule,
        )

    def _execute_stacked(
        self, tasks: Sequence[FragmentPipelineTask], groups: list[list[int]]
    ) -> ExecutionReport:
        """Run a pipeline batch with small tasks stacked per ``groups``.

        ``groups`` partitions the task indices (from
        :func:`repro.parallel.scheduler.pack_stacks`); singleton groups
        run the plain pipeline kernel, larger ones ride one
        :class:`~repro.core.fragment_task.StackedPipelineTask` submission
        and are flattened back so ``results`` stays in task order —
        reports are indistinguishable from unstacked runs apart from the
        physical ``pool_submissions`` count.
        """
        t0 = time.perf_counter()
        self._bump(len(tasks), len(groups))
        units: list = [
            tasks[g[0]] if len(g) == 1 else StackedPipelineTask([tasks[i] for i in g])
            for g in groups
        ]
        schedule = self._scheduler.schedule_tasks(units, self.n_workers)
        order = np.argsort([u.cost() for u in units])[::-1]
        pool = self._ensure_pool()
        futures = {
            int(i): pool.submit(_run_pipeline_unit, units[int(i)]) for i in order
        }
        results: list = [None] * len(tasks)
        for gi, g in enumerate(groups):
            res = self._gather(futures[gi], units[gi], _run_pipeline_unit)
            if len(g) == 1:
                results[g[0]] = res
            else:
                for idx, r in zip(g, res.results):
                    results[idx] = r
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=self.n_workers,
            schedule=schedule,
        )

    def close(self) -> None:
        """Shut the pool down; a later :meth:`run` transparently restarts it.

        Cached partition children (and their pools) are closed too.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        partitions, self._partitions = self._partitions, {}
        for children in partitions.values():
            for child in children:
                child.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ThreadPoolFragmentExecutor(_PoolFragmentExecutor):
    """Executes fragment tasks concurrently in a thread pool.

    Threads share the per-process static-problem cache, so nothing is
    rebuilt, and the BLAS-3 block operations dominating the eigensolver
    release the GIL — fragments genuinely overlap.

    Parameters
    ----------
    n_workers:
        Number of worker threads ("groups"); defaults to the CPU count.
    """

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.n_workers)


class ProcessPoolFragmentExecutor(_PoolFragmentExecutor):
    """Executes fragment tasks concurrently in a persistent process pool.

    The pool is created on first use and kept alive across :meth:`run`
    calls, so every worker's static-problem cache (and hence the cheap
    second LS3DF iteration) survives from one outer iteration to the
    next.  Call :meth:`close` (or use as a context manager) to release
    the workers.

    Parameters
    ----------
    n_workers:
        Number of worker processes ("groups"); defaults to the CPU count.
        The legacy spelling ``nworkers`` is also accepted.
    stack_small_tasks:
        Bin small pipeline tasks into stacked submissions (PR 6 knob,
        default on; see :meth:`run_pipeline`).
    """

    _broadcast_installs = True

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)
