"""Real parallel execution of fragment solves on local cores.

The paper's parallelism comes from solving independent fragments on
independent processor groups.  On a single machine this repository offers
the same structure through a process pool: the fragment problems of one
LS3DF iteration are distributed over worker processes, each worker solving
its fragments with the plane-wave substrate.  The executor interface is
what :class:`repro.core.scf.LS3DFSCF` would plug into for a genuinely
concurrent run; it also exposes timing so the laptop-scale strong-scaling
demo (examples/scaling_study.py) can measure real speedups.

Note: worker processes receive *picklable task descriptions* (structure,
potentials, solver options), not live solver objects, mirroring the way
the production code ships fragment data between MPI groups.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.pw.basis import PlaneWaveBasis
from repro.pw.density import compute_density, occupations_for_insulator
from repro.pw.eigensolver import all_band_cg
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.pseudopotential import PseudopotentialSet, default_pseudopotentials


@dataclass
class FragmentTask:
    """Self-contained description of one fragment solve (picklable).

    Attributes
    ----------
    label:
        Fragment label (bookkeeping).
    cell:
        Fragment box edge lengths (Bohr).
    grid_shape:
        Fragment FFT grid shape.
    symbols, positions:
        Fragment atoms (including passivants).
    screening_potential:
        The Gen_VF output for this fragment (restricted global potential
        plus passivation potential).
    ecut:
        Plane-wave cutoff (Hartree).
    n_empty:
        Extra empty bands.
    tolerance, max_iterations:
        Eigensolver controls.
    initial_coefficients:
        Optional warm-start wavefunctions.
    """

    label: str
    cell: tuple[float, float, float]
    grid_shape: tuple[int, int, int]
    symbols: list[str]
    positions: np.ndarray
    screening_potential: np.ndarray
    ecut: float
    n_empty: int = 2
    tolerance: float = 1e-5
    max_iterations: int = 60
    initial_coefficients: np.ndarray | None = None


@dataclass
class FragmentTaskResult:
    """Result of one executed fragment task."""

    label: str
    eigenvalues: np.ndarray
    density: np.ndarray
    quantum_energy: float
    wall_time: float
    worker_pid: int
    coefficients: np.ndarray | None = None


def solve_fragment_task(task: FragmentTask, return_coefficients: bool = False) -> FragmentTaskResult:
    """Solve one fragment task (runs inside a worker process)."""
    t0 = time.perf_counter()
    structure = Structure(task.cell, task.symbols, task.positions)
    grid = FFTGrid(task.cell, task.grid_shape)
    basis = PlaneWaveBasis(grid, task.ecut)
    pps = default_pseudopotentials()
    hamiltonian = Hamiltonian.from_structure(structure, basis, pps)
    hamiltonian.set_effective_potential(task.screening_potential)
    nelectrons = structure.total_valence_electrons()
    nbands = (nelectrons + 1) // 2 + task.n_empty
    occupations = occupations_for_insulator(nelectrons, nbands)
    result = all_band_cg(
        hamiltonian,
        nbands,
        initial=task.initial_coefficients,
        max_iterations=task.max_iterations,
        tolerance=task.tolerance,
    )
    density = compute_density(basis, result.coefficients, occupations)
    hamiltonian.v_screening = np.zeros_like(hamiltonian.v_screening)
    expect = hamiltonian.expectation(result.coefficients)
    quantum_energy = float(np.sum(occupations * expect))
    return FragmentTaskResult(
        label=task.label,
        eigenvalues=result.eigenvalues,
        density=density,
        quantum_energy=quantum_energy,
        wall_time=time.perf_counter() - t0,
        worker_pid=os.getpid(),
        coefficients=result.coefficients if return_coefficients else None,
    )


@dataclass
class ExecutionReport:
    """Timing summary of one batch of fragment solves."""

    results: list[FragmentTaskResult]
    wall_time: float
    worker_count: int

    @property
    def total_cpu_time(self) -> float:
        return float(sum(r.wall_time for r in self.results))

    @property
    def parallel_efficiency(self) -> float:
        """total task time / (workers * wall time); 1.0 is ideal."""
        if self.wall_time <= 0 or self.worker_count <= 0:
            return 0.0
        return self.total_cpu_time / (self.worker_count * self.wall_time)

    @property
    def distinct_workers(self) -> int:
        return len({r.worker_pid for r in self.results})


class SerialFragmentExecutor:
    """Executes fragment tasks one after another in the calling process."""

    def __init__(self) -> None:
        self.nworkers = 1

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        t0 = time.perf_counter()
        results = [solve_fragment_task(t) for t in tasks]
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=1,
        )


class ProcessPoolFragmentExecutor:
    """Executes fragment tasks concurrently in a process pool.

    Parameters
    ----------
    nworkers:
        Number of worker processes ("groups"); defaults to the CPU count.
    """

    def __init__(self, nworkers: int | None = None) -> None:
        if nworkers is not None and nworkers < 1:
            raise ValueError("nworkers must be positive")
        self.nworkers = nworkers or os.cpu_count() or 1

    def run(self, tasks: Sequence[FragmentTask]) -> ExecutionReport:
        t0 = time.perf_counter()
        if self.nworkers == 1 or len(tasks) <= 1:
            results = [solve_fragment_task(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=self.nworkers) as pool:
                results = list(pool.map(solve_fragment_task, tasks))
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=self.nworkers,
        )
