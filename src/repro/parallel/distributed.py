"""DistributedField: 1D-slab decomposition of the global grid + global-step tasks.

The paper runs the *global* steps of every LS3DF iteration — GENPOT's
Poisson solve, exchange-correlation and potential mixing — on a second
data layout: while fragments live on processor groups, the global fields
are split into 1D slabs along the z-axis, and explicit data movement
converts between the two layouts every iteration (Section IV; the dual
fragment/slab layout is what keeps the o(N) global work off the fragment
groups' critical path).

This module is the local-machine analogue of that slab layout:

* :func:`slab_bounds` / :class:`DistributedField` — a global real-space
  field held as contiguous slabs along one axis, with ``scatter`` /
  ``gather`` / ``exchange`` (slab transpose) primitives.  All data
  movement is deterministic and exact: slabs are plain array copies, so a
  scatter -> gather round trip is bit-identical to the original field.
* :class:`GlobalStepTask` / :func:`run_global_step_task` — picklable
  per-slab units of global-step work (FFT stages, the Poisson reciprocal-
  space kernel, LDA XC, mixing), executed through the same
  :class:`repro.core.fragment_task.FragmentExecutor` backends that run
  fragment solves (``run_global`` on every backend in
  :mod:`repro.parallel.executor`).
* :func:`distributed_fftn` / :func:`distributed_ifftn` — slab-transpose
  distributed FFTs built from per-axis ``numpy.fft`` calls.  NumPy's
  ``fftn`` applies 1D transforms last-axis-first and each 1D transform is
  independent of how the other axes are batched, so the distributed
  transform is **bit-identical** to the single-array ``numpy.fft.fftn``
  for any shard count — the property the sharded GENPOT path relies on.
* :func:`sharded_hartree_potential` / :func:`sharded_xc` /
  :func:`sharded_mix` — the three global steps of
  :class:`repro.core.genpot.GlobalPotentialSolver`, orchestrated over
  slabs (driver does the data movement, the executor's workers do the
  compute).

Layering: this module depends only on :mod:`numpy`, :mod:`repro.constants`
and the plane-wave substrate; the executors import the task kernel from
here, and :mod:`repro.core.genpot` imports the orchestrators lazily.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.constants import FOUR_PI
from repro.pw import fftcache
from repro.pw.xc import lda_xc


def slab_bounds(n: int, nshards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[lo, hi)`` ranges splitting ``n`` planes.

    The first ``n % nshards`` shards get one extra plane — the standard
    deterministic block distribution.  ``nshards`` may exceed ``n``; the
    trailing shards are then empty, which the FFT stages handle (zero
    transforms).  The decomposition depends only on ``(n, nshards)``, so
    every backend and worker count sees identical slab boundaries.

    Parameters
    ----------
    n:
        Number of planes along the distributed axis.
    nshards:
        Number of shards to split them into.

    Returns
    -------
    list[tuple[int, int]]
        ``nshards`` half-open ``[lo, hi)`` ranges covering ``0..n``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if nshards < 1:
        raise ValueError("nshards must be positive")
    base, extra = divmod(n, nshards)
    bounds = []
    lo = 0
    for k in range(nshards):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass
class DistributedField:
    """A global real-space/reciprocal-space field held as 1D slabs.

    Parameters
    ----------
    grid_shape:
        Shape of the full global field.
    axis:
        The distributed axis (2 = z-slabs, the canonical GENPOT layout;
        0 = x-slabs, the transposed layout the distributed FFT passes
        through).
    slabs:
        Per-shard arrays; shard ``k`` holds the planes
        ``slab_bounds(grid_shape[axis], nshards)[k]`` along ``axis`` and
        the full extent of the other two axes.
    """

    grid_shape: tuple[int, int, int]
    axis: int
    slabs: list[np.ndarray]

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1 or 2")
        if not self.slabs:
            raise ValueError("need at least one slab")

    # -- basic accessors -----------------------------------------------------
    @property
    def nshards(self) -> int:
        """Number of slabs the field is split into."""
        return len(self.slabs)

    @property
    def bounds(self) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` plane range of every shard along ``axis``."""
        return slab_bounds(self.grid_shape[self.axis], self.nshards)

    # -- layout primitives ---------------------------------------------------
    @classmethod
    def scatter(
        cls, array: np.ndarray, nshards: int, axis: int = 2
    ) -> "DistributedField":
        """Split a global field into ``nshards`` contiguous slabs."""
        array = np.asarray(array)
        if array.ndim != 3:
            raise ValueError("DistributedField holds 3D fields")
        shape = tuple(int(s) for s in array.shape)
        slabs = []
        index: list[slice] = [slice(None)] * 3
        for lo, hi in slab_bounds(shape[axis], nshards):
            index[axis] = slice(lo, hi)
            slabs.append(np.ascontiguousarray(array[tuple(index)]))
        return cls(shape, axis, slabs)

    def gather(self) -> np.ndarray:
        """Reassemble the full global field (exact concatenation)."""
        return np.concatenate(self.slabs, axis=self.axis)

    def exchange(self, axis: int) -> "DistributedField":
        """Transpose the slab layout onto a different distributed axis.

        This is the all-to-all of the distributed FFT: shard ``k`` of the
        new layout collects, from every old shard, the planes it owns
        along the new axis.  Pure data movement — values are copied, never
        recomputed — so the represented global field is unchanged bit for
        bit.
        """
        if axis == self.axis:
            return self
        new_bounds = slab_bounds(self.grid_shape[axis], self.nshards)
        new_slabs = []
        index: list[slice] = [slice(None)] * 3
        for lo, hi in new_bounds:
            index[axis] = slice(lo, hi)
            index[self.axis] = slice(None)
            pieces = [slab[tuple(index)] for slab in self.slabs]
            new_slabs.append(np.concatenate(pieces, axis=self.axis))
        return DistributedField(self.grid_shape, axis, new_slabs)


# ---------------------------------------------------------------------------
# Per-slab global-step tasks (the picklable unit the executors run)


@dataclass
class GlobalStepTask:
    """One slab's worth of a GENPOT global step (picklable).

    Mirrors :class:`repro.core.fragment_task.FragmentTask` for the global
    layer: a self-contained description the executor backends can ship to
    worker threads/processes.  ``kind`` selects the kernel (see
    :func:`run_global_step_task`); ``data`` is the shard's primary slab,
    ``aux`` an optional second per-slab array (the Poisson ``|G|^2`` slab,
    the Kerker filter slab, the other potential of a mix), ``scalars``
    carries plain float parameters and ``mixer`` a small picklable mixer
    for pointwise mixing kinds.
    """

    kind: str
    shard: int
    nshards: int
    data: np.ndarray
    aux: np.ndarray | None = None
    scalars: dict = field(default_factory=dict)
    mixer: object | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.kind}[{self.shard}/{self.nshards}]"

    def cost(self) -> float:
        """Relative cost for LPT scheduling (slab volume; slabs are near-equal)."""
        return float(self.data.size)


@dataclass
class GlobalStepResult:
    """Result of one executed global-step task.

    Attributes
    ----------
    label:
        The task's label (``kind[shard/nshards]`` by default).
    shard:
        Shard index, so reductions can re-order results defensively.
    data:
        The kernel's primary output slab.
    extra:
        Optional secondary output (the XC kernel returns ``eps_xc``
        here); ``None`` for the other kinds.
    wall_time:
        In-worker wall-clock seconds of the kernel.
    worker_pid:
        PID of the process that executed the task.
    """

    label: str
    shard: int
    data: np.ndarray
    extra: np.ndarray | None
    wall_time: float
    worker_pid: int


def _kernel_fft_planes(task: GlobalStepTask):
    # Forward FFT over the two locally complete axes of an x-slab, in the
    # same order numpy's fftn uses (last axis first).  The half-transformed
    # intermediate lives in a pooled workspace buffer (bit-identical reuse,
    # see repro.pw.fftcache); the returned slab is always fresh because the
    # caller retains it.
    with fftcache.scratch(task.data.shape) as w:
        a = fftcache.fft(task.data, axis=2, out=w)
        return np.fft.fft(a, axis=1), None


def _kernel_fft_lines(task: GlobalStepTask):
    # Forward FFT along the x-axis of a z-slab (completes the 3D transform).
    return np.fft.fft(task.data, axis=0), None


def _kernel_poisson_lines(task: GlobalStepTask):
    # Complete the forward transform, then apply the reciprocal-space
    # Poisson kernel 4 pi / |G|^2 with the G = 0 component zeroed —
    # element for element the arithmetic of repro.pw.hartree.
    with fftcache.scratch(task.data.shape) as w:
        rho_g = fftcache.fft(task.data, axis=0, out=w)
        g2 = task.aux
        vg = np.zeros(rho_g.shape, dtype=rho_g.dtype)
        nonzero = g2 > 1e-12
        vg[nonzero] = FOUR_PI * rho_g[nonzero] / g2[nonzero]
        return vg, None


def _kernel_filter_lines(task: GlobalStepTask):
    # Complete the forward transform, then apply a reciprocal-space filter
    # slab (the Kerker preconditioner q^2 / (q^2 + q0^2)).
    with fftcache.scratch(task.data.shape) as w:
        return task.aux * fftcache.fft(task.data, axis=0, out=w), None


def _kernel_ifft_planes(task: GlobalStepTask):
    with fftcache.scratch(task.data.shape) as w:
        a = fftcache.ifft(task.data, axis=2, out=w)
        return np.fft.ifft(a, axis=1), None


def _kernel_ifft_lines(task: GlobalStepTask):
    return np.fft.ifft(task.data, axis=0), None


def _kernel_ifft_lines_real(task: GlobalStepTask):
    with fftcache.scratch(task.data.shape) as w:
        u = fftcache.ifft(task.data, axis=0, out=w)
        return u.real.copy(), None


def _kernel_ifft_lines_combine(task: GlobalStepTask):
    # Final stage of a spectral (Kerker) mix: finish the inverse
    # transform of the filtered residual and take the damped step
    # v_next = v_in + alpha * update on this shard's planes.
    with fftcache.scratch(task.data.shape) as w:
        update = fftcache.ifft(task.data, axis=0, out=w).real
        return task.aux + task.scalars["alpha"] * update, None


def _kernel_xc(task: GlobalStepTask):
    # LDA exchange-correlation is pointwise, hence embarrassingly slab-
    # parallel.  Returns (v_xc, eps_xc) for the shard.
    eps_xc, v_xc = lda_xc(task.data)
    return v_xc, eps_xc


def _kernel_mix_pointwise(task: GlobalStepTask):
    return task.mixer.mix_slab(task.data, task.aux), None


def _kernel_rfft_planes(task: GlobalStepTask):
    # Real-FFT forward over the z-axis of an x-slab: the first transform
    # of numpy's rfftn order (rfft last axis, then fft the others).  The
    # half spectrum (nz//2 + 1 planes) is what crosses the wire.
    return fftcache.rfft(task.data, axis=2), None


def _kernel_poisson_half_lines(task: GlobalStepTask):
    # Middle stage of the real-FFT Poisson solve, on a half-spectrum
    # z-slab where axes 0 and 1 are locally complete: finish rfftn's
    # remaining transforms (axis 0, then 1 — numpy's order), apply the
    # 4 pi / |G|^2 kernel on the half spectrum, and run irfftn's two
    # local inverse transforms (axis 0, then 1).  One task instead of
    # the complex path's two, and no full-spectrum exchange at all.
    with fftcache.scratch(task.data.shape) as w:
        a = fftcache.fft(task.data, axis=0, out=w)
        a = np.fft.fft(a, axis=1)
        g2 = task.aux
        vg = np.zeros(a.shape, dtype=a.dtype)
        nonzero = g2 > 1e-12
        vg[nonzero] = FOUR_PI * a[nonzero] / g2[nonzero]
        u = fftcache.ifft(vg, axis=0, out=w)
        return np.fft.ifft(u, axis=1), None


def _kernel_genpot_finish(task: GlobalStepTask):
    # Fused final stage of the streaming GENPOT (PR 8): finish the
    # inverse Poisson transform on this resident slab, add its XC slab,
    # and start the mix — one task where the synchronous path pays a
    # gather, two driver-side elementwise passes and a fresh scatter.
    # ``aux`` is ``(v_xc_slab, v_in_slab_or_None)``; ``scalars`` may
    # carry ``irfft_n`` (real-FFT path: the data slab is the half
    # spectrum along z, to be inverse-real-transformed to ``irfft_n``
    # planes) and ``residual`` (also return v_out - v_in, feeding a
    # spectral mix); a pointwise ``mixer`` fuses the whole mix in.
    v_xc, v_in = task.aux
    n = int(task.scalars.get("irfft_n", 0))
    if n:
        v_es = fftcache.irfft(task.data, n=n, axis=2)
    else:
        with fftcache.scratch(task.data.shape) as w:
            v_es = fftcache.ifft(task.data, axis=0, out=w).real.copy()
    v_out = v_es + v_xc
    extra = {"v_out": v_out}
    if v_in is not None and task.scalars.get("residual"):
        extra["resid"] = v_out - v_in
    if task.mixer is not None and v_in is not None:
        extra["v_next"] = task.mixer.mix_slab(v_in, v_out)
    return v_es, extra


_STEP_KERNELS = {
    "fft_planes": _kernel_fft_planes,
    "fft_lines": _kernel_fft_lines,
    "poisson_lines": _kernel_poisson_lines,
    "filter_lines": _kernel_filter_lines,
    "ifft_planes": _kernel_ifft_planes,
    "ifft_lines": _kernel_ifft_lines,
    "ifft_lines_real": _kernel_ifft_lines_real,
    "ifft_lines_combine": _kernel_ifft_lines_combine,
    "xc": _kernel_xc,
    "mix_pointwise": _kernel_mix_pointwise,
    "rfft_planes": _kernel_rfft_planes,
    "poisson_half_lines": _kernel_poisson_half_lines,
    "genpot_finish": _kernel_genpot_finish,
}


def run_global_step_task(task: GlobalStepTask) -> GlobalStepResult:
    """Execute one global-step task — the shared per-slab GENPOT kernel.

    Like :func:`repro.core.fragment_task.solve_fragment_task` for
    fragments, this runs identically in the calling process and inside
    pool workers; every backend's ``run_global`` dispatches here.

    Parameters
    ----------
    task:
        The per-slab work unit; its ``kind`` selects the kernel
        (``fft_planes``, ``poisson_lines``, ``xc``, ``mix_pointwise``,
        ...), unknown kinds raise ``ValueError``.

    Returns
    -------
    GlobalStepResult
        The transformed slab (plus the XC kernel's ``extra``), with
        wall time and worker PID for the timing accounting.
    """
    t0 = time.perf_counter()
    try:
        kernel = _STEP_KERNELS[task.kind]
    except KeyError:
        raise ValueError(f"unknown global step kind {task.kind!r}") from None
    data, extra = kernel(task)
    return GlobalStepResult(
        label=task.label,
        shard=task.shard,
        data=data,
        extra=extra,
        wall_time=time.perf_counter() - t0,
        worker_pid=os.getpid(),
    )


@runtime_checkable
class GlobalStepExecutor(Protocol):
    """A fragment-execution backend that also runs global-step tasks.

    All backends in :mod:`repro.parallel.executor` implement this;
    ``run_global`` takes a batch of :class:`GlobalStepTask` and returns an
    execution report whose ``results`` are :class:`GlobalStepResult`
    objects in task order (the deterministic slab order every reduction
    below relies on).
    """

    n_workers: int

    def run_global(self, tasks: Sequence[GlobalStepTask]):
        """Execute a batch of per-slab global-step tasks.

        Parameters
        ----------
        tasks:
            One :class:`GlobalStepTask` per shard of one stage.

        Returns
        -------
        ExecutionReport
            With ``results`` (:class:`GlobalStepResult`) in task order.
        """
        ...


# ---------------------------------------------------------------------------
# Slab orchestration (driver side): distributed FFT and the GENPOT steps


def _run_stage(
    executor: GlobalStepExecutor,
    kind: str,
    slabs: Sequence[np.ndarray],
    aux: Sequence[np.ndarray] | None = None,
    scalars: dict | None = None,
    mixer: object | None = None,
    task_times: list[float] | None = None,
) -> list[GlobalStepResult]:
    """Run one per-slab stage through the executor (one task per shard)."""
    nshards = len(slabs)
    tasks = [
        GlobalStepTask(
            kind=kind,
            shard=k,
            nshards=nshards,
            data=slabs[k],
            aux=None if aux is None else aux[k],
            scalars=scalars or {},
            mixer=mixer,
        )
        for k in range(nshards)
    ]
    report = executor.run_global(tasks)
    results = list(report.results)
    if task_times is not None:
        task_times.extend(r.wall_time for r in results)
    return results


def _slab_transform(
    field: DistributedField,
    executor: GlobalStepExecutor,
    planes_kind: str,
    lines_kind: str,
    lines_aux: Sequence[np.ndarray] | None = None,
    lines_scalars: dict | None = None,
    task_times: list[float] | None = None,
) -> DistributedField:
    """One full slab-transpose 3D transform pass over a z-slab field.

    The shared motif of every distributed FFT-based step: exchange to
    x-slabs, run the ``planes_kind`` stage over the two locally complete
    axes (2 then 1 — numpy's ``fftn`` order), exchange back to z-slabs,
    and run the ``lines_kind`` stage along the now-complete x-axis
    (optionally with per-slab ``lines_aux`` arrays / ``lines_scalars``,
    which is where the Poisson kernel, the Kerker filter and the mix
    combine fuse into the final stage).
    """
    if field.axis != 2:
        raise ValueError("slab transforms expect a z-slab field")
    fx = field.exchange(0)
    planes = _run_stage(executor, planes_kind, fx.slabs, task_times=task_times)
    fz = DistributedField(field.grid_shape, 0, [r.data for r in planes]).exchange(2)
    lines = _run_stage(
        executor,
        lines_kind,
        fz.slabs,
        aux=lines_aux,
        scalars=lines_scalars,
        task_times=task_times,
    )
    return DistributedField(field.grid_shape, 2, [r.data for r in lines])


def distributed_fftn(
    field: DistributedField,
    executor: GlobalStepExecutor,
    task_times: list[float] | None = None,
) -> DistributedField:
    """Slab-transpose distributed forward FFT (bit-identical to ``fftn``).

    Input and output are z-slab fields.  The 1D transforms run in the
    exact order ``numpy.fft.fftn`` uses — axis 2, then 1, then 0 — with
    the two slab transposes making each axis locally complete when its
    turn comes, so the gathered result equals ``numpy.fft.fftn`` of the
    gathered input bit for bit, for any shard count.

    Parameters
    ----------
    field:
        A z-slab :class:`DistributedField`.
    executor:
        Backend the per-slab FFT stages are submitted to.
    task_times:
        Optional list the in-worker task times are appended to (the
        sharded-GENPOT timing accounting).

    Returns
    -------
    DistributedField
        The transformed field, again as z-slabs.
    """
    return _slab_transform(
        field, executor, "fft_planes", "fft_lines", task_times=task_times
    )


def distributed_ifftn(
    field: DistributedField,
    executor: GlobalStepExecutor,
    task_times: list[float] | None = None,
) -> DistributedField:
    """Slab-transpose distributed inverse FFT (bit-identical to ``ifftn``).

    Parameters and return mirror :func:`distributed_fftn` (z-slab field
    in, z-slab field out, task times appended to ``task_times``).
    """
    return _slab_transform(
        field, executor, "ifft_planes", "ifft_lines", task_times=task_times
    )


def _slab_views(array: np.ndarray, bounds: Sequence[tuple[int, int]]) -> list[np.ndarray]:
    """z-slab views of a global array (no copy; read-only use by tasks)."""
    return [array[:, :, lo:hi] for lo, hi in bounds]


def sharded_hartree_potential(
    net_density: np.ndarray,
    g2: np.ndarray,
    nshards: int,
    executor: GlobalStepExecutor,
    task_times: list[float] | None = None,
) -> np.ndarray:
    """Distributed GENPOT Poisson solve: V_H of the net charge density.

    Bit-identical to :func:`repro.pw.hartree.hartree_potential` of the
    same (already ion-subtracted) density: forward distributed FFT, the
    per-slab 4 pi / |G|^2 kernel, inverse distributed FFT, real part.

    Parameters
    ----------
    net_density:
        Net (electron minus ionic) charge density on the global grid.
    g2:
        The grid's ``|G|^2`` array (``FFTGrid.g2``), sliced into slabs
        for the per-shard Poisson kernel.
    nshards:
        Number of z-slabs.
    executor:
        Backend the per-slab stages run through.
    task_times:
        Optional list the in-worker task times are appended to.

    Returns
    -------
    np.ndarray
        The gathered Hartree potential (real, global grid).
    """
    fz = DistributedField.scatter(net_density, nshards, axis=2)
    rho_g = _slab_transform(
        fz,
        executor,
        "fft_planes",
        "poisson_lines",
        lines_aux=_slab_views(g2, fz.bounds),
        task_times=task_times,
    )
    v = _slab_transform(
        rho_g, executor, "ifft_planes", "ifft_lines_real", task_times=task_times
    )
    return v.gather()


def sharded_xc(
    density: np.ndarray,
    nshards: int,
    executor: GlobalStepExecutor,
    task_times: list[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Distributed LDA exchange-correlation: ``(v_xc, eps_xc)`` gathered.

    Pointwise, so each shard evaluates :func:`repro.pw.xc.lda_xc` on its
    own planes; the gathered fields are bit-identical to the single-array
    evaluation.

    Parameters
    ----------
    density:
        Electron density on the global grid.
    nshards:
        Number of z-slabs.
    executor:
        Backend the one-task-per-slab XC stage runs through.
    task_times:
        Optional list the in-worker task times are appended to.

    Returns
    -------
    tuple[np.ndarray, np.ndarray]
        ``(v_xc, eps_xc)`` on the global grid.
    """
    fz = DistributedField.scatter(density, nshards, axis=2)
    results = _run_stage(executor, "xc", fz.slabs, task_times=task_times)
    v_xc = DistributedField(fz.grid_shape, 2, [r.data for r in results]).gather()
    eps_xc = DistributedField(fz.grid_shape, 2, [r.extra for r in results]).gather()
    return v_xc, eps_xc


def sharded_mix(
    mixer,
    v_in: np.ndarray,
    v_out: np.ndarray,
    nshards: int,
    executor: GlobalStepExecutor,
    task_times: list[float] | None = None,
) -> np.ndarray:
    """Distributed potential mixing, dispatched on the mixer's capability.

    ``mixer.sharding`` (see the :class:`repro.pw.mixing.Mixer` protocol)
    selects the strategy:

    * ``"pointwise"`` — one ``mix_slab`` task per shard (linear mixing);
    * ``"spectral"``  — residual -> distributed FFT -> per-slab filter ->
      distributed inverse FFT -> per-slab damped combine (Kerker);
    * anything else   — fall back to the mixer's serial ``mix`` on the
      gathered potentials (Anderson: its history gram matrix is a global
      o(N) reduction, kept on the driver like the paper's global module).

    All three routes are bit-identical to ``mixer.mix(v_in, v_out)``.

    Parameters
    ----------
    mixer:
        A :class:`repro.pw.mixing.Mixer` (its ``sharding`` attribute
        picks the route above).
    v_in, v_out:
        This iteration's input and output potentials on the global grid.
    nshards:
        Number of z-slabs.
    executor:
        Backend the per-slab stages run through.
    task_times:
        Optional list the in-worker task times are appended to.

    Returns
    -------
    np.ndarray
        The next input potential on the global grid.
    """
    mode = getattr(mixer, "sharding", "serial")
    if mode == "pointwise":
        shape = v_in.shape
        vin_f = DistributedField.scatter(v_in, nshards, axis=2)
        vout_f = DistributedField.scatter(v_out, nshards, axis=2)
        results = _run_stage(
            executor,
            "mix_pointwise",
            vin_f.slabs,
            aux=vout_f.slabs,
            mixer=mixer,
            task_times=task_times,
        )
        return DistributedField(shape, 2, [r.data for r in results]).gather()
    if mode == "spectral":
        fz = DistributedField.scatter(v_out - v_in, nshards, axis=2)
        resid_g = _slab_transform(
            fz,
            executor,
            "fft_planes",
            "filter_lines",
            lines_aux=_slab_views(mixer.spectral_filter(), fz.bounds),
            task_times=task_times,
        )
        v_next = _slab_transform(
            resid_g,
            executor,
            "ifft_planes",
            "ifft_lines_combine",
            lines_aux=_slab_views(v_in, fz.bounds),
            lines_scalars={"alpha": mixer.alpha},
            task_times=task_times,
        )
        return v_next.gather()
    return mixer.mix(v_in, v_out)
