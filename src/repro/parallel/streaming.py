"""Streaming GENPOT: resident slabs, dataflow stages, incremental exchange.

The synchronous sharded GENPOT (:mod:`repro.parallel.distributed`, PR 3)
runs each global step as a *barrier* sequence: scatter a full field, run
one stage on every slab, exchange, run the next stage, gather — and the
driver sits idle whenever any worker still owes a slab.  The paper's
production GENPOT does better: each processor keeps its slab resident
through the whole Poisson/XC/mixing chain and posts its all-to-all
contributions as soon as they exist, overlapping the layout conversion
with compute (Section IV's "the conversion is overlapped with the
computation").

This module is that engine, on top of the executor backends' futures
surface (``submit_global`` on every backend in
:mod:`repro.parallel.executor` and :mod:`repro.parallel.remote`):

* :class:`SlabExchangeBuffer` — the incremental slab transpose.  Target
  slabs are preallocated; every arriving source slab is copied straight
  into all of them, and a target whose last contribution lands is handed
  to the next stage immediately.  The assembled bytes equal
  :meth:`repro.parallel.distributed.DistributedField.exchange` exactly
  (same plane ranges, same source order per target), so downstream FFTs
  see bit-identical inputs.
* :func:`stream_genpot` — one whole GENPOT evaluation as a dataflow
  graph over per-slab :class:`~repro.parallel.distributed.GlobalStepTask`
  units: XC runs concurrently with the Poisson transform chain, the
  fused ``genpot_finish`` stage (inverse transform + ``v_es + v_xc`` +
  pointwise mix / residual) fires per slab the moment both of its inputs
  exist, and a spectral (Kerker) mix streams through the same
  filter-transform chain slab by slab.  Every kernel, slab boundary and
  exchange byte matches the synchronous path, and all o(N) scalar
  reductions stay on the driver's gathered arrays — so the streamed
  results are **bit-identical** to the synchronous sharded path (hence
  to the serial path) on every backend, for any shard count.

The engine also carries the opt-in real-FFT density path
(``REPRO_REAL_FFT``, :func:`repro.pw.fftcache.real_fft_enabled`): for a
real net density the forward transform is ``rfft`` along z on resident
x-slabs, the middle Poisson stage runs fused on the *half* spectrum
(``nz//2 + 1`` planes — half the exchange bytes, two exchanges instead
of four), and ``genpot_finish`` closes with ``irfft``.  That path is
bit-identical to the serial real-FFT branch of
:func:`repro.pw.hartree.hartree_potential`, but only tolerance-equal to
the complex transform, which is why the knob defaults off.

Timing: the driver loop attributes its wall time to ``wait`` (blocked on
the completion queue) versus busy work, and separately meters
``layout_conversion`` (scatter / exchange-copy / gather seconds) — the
quantity the paper's overlap hides.  See
:class:`repro.core.genpot.GenpotStepTimings`.
"""

from __future__ import annotations

import queue
import time

import numpy as np

from repro.parallel.distributed import (
    GlobalStepTask,
    slab_bounds,
)

__all__ = ["SlabExchangeBuffer", "stream_genpot", "streaming_supported"]


def streaming_supported(executor) -> bool:
    """Whether ``executor`` offers the futures surface the stream needs."""
    return hasattr(executor, "submit_global")


class SlabExchangeBuffer:
    """Incremental slab transpose between two distributed axes.

    The streaming analogue of
    :meth:`repro.parallel.distributed.DistributedField.exchange`: instead
    of waiting for every source slab and concatenating, the target slabs
    are preallocated and each source slab is scattered into all of them
    on arrival.  Because target ``j`` receives exactly the plane range
    ``slab_bounds(shape[dst_axis], nshards)[j]`` from every source, in
    source order, the completed target equals the synchronous exchange's
    ``np.concatenate`` output value for value.

    Parameters
    ----------
    shape:
        Global shape of the exchanged field (the spectral-half chain
        passes the reduced ``nz//2 + 1`` extent here).
    src_axis, dst_axis:
        Distributed axis of the incoming slabs / of the assembled
        targets (0 and 2 in some order for the GENPOT chains).
    nshards:
        Number of slabs on both sides.
    dtype:
        Element type of the assembled targets.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        src_axis: int,
        dst_axis: int,
        nshards: int,
        dtype=np.complex128,
    ) -> None:
        if src_axis == dst_axis:
            raise ValueError("exchange needs two distinct axes")
        self.src_axis = src_axis
        self.dst_axis = dst_axis
        self.src_bounds = slab_bounds(shape[src_axis], nshards)
        self.dst_bounds = slab_bounds(shape[dst_axis], nshards)
        self._targets: list[np.ndarray | None] = []
        for lo, hi in self.dst_bounds:
            tshape = list(shape)
            tshape[dst_axis] = hi - lo
            self._targets.append(np.empty(tuple(tshape), dtype=dtype))
        self._remaining = [nshards] * nshards

    def add(self, src_shard: int, slab: np.ndarray) -> list[int]:
        """Copy one arrived source slab into every target.

        Parameters
        ----------
        src_shard:
            Index of the arriving slab along ``src_axis``.
        slab:
            Its data: full extent on every axis except ``src_axis``.

        Returns
        -------
        list[int]
            Indices of targets completed by this contribution (each is
            returned exactly once; fetch them with :meth:`take`).
        """
        slo, shi = self.src_bounds[src_shard]
        ready = []
        for j, (lo, hi) in enumerate(self.dst_bounds):
            src_index: list[slice] = [slice(None)] * 3
            src_index[self.dst_axis] = slice(lo, hi)
            dst_index: list[slice] = [slice(None)] * 3
            dst_index[self.src_axis] = slice(slo, shi)
            self._targets[j][tuple(dst_index)] = slab[tuple(src_index)]
            self._remaining[j] -= 1
            if self._remaining[j] == 0:
                ready.append(j)
        return ready

    def take(self, j: int) -> np.ndarray:
        """Hand over completed target ``j`` (the buffer drops its ref)."""
        target = self._targets[j]
        if target is None:
            raise RuntimeError(f"target slab {j} already taken")
        if self._remaining[j] > 0:
            raise RuntimeError(f"target slab {j} is not complete yet")
        self._targets[j] = None
        return target


# Driver-loop tags -> the GenpotStepTimings bucket their task walls land in.
_TAG_CATEGORY = {
    "xc": "xc",
    "pf": "poisson",
    "pl": "poisson",
    "pi": "poisson",
    "rf": "poisson",
    "ph": "poisson",
    "fin": "poisson",
    "kf": "mix",
    "kfilt": "mix",
    "ki": "mix",
    "kcomb": "mix",
}


class _StreamEngine:
    """One GENPOT evaluation as an event-driven slab dataflow.

    Built per call by :func:`stream_genpot`; holds the exchange buffers,
    per-slab result stores and the completion queue the executor's
    done-callbacks feed.  Handlers submit downstream tasks the moment
    their inputs are assembled — there is no stage barrier anywhere.
    """

    def __init__(self, net, rho, v_in, g2, nshards, executor, mixer, use_real_fft):
        self.net = net
        self.rho = rho
        self.v_in = v_in
        self.g2 = g2
        self.S = int(nshards)
        self.executor = executor
        self.mixer = mixer
        self.real = bool(use_real_fft)
        self.shape = tuple(int(s) for s in net.shape)
        mode = getattr(mixer, "sharding", "serial") if mixer is not None else "serial"
        self.pointwise_mixer = mixer if mode == "pointwise" else None
        self.spectral = mode == "spectral"
        # The fused finish stage lives on the forward transform's resident
        # slabs: z-slabs on the complex path, x-slabs on the real path.
        self.home_axis = 0 if self.real else 2
        self.home_bounds = slab_bounds(self.shape[self.home_axis], self.S)
        self.bounds_z = slab_bounds(self.shape[2], self.S)

        self._done: queue.Queue = queue.Queue()
        self._inflight = 0
        self.wait = 0.0
        self.conv = 0.0
        self.walls = {"poisson": 0.0, "xc": 0.0, "mix": 0.0}
        self.task_times: list[float] = []

        S = self.S
        self.v_xc_slabs: list = [None] * S
        self.eps_slabs: list = [None] * S
        self.spec_ready: list = [None] * S  # finish-stage spectral input
        self._fin_submitted = [False] * S
        self.v_es_slabs: list = [None] * S
        self.v_out_slabs: list = [None] * S
        self.v_next_slabs: list = [None] * S

        self._handlers = {
            "xc": self._on_xc,
            "pf": self._on_pf,
            "pl": self._on_pl,
            "pi": self._on_pi,
            "rf": self._on_rf,
            "ph": self._on_ph,
            "fin": self._on_fin,
            "kf": self._on_kf,
            "kfilt": self._on_kfilt,
            "ki": self._on_ki,
            "kcomb": self._on_kcomb,
        }

    # -- submission / driver loop --------------------------------------
    def _submit(self, tag, kind, shard, data, aux=None, scalars=None, mixer=None):
        task = GlobalStepTask(
            kind=kind,
            shard=shard,
            nshards=self.S,
            data=data,
            aux=aux,
            scalars=scalars or {},
            mixer=mixer,
        )
        self._inflight += 1
        future = self.executor.submit_global(task)
        future.add_done_callback(
            lambda f, tag=tag, shard=shard: self._done.put((tag, shard, f))
        )

    def _drain(self) -> None:
        while self._inflight:
            t0 = time.perf_counter()
            tag, shard, future = self._done.get()
            self.wait += time.perf_counter() - t0
            self._inflight -= 1
            result = future.result()
            self.task_times.append(result.wall_time)
            self.walls[_TAG_CATEGORY[tag]] += result.wall_time
            self._handlers[tag](shard, result)

    def _scatter(self, array, axis):
        """Contiguous slabs of a global array (same bytes as ``scatter``)."""
        t0 = time.perf_counter()
        index: list[slice] = [slice(None)] * 3
        slabs = []
        for lo, hi in slab_bounds(self.shape[axis], self.S):
            index[axis] = slice(lo, hi)
            slabs.append(np.ascontiguousarray(array[tuple(index)]))
        self.conv += time.perf_counter() - t0
        return slabs

    def _views(self, array, axis, bounds=None):
        """Read-only slab views (aux inputs; pickled per task if shipped)."""
        bounds = bounds if bounds is not None else slab_bounds(
            array.shape[axis], self.S
        )
        index: list[slice] = [slice(None)] * 3
        views = []
        for lo, hi in bounds:
            index[axis] = slice(lo, hi)
            views.append(array[tuple(index)])
        return views

    def _add(self, buffer, shard, slab):
        """Timed incremental-exchange contribution."""
        t0 = time.perf_counter()
        ready = buffer.add(shard, slab)
        self.conv += time.perf_counter() - t0
        return ready

    # -- graph construction --------------------------------------------
    def run(self):
        S, shape = self.S, self.shape
        # Finish-stage aux inputs: the home-axis slabs of v_in feed the
        # fused mix/residual; the serial (Anderson) route keeps v_in on
        # the driver and mixes after the gather.
        if self.pointwise_mixer is not None or self.spectral:
            self.v_in_home = self._views(self.v_in, self.home_axis)
        else:
            self.v_in_home = [None] * S
        if self.spectral:
            self.filter_slabs = self._views(self.mixer.spectral_filter(), 2)
            self.v_in_z = self._views(self.v_in, 2)
            kshape = shape
            self.ex_k2 = SlabExchangeBuffer(kshape, 0, 2, S)
            self.ex_k3 = SlabExchangeBuffer(kshape, 2, 0, S)
            self.ex_k4 = SlabExchangeBuffer(kshape, 0, 2, S)
            if not self.real:
                self.ex_k1 = SlabExchangeBuffer(kshape, 2, 0, S, dtype=np.float64)
        if self.real:
            nzh = shape[2] // 2 + 1
            half_shape = (shape[0], shape[1], nzh)
            self.nzh = nzh
            self.bounds_h = slab_bounds(nzh, S)
            self.ex_fwd = SlabExchangeBuffer(half_shape, 0, 2, S)
            self.ex_inv = SlabExchangeBuffer(half_shape, 2, 0, S)
            g2h = self.g2[:, :, :nzh]
            self.g2_slabs = self._views(g2h, 2, self.bounds_h)
        else:
            self.ex_fwd = SlabExchangeBuffer(shape, 0, 2, S)
            self.ex_inv1 = SlabExchangeBuffer(shape, 2, 0, S)
            self.ex_inv2 = SlabExchangeBuffer(shape, 0, 2, S)
            self.g2_slabs = self._views(self.g2, 2)

        # Roots of the dataflow: XC on the resident home slabs, and the
        # forward transform on x-slabs of the net density.  Scattering
        # directly on the transform's axis copies the same bytes the
        # synchronous scatter(2) + exchange(0) pair assembles.
        for j, slab in enumerate(self._scatter(self.rho, self.home_axis)):
            self._submit("xc", "xc", j, slab)
        kind = "rfft_planes" if self.real else "fft_planes"
        tag = "rf" if self.real else "pf"
        for i, slab in enumerate(self._scatter(self.net, 0)):
            self._submit(tag, kind, i, slab)
        self._drain()
        return self._gather()

    # -- stage handlers -------------------------------------------------
    def _on_xc(self, j, r):
        self.v_xc_slabs[j] = r.data
        self.eps_slabs[j] = r.extra
        self._maybe_finish(j)

    def _on_pf(self, i, r):
        for j in self._add(self.ex_fwd, i, r.data):
            self._submit(
                "pl", "poisson_lines", j, self.ex_fwd.take(j), aux=self.g2_slabs[j]
            )

    def _on_pl(self, j, r):
        for i in self._add(self.ex_inv1, j, r.data):
            self._submit("pi", "ifft_planes", i, self.ex_inv1.take(i))

    def _on_pi(self, i, r):
        for j in self._add(self.ex_inv2, i, r.data):
            self.spec_ready[j] = self.ex_inv2.take(j)
            self._maybe_finish(j)

    def _on_rf(self, i, r):
        for j in self._add(self.ex_fwd, i, r.data):
            self._submit(
                "ph",
                "poisson_half_lines",
                j,
                self.ex_fwd.take(j),
                aux=self.g2_slabs[j],
            )

    def _on_ph(self, j, r):
        for i in self._add(self.ex_inv, j, r.data):
            self.spec_ready[i] = self.ex_inv.take(i)
            self._maybe_finish(i)

    def _maybe_finish(self, k):
        if self._fin_submitted[k]:
            return
        if self.v_xc_slabs[k] is None or self.spec_ready[k] is None:
            return
        self._fin_submitted[k] = True
        scalars = {}
        if self.spectral:
            scalars["residual"] = 1
        if self.real:
            scalars["irfft_n"] = self.shape[2]
        self._submit(
            "fin",
            "genpot_finish",
            k,
            self.spec_ready[k],
            aux=(self.v_xc_slabs[k], self.v_in_home[k]),
            scalars=scalars,
            mixer=self.pointwise_mixer,
        )
        self.spec_ready[k] = None

    def _on_fin(self, k, r):
        self.v_es_slabs[k] = r.data
        extra = r.extra
        self.v_out_slabs[k] = extra["v_out"]
        if "v_next" in extra:
            self.v_next_slabs[k] = extra["v_next"]
        resid = extra.get("resid")
        if resid is None:
            return
        if self.real:
            # Real path: residual slabs already live on x — the Kerker
            # chain's first transform axis — so they enter it directly.
            self._submit("kf", "fft_planes", k, resid)
        else:
            for i in self._add(self.ex_k1, k, resid):
                self._submit("kf", "fft_planes", i, self.ex_k1.take(i))

    def _on_kf(self, i, r):
        for j in self._add(self.ex_k2, i, r.data):
            self._submit(
                "kfilt",
                "filter_lines",
                j,
                self.ex_k2.take(j),
                aux=self.filter_slabs[j],
            )

    def _on_kfilt(self, j, r):
        for i in self._add(self.ex_k3, j, r.data):
            self._submit("ki", "ifft_planes", i, self.ex_k3.take(i))

    def _on_ki(self, i, r):
        for j in self._add(self.ex_k4, i, r.data):
            self._submit(
                "kcomb",
                "ifft_lines_combine",
                j,
                self.ex_k4.take(j),
                aux=self.v_in_z[j],
                scalars={"alpha": self.mixer.alpha},
            )

    def _on_kcomb(self, j, r):
        self.v_next_slabs[j] = r.data

    # -- reduction -------------------------------------------------------
    def _gather(self):
        t0 = time.perf_counter()
        v_es = np.concatenate(self.v_es_slabs, axis=self.home_axis)
        v_out = np.concatenate(self.v_out_slabs, axis=self.home_axis)
        eps_xc = np.concatenate(self.eps_slabs, axis=self.home_axis)
        if self.pointwise_mixer is not None:
            v_next = np.concatenate(self.v_next_slabs, axis=self.home_axis)
        elif self.spectral:
            v_next = np.concatenate(self.v_next_slabs, axis=2)
        else:
            v_next = None
        self.conv += time.perf_counter() - t0
        return v_es, v_out, eps_xc, v_next


def stream_genpot(
    net: np.ndarray,
    rho: np.ndarray,
    v_in: np.ndarray,
    g2: np.ndarray,
    nshards: int,
    executor,
    mixer=None,
    use_real_fft: bool = False,
    timings=None,
):
    """Run one streamed GENPOT field evaluation (Poisson + XC + mix).

    Parameters
    ----------
    net:
        Net (electron minus ionic) charge density on the global grid.
    rho:
        Clipped, renormalised electron density (XC input).
    v_in:
        This iteration's input potential (mix / residual input).
    g2:
        The grid's ``|G|^2`` array.
    nshards:
        Number of 1D slabs.
    executor:
        Any backend with ``submit_global`` (see
        :func:`streaming_supported`).
    mixer:
        A :class:`repro.pw.mixing.Mixer` or ``None``.  Pointwise mixers
        fuse into the finish stage, spectral mixers stream through the
        filter chain; serial mixers (Anderson) are left to the caller —
        the returned ``v_next`` is then ``None``.
    use_real_fft:
        Route the Poisson chain through the half-spectrum real-FFT
        stages (:func:`repro.pw.fftcache.real_fft_enabled` decides the
        default at the call site).
    timings:
        Optional :class:`repro.core.genpot.GenpotStepTimings` to fill:
        per-category task walls, ``task_times``, ``wait`` /
        ``layout_conversion`` and the ``overlap`` flag.

    Returns
    -------
    tuple
        ``(v_es, v_out, eps_xc, v_next_or_None)`` on the global grid —
        bit-identical to the synchronous sharded path (complex
        transforms) / to the serial real-FFT branch (real transforms).
    """
    t_start = time.perf_counter()
    engine = _StreamEngine(net, rho, v_in, g2, nshards, executor, mixer, use_real_fft)
    v_es, v_out, eps_xc, v_next = engine.run()
    wall = time.perf_counter() - t_start
    if timings is not None:
        timings.overlap = True
        timings.poisson += engine.walls["poisson"]
        timings.xc += engine.walls["xc"]
        timings.mix += engine.walls["mix"]
        timings.task_times.extend(engine.task_times)
        timings.wait += engine.wait
        timings.busy += max(wall - engine.wait, 0.0)
        timings.layout_conversion += engine.conv
    return v_es, v_out, eps_xc, v_next
