"""Amdahl's-law analysis of the strong-scaling data (paper Figure 3).

The paper fits its strong-scaling measurements to

    P_p = P_s * n / (1 + (n - 1) * alpha)

where ``P_p`` is the parallel performance on ``n`` cores, ``P_s`` the
effective single-core performance and ``alpha`` the serial fraction.  The
fit quality reported is an average absolute relative deviation of 0.26%
with serial fractions of 1/362,000 (PEtot_F) and 1/101,000 (LS3DF overall).
This module provides the model function and the least-squares fit used by
the Figure-3 benchmark, plus the *measured* serial fraction extracted from
real per-iteration LS3DF timings: alpha = t_serial / (t_serial + t_par),
where ``t_serial`` is the time spent in the driver's unparallelised code
(the serial Gen_VF / Gen_dens loops — gone when the fused fragment
pipeline is on — and GENPOT) and ``t_par`` the serial-equivalent cost of
the embarrassingly parallel per-fragment work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares


def amdahl_speedup(n: np.ndarray | float, alpha: float) -> np.ndarray | float:
    """Speedup of ``n`` cores for serial fraction ``alpha`` (Amdahl's law).

    Parameters
    ----------
    n:
        Core count(s); scalar or array.
    alpha:
        Serial fraction in [0, 1].

    Returns
    -------
    np.ndarray | float
        ``n / (1 + (n - 1) alpha)``, matching the input's shape (a float
        for scalar input).
    """
    n = np.asarray(n, dtype=float)
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    out = n / (1.0 + (n - 1.0) * alpha)
    return out if out.ndim else float(out)


def amdahl_performance(
    n: np.ndarray | float, single_core_performance: float, alpha: float
) -> np.ndarray | float:
    """Aggregate performance  P_p = P_s * n / (1 + (n-1) alpha)."""
    return single_core_performance * amdahl_speedup(n, alpha)


@dataclass
class AmdahlFit:
    """Result of fitting Amdahl's law to measured performance data.

    Attributes
    ----------
    single_core_performance:
        Fitted P_s (same unit as the input performance values).
    serial_fraction:
        Fitted alpha.
    mean_absolute_relative_deviation:
        The paper's fit-quality metric, mean |P_fit / P_meas - 1|.
    max_absolute_relative_deviation:
        The worst-case deviation.
    """

    single_core_performance: float
    serial_fraction: float
    mean_absolute_relative_deviation: float
    max_absolute_relative_deviation: float

    @property
    def inverse_serial_fraction(self) -> float:
        """1 / alpha — the form the paper quotes (e.g. 1/101,000)."""
        if self.serial_fraction <= 0:
            return float("inf")
        return 1.0 / self.serial_fraction

    def predict(self, cores: np.ndarray | float) -> np.ndarray | float:
        """Fitted aggregate performance at the given core count(s)."""
        return amdahl_performance(cores, self.single_core_performance, self.serial_fraction)


def fit_amdahl(cores: np.ndarray, performance: np.ndarray) -> AmdahlFit:
    """Least-squares fit of Amdahl's law to (cores, performance) data.

    Parameters
    ----------
    cores:
        Core counts of the measurements (>= 2 distinct values required).
    performance:
        Measured aggregate performance (e.g. Tflop/s) at those core counts.

    Returns
    -------
    AmdahlFit
    """
    cores = np.asarray(cores, dtype=float)
    performance = np.asarray(performance, dtype=float)
    if cores.shape != performance.shape or cores.size < 2:
        raise ValueError("need at least two (cores, performance) points")
    if np.any(cores <= 0) or np.any(performance <= 0):
        raise ValueError("cores and performance must be positive")

    # Initial guesses: P_s from the smallest run, alpha tiny.
    p_s0 = performance[np.argmin(cores)] / cores[np.argmin(cores)]
    x0 = np.array([p_s0, 1e-5])

    def residuals(x: np.ndarray) -> np.ndarray:
        p_s, alpha = x
        alpha = abs(alpha)
        model = amdahl_performance(cores, p_s, alpha)
        return (model - performance) / performance

    sol = least_squares(residuals, x0, method="lm", max_nfev=10_000)
    p_s, alpha = float(sol.x[0]), float(abs(sol.x[1]))
    rel_dev = np.abs(amdahl_performance(cores, p_s, alpha) / performance - 1.0)
    return AmdahlFit(
        single_core_performance=p_s,
        serial_fraction=alpha,
        mean_absolute_relative_deviation=float(np.mean(rel_dev)),
        max_absolute_relative_deviation=float(np.max(rel_dev)),
    )


# ---------------------------------------------------------------------------
# Measured serial fraction (from real per-iteration LS3DF timings)


@dataclass
class SerialFractionEstimate:
    """Serial fraction measured from one LS3DF iteration's timings.

    Attributes
    ----------
    serial_fraction:
        alpha = serial_time / (serial_time + parallel_time).
    serial_time:
        Wall-clock seconds of the driver's unparallelised work in the
        iteration: the Gen_VF / Gen_dens driver loops on the unfused
        path (task building and the tree-reduce once the fused pipeline
        is on), GENPOT (or only its driver residue when the global step
        is sharded) and checkpoint I/O when enabled.
    parallel_time:
        Serial-equivalent seconds of the executor-distributable work
        (summed per-fragment wall times; with the fused pipeline this
        includes the in-worker restrict and patch steps, and with
        ``genpot_shards`` the per-slab global-step task times).
    """

    serial_fraction: float
    serial_time: float
    parallel_time: float

    @property
    def inverse_serial_fraction(self) -> float:
        """1 / alpha — the form the paper quotes (e.g. 1/101,000)."""
        if self.serial_fraction <= 0:
            return float("inf")
        return 1.0 / self.serial_fraction

    @property
    def max_speedup(self) -> float:
        """Amdahl's limit for this alpha: lim_{n->inf} speedup = 1/alpha."""
        return self.inverse_serial_fraction

    def speedup_at(self, cores: np.ndarray | float) -> np.ndarray | float:
        """Amdahl speedup this measured alpha predicts at ``cores``."""
        return amdahl_speedup(cores, self.serial_fraction)


def measured_serial_fraction(
    serial_time: float, parallel_time: float
) -> SerialFractionEstimate:
    """Serial fraction from measured serial and parallelisable times.

    Parameters
    ----------
    serial_time:
        Driver-side unparallelised seconds of one iteration
        (``IterationTimings.serial_time``: Gen_VF/Gen_dens residues, the
        serial GENPOT share and checkpoint I/O).
    parallel_time:
        Serial-equivalent seconds of the executor-distributable work
        (``IterationTimings.parallel_cpu``).

    Returns
    -------
    SerialFractionEstimate
        alpha = serial / (serial + parallel) with both inputs recorded.
    """
    if serial_time < 0 or parallel_time < 0:
        raise ValueError("times must be non-negative")
    total = serial_time + parallel_time
    alpha = serial_time / total if total > 0 else 0.0
    return SerialFractionEstimate(
        serial_fraction=alpha,
        serial_time=float(serial_time),
        parallel_time=float(parallel_time),
    )


def serial_fraction_history(timings: Sequence) -> list[SerialFractionEstimate]:
    """Measured serial fraction of every iteration of an LS3DF run.

    Parameters
    ----------
    timings:
        A sequence of objects with ``serial_time`` and ``parallel_cpu``
        (or legacy ``petot_f_cpu``) attributes —
        :class:`repro.core.scf.IterationTimings` as recorded in
        ``LS3DFResult.timings`` (duck-typed here to keep this module
        free of core imports).  ``parallel_cpu`` includes the per-slab
        GENPOT task time when the global step is sharded, so the
        measured alpha reflects the work actually left on the driver.

    Returns
    -------
    list[SerialFractionEstimate]
        One estimate per iteration, in order.
    """
    return [
        measured_serial_fraction(
            t.serial_time,
            t.parallel_cpu if hasattr(t, "parallel_cpu") else t.petot_f_cpu,
        )
        for t in timings
    ]


def measured_intra_group_efficiency(
    task_cpu: float, wall_time: float, nslices: int
) -> float:
    """Measured intra-group efficiency of band-sliced fragment solves.

    The paper's two-level hierarchy gives each fragment group Np cores;
    the efficiency of one fragment solve on those Np cores is what
    :meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`
    *models*.  This is the measured counterpart:

        eff = task_cpu / (nslices * wall_time)

    where ``task_cpu`` is the summed in-worker time of the sliced band
    tasks (the work the group's Np workers carried) and ``wall_time`` the
    grouped solve's wall clock — 1.0 means the group's workers were busy
    with sliced work the whole time; the gap is the group root's dense
    cross-band algebra plus dispatch overhead, the local analogue of the
    group-wide reductions that erode the paper's efficiency at Np = 80.

    Parameters
    ----------
    task_cpu:
        Summed in-worker band-task seconds
        (:attr:`repro.core.scf.IterationTimings.band_cpu` or
        :attr:`repro.parallel.bands.BandGroupStats.task_cpu`).
    wall_time:
        Wall-clock seconds of the grouped solve(s).
    nslices:
        Band-slice count (the local Np).

    Returns
    -------
    float
        The measured efficiency (0.0 for degenerate inputs).
    """
    if task_cpu < 0:
        raise ValueError("task_cpu must be non-negative")
    if wall_time <= 0 or nslices <= 0:
        return 0.0
    return task_cpu / (nslices * wall_time)


def intra_group_efficiency_history(timings: Sequence) -> list[float]:
    """Measured intra-group efficiency of every band-sliced iteration.

    Parameters
    ----------
    timings:
        A sequence of objects with ``band_cpu`` / ``petot_f`` /
        ``band_slices`` attributes —
        :class:`repro.core.scf.IterationTimings` as recorded in
        ``LS3DFResult.timings`` (duck-typed, like
        :func:`serial_fraction_history`).  Iterations that did not run
        band-sliced contribute 0.0.

    Returns
    -------
    list[float]
        One measured efficiency per iteration, in order — printable next
        to the modelled value a grouped
        :class:`repro.parallel.scheduler.ScheduleSummary` carries.
    """
    return [
        measured_intra_group_efficiency(
            t.band_cpu, t.petot_f, t.band_slices
        )
        if getattr(t, "band_sliced", False)
        else 0.0
        for t in timings
    ]


def sharded_genpot_estimate(
    estimate: SerialFractionEstimate,
    genpot_time: float,
    conversion_time: float = 0.0,
) -> SerialFractionEstimate:
    """Predicted serial fraction after sharding the GENPOT global step.

    The paper's dual-layout design moves the Poisson/XC/mixing work of
    the global step onto the 1D slab decomposition (parallel bucket) but
    charges the fragment<->slab layout conversion to what remains serial:

        alpha' = (t_serial - t_genpot + t_conv) / (t_total + t_conv)

    Parameters
    ----------
    estimate:
        Measured serial fraction with the serial global step (``genpot``
        included in its ``serial_time``).
    genpot_time:
        The GENPOT wall time contained in ``estimate.serial_time`` that
        sharding moves to the parallel bucket.
    conversion_time:
        Layout-conversion cost charged back to the serial bucket (see
        :meth:`repro.parallel.comm.CommunicationModel.layout_conversion_time`).
    """
    if genpot_time < 0 or conversion_time < 0:
        raise ValueError("times must be non-negative")
    if genpot_time > estimate.serial_time:
        raise ValueError("genpot_time exceeds the measured serial time")
    return measured_serial_fraction(
        estimate.serial_time - genpot_time + conversion_time,
        estimate.parallel_time + genpot_time,
    )
