"""Amdahl's-law analysis of the strong-scaling data (paper Figure 3).

The paper fits its strong-scaling measurements to

    P_p = P_s * n / (1 + (n - 1) * alpha)

where ``P_p`` is the parallel performance on ``n`` cores, ``P_s`` the
effective single-core performance and ``alpha`` the serial fraction.  The
fit quality reported is an average absolute relative deviation of 0.26%
with serial fractions of 1/362,000 (PEtot_F) and 1/101,000 (LS3DF overall).
This module provides the model function and the least-squares fit used by
the Figure-3 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares


def amdahl_speedup(n: np.ndarray | float, alpha: float) -> np.ndarray | float:
    """Speedup of ``n`` cores for serial fraction ``alpha`` (Amdahl's law)."""
    n = np.asarray(n, dtype=float)
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    out = n / (1.0 + (n - 1.0) * alpha)
    return out if out.ndim else float(out)


def amdahl_performance(
    n: np.ndarray | float, single_core_performance: float, alpha: float
) -> np.ndarray | float:
    """Aggregate performance  P_p = P_s * n / (1 + (n-1) alpha)."""
    return single_core_performance * amdahl_speedup(n, alpha)


@dataclass
class AmdahlFit:
    """Result of fitting Amdahl's law to measured performance data.

    Attributes
    ----------
    single_core_performance:
        Fitted P_s (same unit as the input performance values).
    serial_fraction:
        Fitted alpha.
    mean_absolute_relative_deviation:
        The paper's fit-quality metric, mean |P_fit / P_meas - 1|.
    max_absolute_relative_deviation:
        The worst-case deviation.
    """

    single_core_performance: float
    serial_fraction: float
    mean_absolute_relative_deviation: float
    max_absolute_relative_deviation: float

    @property
    def inverse_serial_fraction(self) -> float:
        """1 / alpha — the form the paper quotes (e.g. 1/101,000)."""
        if self.serial_fraction <= 0:
            return float("inf")
        return 1.0 / self.serial_fraction

    def predict(self, cores: np.ndarray | float) -> np.ndarray | float:
        return amdahl_performance(cores, self.single_core_performance, self.serial_fraction)


def fit_amdahl(cores: np.ndarray, performance: np.ndarray) -> AmdahlFit:
    """Least-squares fit of Amdahl's law to (cores, performance) data.

    Parameters
    ----------
    cores:
        Core counts of the measurements (>= 2 distinct values required).
    performance:
        Measured aggregate performance (e.g. Tflop/s) at those core counts.

    Returns
    -------
    AmdahlFit
    """
    cores = np.asarray(cores, dtype=float)
    performance = np.asarray(performance, dtype=float)
    if cores.shape != performance.shape or cores.size < 2:
        raise ValueError("need at least two (cores, performance) points")
    if np.any(cores <= 0) or np.any(performance <= 0):
        raise ValueError("cores and performance must be positive")

    # Initial guesses: P_s from the smallest run, alpha tiny.
    p_s0 = performance[np.argmin(cores)] / cores[np.argmin(cores)]
    x0 = np.array([p_s0, 1e-5])

    def residuals(x: np.ndarray) -> np.ndarray:
        p_s, alpha = x
        alpha = abs(alpha)
        model = amdahl_performance(cores, p_s, alpha)
        return (model - performance) / performance

    sol = least_squares(residuals, x0, method="lm", max_nfev=10_000)
    p_s, alpha = float(sol.x[0]), float(abs(sol.x[1]))
    rel_dev = np.abs(amdahl_performance(cores, p_s, alpha) / performance - 1.0)
    return AmdahlFit(
        single_core_performance=p_s,
        serial_fraction=alpha,
        mean_absolute_relative_deviation=float(np.mean(rel_dev)),
        max_absolute_relative_deviation=float(np.max(rel_dev)),
    )
