"""Processor-group decomposition for the fragment solves.

LS3DF assigns each fragment to a *group* of ``Np`` cores; the ``Ng``
groups work on disjoint sets of fragments completely independently (no
inter-group communication inside PEtot_F), which is the source of the
method's near-perfect parallel scaling.  Within a group, PEtot_F
parallelises over the plane-wave (q-space) index, whose efficiency drops
once Np exceeds the amount of exploitable data parallelism — the reason
the paper settles on Np = 40 for the Cray systems and observes reduced
efficiency at Np = 80 (Jaguar, third test case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GroupDecomposition:
    """A decomposition of ``total_cores`` into ``Ng`` groups of ``Np`` cores.

    Attributes
    ----------
    total_cores:
        Number of cores devoted to the fragment solves.
    cores_per_group:
        Np, the number of cores per group.
    """

    total_cores: int
    cores_per_group: int

    def __post_init__(self) -> None:
        if self.total_cores <= 0 or self.cores_per_group <= 0:
            raise ValueError("core counts must be positive")
        if self.total_cores % self.cores_per_group != 0:
            raise ValueError(
                f"{self.total_cores} cores do not divide into groups of "
                f"{self.cores_per_group}"
            )

    @property
    def ngroups(self) -> int:
        """Ng, the number of independent fragment groups."""
        return self.total_cores // self.cores_per_group

    def group_of_rank(self, rank: int) -> int:
        """Group index owning a given MPI rank (block distribution)."""
        if not 0 <= rank < self.total_cores:
            raise ValueError("rank out of range")
        return rank // self.cores_per_group

    def ranks_of_group(self, group: int) -> range:
        """Ranks belonging to a group."""
        if not 0 <= group < self.ngroups:
            raise ValueError("group out of range")
        start = group * self.cores_per_group
        return range(start, start + self.cores_per_group)

    # ------------------------------------------------------------------
    def intra_group_efficiency(
        self,
        core_peak_gflops: float,
        saturation_gflops: float = 1600.0,
    ) -> float:
        """Parallel efficiency of one fragment solve on Np cores.

        PEtot_F distributes the plane-wave coefficients over the Np cores
        of the group; every conjugate-gradient step performs group-wide
        reductions (dot products, subspace matrices) whose relative cost
        grows with the group's aggregate compute rate ``Np * peak``.  The
        empirical form

            eff(Np) = 1 / (1 + (Np * peak / saturation)^2)

        reproduces the behaviour the paper reports: essentially flat
        efficiency for Np <= 40 on the Cray systems, a clear drop at
        Np = 80 (Jaguar third test case), and only a mild penalty at
        Np = 64 on the slower BlueGene/P cores.

        Returns a value in (0, 1].
        """
        if core_peak_gflops <= 0:
            raise ValueError("core_peak_gflops must be positive")
        x = self.cores_per_group * core_peak_gflops / saturation_gflops
        return float(np.clip(1.0 / (1.0 + x * x), 0.05, 1.0))


def partition_worker_counts(total_workers: int, ngroups: int) -> list[int]:
    """Worker count of each group when ``total_workers`` split ``ngroups`` ways.

    The concurrent band-group path gives every group its own worker
    sub-pool (``executor.partition``); this is the single home of the
    split arithmetic: an even block distribution with the remainder
    spread over the leading groups, and never less than one worker per
    group (a group with one worker still runs — its slices just
    serialise, exactly like a one-core MPI group).

    Returns
    -------
    list[int]
        ``ngroups`` positive worker counts summing to at least
        ``max(total_workers, ngroups)``.
    """
    if total_workers < 1 or ngroups < 1:
        raise ValueError("total_workers and ngroups must be positive")
    base, extra = divmod(total_workers, ngroups)
    return [max(1, base + (1 if g < extra else 0)) for g in range(ngroups)]


def choose_group_size(
    core_peak_gflops: float,
    nfragments: int,
    total_cores: int,
    candidates: tuple[int, ...] = (10, 20, 40, 64, 80, 128),
    min_efficiency: float = 0.85,
) -> int:
    """Pick the largest Np whose intra-group efficiency stays acceptable.

    Larger groups shorten each fragment solve (helping strong scaling and
    load balance when there are few fragments per group), but the intra-
    group efficiency falls with Np; this helper mirrors the paper's
    empirical determination that Np = 40 is the sweet spot on the Cray XT4
    systems.
    """
    if total_cores <= 0 or nfragments <= 0:
        raise ValueError("total_cores and nfragments must be positive")
    best_np = None
    for np_cores in sorted(candidates):
        if total_cores % np_cores != 0:
            continue
        decomp = GroupDecomposition(total_cores=total_cores, cores_per_group=np_cores)
        eff = decomp.intra_group_efficiency(core_peak_gflops)
        if eff >= min_efficiency:
            best_np = np_cores
        elif best_np is not None:
            break
    if best_np is None:
        # Fall back to the smallest candidate that divides the core count.
        for np_cores in sorted(candidates):
            if total_cores % np_cores == 0:
                return np_cores
        return 1
    return best_np
