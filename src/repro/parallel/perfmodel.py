"""Execution model reproducing the paper's performance evaluation.

:class:`LS3DFPerformanceModel` combines the analytic operation counts
(:mod:`repro.parallel.flops`), the group decomposition
(:mod:`repro.parallel.groups`), the LPT fragment schedule
(:mod:`repro.parallel.scheduler`) and the communication model
(:mod:`repro.parallel.comm`) into per-iteration wall-clock times, Tflop/s
figures and %-of-peak numbers for any (machine, system size, core count,
Np) combination — the quantities of Table I and Figures 3-5.

:class:`DirectDFTCostModel` models a conventional O(N^3) plane-wave code
(PARATEC / PEtot / Qbox class) for the Section-VI comparison: the ~600-atom
crossover and the ~400x speedup at 13,824 atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.comm import CommScheme, CommunicationModel
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.groups import GroupDecomposition
from repro.parallel.machine import Machine
from repro.parallel.scheduler import FragmentScheduler


@dataclass
class PerformancePoint:
    """One row of the (modelled) Table I.

    Attributes
    ----------
    machine:
        Machine name.
    system_dims:
        Supercell dimensions ``(m1, m2, m3)``.
    natoms:
        Number of atoms.
    cores:
        Total cores used.
    np_per_group:
        Np (cores per fragment group).
    time_per_iteration:
        Modelled wall-clock seconds of one LS3DF outer iteration.
    tflops:
        Sustained Tflop/s (useful flops / wall-clock time).
    percent_peak:
        Percentage of the theoretical peak of the cores used.
    breakdown:
        Per-subroutine seconds {Gen_VF, PEtot_F, Gen_dens, GENPOT}.
    """

    machine: str
    system_dims: tuple[int, int, int]
    natoms: int
    cores: int
    np_per_group: int
    time_per_iteration: float
    tflops: float
    percent_peak: float
    breakdown: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Table-1-style row (machine, system, cores, Tflop/s, %-peak)."""
        return {
            "machine": self.machine,
            "system": "x".join(str(d) for d in self.system_dims),
            "atoms": self.natoms,
            "cores": self.cores,
            "Np": self.np_per_group,
            "Tflop/s": round(self.tflops, 2),
            "% peak": round(self.percent_peak, 1),
            "t_iter [s]": round(self.time_per_iteration, 2),
        }


class LS3DFPerformanceModel:
    """Performance model of LS3DF on a given machine.

    Parameters
    ----------
    machine:
        Machine description.
    workload:
        Physical problem (supercell size, cutoff, grid).
    comm_scheme:
        Which generation of the Gen_VF / Gen_dens communication to model.
    genpot_cores_cap:
        GENPOT's FFT-based Poisson solve does not scale to the full
        machine; it is modelled as running on at most this many cores
        (the paper keeps its absolute cost around a second).
    """

    def __init__(
        self,
        machine: Machine,
        workload: LS3DFWorkload,
        comm_scheme: CommScheme = CommScheme.POINT_TO_POINT,
        genpot_cores_cap: int = 1024,
        genpot_efficiency: float = 0.05,
        straggler_coefficient: float = 0.006,
    ) -> None:
        self.machine = machine
        self.workload = workload
        self.comm = CommunicationModel(machine, comm_scheme)
        self.scheduler = FragmentScheduler(workload)
        self.genpot_cores_cap = int(genpot_cores_cap)
        self.genpot_efficiency = float(genpot_efficiency)
        self.straggler_coefficient = float(straggler_coefficient)

    # ------------------------------------------------------------------
    def _fragment_costs(self) -> np.ndarray:
        costs: list[float] = []
        for work, count, _ in self.workload.all_fragment_work():
            costs.extend([work.flops_per_iteration] * count)
        return np.asarray(costs)

    def petot_f_time(self, cores: int, np_per_group: int) -> float:
        """Wall-clock seconds of the PEtot_F step (the dominant cost)."""
        decomp = GroupDecomposition(cores, np_per_group)
        ngroups = decomp.ngroups
        costs = self._fragment_costs()
        schedule = self.scheduler.schedule_by_costs(costs, ngroups)
        # Per-group sustained rate: Np cores at the kernel efficiency times
        # the intra-group parallel efficiency for a representative fragment.
        rep = self.workload.fragment_work((2, 2, 2))
        small = self.workload.fragment_work((1, 1, 1))
        intra = decomp.intra_group_efficiency(self.machine.core_peak_gflops)
        # Mix of large/small fragment kernel efficiencies weighted by flops.
        w_small = small.flops_per_iteration
        w_large = rep.flops_per_iteration
        eff = (
            self.machine.kernel_efficiency * w_large
            + self.machine.small_fragment_efficiency * w_small
        ) / (w_large + w_small)
        rate = np_per_group * self.machine.core_peak_gflops * 1e9 * eff * intra
        # Straggler / OS-jitter penalty: with more independent groups, the
        # slowest group increasingly lags the mean (the residual efficiency
        # droop the paper observes at very high concurrency even when the
        # communication steps are already negligible).
        straggler = 1.0 + self.straggler_coefficient * np.sqrt(ngroups)
        return float(schedule.makespan / rate * straggler)

    def gen_vf_time(self, cores: int) -> float:
        """Modelled Gen_VF seconds: shipping the restricted potentials."""
        return self.comm.transfer_time(self.workload.gen_vf_data_bytes(), cores)

    def gen_dens_time(self, cores: int) -> float:
        """Modelled Gen_dens seconds: density transfer plus the reduction."""
        # Gen_dens additionally reduces the patched density across groups.
        base = self.comm.transfer_time(self.workload.gen_dens_data_bytes(), cores)
        reduction = self.comm.allreduce_time(
            8.0 * self.workload.global_grid_points / max(cores, 1), cores
        )
        return base + reduction

    def genpot_time(self, cores: int) -> float:
        """Modelled GENPOT seconds: capped-core compute + allreduce + overhead."""
        active = min(cores, self.genpot_cores_cap)
        rate = active * self.machine.core_peak_gflops * 1e9 * self.genpot_efficiency
        compute = self.workload.genpot_flops() / rate
        broadcast = self.comm.allreduce_time(
            8.0 * self.workload.global_grid_points / max(active, 1), cores
        )
        # Software / data-marshalling overhead of assembling the global
        # density and redistributing the potential (scales with grid size).
        software = 2.5e-8 * self.workload.global_grid_points
        return compute + broadcast + software

    # ------------------------------------------------------------------
    def iteration_breakdown(self, cores: int, np_per_group: int) -> dict[str, float]:
        """Per-subroutine seconds of one LS3DF outer iteration."""
        if cores % np_per_group != 0:
            raise ValueError("cores must be divisible by Np")
        return {
            "Gen_VF": self.gen_vf_time(cores),
            "PEtot_F": self.petot_f_time(cores, np_per_group),
            "Gen_dens": self.gen_dens_time(cores),
            "GENPOT": self.genpot_time(cores),
        }

    def evaluate(self, cores: int, np_per_group: int) -> PerformancePoint:
        """Model one Table-I row."""
        breakdown = self.iteration_breakdown(cores, np_per_group)
        t_total = sum(breakdown.values())
        useful = self.workload.total_flops_per_iteration()
        tflops = useful / t_total / 1e12
        percent = 100.0 * tflops / self.machine.peak_tflops(cores)
        return PerformancePoint(
            machine=self.machine.name,
            system_dims=self.workload.supercell_dims,
            natoms=self.workload.natoms,
            cores=cores,
            np_per_group=np_per_group,
            time_per_iteration=t_total,
            tflops=tflops,
            percent_peak=percent,
            breakdown=breakdown,
        )

    def strong_scaling(
        self, core_counts: list[int], np_per_group: int
    ) -> list[PerformancePoint]:
        """Fixed problem size, increasing core counts (paper Figure 3)."""
        return [self.evaluate(c, np_per_group) for c in core_counts]

    def petot_f_only_tflops(self, cores: int, np_per_group: int) -> float:
        """Sustained Tflop/s counting only PEtot_F (the paper's second curve)."""
        t = self.petot_f_time(cores, np_per_group)
        return self.workload.petot_f_flops() / t / 1e12


class DirectDFTCostModel:
    """Cost model of a conventional O(N^3) plane-wave DFT code.

    Calibrated to the paper's Section VI data: PARATEC takes ~340 s per SCF
    iteration for the 512-atom (4x4x4) ZnTeO cell on 320 cores, the O(N^3)
    regime being already reached at that size, with (generously) perfect
    parallel scaling assumed up to any core count.

    Parameters
    ----------
    reference_seconds, reference_atoms, reference_cores:
        The calibration point (defaults to the PARATEC numbers above).
    exponent:
        Scaling exponent (3.0 for the cubic regime).
    """

    def __init__(
        self,
        reference_seconds: float = 340.0,
        reference_atoms: int = 512,
        reference_cores: int = 320,
        exponent: float = 3.0,
    ) -> None:
        if min(reference_seconds, reference_atoms, reference_cores) <= 0:
            raise ValueError("calibration values must be positive")
        self.reference_seconds = float(reference_seconds)
        self.reference_atoms = int(reference_atoms)
        self.reference_cores = int(reference_cores)
        self.exponent = float(exponent)

    def time_per_iteration(self, natoms: int, cores: int) -> float:
        """Seconds per SCF iteration for ``natoms`` atoms on ``cores`` cores."""
        if natoms <= 0 or cores <= 0:
            raise ValueError("natoms and cores must be positive")
        scale = (natoms / self.reference_atoms) ** self.exponent
        core_scale = self.reference_cores / cores
        return self.reference_seconds * scale * core_scale

    def time_to_converge(self, natoms: int, cores: int, scf_iterations: int = 60) -> float:
        """Seconds for a fully converged calculation (default 60 iterations)."""
        return self.time_per_iteration(natoms, cores) * scf_iterations

    def speedup_of_ls3df(
        self,
        ls3df_model: LS3DFPerformanceModel,
        cores: int,
        np_per_group: int,
    ) -> float:
        """How many times faster LS3DF is than the direct code (same cores)."""
        natoms = ls3df_model.workload.natoms
        t_direct = self.time_per_iteration(natoms, cores)
        t_ls3df = sum(ls3df_model.iteration_breakdown(cores, np_per_group).values())
        return t_direct / t_ls3df

    def crossover_atoms(
        self,
        machine: Machine,
        cores: int,
        np_per_group: int,
        workload_factory=None,
        atom_range: tuple[int, int] = (64, 4096),
    ) -> float:
        """System size (atoms) where LS3DF becomes faster than the direct code.

        The paper deduces ~600 atoms.  The crossover is found by scanning
        cubic supercells between the given bounds and interpolating the
        sign change of ``t_direct - t_ls3df``.
        """
        if workload_factory is None:
            def workload_factory(m: int) -> LS3DFWorkload:
                return LS3DFWorkload((m, m, m))

        sizes = []
        deltas = []
        m = 1
        while True:
            wl = workload_factory(m)
            if wl.natoms > atom_range[1]:
                break
            if wl.natoms >= atom_range[0] or m >= 2:
                model = LS3DFPerformanceModel(machine, wl)
                np_eff = min(np_per_group, cores)
                cores_eff = max(np_eff, (cores // np_eff) * np_eff)
                t_ls3df = sum(
                    model.iteration_breakdown(cores_eff, np_eff).values()
                )
                t_direct = self.time_per_iteration(wl.natoms, cores_eff)
                sizes.append(wl.natoms)
                deltas.append(t_direct - t_ls3df)
            m += 1
        sizes_arr = np.asarray(sizes, dtype=float)
        deltas_arr = np.asarray(deltas, dtype=float)
        sign_change = np.nonzero(np.diff(np.sign(deltas_arr)) > 0)[0]
        if len(sign_change) == 0:
            # No crossover in range: return the boundary closest to one.
            return float(sizes_arr[np.argmin(np.abs(deltas_arr))])
        i = int(sign_change[0])
        x0, x1 = sizes_arr[i], sizes_arr[i + 1]
        y0, y1 = deltas_arr[i], deltas_arr[i + 1]
        return float(x0 - y0 * (x1 - x0) / (y1 - y0))
