"""Deterministic fault injection for the executor failure model.

The remote backend's robustness claims — every failure mode ends in a
bit-identical result or a loud typed error, never a hang or silent
corruption — are only worth something if the failures are reproducible.
This module provides seeded, deterministic fault injectors at both ends
of the wire:

* :class:`FaultPlan` + :class:`FlakyWorker` — server-side faults: a
  :class:`repro.parallel.remote.WorkerServer` that kills itself, drops
  the connection, or delays its reply at configured task indices.
* :class:`FlakyExecutor` — driver-side faults: wraps any local executor
  (including its band-group ``partition`` children) and raises
  :class:`repro.parallel.remote.WorkerDiedError` or sleeps at
  configured batch indices, so SCF-level healing (mid-iteration partial
  replay, group restarts) can be tested without sockets.

Both are plain counters over served work — no wall-clock or RNG state
leaks into the injected schedule, so a failing test replays exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.parallel.remote import (
    WorkerDiedError,
    WorkerServer,
    _DropConnection,
    _KillWorker,
)

__all__ = ["FaultPlan", "FlakyExecutor", "FlakyWorker"]


@dataclass
class FaultPlan:
    """What goes wrong, and exactly when (by served-task index).

    Attributes
    ----------
    kill_at:
        Task indices at which the worker dies: the whole server stops
        and the connection closes without a reply (the driver sees a
        dead worker and resubmits elsewhere).
    drop_at:
        Task indices at which only the connection drops; the server
        survives, the driver sees a mid-task connection loss.
    delay_at:
        Task index -> seconds to sleep before replying (drive it past
        the driver's ``request_timeout`` to simulate a hung worker).

    Indices count tasks *served by this worker* (0-based), not batch
    positions — with several workers racing over one queue, pin the
    faulty worker's schedule, not the global one, for determinism.
    """

    kill_at: Sequence[int] = ()
    drop_at: Sequence[int] = ()
    delay_at: Mapping[int, float] = field(default_factory=dict)

    def apply(self, index: int) -> None:
        """Inject the configured fault for served-task ``index`` (if any)."""
        delay = self.delay_at.get(index)
        if delay:
            time.sleep(delay)
        if index in self.kill_at:
            raise _KillWorker()
        if index in self.drop_at:
            raise _DropConnection()


class FlakyWorker(WorkerServer):
    """A :class:`WorkerServer` that fails on schedule.

    Parameters
    ----------
    plan:
        The :class:`FaultPlan` consulted before every task reply.
    host, port:
        Passed through to :class:`WorkerServer`.
    """

    def __init__(self, plan: FaultPlan, host: str = "127.0.0.1", port: int = 0):
        super().__init__(host=host, port=port, fault_plan=plan)


class FlakyExecutor:
    """Wrap a local executor with deterministic driver-side failures.

    Counts the batches flowing through each ``run*`` protocol (one
    counter across all four) and, at the configured batch indices,
    raises ``error_type`` *instead of* dispatching — the sharpest model
    of a worker group dying between submissions.  ``delay_at`` sleeps
    before dispatching instead.  Everything else (counters, install
    channel, worker count) delegates to the wrapped executor, and
    :meth:`partition` wraps the inner executor's children so one band
    group can be made flaky while its siblings stay healthy.

    Parameters
    ----------
    inner:
        Any executor from :mod:`repro.parallel.executor` (or a
        partition child of one).
    kill_at:
        Batch indices (0-based, per this wrapper) that raise.
    delay_at:
        Batch index -> seconds to sleep before dispatching.
    kill_group:
        When set, :meth:`partition` gives the fault schedule only to
        the child with this group index; other children run clean.
        When ``None`` (default), every child inherits the full plan.
    error_type:
        Exception class raised at ``kill_at`` indices.
    """

    def __init__(
        self,
        inner,
        kill_at: Sequence[int] = (),
        delay_at: Mapping[int, float] | None = None,
        kill_group: int | None = None,
        error_type=WorkerDiedError,
    ) -> None:
        self.inner = inner
        self.kill_at = tuple(int(i) for i in kill_at)
        self.delay_at = dict(delay_at or {})
        self.kill_group = kill_group
        self.error_type = error_type
        self.batches = 0
        self._lock = threading.Lock()
        self._partitions: dict[int, list] = {}

    # -- fault core ----------------------------------------------------
    def _tick(self) -> None:
        with self._lock:
            index = self.batches
            self.batches += 1
        delay = self.delay_at.get(index)
        if delay:
            time.sleep(delay)
        if index in self.kill_at:
            raise self.error_type(
                f"injected fault: batch {index} of {type(self.inner).__name__}"
            )

    # -- executor protocol ---------------------------------------------
    def run(self, tasks):
        """Dispatch a solve batch unless this batch index is scheduled to fail."""
        self._tick()
        return self.inner.run(tasks)

    def run_pipeline(self, tasks):
        """Dispatch a pipeline batch unless scheduled to fail."""
        self._tick()
        return self.inner.run_pipeline(tasks)

    def run_global(self, tasks):
        """Dispatch a global-step batch unless scheduled to fail."""
        self._tick()
        return self.inner.run_global(tasks)

    def run_bands(self, tasks):
        """Dispatch a band-slice batch unless scheduled to fail."""
        self._tick()
        return self.inner.run_bands(tasks)

    def partition(self, ngroups: int):
        """Partition the inner executor, wrapping the chosen children.

        With ``kill_group`` set only that child gets the fault plan.
        Wrappers are cached per ``ngroups`` (like the inner partition),
        so their batch counters — and hence the fault schedule — span
        the whole run, not one iteration.
        """
        cached = self._partitions.get(ngroups)
        if cached is not None:
            return cached
        children = self.inner.partition(ngroups)
        wrapped = []
        for g, child in enumerate(children):
            if self.kill_group is None or g == self.kill_group:
                wrapped.append(
                    FlakyExecutor(
                        child,
                        kill_at=self.kill_at,
                        delay_at=self.delay_at,
                        error_type=self.error_type,
                    )
                )
            else:
                wrapped.append(child)
        self._partitions[ngroups] = wrapped
        return wrapped

    def __getattr__(self, name):
        # Counters, install_state, n_workers, close, ... all delegate.
        return getattr(self.inner, name)
