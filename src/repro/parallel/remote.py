"""Socket-backed remote execution: the multi-node fragment backend.

The paper runs LS3DF across thousands of cores by giving every fragment
group its own set of MPI ranks; the driver scatters picklable work units
and gathers results.  This module is the repo's network equivalent: a
tiny length-prefixed-frame protocol over TCP, a ``repro-worker`` daemon
(:class:`WorkerServer` / :func:`worker_main`) that executes the exact
same kernels as the local backends, and a driver-side
:class:`RemoteExecutor` pool implementing the full executor protocol
family — ``run`` / ``run_pipeline`` / ``run_global`` / ``run_bands``
plus the ``install_state`` broadcast channel with fingerprint-keyed
per-worker dedup.  Because workers invoke the same pure kernels on the
same task bytes, remote results are bit-identical to the serial
backend's.

Wire protocol (version 1)
-------------------------
Every message is one *frame*: a 4-byte magic ``b"RPW1"``, an 8-byte
big-endian unsigned payload length, then a pickled python object.  The
driver opens one connection per worker and speaks a strict
request/response alternation; requests are dicts with an ``op`` field:

``hello``
    Handshake; the worker answers with its pid and protocol version (a
    version mismatch is a loud :class:`RemoteProtocolError`).
``ping``
    Heartbeat; answered immediately (used to detect dead workers).
``install``
    ``{key, payload}`` — install a fingerprint-keyed potential in the
    worker's process-level store
    (:func:`repro.core.fragment_task.install_potential`).  The driver
    tracks which keys each worker holds and never re-sends one — the
    install-dedup saving measured in ``benchmarks``.
``task``
    ``{kind, task}`` where ``kind`` selects the kernel (``solve`` /
    ``pipeline`` / ``global`` / ``bands``).  The worker answers
    ``{ok: True, result}`` or ``{ok: False, error_type, error, key}``
    (``key`` set for a missed potential install, which the driver heals
    by resubmitting with the payload attached).
``shutdown``
    Stop the worker after replying.

Failure model (the degradation ladder)
--------------------------------------
Every socket wait is bounded by a configurable timeout, so no failure
mode can hang the driver.  A worker that times out, drops the
connection or dies mid-task is marked dead and its in-flight task is
resubmitted to the surviving workers (results are bit-identical because
the kernels are pure).  When *every* worker is gone the executor
degrades gracefully to a local fallback executor — or raises the typed
:class:`NoRemoteWorkersError` when constructed with ``fallback=None``.
A genuine kernel exception on a worker is *not* retried: it is raised
as a :class:`RemoteTaskError` (the task would fail anywhere).

Security: frames are pickles — run workers only on hosts and networks
you trust, exactly like ``multiprocessing`` or MPI.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import struct
import sys
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.fragment_task import (
    ExecutionReport,
    PotentialNotInstalledError,
    install_potential,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.parallel.bands import run_band_block_task
from repro.parallel.distributed import run_global_step_task
from repro.parallel.scheduler import FragmentScheduler

__all__ = [
    "PROTOCOL_VERSION",
    "LocalWorkerPool",
    "NoRemoteWorkersError",
    "RemoteExecutor",
    "RemoteExecutorConfig",
    "RemoteProtocolError",
    "RemoteTaskError",
    "WorkerDiedError",
    "WorkerServer",
    "recv_frame",
    "send_frame",
    "start_worker_thread",
    "worker_main",
]

PROTOCOL_VERSION = 1

_MAGIC = b"RPW1"
_HEADER = struct.Struct(">4sQ")
_DEFAULT_MAX_FRAME = 1 << 30


class RemoteProtocolError(RuntimeError):
    """The byte stream violated the framing or handshake protocol."""


class WorkerDiedError(RuntimeError):
    """A remote worker dropped its connection or timed out mid-task."""


class NoRemoteWorkersError(RuntimeError):
    """No remote worker is reachable and no local fallback was allowed."""


class RemoteTaskError(RuntimeError):
    """A task raised inside a remote worker (not a transport failure).

    Deterministic kernel errors are *not* resubmitted — the task would
    fail identically on any worker — so they surface loudly here, with
    the worker-side exception type and message attached.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"remote task failed with {error_type}: {message}")
        self.error_type = error_type


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, obj, max_bytes: int = _DEFAULT_MAX_FRAME) -> int:
    """Pickle ``obj`` and send it as one length-prefixed frame.

    Parameters
    ----------
    sock:
        A connected stream socket.
    obj:
        Any picklable object.
    max_bytes:
        Refuse to send payloads larger than this (a guard against
        runaway task payloads, mirrored on the receive side).

    Returns
    -------
    int
        Bytes written, header included.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_bytes:
        raise RemoteProtocolError(
            f"frame of {len(payload)} bytes exceeds the {max_bytes}-byte limit"
        )
    data = _HEADER.pack(_MAGIC, len(payload)) + payload
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_bytes: int = _DEFAULT_MAX_FRAME):
    """Receive one frame and unpickle it.

    Returns
    -------
    tuple
        ``(obj, nbytes)`` — the decoded object and the total bytes read.

    Raises
    ------
    RemoteProtocolError
        Wrong magic or an over-limit length (stream corruption).
    ConnectionError
        The peer closed the connection mid-frame.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise RemoteProtocolError(f"bad frame magic {magic!r}")
    if length > max_bytes:
        raise RemoteProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = _recv_exact(sock, int(length))
    return pickle.loads(payload), _HEADER.size + int(length)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_KERNELS = {
    "solve": solve_fragment_task,
    "pipeline": run_fragment_pipeline_task,
    "global": run_global_step_task,
    "bands": run_band_block_task,
}


class WorkerServer:
    """A ``repro-worker``: serves executor task frames over TCP.

    One accept loop feeds one thread per driver connection; each
    connection speaks a strict request/response alternation, so a worker
    serves its drivers' requests in arrival order.  Kernels and
    process-level caches (static problems, installed potentials, FFT
    workspaces) are exactly those of the local backends — a worker
    process behaves like one persistent process-pool worker that happens
    to live on another machine.

    Parameters
    ----------
    host, port:
        Bind address; port 0 (the default) lets the OS pick a free port,
        published in :attr:`address` after :meth:`start`.
    fault_plan:
        Optional deterministic fault injector
        (:class:`repro.parallel.faults.FaultPlan`) consulted before each
        task reply — the test harness for the failure model.
    max_frame_bytes:
        Per-frame size limit (both directions).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_plan=None,
        max_frame_bytes: int = _DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.fault_plan = fault_plan
        self.max_frame_bytes = int(max_frame_bytes)
        self.address: tuple[str, int] | None = None
        self.tasks_served = 0
        self.installs = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen and serve in background threads; returns the address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self.address = (self.host, int(sock.getsockname()[1]))
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self.address

    def stop(self) -> None:
        """Stop accepting and close the listening socket (idempotent)."""
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._sock = None

    def join(self, timeout: float | None = None) -> None:
        """Block until :meth:`stop` is called (the daemon's main wait)."""
        self._stop.wait(timeout)

    def __enter__(self) -> "WorkerServer":
        if self.address is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request, nbytes = recv_frame(conn, self.max_frame_bytes)
                except (ConnectionError, OSError, EOFError):
                    return
                except RemoteProtocolError:
                    return
                self.bytes_received += nbytes
                try:
                    reply = self._handle(request)
                except _DropConnection:
                    return
                except _KillWorker:
                    self.stop()
                    return
                try:
                    self.bytes_sent += send_frame(conn, reply, self.max_frame_bytes)
                except (ConnectionError, OSError):
                    return

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            if request.get("version") != PROTOCOL_VERSION:
                return {
                    "ok": False,
                    "error_type": "RemoteProtocolError",
                    "error": (
                        f"protocol version mismatch: driver "
                        f"{request.get('version')} != worker {PROTOCOL_VERSION}"
                    ),
                }
            return {"ok": True, "pid": os.getpid(), "version": PROTOCOL_VERSION}
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "install":
            install_potential(request["key"], request["payload"])
            with self._lock:
                self.installs += 1
            return {"ok": True}
        if op == "stats":
            return {
                "ok": True,
                "tasks_served": self.tasks_served,
                "installs": self.installs,
                "bytes_received": self.bytes_received,
                "bytes_sent": self.bytes_sent,
            }
        if op == "shutdown":
            # Reply first (the driver awaits it), then stop from the
            # connection loop's next iteration.
            self._stop.set()
            return {"ok": True}
        if op == "task":
            return self._handle_task(request)
        return {
            "ok": False,
            "error_type": "RemoteProtocolError",
            "error": f"unknown op {op!r}",
        }

    def _handle_task(self, request: dict) -> dict:
        kernel = _KERNELS.get(request.get("kind"))
        if kernel is None:
            return {
                "ok": False,
                "error_type": "RemoteProtocolError",
                "error": f"unknown task kind {request.get('kind')!r}",
            }
        with self._lock:
            index = self.tasks_served
            self.tasks_served += 1
        if self.fault_plan is not None:
            self.fault_plan.apply(index)
        try:
            result = kernel(request["task"])
        except PotentialNotInstalledError as exc:
            return {
                "ok": False,
                "error_type": "PotentialNotInstalledError",
                "error": str(exc),
                "key": exc.key,
            }
        except Exception as exc:
            return {
                "ok": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
            }
        return {"ok": True, "result": result}


class _DropConnection(Exception):
    """Fault-plan control flow: close the connection without replying."""


class _KillWorker(Exception):
    """Fault-plan control flow: kill the whole worker mid-request."""


def worker_main(argv: Sequence[str] | None = None) -> int:
    """``repro-worker`` entry point: serve kernels until shut down.

    Prints ``REPRO-WORKER LISTENING <host> <port>`` on stdout once bound
    (port 0 resolves to the OS-assigned port), so spawners can scrape
    the address; then blocks until a ``shutdown`` frame or Ctrl-C.
    """
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="LS3DF remote fragment worker (trusted networks only).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = any)")
    args = parser.parse_args(argv)
    server = WorkerServer(host=args.host, port=args.port)
    host, port = server.start()
    print(f"REPRO-WORKER LISTENING {host} {port}", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()
    return 0


def start_worker_thread(
    host: str = "127.0.0.1", port: int = 0, fault_plan=None
) -> WorkerServer:
    """Start a :class:`WorkerServer` inside this process (tests, demos).

    The server shares the driver's process-level caches, but speaks the
    full socket protocol — every byte still crosses a real TCP
    connection on the loopback interface.
    """
    server = WorkerServer(host=host, port=port, fault_plan=fault_plan)
    server.start()
    return server


class LocalWorkerPool:
    """Spawn ``n`` localhost worker *processes* and collect their addresses.

    Each worker is a ``python -m repro.parallel.remote`` subprocess with
    its own interpreter, caches and OS-assigned port — the closest
    single-machine analogue of a real multi-node deployment (used by the
    CI ``remote-smoke`` job and the ``remote``-marked tests).

    Use as a context manager::

        with LocalWorkerPool(2) as pool:
            executor = RemoteExecutor(pool.addresses)
    """

    def __init__(self, n: int = 2, python: str | None = None, startup_timeout: float = 60.0):
        if n < 1:
            raise ValueError("n must be positive")
        self.n = int(n)
        self.python = python or sys.executable
        self.startup_timeout = float(startup_timeout)
        self.processes: list = []
        self.addresses: list[tuple[str, int]] = []

    def start(self) -> "LocalWorkerPool":
        import subprocess

        import repro

        src_dir = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for _ in range(self.n):
            proc = subprocess.Popen(
                [self.python, "-m", "repro.parallel.remote", "--port", "0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            self.processes.append(proc)
        deadline = time.monotonic() + self.startup_timeout
        for proc in self.processes:
            address = self._read_address(proc, deadline)
            self.addresses.append(address)
        return self

    def _read_address(self, proc, deadline: float) -> tuple[str, int]:
        holder: list = []

        def reader() -> None:
            line = proc.stdout.readline()
            holder.append(line)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(max(0.0, deadline - time.monotonic()))
        if not holder or not holder[0]:
            self.terminate()
            raise RuntimeError("worker subprocess failed to announce its address")
        parts = holder[0].split()
        if len(parts) != 4 or parts[:2] != ["REPRO-WORKER", "LISTENING"]:
            self.terminate()
            raise RuntimeError(f"unexpected worker announcement {holder[0]!r}")
        return (parts[2], int(parts[3]))

    def terminate(self) -> None:
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            try:
                proc.wait(timeout=10.0)
            except Exception:  # pragma: no cover - last resort
                proc.kill()
        self.processes = []

    def __enter__(self) -> "LocalWorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.terminate()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
@dataclass
class RemoteExecutorConfig:
    """Timeouts and retry policy of a :class:`RemoteExecutor`.

    Attributes
    ----------
    connect_timeout:
        Seconds allowed for the TCP connect + hello handshake.
    request_timeout:
        Seconds allowed for each send/receive pair (bounds every task,
        install and ping — the guarantee that no failure hangs).
    heartbeat_interval:
        Ping workers at most this often, piggybacked on batch dispatch
        (0 pings before every batch).
    max_retries:
        Reconnection attempts per worker on connect failure.
    backoff:
        Initial retry backoff in seconds, growing by ``backoff_factor``.
    backoff_factor:
        Multiplier applied to the backoff after every failed attempt.
    max_frame_bytes:
        Per-frame size limit (both directions).
    """

    connect_timeout: float = 5.0
    request_timeout: float = 120.0
    heartbeat_interval: float = 30.0
    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_frame_bytes: int = _DEFAULT_MAX_FRAME


class _WorkerHandle:
    """Driver-side connection to one remote worker."""

    def __init__(self, address: tuple[str, int], config: RemoteExecutorConfig):
        self.address = (str(address[0]), int(address[1]))
        self.config = config
        self.sock: socket.socket | None = None
        self.alive = True
        self.pid: int | None = None
        self.installed_keys: set[str] = set()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.lock = threading.Lock()

    def connect(self) -> None:
        """Connect and handshake, retrying with exponential backoff."""
        if self.sock is not None:
            return
        delay = self.config.backoff
        last_error: Exception | None = None
        for attempt in range(self.config.max_retries + 1):
            if attempt:
                time.sleep(delay)
                delay *= self.config.backoff_factor
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.config.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.config.request_timeout)
            self.sock = sock
            try:
                reply = self._roundtrip(
                    {"op": "hello", "version": PROTOCOL_VERSION}
                )
            except (OSError, ConnectionError) as exc:
                self.close()
                last_error = exc
                continue
            if not reply.get("ok"):
                self.close()
                raise RemoteProtocolError(str(reply.get("error")))
            self.pid = reply.get("pid")
            # A fresh process behind the same address knows no keys.
            self.installed_keys.clear()
            return
        raise WorkerDiedError(
            f"could not connect to worker at {self.address[0]}:{self.address[1]}: "
            f"{last_error}"
        )

    def _roundtrip(self, request: dict) -> dict:
        self.bytes_sent += send_frame(
            self.sock, request, self.config.max_frame_bytes
        )
        reply, nbytes = recv_frame(self.sock, self.config.max_frame_bytes)
        self.bytes_received += nbytes
        return reply

    def request(self, request: dict) -> dict:
        """One request/response round trip (connects lazily)."""
        with self.lock:
            self.connect()
            return self._roundtrip(request)

    def ping(self) -> bool:
        """Heartbeat; False (and marked dead) when the worker is gone."""
        try:
            reply = self.request({"op": "ping"})
        except (OSError, ConnectionError, WorkerDiedError, RemoteProtocolError):
            self.mark_dead()
            return False
        return bool(reply.get("ok"))

    def mark_dead(self) -> None:
        self.alive = False
        self.close()

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self.sock = None


class RemoteExecutor:
    """Executor backend running tasks on socket-connected remote workers.

    Implements the full local-backend surface — ``run`` /
    ``run_pipeline`` / ``run_global`` / ``run_bands``,
    ``install_state``, the logical/physical submission counters and
    ``partition`` for concurrent band-group sub-pools — so it drops into
    :class:`repro.core.scf.LS3DFSCF` (and
    :class:`repro.parallel.distributed` orchestration) unchanged.
    Results are bit-identical to the serial backend: workers run the
    same pure kernels on the same task bytes, and the driver returns
    results in task order.

    Dispatch submits heaviest-first from a shared queue (one driver
    thread per worker), realising the same greedy LPT balancing as the
    local pools.  See the module docstring for the failure model; the
    counters ``resubmissions``, ``workers_lost`` and ``degraded_tasks``
    record how much of it a run exercised.

    Parameters
    ----------
    addresses:
        ``(host, port)`` pairs of running ``repro-worker`` daemons.
    config:
        Timeouts and retry policy (:class:`RemoteExecutorConfig`).
    fallback:
        The bottom of the degradation ladder when no worker answers:
        ``"serial"`` (default) runs remaining tasks in-process via a
        :class:`repro.parallel.executor.SerialFragmentExecutor`, an
        executor instance is used as-is, and ``None`` raises
        :class:`NoRemoteWorkersError` instead.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        config: RemoteExecutorConfig | None = None,
        fallback="serial",
    ) -> None:
        self.config = config or RemoteExecutorConfig()
        self._handles = [_WorkerHandle(a, self.config) for a in addresses]
        self._fallback_spec = fallback
        self._fallback = None if isinstance(fallback, str) else fallback
        self.tasks_submitted = 0
        self.pool_submissions = 0
        self.install_broadcasts = 0
        self.resubmissions = 0
        self.workers_lost = 0
        self.degraded_tasks = 0
        self._counter_mutex = threading.Lock()
        self._counter_root = self
        self._install_payloads: OrderedDict[str, np.ndarray] = OrderedDict()
        self._install_payload_max = 64
        self._scheduler = FragmentScheduler()
        self._last_heartbeat = time.monotonic()
        self._partitions: dict[int, list["RemoteExecutor"]] = {}
        # Streaming (futures-based) dispatch state: a shared work deque
        # drained by one persistent thread per live worker, so per-slab
        # GENPOT stages flow to workers the moment their inputs exist
        # instead of in synchronous per-stage batches.
        self._stream_lock = threading.Lock()
        self._stream_cond = threading.Condition(self._stream_lock)
        self._stream_queue: deque = deque()
        self._stream_threads: dict[int, threading.Thread] = {}
        self._stream_stop = False
        self._stream_dead = False

    # -- bookkeeping ---------------------------------------------------
    @property
    def n_workers(self) -> int:
        """Live worker count (at least 1, so scheduling math never degenerates)."""
        return max(1, len(self._live_handles()))

    @property
    def nworkers(self) -> int:
        """Worker count under the legacy spelling (same as ``n_workers``)."""
        return self.n_workers

    @property
    def bytes_sent(self) -> int:
        """Driver-to-worker bytes over this executor's connections."""
        return sum(h.bytes_sent for h in self._handles)

    @property
    def bytes_received(self) -> int:
        """Worker-to-driver bytes over this executor's connections."""
        return sum(h.bytes_received for h in self._handles)

    def _live_handles(self) -> list[_WorkerHandle]:
        return [h for h in self._handles if h.alive]

    def _bump(self, logical: int, physical: int) -> None:
        root = self._counter_root
        with root._counter_mutex:
            root.tasks_submitted += logical
            root.pool_submissions += physical

    def _count(self, attr: str, n: int = 1) -> None:
        root = self._counter_root
        with root._counter_mutex:
            setattr(root, attr, getattr(root, attr) + n)

    # -- health --------------------------------------------------------
    def heartbeat(self) -> int:
        """Ping every live worker; returns how many answered."""
        alive = 0
        for handle in self._live_handles():
            if handle.ping():
                alive += 1
            else:
                self._count("workers_lost")
        self._last_heartbeat = time.monotonic()
        return alive

    def _maybe_heartbeat(self) -> None:
        if time.monotonic() - self._last_heartbeat >= self.config.heartbeat_interval:
            self.heartbeat()

    # -- install channel -----------------------------------------------
    def install_state(self, key: str, payload: np.ndarray) -> None:
        """Install a fingerprint-keyed potential once per remote worker.

        The driver's process-level store always receives the payload
        (covering the local fallback and the healing resubmission path);
        each worker then gets at most one ``install`` frame per key —
        the per-worker ``installed_keys`` set is the dedup that keeps
        repeated installs of one iteration's potential off the wire.
        """
        arr = np.asarray(payload)
        root = self._counter_root
        with root._counter_mutex:
            if key in root._install_payloads:
                root._install_payloads.move_to_end(key)
            else:
                install_potential(key, arr)
                root._install_payloads[key] = arr
                while len(root._install_payloads) > root._install_payload_max:
                    root._install_payloads.popitem(last=False)
        for handle in self._live_handles():
            if key in handle.installed_keys:
                continue
            try:
                reply = handle.request({"op": "install", "key": key, "payload": arr})
            except (OSError, ConnectionError, WorkerDiedError, RemoteProtocolError):
                handle.mark_dead()
                self._count("workers_lost")
                continue
            if reply.get("ok"):
                handle.installed_keys.add(key)
                self._count("install_broadcasts")

    # -- the four protocols --------------------------------------------
    def run(self, tasks: Sequence) -> ExecutionReport:
        """Run plain fragment solve tasks on the remote workers."""
        return self._execute(tasks, "solve")

    def run_pipeline(self, tasks: Sequence) -> ExecutionReport:
        """Run fused Gen_VF -> solve -> Gen_dens tasks on the remote workers."""
        return self._execute(tasks, "pipeline")

    def run_global(self, tasks: Sequence) -> ExecutionReport:
        """Run per-slab GENPOT global-step tasks on the remote workers."""
        return self._execute(tasks, "global")

    def run_bands(self, tasks: Sequence) -> ExecutionReport:
        """Run per-slice band-eigensolver tasks on the remote workers."""
        return self._execute(tasks, "bands")

    # -- streaming (futures-based) dispatch ----------------------------
    def submit_global(self, task):
        """Submit one global-step task; returns a ``concurrent.futures``
        future resolved by the persistent per-worker stream threads.

        The streaming analogue of :meth:`run_global`: tasks enter a
        shared deque the moment the driver submits them and are drained
        by one thread per live worker, so slab stages overlap with the
        driver's layout conversion exactly like the paper's isend/irecv-
        under-compute.  The failure model matches the batch path — a
        worker that dies mid-task is marked dead, its task is requeued
        for the survivors (``resubmissions``), and with no survivors
        left the queue drains through the local fallback executor.
        """
        return self._submit_stream(task, "global")

    def submit_pipeline_batch(self, tasks: Sequence) -> list:
        """Per-fragment futures for a pipeline batch (heaviest-first)."""
        costs = [float(getattr(t, "cost", lambda: 1.0)()) for t in tasks]
        order = np.argsort(costs)[::-1]
        futures: list = [None] * len(tasks)
        for i in order:
            futures[int(i)] = self._submit_stream(tasks[int(i)], "pipeline")
        return futures

    def _submit_stream(self, task, kind: str):
        from concurrent.futures import Future

        self._bump(1, 1)
        future: Future = Future()
        future.set_running_or_notify_cancel()
        with self._stream_cond:
            if not self._stream_dead:
                self._ensure_stream_threads()
            if self._stream_dead:
                self._resolve_locally(task, kind, future)
                return future
            self._stream_queue.append((task, kind, future))
            self._stream_cond.notify()
        return future

    def _ensure_stream_threads(self) -> None:
        """Start one drain thread per live worker (caller holds the lock)."""
        for handle in self._live_handles():
            key = id(handle)
            thread = self._stream_threads.get(key)
            if thread is not None and thread.is_alive():
                continue
            thread = threading.Thread(
                target=self._stream_drain, args=(handle,), daemon=True
            )
            self._stream_threads[key] = thread
            thread.start()
        if not self._stream_threads:
            self._stream_dead = True

    def _stream_drain(self, handle: _WorkerHandle) -> None:
        while True:
            with self._stream_cond:
                while not self._stream_queue and not self._stream_stop:
                    self._stream_cond.wait(0.2)
                if not self._stream_queue:
                    return
                item = self._stream_queue.popleft()
            task, kind, future = item
            try:
                result = self._run_one(handle, task, kind)
            except (OSError, ConnectionError, WorkerDiedError, RemoteProtocolError):
                handle.mark_dead()
                self._count("workers_lost")
                self._count("resubmissions")
                leftovers: list = []
                with self._stream_cond:
                    self._stream_queue.appendleft(item)
                    self._stream_threads.pop(id(handle), None)
                    survivors = any(
                        t.is_alive() for t in self._stream_threads.values()
                    )
                    if survivors:
                        self._stream_cond.notify_all()
                    else:
                        self._stream_dead = True
                        leftovers = list(self._stream_queue)
                        self._stream_queue.clear()
                for task, kind, future in leftovers:
                    self._resolve_locally(task, kind, future)
                return
            except Exception as exc:
                future.set_exception(exc)
                continue
            future.set_result(result)

    def _resolve_locally(self, task, kind: str, future) -> None:
        """Bottom of the streaming ladder: run one task on the fallback."""
        fallback = self._fallback_executor()
        if fallback is None:
            future.set_exception(
                NoRemoteWorkersError(
                    f"no remote worker answered for a streamed {kind} task "
                    f"and the local fallback is disabled"
                )
            )
            return
        self._count("degraded_tasks")
        runner = {
            "solve": fallback.run,
            "pipeline": fallback.run_pipeline,
            "global": fallback.run_global,
            "bands": fallback.run_bands,
        }[kind]
        try:
            report = runner([task])
        except Exception as exc:
            future.set_exception(exc)
            return
        future.set_result(report.results[0])

    # -- dispatch ------------------------------------------------------
    def _execute(self, tasks: Sequence, kind: str) -> ExecutionReport:
        t0 = time.perf_counter()
        self._bump(len(tasks), len(tasks))
        self._maybe_heartbeat()
        handles = self._live_handles()
        results: list = [None] * len(tasks)
        if not tasks:
            return ExecutionReport(results=[], wall_time=0.0, worker_count=0)
        if not handles:
            self._degrade(tasks, range(len(tasks)), kind, results)
            return ExecutionReport(
                results=results,
                wall_time=time.perf_counter() - t0,
                worker_count=1,
            )
        schedule = (
            self._scheduler.schedule_tasks(tasks, len(handles))
            if len(handles) > 1
            else None
        )
        costs = [float(getattr(t, "cost", lambda: 1.0)()) for t in tasks]
        order = np.argsort(costs)[::-1]
        queue: deque[int] = deque(int(i) for i in order)
        queue_lock = threading.Lock()
        first_error: list = [None]

        def drain(handle: _WorkerHandle) -> None:
            while True:
                with queue_lock:
                    if first_error[0] is not None or not queue:
                        return
                    idx = queue.popleft()
                try:
                    results[idx] = self._run_one(handle, tasks[idx], kind)
                except (OSError, ConnectionError, WorkerDiedError, RemoteProtocolError):
                    handle.mark_dead()
                    self._count("workers_lost")
                    self._count("resubmissions")
                    with queue_lock:
                        queue.appendleft(idx)
                    return
                except Exception as exc:
                    with queue_lock:
                        if first_error[0] is None:
                            first_error[0] = exc
                    return

        threads = [
            threading.Thread(target=drain, args=(h,), daemon=True) for h in handles
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if first_error[0] is not None:
            raise first_error[0]
        leftovers = [i for i in range(len(tasks)) if results[i] is None]
        if leftovers:
            self._degrade(tasks, leftovers, kind, results)
        return ExecutionReport(
            results=results,
            wall_time=time.perf_counter() - t0,
            worker_count=len(handles),
            schedule=schedule,
            resubmissions=self.resubmissions,
        )

    def _run_one(self, handle: _WorkerHandle, task, kind: str):
        """One task round trip on one worker, healing missed installs."""
        reply = handle.request({"op": "task", "kind": kind, "task": task})
        if reply.get("ok"):
            return reply["result"]
        if reply.get("error_type") == "PotentialNotInstalledError":
            attach = getattr(task, "with_potential_payload", None)
            with self._counter_root._counter_mutex:
                payload = self._counter_root._install_payloads.get(reply.get("key"))
            if attach is not None and payload is not None:
                key = reply["key"]
                self._bump(0, 1)
                healed = attach(key, payload)
                reply = handle.request({"op": "task", "kind": kind, "task": healed})
                if reply.get("ok"):
                    # The healed payload rode inline; install it properly so
                    # later key-only tasks on this worker need no more heals.
                    install_reply = handle.request(
                        {"op": "install", "key": key, "payload": payload}
                    )
                    if install_reply.get("ok"):
                        handle.installed_keys.add(key)
                        self._count("install_broadcasts")
                    return reply["result"]
        raise RemoteTaskError(
            str(reply.get("error_type")), str(reply.get("error"))
        )

    def _degrade(self, tasks: Sequence, indices, kind: str, results: list) -> None:
        """Bottom of the ladder: run leftover tasks on the local fallback."""
        indices = list(indices)
        fallback = self._fallback_executor()
        if fallback is None:
            raise NoRemoteWorkersError(
                f"no remote worker answered for {len(indices)} {kind} task(s) "
                f"(addresses: {[h.address for h in self._handles]}) and the "
                f"local fallback is disabled"
            )
        self._count("degraded_tasks", len(indices))
        runner = {
            "solve": fallback.run,
            "pipeline": fallback.run_pipeline,
            "global": fallback.run_global,
            "bands": fallback.run_bands,
        }[kind]
        report = runner([tasks[i] for i in indices])
        for i, result in zip(indices, report.results):
            results[i] = result

    def _fallback_executor(self):
        if self._fallback is None and self._fallback_spec == "serial":
            from repro.parallel.executor import SerialFragmentExecutor

            self._fallback = SerialFragmentExecutor()
        return self._fallback

    # -- band-group sub-pools ------------------------------------------
    def partition(self, ngroups: int) -> list["RemoteExecutor"]:
        """Split the workers into ``ngroups`` disjoint sub-pools.

        Each sub-pool is a :class:`RemoteExecutor` view owning a
        round-robin share of this executor's worker handles (state —
        connections, installed-key sets, byte counters — is shared with
        the parent, and all logical counters accumulate on the parent),
        so the concurrent band-group path can drive the groups from
        independent threads with per-group task queues.  Partitions are
        cached per ``ngroups``: repeated iterations reuse the same
        sub-pools and their workers' warm caches.
        """
        if ngroups < 1:
            raise ValueError("ngroups must be positive")
        cached = self._partitions.get(ngroups)
        if cached is not None:
            return cached
        children = []
        handles = self._handles
        for g in range(ngroups):
            child = RemoteExecutor.__new__(RemoteExecutor)
            child.config = self.config
            child._handles = [h for i, h in enumerate(handles) if i % ngroups == g]
            child._fallback_spec = self._fallback_spec
            child._fallback = None
            child.tasks_submitted = 0
            child.pool_submissions = 0
            child.install_broadcasts = 0
            child.resubmissions = 0
            child.workers_lost = 0
            child.degraded_tasks = 0
            child._counter_mutex = threading.Lock()
            child._counter_root = self._counter_root
            child._install_payloads = OrderedDict()
            child._install_payload_max = self._install_payload_max
            child._scheduler = FragmentScheduler()
            child._last_heartbeat = time.monotonic()
            child._partitions = {}
            child._stream_lock = threading.Lock()
            child._stream_cond = threading.Condition(child._stream_lock)
            child._stream_queue = deque()
            child._stream_threads = {}
            child._stream_stop = False
            child._stream_dead = False
            children.append(child)
        self._partitions[ngroups] = children
        return children

    # -- lifecycle -----------------------------------------------------
    def shutdown_workers(self) -> int:
        """Send ``shutdown`` to every live worker; returns how many acked."""
        acked = 0
        for handle in self._live_handles():
            try:
                reply = handle.request({"op": "shutdown"})
            except (OSError, ConnectionError, WorkerDiedError, RemoteProtocolError):
                handle.mark_dead()
                continue
            if reply.get("ok"):
                acked += 1
            handle.close()
        return acked

    def close(self) -> None:
        """Close every connection (workers keep running; see
        :meth:`shutdown_workers`)."""
        with self._stream_cond:
            self._stream_stop = True
            self._stream_cond.notify_all()
        for handle in self._handles:
            handle.close()
        for children in self._partitions.values():
            for child in children:
                for handle in child._handles:
                    handle.close()

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(worker_main())
