"""Communication cost models for Gen_VF / Gen_dens / GENPOT.

The paper describes three generations of the LS3DF data-movement layer:

1. **file I/O** — the proof-of-concept version passed fragment potentials
   and densities through the parallel filesystem (tens of seconds per
   iteration at scale);
2. **collective MPI** — data held in memory (the "LS3DF global module") and
   exchanged with collective operations, whose cost grows with the core
   count (the residual efficiency droop seen on Franklin/Jaguar at high
   concurrency, Section VI);
3. **point-to-point isend/irecv** — the final version used on Intrepid,
   where Gen_VF + Gen_dens together are under 2% of the iteration time.

:class:`CommunicationModel` turns a data volume and a core count into a
time estimate for each scheme, so the benchmark harness can reproduce both
the optimisation table of Section IV and the high-concurrency efficiency
behaviour of Figures 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.parallel.machine import Machine


class CommScheme(str, Enum):
    """The three generations of the LS3DF communication layer.

    ``FILE_IO`` is the original version's disk-mediated exchange,
    ``COLLECTIVE`` the MPI_Alltoallv rewrite, and ``POINT_TO_POINT`` the
    paper's final isend/irecv implementation whose cost the production
    runs report.
    """

    FILE_IO = "file_io"
    COLLECTIVE = "collective"
    POINT_TO_POINT = "point_to_point"


@dataclass
class CommunicationModel:
    """Cost model for moving fragment data between groups and the global grid.

    Parameters
    ----------
    machine:
        The machine whose network/filesystem parameters are used.
    scheme:
        Which generation of the communication layer to model.
    """

    machine: Machine
    scheme: CommScheme = CommScheme.POINT_TO_POINT

    # ------------------------------------------------------------------
    def transfer_time(self, data_bytes: float, cores: int) -> float:
        """Seconds to move ``data_bytes`` of fragment boundary data on ``cores`` cores.

        The volume is the total over all fragments; the effective
        concurrency of the transfer and the per-message overheads depend on
        the scheme.
        """
        if data_bytes < 0:
            raise ValueError("data volume must be non-negative")
        if cores < 1:
            raise ValueError("cores must be positive")
        m = self.machine
        nodes = max(1, cores // m.cores_per_node)

        if self.scheme is CommScheme.FILE_IO:
            # Everything funnels through the shared filesystem: aggregate
            # bandwidth is fixed, and metadata costs grow with the number
            # of files (one per fragment per quantity ~ proportional to cores).
            bandwidth = m.file_io_bandwidth_gbs * 1e9
            metadata = 2.0e-3 * cores  # file create/open/close costs
            return data_bytes / bandwidth + metadata

        if self.scheme is CommScheme.COLLECTIVE:
            # In-memory collective exchange: per-node bandwidth in parallel,
            # but the collective's software overhead grows ~ cores * log(cores)
            # (the behaviour that throttled Franklin/Jaguar at >10k cores).
            bandwidth = m.network_bandwidth_gbs * 1e9 * nodes * 0.5
            overhead = m.network_latency_us * 1e-6 * cores * np.log2(max(2, cores)) * 1.2
            return data_bytes / bandwidth + overhead

        # POINT_TO_POINT: each group exchanges only with the ranks owning its
        # part of the global grid; messages overlap, overhead ~ log(cores).
        bandwidth = m.network_bandwidth_gbs * 1e9 * nodes * 0.8
        overhead = m.network_latency_us * 1e-6 * np.log2(max(2, cores)) * 40.0
        return data_bytes / bandwidth + overhead

    # ------------------------------------------------------------------
    def layout_conversion_time(
        self, data_bytes: float, cores: int, nshards: int | None = None
    ) -> float:
        """Fragment<->slab layout conversion cost of the sharded global step.

        The paper runs GENPOT on a 1D slab decomposition of the global
        grid while fragments live on processor groups; every iteration
        converts the patched density into slabs and the mixed potential
        back (2x the field volume), paying per-shard message overhead on
        top of the transfer itself.  This is the data-movement cost the
        paper charges to the global step — the term
        :func:`repro.parallel.amdahl.sharded_genpot_estimate` adds back
        to the serial bucket.

        Parameters
        ----------
        data_bytes:
            Size of one global field (the density or the potential).
        cores:
            Total core count.
        nshards:
            Number of slabs; defaults to one per node.
        """
        if data_bytes < 0:
            raise ValueError("data volume must be non-negative")
        if cores < 1:
            raise ValueError("cores must be positive")
        if nshards is None:
            nshards = max(1, cores // self.machine.cores_per_node)
        if nshards < 1:
            raise ValueError("nshards must be positive")
        per_shard_overhead = self.machine.network_latency_us * 1e-6 * nshards
        return (
            2.0 * self.transfer_time(data_bytes, cores)
            + self.barrier_time(cores)
            + per_shard_overhead
        )

    # ------------------------------------------------------------------
    def allreduce_time(self, data_bytes: float, cores: int) -> float:
        """Time of a global reduction of ``data_bytes`` over ``cores`` cores."""
        if cores < 1:
            raise ValueError("cores must be positive")
        m = self.machine
        nodes = max(1, cores // m.cores_per_node)
        stages = np.log2(max(2, nodes))
        bandwidth = m.network_bandwidth_gbs * 1e9
        return stages * (m.network_latency_us * 1e-6 + data_bytes / max(bandwidth, 1.0) / nodes)

    def barrier_time(self, cores: int) -> float:
        """Synchronisation cost of a barrier over ``cores`` cores."""
        if cores < 1:
            raise ValueError("cores must be positive")
        return self.machine.network_latency_us * 1e-6 * np.log2(max(2, cores))
