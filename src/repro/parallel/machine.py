"""Machine descriptions of the paper's three evaluation platforms.

The numbers are taken from the paper's Section VI and public system
documentation of the era:

* **Franklin** (NERSC, Cray XT4): 9,660 nodes x 2 cores of 2.6 GHz AMD
  Opteron (4 flops/cycle with SSE2 FMA-less dual-issue), 4 GB/node,
  SeaStar2 3D-torus interconnect; 101.5 Tflop/s peak.
* **Jaguar** (NCCS, Cray XT4): 7,832 nodes x 4 cores of 2.1 GHz AMD
  Opteron (quad-core Budapest), 8 GB/node; ~263 Tflop/s peak.
* **Intrepid** (ALCF, BlueGene/P): 40,960 nodes x 4 cores of 0.85 GHz
  PowerPC 450d (4 flops/cycle double hummer), 2 GB/node; 556 Tflop/s peak.

The efficiency factors encode how much of per-core peak a well-optimised
dense-linear-algebra-heavy plane-wave kernel sustains on each platform:
the paper reports ~40% of peak on Franklin, ~26% on Jaguar and ~31% on
Intrepid at the per-group level (before parallel overheads).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Machine:
    """A parallel machine description used by the performance model.

    Attributes
    ----------
    name:
        Machine name ("Franklin", "Jaguar", "Intrepid").
    total_cores:
        Number of cores in the full system.
    cores_per_node:
        Cores sharing a node (and its NIC).
    clock_ghz:
        Core clock in GHz.
    flops_per_cycle:
        Double-precision flops per cycle per core at peak.
    memory_per_core_gb:
        Memory per core (GB) — the constraint that forced the paper to a
        40 Ry / 32^3-grid setup on Intrepid.
    network_latency_us:
        Point-to-point message latency (microseconds).
    network_bandwidth_gbs:
        Per-link bandwidth (GB/s).
    kernel_efficiency:
        Fraction of per-core peak sustained by the PEtot_F compute kernel
        (BLAS-3 dominated) on this machine for production fragment sizes.
    small_fragment_efficiency:
        Same, but for the smallest (1x1x1) fragments whose matrices are too
        small to reach asymptotic BLAS-3 rates.
    file_io_bandwidth_gbs:
        Aggregate filesystem bandwidth (GB/s) — used only by the legacy
        file-I/O communication scheme of the early LS3DF versions.
    """

    name: str
    total_cores: int
    cores_per_node: int
    clock_ghz: float
    flops_per_cycle: int
    memory_per_core_gb: float
    network_latency_us: float
    network_bandwidth_gbs: float
    kernel_efficiency: float
    small_fragment_efficiency: float
    file_io_bandwidth_gbs: float = 10.0

    def __post_init__(self) -> None:
        if self.total_cores <= 0 or self.cores_per_node <= 0:
            raise ValueError("core counts must be positive")
        if not 0 < self.kernel_efficiency <= 1:
            raise ValueError("kernel_efficiency must be in (0, 1]")
        if not 0 < self.small_fragment_efficiency <= 1:
            raise ValueError("small_fragment_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def core_peak_gflops(self) -> float:
        """Per-core peak (Gflop/s)."""
        return self.clock_ghz * self.flops_per_cycle

    def peak_tflops(self, cores: int | None = None) -> float:
        """Aggregate peak (Tflop/s) of ``cores`` cores (default: whole system)."""
        n = self.total_cores if cores is None else cores
        if n <= 0 or n > self.total_cores:
            raise ValueError(
                f"core count {n} outside the machine's range (1..{self.total_cores})"
            )
        return n * self.core_peak_gflops / 1000.0

    def sustained_core_gflops(self, large_fragment: bool = True) -> float:
        """Sustained per-core rate of the fragment kernel (Gflop/s)."""
        eff = self.kernel_efficiency if large_fragment else self.small_fragment_efficiency
        return self.core_peak_gflops * eff


# The three evaluation platforms of the paper.
FRANKLIN = Machine(
    name="Franklin",
    total_cores=19_320,
    cores_per_node=2,
    clock_ghz=2.6,
    flops_per_cycle=2,
    memory_per_core_gb=2.0,
    network_latency_us=8.0,
    network_bandwidth_gbs=2.0,
    kernel_efficiency=0.42,
    small_fragment_efficiency=0.38,
    file_io_bandwidth_gbs=12.0,
)

JAGUAR = Machine(
    name="Jaguar",
    total_cores=31_328,
    cores_per_node=4,
    clock_ghz=2.1,
    flops_per_cycle=4,
    memory_per_core_gb=2.0,
    network_latency_us=7.0,
    network_bandwidth_gbs=2.0,
    kernel_efficiency=0.285,
    small_fragment_efficiency=0.25,
    file_io_bandwidth_gbs=18.0,
)

INTREPID = Machine(
    name="Intrepid",
    total_cores=163_840,
    cores_per_node=4,
    clock_ghz=0.85,
    flops_per_cycle=4,
    memory_per_core_gb=0.5,
    network_latency_us=3.0,
    network_bandwidth_gbs=0.425,
    kernel_efficiency=0.33,
    small_fragment_efficiency=0.30,
    file_io_bandwidth_gbs=8.0,
)

_MACHINES = {m.name.lower(): m for m in (FRANKLIN, JAGUAR, INTREPID)}


def machine_by_name(name: str) -> Machine:
    """Look up one of the paper's machines by (case-insensitive) name.

    Parameters
    ----------
    name:
        ``"franklin"``, ``"jaguar"`` or ``"intrepid"`` (any case).

    Returns
    -------
    Machine
        The matching description; ``KeyError`` (listing the valid names)
        for anything else.
    """
    try:
        return _MACHINES[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(_MACHINES)}"
        ) from exc


def all_machines() -> list[Machine]:
    """The three evaluation machines, in the paper's Table I order."""
    return [FRANKLIN, JAGUAR, INTREPID]
