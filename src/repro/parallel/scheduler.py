"""Assignment of fragments to processor groups (load balancing).

LS3DF distributes the ``8 * m1 * m2 * m3`` fragments over the ``Ng``
processor groups.  Because the fragment classes differ in cost by roughly
a factor of eight (1x1x1 versus 2x2x2 cells), a naive round-robin produces
group loads that can differ substantially; the scheduler here uses the
longest-processing-time (LPT) greedy heuristic, which is what keeps the
load imbalance small enough for the >95% PEtot_F parallel efficiencies the
paper reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.fragments import Fragment
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.groups import GroupDecomposition, choose_group_size


@dataclass
class ScheduleSummary:
    """Outcome of a fragment-to-group assignment.

    Attributes
    ----------
    assignments:
        ``assignments[g]`` is the list of fragment indices given to group g.
    group_loads:
        Total cost (flops) per group.
    imbalance:
        max(load) / mean(load); 1.0 is perfect balance.
    makespan:
        The maximum group load — what actually determines the PEtot_F time.
    cores_per_group:
        Np, the worker count inside each group, when the assignment was
        produced by :meth:`FragmentScheduler.schedule_grouped` (each bin
        is then a *worker group* running band-sliced solves, not a single
        worker); ``None`` for plain per-worker schedules.
    intra_group_efficiency:
        The modelled parallel efficiency of one fragment solve on
        ``cores_per_group`` cores
        (:meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`),
        recorded so reports can print it next to the *measured* value
        (:attr:`repro.core.scf.IterationTimings.measured_intra_group_efficiency`);
        ``None`` for plain schedules.
    """

    assignments: list[list[int]]
    group_loads: np.ndarray
    imbalance: float
    makespan: float
    cores_per_group: int | None = None
    intra_group_efficiency: float | None = None

    @property
    def lpt_speedup(self) -> float:
        """Predicted speedup of this assignment: total load / makespan.

        The load-balancing model's counterpart to the measured PEtot_F
        speedup an :class:`~repro.core.fragment_task.ExecutionReport`
        reports; benchmarks and examples print the two side by side.
        """
        if self.makespan <= 0:
            return 0.0
        return float(self.group_loads.sum() / self.makespan)


@dataclass
class GroupExecutionRecord:
    """A *measured* concurrent band-group execution (plan + what happened).

    :meth:`FragmentScheduler.schedule_grouped` produces the modelled
    two-level decomposition; this record wraps that plan together with
    the wall-clock reality of actually running it — one measured wall
    time per group bin, plus whether the groups genuinely overlapped
    (per-group worker sub-pools driven by concurrent driver threads) or
    time-shared one pool sequentially.  It is what
    :attr:`repro.core.scf.IterationTimings.band_schedule` now carries;
    the modelled quantities stay reachable through the delegating
    properties, so existing reports keep printing model and measurement
    side by side.

    Attributes
    ----------
    plan:
        The LPT :class:`ScheduleSummary` over group-sized bins that the
        execution realised (``plan.assignments[g]`` is group ``g``'s
        task queue, in dispatch order).
    group_walls:
        Measured wall-clock seconds each group spent on its queue.
    wall_time:
        Measured wall-clock of the whole PEtot_F step (all groups).
    concurrent:
        True when the groups ran on disjoint worker sub-pools in
        parallel; False for the sequential fallback (single pool, one
        grouped solve at a time).
    """

    plan: ScheduleSummary
    group_walls: list[float]
    wall_time: float
    concurrent: bool

    # -- modelled quantities (delegated to the plan) -------------------
    @property
    def assignments(self) -> list[list[int]]:
        """``plan.assignments`` — the per-group task queues."""
        return self.plan.assignments

    @property
    def cores_per_group(self) -> int | None:
        """Np of the plan (workers per group)."""
        return self.plan.cores_per_group

    @property
    def intra_group_efficiency(self) -> float | None:
        """The plan's *modelled* intra-group efficiency."""
        return self.plan.intra_group_efficiency

    @property
    def makespan(self) -> float:
        """The plan's modelled makespan (cost units, not seconds)."""
        return self.plan.makespan

    @property
    def imbalance(self) -> float:
        """The plan's modelled imbalance."""
        return self.plan.imbalance

    @property
    def lpt_speedup(self) -> float:
        """The plan's modelled LPT speedup."""
        return self.plan.lpt_speedup

    # -- measured quantities -------------------------------------------
    @property
    def measured_makespan(self) -> float:
        """Longest measured group wall — what actually bounds PEtot_F."""
        return float(max(self.group_walls, default=0.0))

    @property
    def measured_imbalance(self) -> float:
        """max / mean of the measured group walls (1.0 is perfect)."""
        walls = [w for w in self.group_walls]
        if not walls:
            return 1.0
        mean = float(np.mean(walls))
        if mean <= 0:
            return 1.0
        return self.measured_makespan / mean

    @property
    def concurrency_efficiency(self) -> float:
        """Measured group overlap: sum(group walls) / (Ng x step wall).

        1.0 means the Ng groups kept the step wall fully busy in
        parallel; ~1/Ng is what sequential execution yields.  0.0 when
        nothing was measured.
        """
        if self.wall_time <= 0 or not self.group_walls:
            return 0.0
        return float(
            sum(self.group_walls) / (len(self.group_walls) * self.wall_time)
        )


def pack_stacks(
    costs: Sequence[float],
    n_workers: int,
    small_fraction: float = 0.5,
) -> list[list[int]]:
    """Bin small tasks into stacks so each stack is one pool submission.

    Fragment batches mix costs by ~8x (1x1x1 vs 2x2x2 cells); the small
    tasks pay per-submission overhead (pickling, future bookkeeping)
    without contributing to the makespan, which the big tasks set.  This
    groups every task whose cost is at most ``small_fraction`` times the
    largest cost into at most ``n_workers`` LPT-balanced bins; big tasks
    stay singletons.

    Parameters
    ----------
    costs:
        Relative cost per task (``task.cost()``).
    n_workers:
        Pool worker count — the bin budget for the small tasks (keeping
        at least one stack per worker preserves parallelism).
    small_fraction:
        Cost threshold, as a fraction of the batch maximum, below which
        a task counts as small.

    Returns
    -------
    list[list[int]]
        Groups of task indices covering ``0..len(costs)`` exactly once;
        singleton groups for big tasks, multi-member LPT bins for small
        ones.  When fewer than two tasks qualify as small, every group
        is a singleton (no packing).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    costs_arr = np.asarray(costs, dtype=float)
    n = len(costs_arr)
    if n == 0:
        return []
    cmax = float(np.max(costs_arr))
    small = np.nonzero(costs_arr <= small_fraction * cmax)[0]
    if len(small) < 2:
        return [[i] for i in range(n)]
    nbins = min(int(n_workers), len(small))
    summary = FragmentScheduler().schedule_by_costs(costs_arr[small], nbins)
    groups: list[list[int]] = [
        [i] for i in range(n) if costs_arr[i] > small_fraction * cmax
    ]
    for bin_members in summary.assignments:
        if bin_members:
            members = sorted(int(small[j]) for j in bin_members)
            groups.append(members)
    return groups


class FragmentScheduler:
    """Greedy LPT scheduler for fragments onto processor groups.

    Used both by the performance model (fragment size classes on the
    paper's machines) and by the real pool backends in
    :mod:`repro.parallel.executor`, which submit each batch
    heaviest-first so the workers realise exactly this assignment.

    Parameters
    ----------
    workload:
        Optional :class:`repro.parallel.flops.LS3DFWorkload` providing
        per-size flop counts; without one, fragment cost is the cell
        count (the linear-scaling proxy).
    """

    def __init__(self, workload: LS3DFWorkload | None = None) -> None:
        self.workload = workload

    # ------------------------------------------------------------------
    def fragment_costs(self, fragments: Sequence[Fragment]) -> np.ndarray:
        """Relative cost of every fragment (flops per iteration)."""
        if self.workload is not None:
            return np.array(
                [
                    self.workload.fragment_work(f.size).flops_per_iteration
                    for f in fragments
                ]
            )
        # Without a workload model, cost ~ number of cells (linear scaling).
        return np.array([float(f.ncells) for f in fragments])

    def schedule(
        self, fragments: Sequence[Fragment], ngroups: int
    ) -> ScheduleSummary:
        """Assign fragments to ``ngroups`` groups with the LPT heuristic.

        Parameters
        ----------
        fragments:
            The fragments to place (costs from :meth:`fragment_costs`).
        ngroups:
            Number of processor groups (workers).

        Returns
        -------
        ScheduleSummary
            Assignments, per-group loads, imbalance and makespan.
        """
        return self.schedule_by_costs(self.fragment_costs(fragments), ngroups)

    def schedule_tasks(self, tasks: Sequence, ngroups: int) -> ScheduleSummary:
        """Assign a batch of fragment tasks to groups.

        Uses each task's own relative-cost estimate (``task.cost()``), so
        it accepts plain :class:`repro.core.fragment_task.FragmentTask`
        batches and fused
        :class:`repro.core.fragment_task.FragmentPipelineTask` batches
        alike (a pipeline task's cost is its solve task's cost — the
        restriction and interior extraction are negligible next to the
        eigensolve).  This is the entry point the pool executors use to
        balance one PEtot_F batch over their workers.
        """
        return self.schedule_by_costs([t.cost() for t in tasks], ngroups)

    def schedule_grouped(
        self,
        tasks: Sequence,
        total_cores: int,
        cores_per_group: int | None = None,
        core_peak_gflops: float = 10.4,
        min_efficiency: float = 0.85,
    ) -> ScheduleSummary:
        """Assign tasks to *worker groups* of Np cores (two-level hierarchy).

        The band-parallel PEtot_F path hands every fragment a whole group
        of ``cores_per_group`` workers (the paper's Np cores per group)
        instead of a single worker; the bins of this schedule are
        therefore groups, and LPT balances fragments over
        ``total_cores // cores_per_group`` of them.  The returned summary
        carries ``cores_per_group`` and the modelled
        ``intra_group_efficiency`` so callers (e.g.
        ``examples/scaling_study.py``) can print the model next to the
        measured value.

        Parameters
        ----------
        tasks:
            Fragment (or pipeline) tasks with a ``cost()`` method.
        total_cores:
            Workers available to PEtot_F in total.
        cores_per_group:
            Np.  When ``None``,
            :func:`repro.parallel.groups.choose_group_size` picks the
            largest Np whose modelled intra-group efficiency stays above
            ``min_efficiency`` — the paper's empirical Np = 40 sweet-spot
            logic.
        core_peak_gflops:
            Per-core peak feeding the efficiency model (default: the
            Franklin Opteron's 10.4 Gflop/s).
        min_efficiency:
            Efficiency floor for the automatic Np choice.

        Returns
        -------
        ScheduleSummary
            LPT assignment over the group-sized bins, annotated with
            ``cores_per_group`` and the modelled intra-group efficiency.
        """
        if total_cores < 1:
            raise ValueError("total_cores must be positive")
        if cores_per_group is None:
            cores_per_group = choose_group_size(
                core_peak_gflops,
                max(1, len(tasks)),
                total_cores,
                min_efficiency=min_efficiency,
            )
        if cores_per_group < 1:
            raise ValueError("cores_per_group must be positive")
        ngroups = max(1, total_cores // cores_per_group)
        summary = self.schedule_tasks(tasks, ngroups)
        decomp = GroupDecomposition(
            total_cores=ngroups * cores_per_group, cores_per_group=cores_per_group
        )
        summary.cores_per_group = int(cores_per_group)
        summary.intra_group_efficiency = decomp.intra_group_efficiency(
            core_peak_gflops
        )
        return summary

    def schedule_by_costs(self, costs: Sequence[float], ngroups: int) -> ScheduleSummary:
        """Core LPT assignment for explicit cost values.

        Also used by the performance model, which works with fragment
        size classes rather than concrete Fragment objects.
        """
        if ngroups < 1:
            raise ValueError("ngroups must be positive")
        costs_arr = np.asarray(costs, dtype=float)
        if np.any(costs_arr < 0):
            raise ValueError("costs must be non-negative")
        order = np.argsort(costs_arr)[::-1]
        heap: list[tuple[float, int]] = [(0.0, g) for g in range(ngroups)]
        heapq.heapify(heap)
        assignments: list[list[int]] = [[] for _ in range(ngroups)]
        loads = np.zeros(ngroups)
        for idx in order:
            load, group = heapq.heappop(heap)
            assignments[group].append(int(idx))
            load += float(costs_arr[idx])
            loads[group] = load
            heapq.heappush(heap, (load, group))
        mean_load = float(np.mean(loads)) if ngroups else 0.0
        makespan = float(np.max(loads)) if ngroups else 0.0
        imbalance = makespan / mean_load if mean_load > 0 else 1.0
        return ScheduleSummary(
            assignments=assignments,
            group_loads=loads,
            imbalance=imbalance,
            makespan=makespan,
        )
