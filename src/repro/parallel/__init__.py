"""Parallel-machine substrate: the paper's performance evaluation, modelled.

The paper's evaluation (Table I, Figures 3-5) was produced on three
2008-era DOE machines — Franklin and Jaguar (Cray XT4) and Intrepid
(BlueGene/P) — with up to 131,072 cores.  None of that hardware is
available here, so this subpackage reproduces the evaluation through an
explicit execution model:

* :mod:`repro.parallel.machine`   — machine descriptions (cores, clock,
  flops/cycle, memory, network latency/bandwidth) for the three systems;
* :mod:`repro.parallel.groups`    — processor-group decomposition (Np cores
  per group, Ng groups) used by PEtot_F;
* :mod:`repro.parallel.scheduler` — assignment of fragments to groups with
  load balancing;
* :mod:`repro.parallel.flops`     — analytic floating-point operation counts
  of the four LS3DF kernels for a given physical problem;
* :mod:`repro.parallel.comm`      — communication cost models for the three
  generations of Gen_VF / Gen_dens data movement (file I/O, collective
  MPI, point-to-point isend/irecv);
* :mod:`repro.parallel.perfmodel` — the execution model that combines all of
  the above into per-iteration times, Tflop/s and %-of-peak figures;
* :mod:`repro.parallel.amdahl`    — Amdahl's-law fitting used for Figure 3;
* :mod:`repro.parallel.executor`  — *real* fragment-execution backends
  (serial, thread pool, persistent process pool) behind the
  :class:`repro.core.fragment_task.FragmentExecutor` protocol, for
  running actual fragment solves concurrently on local cores;
* :mod:`repro.parallel.distributed` — the paper's 1D slab data layout for
  the *global* steps: :class:`~repro.parallel.distributed.DistributedField`
  (scatter/gather/exchange), a slab-transpose distributed FFT that is
  bit-identical to ``numpy.fft.fftn``, and the per-slab
  :class:`~repro.parallel.distributed.GlobalStepTask` units the sharded
  GENPOT path pushes through the same executor backends;
* :mod:`repro.parallel.bands` — the band-parallel distributed
  eigensolver: :class:`~repro.parallel.bands.BandSlice` partitions of a
  fragment's band block, per-slice
  :class:`~repro.parallel.bands.BandBlockTask` units (H·psi and
  preconditioned-residual kernels, row-independent bit for bit) and the
  :class:`~repro.parallel.bands.BandGroup` root handle that makes
  ``all_band_cg`` run on a whole worker group — the paper's Np cores per
  fragment group — with bit-identical results;
* :mod:`repro.parallel.remote` — the *multi-node* backend: a
  length-prefixed-pickle wire protocol, the ``repro-worker`` daemon
  (:class:`~repro.parallel.remote.WorkerServer`) and the driver-side
  :class:`~repro.parallel.remote.RemoteExecutor` pool that runs fragment
  pipelines, GENPOT slabs and band slices on socket-connected workers —
  bit-identical to the serial backend, with heartbeats, timeouts,
  resubmission on worker death and graceful degradation to local
  execution;
* :mod:`repro.parallel.faults` — seeded deterministic fault injection
  (:class:`~repro.parallel.faults.FlakyWorker`,
  :class:`~repro.parallel.faults.FlakyExecutor`) for testing the
  failure model end to end.
"""

from repro.parallel.machine import Machine, FRANKLIN, JAGUAR, INTREPID, machine_by_name
from repro.parallel.groups import (
    GroupDecomposition,
    choose_group_size,
    partition_worker_counts,
)
from repro.parallel.scheduler import (
    FragmentScheduler,
    GroupExecutionRecord,
    ScheduleSummary,
)
from repro.parallel.flops import LS3DFWorkload, FragmentWork
from repro.parallel.comm import CommunicationModel, CommScheme
from repro.parallel.perfmodel import LS3DFPerformanceModel, PerformancePoint, DirectDFTCostModel
from repro.parallel.amdahl import (
    amdahl_speedup,
    fit_amdahl,
    AmdahlFit,
    SerialFractionEstimate,
    intra_group_efficiency_history,
    measured_intra_group_efficiency,
    measured_serial_fraction,
    serial_fraction_history,
    sharded_genpot_estimate,
)
from repro.parallel.bands import (
    BandBlockResult,
    BandBlockTask,
    BandGroup,
    BandGroupExecutor,
    BandGroupStats,
    BandSlice,
    band_slices,
    run_band_block_task,
)
from repro.parallel.distributed import (
    DistributedField,
    GlobalStepExecutor,
    GlobalStepResult,
    GlobalStepTask,
    distributed_fftn,
    distributed_ifftn,
    run_global_step_task,
    sharded_hartree_potential,
    sharded_mix,
    sharded_xc,
    slab_bounds,
)
from repro.parallel.executor import (
    ExecutionReport,
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentPipelineTask,
    FragmentTask,
    FragmentTaskResult,
    PipelineFragmentExecutor,
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.parallel.remote import (
    LocalWorkerPool,
    NoRemoteWorkersError,
    RemoteExecutor,
    RemoteExecutorConfig,
    RemoteProtocolError,
    RemoteTaskError,
    WorkerDiedError,
    WorkerServer,
    start_worker_thread,
    worker_main,
)
from repro.parallel.faults import FaultPlan, FlakyExecutor, FlakyWorker

__all__ = [
    "Machine",
    "FRANKLIN",
    "JAGUAR",
    "INTREPID",
    "machine_by_name",
    "GroupDecomposition",
    "choose_group_size",
    "partition_worker_counts",
    "FragmentScheduler",
    "GroupExecutionRecord",
    "ScheduleSummary",
    "LS3DFWorkload",
    "FragmentWork",
    "CommunicationModel",
    "CommScheme",
    "LS3DFPerformanceModel",
    "PerformancePoint",
    "DirectDFTCostModel",
    "amdahl_speedup",
    "fit_amdahl",
    "AmdahlFit",
    "SerialFractionEstimate",
    "intra_group_efficiency_history",
    "measured_intra_group_efficiency",
    "measured_serial_fraction",
    "serial_fraction_history",
    "sharded_genpot_estimate",
    "BandBlockResult",
    "BandBlockTask",
    "BandGroup",
    "BandGroupExecutor",
    "BandGroupStats",
    "BandSlice",
    "band_slices",
    "run_band_block_task",
    "DistributedField",
    "GlobalStepExecutor",
    "GlobalStepResult",
    "GlobalStepTask",
    "distributed_fftn",
    "distributed_ifftn",
    "run_global_step_task",
    "sharded_hartree_potential",
    "sharded_mix",
    "sharded_xc",
    "slab_bounds",
    "ExecutionReport",
    "FragmentExecutor",
    "FragmentPipelineResult",
    "FragmentPipelineTask",
    "FragmentTask",
    "FragmentTaskResult",
    "PipelineFragmentExecutor",
    "ProcessPoolFragmentExecutor",
    "SerialFragmentExecutor",
    "ThreadPoolFragmentExecutor",
    "run_fragment_pipeline_task",
    "solve_fragment_task",
    "LocalWorkerPool",
    "NoRemoteWorkersError",
    "RemoteExecutor",
    "RemoteExecutorConfig",
    "RemoteProtocolError",
    "RemoteTaskError",
    "WorkerDiedError",
    "WorkerServer",
    "start_worker_thread",
    "worker_main",
    "FaultPlan",
    "FlakyExecutor",
    "FlakyWorker",
]
