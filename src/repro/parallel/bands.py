"""Band-parallel distributed eigensolver: worker groups inside a fragment.

The paper's two-level hierarchy gives every fragment group ``Np`` cores,
so the all-band CG *inside one fragment* is itself distributed: each core
owns a share of the heavy per-band work, while small dense cross-band
reductions (Gram/overlap matrices, subspace rotations, Rayleigh-Ritz) run
group-wide every CG sweep.  Until this module existed the reproduction
solved each fragment's band block on a single worker, so one huge
fragment bounded the PEtot_F wall time no matter how many workers were
available — the largest-fragment floor this subsystem removes.

This is the local-machine analogue of those ``Np``-core groups, built on
the same executor machinery as the fragment and global-step task
families:

* :func:`band_slices` / :class:`BandSlice` — deterministic contiguous
  partition of a band block's rows (same block distribution as
  :func:`repro.parallel.distributed.slab_bounds`).
* :class:`BandBlockTask` / :func:`run_band_block_task` — picklable
  per-slice units of eigensolver work, executed through ``run_bands`` on
  every backend in :mod:`repro.parallel.executor`.  Three kinds exist:
  ``"apply_local"`` (the FFT-heavy kinetic + local-potential share of
  H·psi), ``"apply_h"`` (the full H·psi share including the
  Kleinman-Bylander term via the blocked fixed-shape kernel) and
  ``"residual_precond"`` (the preconditioned-residual step of one CG
  sweep).  All kernels are **row-independent bit for bit** — elementwise
  products, per-band batched FFTs, per-row norms, and globally-aligned
  fixed-shape projector blocks — so a sliced run concatenates to exactly
  the full-block result.
* :class:`BandGroup` — the driver-side handle one grouped eigensolve
  holds: it scatters the band block into slices, pushes
  :class:`BandBlockTask` batches through the executor, gathers the rows
  back, and performs the root share (the dense cross-band algebra) on
  the full block.  :func:`repro.pw.eigensolver.all_band_cg` accepts one
  via ``band_groups=``.

Why the split is drawn where it is: a *variable-shape* BLAS product is
not row-slice stable (a 1-row GEMM may dispatch to GEMV with a different
accumulation order), so the dense cross-band algebra — Gram/overlap
matrices, subspace rotations — stays on the group root operating on full
blocks of identical shape.  Per-band work rides in the slices: the FFT +
pointwise kernels are slice-stable by the verified pocketfft batching
property (the same one the slab-distributed FFT of
:mod:`repro.parallel.distributed` rests on), and since PR 6 the nonlocal
KB term is too — :meth:`repro.pw.hamiltonian.Hamiltonian.add_nonlocal`
runs as fixed-shape GEMMs over globally-aligned band blocks whose
outputs are content-independent per column, so any slicing reproduces
the full-block bits (``sliced_nonlocal=False`` keeps it on the root).
That division happens to mirror the paper's: the q-space data
parallelism scales with Np, the group-wide reductions are what erode
intra-group efficiency at large Np
(:meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`).

Layering: depends on :mod:`repro.core.fragment_task` (the per-process
static-problem cache keyed by task fingerprints) and :mod:`repro.pw`;
the executor backends import the task kernel from here, and the grouped
solve kernels in :mod:`repro.core.fragment_task` import
:class:`BandGroup` lazily (the same inversion `core.scf` uses for the
executors).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.fragment_task import (
    FragmentTask,
    TaskProblem,
    get_task_problem,
    potential_fingerprint,
    resolve_screening_potential,
)
from repro.parallel.amdahl import measured_intra_group_efficiency
from repro.parallel.distributed import slab_bounds


@dataclass(frozen=True)
class BandSlice:
    """One worker's contiguous share of a fragment's band block.

    Attributes
    ----------
    index:
        Slice index (0-based position within the group).
    nslices:
        Total number of slices the block is split into.
    lo, hi:
        Half-open ``[lo, hi)`` band-row range this slice owns.  Empty
        slices (``lo == hi``) are legal when there are more workers than
        bands, matching the empty trailing slabs of
        :func:`repro.parallel.distributed.slab_bounds`.
    """

    index: int
    nslices: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.nslices:
            raise ValueError("slice index out of range")
        if self.lo > self.hi:
            raise ValueError("slice bounds must satisfy lo <= hi")

    @property
    def nbands(self) -> int:
        """Number of band rows this slice owns."""
        return self.hi - self.lo


def band_slices(nbands: int, nslices: int) -> list[BandSlice]:
    """Deterministic contiguous partition of ``nbands`` rows into slices.

    The first ``nbands % nslices`` slices get one extra row — the same
    block distribution as the slab layout, so the partition depends only
    on ``(nbands, nslices)`` and every backend sees identical bounds.

    Parameters
    ----------
    nbands:
        Number of band rows to split.
    nslices:
        Number of slices (may exceed ``nbands``; trailing slices empty).

    Returns
    -------
    list[BandSlice]
        ``nslices`` slices covering ``0..nbands``.
    """
    return [
        BandSlice(index=k, nslices=nslices, lo=lo, hi=hi)
        for k, (lo, hi) in enumerate(slab_bounds(nbands, nslices))
    ]


@dataclass
class BandBlockTask:
    """One band slice's worth of eigensolver work (picklable).

    Mirrors :class:`repro.core.fragment_task.FragmentTask` and
    :class:`repro.parallel.distributed.GlobalStepTask` for the band
    layer: a self-contained description the executor backends ship to
    worker threads/processes.

    Attributes
    ----------
    kind:
        Kernel selector — ``"apply_local"`` (kinetic + local-potential
        share of H·psi for the slice's rows), ``"apply_h"`` (the same
        plus the slice's Kleinman-Bylander term via the blocked
        fixed-shape kernel) or ``"residual_precond"`` (residual, per-row
        norms and preconditioned residual of one CG sweep).
    bands:
        The :class:`BandSlice` this task covers (bookkeeping for the
        gathers, and the global band offset the blocked nonlocal kernel
        aligns to; the arrays below already carry only the slice's rows).
    template:
        The owning fragment's solve task.  Its
        :meth:`~repro.core.fragment_task.FragmentTask.static_fingerprint`
        keys the per-process static-problem cache, so pool workers build
        each fragment's basis/Hamiltonian once and reuse it for every
        slice of every sweep; the iteration's screening potential rides
        either inline (``screening_potential``) or — with the PR 6
        install channel — as a fingerprint key (``screening_key``) the
        worker resolves from its installed-potential store, so the array
        is pickled once per (fragment, iteration, worker) instead of
        once per slice per stage.  :class:`BandGroup` strips the
        (never-read) warm-start block either way.
    block:
        The slice's rows of the primary band block (``x`` rows for
        ``apply_local``; ``x`` rows for ``residual_precond``).
    aux:
        Second per-slice array (``hx`` rows for ``residual_precond``).
    evals:
        Per-slice eigenvalue entries (``residual_precond``).
    label:
        Display/bookkeeping label, defaulting to
        ``<fragment>:<kind>[index/nslices]``.
    """

    kind: str
    bands: BandSlice
    template: FragmentTask
    block: np.ndarray
    aux: np.ndarray | None = None
    evals: np.ndarray | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = (
                f"{self.template.label}:{self.kind}"
                f"[{self.bands.index}/{self.bands.nslices}]"
            )

    def cost(self) -> float:
        """Relative cost for LPT scheduling (rows x plane waves)."""
        return float(self.block.size)

    def with_potential_payload(self, key: str, payload: np.ndarray) -> "BandBlockTask":
        """Copy of this task with the installed potential attached inline.

        The executor's retry path for
        :class:`~repro.core.fragment_task.PotentialNotInstalledError`;
        returns ``self`` unchanged when the key does not match.
        """
        t = self.template
        if t.screening_key != key or t.screening_potential is not None:
            return self
        return replace(self, template=replace(t, screening_potential=payload))


@dataclass
class BandBlockResult:
    """Result of one executed band-slice task.

    Attributes
    ----------
    label:
        The task's label.
    index:
        Slice index, so gathers can re-order results defensively.
    data:
        The kernel's primary output rows (H_local·x slice, or the
        preconditioned residual ``w`` slice).
    extra:
        Secondary per-row output (``residual_precond`` returns the
        residual norms here); ``None`` otherwise.
    wall_time:
        In-worker wall-clock seconds of the kernel.
    worker_pid:
        PID of the process that executed the task.
    """

    label: str
    index: int
    data: np.ndarray
    extra: np.ndarray | None
    wall_time: float
    worker_pid: int


def run_band_block_task(
    task: BandBlockTask, problem: TaskProblem | None = None
) -> BandBlockResult:
    """Execute one band-slice task — the shared per-slice eigensolver kernel.

    Like :func:`repro.core.fragment_task.solve_fragment_task` for whole
    fragments, this runs identically in the calling process and inside
    pool workers; every backend's ``run_bands`` dispatches here.

    Concurrency note: unlike the whole-fragment kernel this does **not**
    take the problem lock — all slices of one grouped solve install the
    *same* screening potential (an idempotent assignment), and the
    orchestrating :class:`BandGroup` owns the fragment's problem for the
    duration of the solve (grouped solves run one fragment at a time).

    Parameters
    ----------
    task:
        The per-slice work unit; unknown ``kind`` values raise
        ``ValueError``.
    problem:
        Optional pre-built static problem, bypassing the per-process
        cache lookup.

    Returns
    -------
    BandBlockResult
        The transformed rows (plus per-row extras), with wall time and
        worker PID for the timing accounting.
    """
    t0 = time.perf_counter()
    if problem is None:
        problem = get_task_problem(task.template)
    if task.kind in ("apply_local", "apply_h"):
        h = problem.hamiltonian
        # Raises PotentialNotInstalledError for an uninstalled key — the
        # executor retries this task with the payload attached.
        v_screen = resolve_screening_potential(task.template)
        # Idempotent across the slices of one grouped solve (same array).
        h.set_effective_potential(v_screen)
        cblock = np.asarray(task.block, dtype=complex)
        data = h.apply_local(cblock)
        if task.kind == "apply_h":
            # Blocked fixed-shape KB kernel aligned to the GLOBAL band
            # index — concatenated slices match the full-block bits.
            h.add_nonlocal(data, cblock, band_offset=task.bands.lo)
        extra = None
    elif task.kind == "residual_precond":
        precond = problem.hamiltonian.preconditioner()
        r = task.aux - task.evals[:, None] * task.block
        extra = np.linalg.norm(r, axis=1)
        data = r * precond[None, :]
    else:
        raise ValueError(f"unknown band task kind {task.kind!r}")
    return BandBlockResult(
        label=task.label,
        index=task.bands.index,
        data=data,
        extra=extra,
        wall_time=time.perf_counter() - t0,
        worker_pid=os.getpid(),
    )


@runtime_checkable
class BandGroupExecutor(Protocol):
    """A fragment-execution backend that also runs band-slice tasks.

    All backends in :mod:`repro.parallel.executor` implement this;
    ``run_bands`` takes a batch of :class:`BandBlockTask` and returns an
    execution report whose ``results`` are :class:`BandBlockResult`
    objects in task order (the deterministic slice order the gathers
    rely on).
    """

    n_workers: int

    def run_bands(self, tasks: Sequence[BandBlockTask]):
        """Execute a batch of per-slice band tasks.

        Parameters
        ----------
        tasks:
            One :class:`BandBlockTask` per slice of one stage.

        Returns
        -------
        ExecutionReport
            With ``results`` (:class:`BandBlockResult`) in task order.
        """
        ...


@dataclass
class BandGroupStats:
    """Accounting of one grouped eigensolve (per fragment).

    Attributes
    ----------
    nslices:
        Band-slice count (the local analogue of Np cores per group).
    stages:
        Number of sliced stages the solve dispatched (H·psi applications
        plus residual/precondition steps — each stage is one
        ``run_bands`` batch of ``nslices`` tasks).
    submissions:
        Total band tasks submitted (``stages * nslices``).
    task_times:
        In-worker wall time of every band task, in submission order —
        the parallel bucket of the Amdahl accounting.
    """

    nslices: int
    stages: int = 0
    submissions: int = 0
    task_times: list[float] = field(default_factory=list)

    @property
    def task_cpu(self) -> float:
        """Summed in-worker band-task time (serial-equivalent cost)."""
        return float(sum(self.task_times))

    def intra_group_efficiency(self, wall_time: float) -> float:
        """Measured intra-group efficiency of this solve.

        Delegates to
        :func:`repro.parallel.amdahl.measured_intra_group_efficiency`
        (``task_cpu / (nslices * wall_time)``) — the measured
        counterpart of the modelled
        :meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`:
        1.0 means the group's workers were busy with sliced work for the
        whole solve; the gap is root-side dense algebra plus dispatch
        overhead (the analogue of the paper's group-wide reductions).
        """
        return measured_intra_group_efficiency(
            self.task_cpu, wall_time, self.nslices
        )


class BandGroup:
    """Driver-side handle of one band-parallel eigensolve.

    Bound to one fragment's solve task and an executor, this is what
    :func:`repro.pw.eigensolver.all_band_cg` receives as ``band_groups=``:
    the solver calls :meth:`apply_h` and :meth:`residual_precond` instead
    of touching the Hamiltonian directly, and this class scatters the
    block rows into :class:`BandBlockTask` batches, gathers the results,
    and performs the root-side share.

    Parameters
    ----------
    executor:
        Backend implementing :class:`BandGroupExecutor` (``run_bands``).
    nslices:
        Number of band slices — the local analogue of the paper's Np
        cores per fragment group.
    template:
        The fragment's solve task (must carry a real
        ``screening_potential`` or an installed ``screening_key``);
        shipped with every band task so pool workers can reach the
        cached static problem.
    problem:
        The driver-side static problem (for the root's nonlocal term and
        Hamiltonian bookkeeping); looked up from the per-process cache
        when omitted.
    install:
        Install the screening potential once per worker through
        ``executor.install_state`` and strip the array from the shipped
        template (PR 6); falls back to inline shipping when the executor
        lacks an install channel.  Bit-identical either way.
    sliced_nonlocal:
        Run the Kleinman-Bylander term inside the slices (``"apply_h"``
        tasks, blocked fixed-shape kernel) instead of on the root.
        Bit-identical either way; automatically falls back to the root
        path when the blocked kernel is disabled
        (``REPRO_NONLOCAL_BLOCK=0``), whose single variable-shape GEMM
        is not slice-stable.
    """

    def __init__(
        self,
        executor: BandGroupExecutor,
        nslices: int,
        template: FragmentTask,
        problem: TaskProblem | None = None,
        install: bool = True,
        sliced_nonlocal: bool = True,
    ) -> None:
        if nslices < 1:
            raise ValueError("nslices must be positive")
        if not hasattr(executor, "run_bands"):
            raise TypeError(
                f"band groups need an executor with run_bands(); "
                f"{type(executor).__name__} does not provide one"
            )
        self.executor = executor
        self.nslices = int(nslices)
        # Every band task of every stage ships this template (the process
        # backend pickles it each time), so drop the warm-start block —
        # neither band kernel reads it, and it is the largest field after
        # the screening potential, which the install channel strips next.
        self.template = replace(template, initial_coefficients=None)
        self.problem = problem if problem is not None else get_task_problem(template)
        self.sliced_nonlocal = bool(sliced_nonlocal)
        self.install = bool(install) and hasattr(executor, "install_state")
        if self.install and self.template.screening_potential is not None:
            v = np.asarray(self.template.screening_potential)
            key = potential_fingerprint(v)
            executor.install_state(key, v)
            self.template = replace(
                self.template, screening_potential=None, screening_key=key
            )
        self.stats = BandGroupStats(nslices=self.nslices)

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        kind: str,
        block: np.ndarray,
        aux: np.ndarray | None = None,
        evals: np.ndarray | None = None,
    ) -> list[BandBlockResult]:
        """Scatter one block into slice tasks, run them, gather in order."""
        tasks = [
            BandBlockTask(
                kind=kind,
                bands=s,
                template=self.template,
                block=block[s.lo : s.hi],
                aux=None if aux is None else aux[s.lo : s.hi],
                evals=None if evals is None else evals[s.lo : s.hi],
            )
            for s in band_slices(block.shape[0], self.nslices)
        ]
        report = self.executor.run_bands(tasks)
        results = list(report.results)
        self.stats.stages += 1
        self.stats.submissions += len(tasks)
        self.stats.task_times.extend(r.wall_time for r in results)
        return results

    def apply_h(self, block: np.ndarray) -> np.ndarray:
        """Group-distributed H·psi on a band block, bit-identical to serial.

        With ``sliced_nonlocal`` (the default) each slice computes its
        rows' *full* H·psi — kinetic + local potential plus its share of
        the Kleinman-Bylander term through the blocked fixed-shape kernel
        aligned to global band indices — and the root only concatenates.
        Otherwise the slices carry the row-independent
        :meth:`~repro.pw.hamiltonian.Hamiltonian.apply_local` share and
        the root adds the nonlocal term on the full block.  Both paths
        produce identical bits to the single-worker ``h.apply``.
        """
        if self.sliced_nonlocal and self.problem.hamiltonian.nonlocal_block > 0:
            results = self._run_stage("apply_h", block)
            return np.concatenate([r.data for r in results], axis=0)
        results = self._run_stage("apply_local", block)
        out = np.concatenate([r.data for r in results], axis=0)
        return self.problem.hamiltonian.add_nonlocal(out, block)

    def residual_precond(
        self, x: np.ndarray, hx: np.ndarray, evals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Group-distributed preconditioned-residual step of one CG sweep.

        Each slice forms its rows' residual ``r = hx - evals x``, the
        per-row norms and the preconditioned residual ``r * K`` — all
        row-independent — and the root gathers them in slice order.

        Returns
        -------
        tuple[np.ndarray, np.ndarray]
            ``(w, rnorm)`` exactly as the serial path computes them.
        """
        results = self._run_stage("residual_precond", x, aux=hx, evals=evals)
        w = np.concatenate([r.data for r in results], axis=0)
        rnorm = np.concatenate([r.extra for r in results], axis=0)
        return w, rnorm
