"""repro — reproduction of the LS3DF linearly scaling 3D fragment method.

Public API highlights
---------------------
* :class:`repro.core.LS3DF` — the LS3DF solver (divide-and-conquer DFT).
* :class:`repro.pw.DirectSCF` — the conventional O(N^3) plane-wave solver.
* :mod:`repro.atoms` — zinc-blende / alloy builders and the Keating VFF.
* :mod:`repro.parallel` — machine models reproducing the paper's
  performance evaluation (Table I, Figures 3-5).
* :mod:`repro.analysis` — band-edge state analysis (Figure 7).
"""

from repro import analysis, atoms, core, io, parallel, pw
from repro.core import LS3DF, compare_ls3df_to_direct
from repro.pw import DirectSCF

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "atoms",
    "core",
    "io",
    "parallel",
    "pw",
    "LS3DF",
    "DirectSCF",
    "compare_ls3df_to_direct",
    "__version__",
]
