"""Core LS3DF algorithm — the paper's primary contribution.

The linearly scaling three-dimensional fragment (LS3DF) method divides a
periodic supercell into an ``m1 x m2 x m3`` grid of cells and, from every
grid corner, derives 8 overlapping fragments (sizes 1x1x1 ... 2x2x2 cells)
carrying weights +1/-1 chosen so that artificial boundary (surface, edge,
corner) effects cancel between fragments while every interior point of the
system is represented exactly once.  Each self-consistent iteration then
performs the paper's four steps:

* **Gen_VF**   (:mod:`repro.core.patching`)    — restrict the global input
  potential to every fragment box and add the fixed passivation potential;
* **PEtot_F**  (:mod:`repro.core.fragment_task` /
  :mod:`repro.core.fragment_solver`) — solve the Kohn-Sham eigenproblem of
  every fragment with the plane-wave substrate, dispatched through a
  pluggable execution backend (serial, thread pool or process pool; see
  :mod:`repro.parallel.executor`);
* **Gen_dens** (:mod:`repro.core.patching`)    — patch the weighted fragment
  densities into the global charge density;
* **GENPOT**   (:mod:`repro.core.genpot`)      — solve the global Poisson
  equation, add exchange-correlation, mix with previous iterations.

:mod:`repro.core.driver` exposes the high-level :class:`~repro.core.driver.LS3DF`
API; :mod:`repro.core.compare` provides the LS3DF-vs-direct-DFT accuracy
comparisons reported in the paper.
"""

from repro.core.fragments import Fragment, enumerate_fragments, fragment_weight, coverage_map
from repro.core.division import SpatialDivision
from repro.core.passivation import passivate_fragment
from repro.core.patching import (
    restrict_to_fragment,
    patch_fragment_fields,
    patch_contributions,
    patching_identity_residual,
    tree_reduce_fields,
)
from repro.core.genpot import GlobalPotentialSolver
from repro.core.fragment_task import (
    ExecutionReport,
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentPipelineTask,
    FragmentStateCache,
    FragmentTask,
    FragmentTaskResult,
    PipelineFragmentExecutor,
    clear_problem_cache,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.core.fragment_solver import FragmentSolveResult, FragmentSolver
from repro.core.scf import LS3DFSCF, LS3DFResult, IterationTimings
from repro.core.driver import LS3DF
from repro.core.compare import compare_ls3df_to_direct, ComparisonReport

__all__ = [
    "Fragment",
    "enumerate_fragments",
    "fragment_weight",
    "coverage_map",
    "SpatialDivision",
    "passivate_fragment",
    "restrict_to_fragment",
    "patch_fragment_fields",
    "patch_contributions",
    "patching_identity_residual",
    "tree_reduce_fields",
    "GlobalPotentialSolver",
    "ExecutionReport",
    "FragmentExecutor",
    "FragmentPipelineResult",
    "FragmentPipelineTask",
    "FragmentStateCache",
    "FragmentTask",
    "FragmentTaskResult",
    "PipelineFragmentExecutor",
    "clear_problem_cache",
    "run_fragment_pipeline_task",
    "solve_fragment_task",
    "FragmentSolveResult",
    "FragmentSolver",
    "LS3DFSCF",
    "LS3DFResult",
    "IterationTimings",
    "LS3DF",
    "compare_ls3df_to_direct",
    "ComparisonReport",
]
