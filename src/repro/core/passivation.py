"""Fragment surface passivation with (pseudo-)hydrogen atoms.

Cutting a fragment out of the periodic supercell creates artificial
surfaces with dangling bonds.  Following the paper (and Wang & Li, PRB 69,
153302 (2004)), every bond from a fragment atom to a neighbour that was
left outside the fragment is terminated by a hydrogen-like passivation
atom placed along the cut bond.  For polar (II-VI) materials, partially
charged pseudo-hydrogens are used: a cut anion bond is terminated by an
``H_cation``-type passivant and a cut cation bond by an ``H_anion`` type,
which keeps each fragment charge-neutral and removes surface states from
the gap.

The passivation potential Delta V_F of the paper is, in this
implementation, simply the local + ionic potential of these passivation
atoms (plus their contribution to the fragment's electron count); it is
fixed during the SCF loop and only nonzero near the fragment boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.neighbors import build_neighbor_list, tetrahedral_bond_cutoff
from repro.atoms.structure import Structure, get_species
from repro.core.division import SpatialDivision
from repro.core.fragments import Fragment


# Fraction of the original bond length at which the passivation atom is
# placed (a typical X-H bond is ~60% of an X-X bond).
DEFAULT_BOND_FRACTION = 0.60

# Species whose dangling bonds are terminated by the "anion-like" pseudo-H
# (i.e. the cut neighbour was an anion) and vice versa.
_CATION_SPECIES = {"Zn", "Cd", "Ga", "Si", "H_cation"}


@dataclass
class PassivationResult:
    """Passivated fragment structure plus bookkeeping.

    Attributes
    ----------
    structure:
        Fragment atoms followed by the passivation atoms, in the
        fragment-box frame.
    n_passivants:
        Number of passivation atoms added.
    passivant_indices:
        Indices (within ``structure``) of the passivation atoms.
    cut_bonds:
        List of ``(fragment_atom_index, neighbour_symbol)`` describing the
        bonds that were cut and terminated.
    """

    structure: Structure
    n_passivants: int
    passivant_indices: list[int]
    cut_bonds: list[tuple[int, str]]


def _passivant_symbol_for(cut_neighbour_symbol: str, polar: bool) -> str:
    """Choose the passivation species for a bond cut towards ``cut_neighbour_symbol``."""
    if not polar:
        return "H"
    if cut_neighbour_symbol in _CATION_SPECIES:
        return "H_cation"
    return "H_anion"


def passivate_fragment(
    division: SpatialDivision,
    fragment: Fragment,
    bond_fraction: float = DEFAULT_BOND_FRACTION,
    polar: bool = True,
    bond_cutoff: float | None = None,
) -> PassivationResult:
    """Build the passivated fragment structure for one fragment.

    Bonds are determined on the *global* supercell (periodic neighbour
    list); every bond from a fragment atom to an atom outside the fragment
    is replaced by a passivation atom along the original bond direction at
    ``bond_fraction`` of the original bond length.

    Parameters
    ----------
    division:
        The spatial division owning the supercell and the atom assignment.
    fragment:
        The fragment to passivate.
    bond_fraction:
        Passivant distance as a fraction of the cut bond length.
    polar:
        Use partially-charged pseudo-hydrogens (``H_cation``/``H_anion``)
        instead of plain ``H``.
    bond_cutoff:
        Override for the neighbour cutoff (Bohr); by default the first-
        neighbour (tetrahedral) cutoff of the supercell is used.

    Returns
    -------
    PassivationResult
    """
    if not 0.0 < bond_fraction < 1.0:
        raise ValueError("bond_fraction must lie in (0, 1)")
    supercell = division.structure
    if bond_cutoff is None:
        bond_cutoff = tetrahedral_bond_cutoff(supercell)
    nl = build_neighbor_list(supercell, bond_cutoff)
    adjacency = nl.adjacency(supercell.natoms)

    frag_atoms = division.atoms_in_fragment(fragment)
    frag_set = set(int(i) for i in frag_atoms)
    frag_structure = division.fragment_structure(fragment)
    if frag_structure.natoms != len(frag_atoms):
        raise RuntimeError("fragment structure / atom assignment inconsistency")

    box = division.fragment_box(fragment)
    box_cell = np.asarray(box.cell)

    symbols = frag_structure.symbols
    pass_symbols: list[str] = []
    pass_positions: list[np.ndarray] = []
    cut_bonds: list[tuple[int, str]] = []

    # Map global atom index -> local index within the fragment structure.
    local_of_global = {int(g): i for i, g in enumerate(frag_atoms)}

    for local_idx, global_idx in enumerate(frag_atoms):
        for neighbour, vec in adjacency[int(global_idx)]:
            if neighbour in frag_set:
                continue
            # Bond cut: place a passivant along vec from the fragment atom.
            bond_len = float(np.linalg.norm(vec))
            if bond_len <= 0:
                continue
            direction = vec / bond_len
            neighbour_symbol = supercell.symbols[neighbour]
            pass_sym = _passivant_symbol_for(neighbour_symbol, polar)
            h_radius = get_species(pass_sym).covalent_radius
            own_radius = get_species(supercell.symbols[int(global_idx)]).covalent_radius
            # Bond-length model: fraction of the cut bond, but never shorter
            # than the sum of covalent radii scaled by the same fraction.
            target = max(bond_fraction * bond_len, bond_fraction * (h_radius + own_radius))
            pos = frag_structure.positions[local_idx] + direction * target
            pass_symbols.append(pass_sym)
            pass_positions.append(pos)
            cut_bonds.append((local_idx, neighbour_symbol))

    all_symbols = list(symbols) + pass_symbols
    if pass_positions:
        all_positions = np.vstack([frag_structure.positions, np.asarray(pass_positions)])
    else:
        all_positions = frag_structure.positions
    passivated = Structure(box_cell, all_symbols, all_positions)
    n_atoms = frag_structure.natoms
    return PassivationResult(
        structure=passivated,
        n_passivants=len(pass_symbols),
        passivant_indices=list(range(n_atoms, n_atoms + len(pass_symbols))),
        cut_bonds=cut_bonds,
    )
