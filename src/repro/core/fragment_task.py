"""The single fragment-solve kernel shared by every execution backend.

PEtot_F — solving each fragment's Kohn-Sham problem in its buffered,
passivated box — is the embarrassingly parallel step the paper exploits
for near-perfect scaling.  This module is the one place that step is
implemented:

* :class:`FragmentTask` is a *picklable*, self-contained description of
  one fragment solve (geometry, passivated atoms, screening potential,
  solver controls, optional warm-start wavefunctions), mirroring the way
  the production code ships fragment data between MPI groups rather than
  live solver objects.
* :func:`solve_fragment_task` executes one task.  It is the kernel that
  :class:`repro.core.fragment_solver.FragmentSolver` calls in-process and
  that the executors in :mod:`repro.parallel.executor` call from worker
  threads or processes.
* A per-process cache of the static (iteration-independent) problem data
  — basis, Hamiltonian, occupations — reproduces the paper's "store
  everything in the LS3DF global module" optimisation: the expensive
  setup happens once per fragment per process, so the second and later
  outer iterations are cheap even inside pool workers.
* :class:`FragmentStateCache` holds warm-start wavefunctions per fragment
  *outside* any particular backend, so warm starts survive no matter
  which executor (serial, threads, processes) ran the previous iteration.
* :class:`FragmentExecutor` is the protocol every backend implements.

Layering note: this module deliberately depends only on the plane-wave
substrate (:mod:`repro.pw`) and :mod:`repro.atoms`; the backends in
:mod:`repro.parallel.executor` depend on it, never the other way round.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.atoms.structure import Structure
from repro.pw.basis import PlaneWaveBasis
from repro.pw.density import compute_density, occupations_for_insulator
from repro.pw.eigensolver import all_band_cg, band_by_band_cg
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.pseudopotential import PseudopotentialSet, default_pseudopotentials


@dataclass
class FragmentTask:
    """Self-contained description of one fragment solve (picklable).

    Attributes
    ----------
    label:
        Fragment label (bookkeeping; also the warm-start cache key).
    cell:
        Fragment box edge lengths (Bohr).
    grid_shape:
        Fragment FFT grid shape.
    symbols, positions:
        Fragment atoms (including passivants).
    screening_potential:
        The Gen_VF output for this fragment (restricted global potential
        plus passivation potential).  May be ``None`` on template tasks
        used only for fingerprinting/problem construction; a task handed
        to :func:`solve_fragment_task` must carry a real array.
    ecut:
        Plane-wave cutoff (Hartree).
    n_empty:
        Extra empty bands.
    eigensolver:
        ``"all_band"`` (BLAS-3) or ``"band_by_band"`` (BLAS-2 reference).
    tolerance, max_iterations:
        Eigensolver controls.
    initial_coefficients:
        Optional warm-start wavefunctions (previous outer iteration).
    pseudopotentials:
        Model pseudopotential set; ``None`` means the default set.
    weight:
        The fragment's patching weight alpha_F (carried for bookkeeping).
    ncells:
        Number of grid cells the fragment covers (1..8); the primary
        relative-cost signal for load balancing.
    cost_hint:
        Optional explicit relative cost for the scheduler; when ``None``
        an estimate from the grid volume is used (see :meth:`cost`).
    return_coefficients:
        Ship the converged wavefunctions back in the result (needed for
        warm starts across iterations; the default).
    screening_key:
        Install-channel reference (PR 6): when the screening potential
        was installed once per worker via
        :func:`install_potential`, tasks carry this fingerprint key
        instead of the array and the kernels resolve it with
        :func:`fetch_potential` — so band-slice and pipeline tasks stop
        re-pickling the same potential on every submission.
    """

    label: str
    cell: tuple[float, float, float]
    grid_shape: tuple[int, int, int]
    symbols: list[str]
    positions: np.ndarray
    screening_potential: np.ndarray | None
    ecut: float
    n_empty: int = 2
    eigensolver: str = "all_band"
    tolerance: float = 1e-5
    max_iterations: int = 60
    initial_coefficients: np.ndarray | None = None
    pseudopotentials: PseudopotentialSet | None = None
    weight: int = 1
    ncells: int = 1
    cost_hint: float | None = None
    return_coefficients: bool = True
    screening_key: str | None = None

    def cost(self) -> float:
        """Relative cost for load balancing (grid volume as npw proxy)."""
        if self.cost_hint is not None:
            return float(self.cost_hint)
        return float(np.prod(self.grid_shape))

    def static_fingerprint(self) -> str:
        """Digest of the iteration-independent problem data.

        Two tasks with equal fingerprints share basis, Hamiltonian and
        occupations, so the cached static problem may be reused across
        outer iterations (only the screening potential changes).
        """
        h = hashlib.sha256()
        h.update(self.label.encode())
        h.update(np.asarray(self.cell, dtype=float).tobytes())
        h.update(np.asarray(self.grid_shape, dtype=np.int64).tobytes())
        h.update(",".join(self.symbols).encode())
        h.update(np.ascontiguousarray(self.positions, dtype=float).tobytes())
        h.update(np.float64(self.ecut).tobytes())
        h.update(np.int64(self.n_empty).tobytes())
        if self.pseudopotentials is not None:
            h.update(pickle.dumps(self.pseudopotentials))
        return h.hexdigest()


@dataclass
class FragmentTaskResult:
    """Result of one executed fragment task.

    Attributes
    ----------
    label:
        The solved fragment's label (matches ``FragmentTask.label``).
    eigenvalues:
        Fragment band energies (Hartree), ascending.
    density:
        Electron density on the fragment-box grid.
    quantum_energy:
        sum_i occ_i <psi_i| T + V_sr + V_NL |psi_i> — the screened parts
        are assembled globally by GENPOT, so they are excluded here.
    band_energy:
        sum_i occ_i eps_i with the full (screened) fragment Hamiltonian.
    solver_iterations:
        Iterations the eigensolver used.
    converged:
        Eigensolver convergence flag.
    wall_time:
        In-worker wall-clock seconds of this solve.
    worker_pid:
        PID of the process that executed the solve (distinguishes pool
        workers from the driver).
    coefficients:
        Converged wavefunctions, or ``None`` when the task was built
        with ``return_coefficients=False``.
    """

    label: str
    eigenvalues: np.ndarray
    density: np.ndarray
    quantum_energy: float
    band_energy: float
    solver_iterations: int
    converged: bool
    wall_time: float
    worker_pid: int
    coefficients: np.ndarray | None = None


@dataclass
class TaskProblem:
    """Static (iteration-independent) data of one fragment task's problem.

    Building this — plane-wave basis, Hamiltonian with non-local
    projectors — is the expensive setup the paper keeps resident in the
    LS3DF global module between iterations; here it is cached per process
    keyed by :meth:`FragmentTask.static_fingerprint`.

    Attributes
    ----------
    fingerprint:
        The owning task's static fingerprint (the cache key).
    structure:
        Fragment atoms (including passivants) in the box frame.
    grid, basis, hamiltonian:
        The fragment's FFT grid, plane-wave basis and Hamiltonian.
    nelectrons, nbands, occupations:
        Electron count, band count and fixed insulator occupations.
    lock:
        Guards the Hamiltonian's mutable potential during a solve (two
        same-fingerprint tasks may run concurrently on threads).
    """

    fingerprint: str
    structure: Structure
    grid: FFTGrid
    basis: PlaneWaveBasis
    hamiltonian: Hamiltonian
    nelectrons: int
    nbands: int
    occupations: np.ndarray
    # Guards the Hamiltonian's mutable potential during a solve: two tasks
    # with the same fingerprint share this problem, and the thread backend
    # may run them concurrently.
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


def build_task_problem(task: FragmentTask) -> TaskProblem:
    """Construct the static problem of one task (no caching).

    Parameters
    ----------
    task:
        Any task of the fragment; only the iteration-independent fields
        (geometry, grid, cutoff, band counts) are read, so a template
        task without a screening potential works.

    Returns
    -------
    TaskProblem
        Freshly built basis, Hamiltonian and occupations.  Most callers
        want :func:`get_task_problem`, which consults the per-process
        cache first.
    """
    structure = Structure(task.cell, list(task.symbols), task.positions)
    grid = FFTGrid(task.cell, task.grid_shape)
    basis = PlaneWaveBasis(grid, task.ecut)
    pps = task.pseudopotentials or default_pseudopotentials()
    hamiltonian = Hamiltonian.from_structure(structure, basis, pps)
    nelectrons = structure.total_valence_electrons()
    nbands = (nelectrons + 1) // 2 + int(task.n_empty)
    if nbands > basis.npw // 2:
        raise ValueError(
            f"fragment {task.label}: {nbands} bands exceed half the basis size "
            f"({basis.npw} plane waves); increase ecut or the grid density"
        )
    occupations = occupations_for_insulator(nelectrons, nbands)
    return TaskProblem(
        fingerprint=task.static_fingerprint(),
        structure=structure,
        grid=grid,
        basis=basis,
        hamiltonian=hamiltonian,
        nelectrons=nelectrons,
        nbands=nbands,
        occupations=occupations,
    )


# Per-process static-problem cache (LRU).  Worker processes populate it on
# their first iteration and hit it afterwards — the reason LS3DF's "second
# iteration" is cheap holds inside pool workers too.  The bound must exceed
# the fragment count of one run (8 * m1 * m2 * m3) or the cache thrashes,
# rebuilding every Hamiltonian every iteration; beyond that it only limits
# how much a many-structure session can pin.  Call
# :func:`clear_problem_cache` to release the memory explicitly.
_PROBLEM_CACHE: dict[str, TaskProblem] = {}
_PROBLEM_CACHE_MAX = 4096
_PROBLEM_CACHE_LOCK = threading.Lock()


def _cache_insert(key: str, problem: TaskProblem) -> None:
    with _PROBLEM_CACHE_LOCK:
        _PROBLEM_CACHE.pop(key, None)
        while len(_PROBLEM_CACHE) >= _PROBLEM_CACHE_MAX:
            _PROBLEM_CACHE.pop(next(iter(_PROBLEM_CACHE)))  # evict least recent
        _PROBLEM_CACHE[key] = problem


def get_task_problem(task: FragmentTask) -> TaskProblem:
    """Fetch (or build and cache) the static problem of one task.

    Parameters
    ----------
    task:
        The task whose static problem is needed; its
        :meth:`FragmentTask.static_fingerprint` is the cache key.

    Returns
    -------
    TaskProblem
        The cached problem when one with the same fingerprint exists in
        this process, otherwise a freshly built (and newly cached) one.
    """
    key = task.static_fingerprint()
    with _PROBLEM_CACHE_LOCK:
        problem = _PROBLEM_CACHE.get(key)
    if problem is None:
        problem = build_task_problem(task)
    _cache_insert(key, problem)  # (re)insert to refresh LRU order
    return problem


def seed_task_problem(problem: TaskProblem) -> None:
    """Insert an externally built static problem into the process cache.

    :class:`repro.core.fragment_solver.FragmentSolver` uses this so the
    in-process backends never rebuild a Hamiltonian the solver already has.

    Parameters
    ----------
    problem:
        The built problem; stored under its own ``fingerprint``.
    """
    _cache_insert(problem.fingerprint, problem)


def clear_problem_cache() -> None:
    """Drop all cached static problems (tests / memory pressure)."""
    with _PROBLEM_CACHE_LOCK:
        _PROBLEM_CACHE.clear()


# ---------------------------------------------------------------------------
# Install-once potential channel (PR 6)
#
# Band-parallel and pipeline execution used to re-pickle the same screening
# (or global) potential into every slice of every stage of every task.  The
# install channel breaks that: the driver installs a potential once per
# worker under a content fingerprint, and tasks carry only the key.  Workers
# resolve keys from a small per-process LRU; a worker that has never seen
# the key raises :class:`PotentialNotInstalledError` and the executor
# retries that one task with the payload attached — self-healing, no
# barrier, and bit-identical because the exact array bytes travel either
# way.

_INSTALLED_POTENTIALS: OrderedDict[str, np.ndarray] = OrderedDict()
_INSTALLED_MAX = 32
_INSTALLED_LOCK = threading.Lock()


class PotentialNotInstalledError(RuntimeError):
    """A task referenced a potential key this worker has not installed.

    Executors catch this per-future and resubmit the task with the
    payload attached (see ``with_potential_payload``); user code should
    never see it escape an executor.
    """

    def __init__(self, key: str) -> None:
        super().__init__(
            f"potential {key!r} is not installed in worker {os.getpid()}; "
            "the executor retries with the payload attached"
        )
        self.key = key


def potential_fingerprint(array: np.ndarray) -> str:
    """Content fingerprint of a potential array (the install-channel key).

    Covers dtype, shape and the exact bytes, so two bit-identical arrays
    share a key and any numeric change produces a new one — which is what
    makes installing once per (fragment, iteration) safe.
    """
    arr = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
    h.update(arr.tobytes())
    return h.hexdigest()


def install_potential(key: str, array: np.ndarray) -> str:
    """Store a potential in this process under ``key`` (LRU, bounded).

    Returns the key for chaining.  Executors broadcast this to pool
    workers; the serial and thread backends call it in-process.
    """
    arr = np.asarray(array)
    with _INSTALLED_LOCK:
        _INSTALLED_POTENTIALS.pop(key, None)
        _INSTALLED_POTENTIALS[key] = arr
        while len(_INSTALLED_POTENTIALS) > _INSTALLED_MAX:
            _INSTALLED_POTENTIALS.popitem(last=False)
    return key


def fetch_potential(key: str) -> np.ndarray:
    """Resolve an installed potential by key.

    Raises
    ------
    PotentialNotInstalledError
        When this process has no potential under ``key`` (the executor's
        retry-with-payload signal).
    """
    with _INSTALLED_LOCK:
        try:
            arr = _INSTALLED_POTENTIALS[key]
        except KeyError:
            raise PotentialNotInstalledError(key) from None
        _INSTALLED_POTENTIALS.move_to_end(key)
        return arr


def installed_potential_count() -> int:
    """Number of potentials currently installed in this process."""
    with _INSTALLED_LOCK:
        return len(_INSTALLED_POTENTIALS)


def clear_installed_potentials() -> None:
    """Drop every installed potential (tests / memory pressure)."""
    with _INSTALLED_LOCK:
        _INSTALLED_POTENTIALS.clear()


def resolve_screening_potential(task: FragmentTask) -> np.ndarray:
    """The task's screening potential — inline array or installed key.

    Raises :class:`PotentialNotInstalledError` when the task carries only
    a key this worker has not installed, and ``ValueError`` when it
    carries neither.
    """
    if task.screening_potential is not None:
        return np.asarray(task.screening_potential)
    if task.screening_key is not None:
        return fetch_potential(task.screening_key)
    raise ValueError(f"task {task.label!r} has no screening potential")


def solve_fragment_task(
    task: FragmentTask, problem: TaskProblem | None = None
) -> FragmentTaskResult:
    """Solve one fragment task — THE shared PEtot_F kernel.

    Runs identically in the calling process (serial backend, thread
    backend, :class:`~repro.core.fragment_solver.FragmentSolver`) and
    inside process-pool workers.

    Parameters
    ----------
    task:
        The fragment solve description; must carry a real
        ``screening_potential`` array.
    problem:
        Optional pre-built static problem, bypassing the per-process
        cache lookup when the caller already holds the data.

    Returns
    -------
    FragmentTaskResult
        Eigenvalues, density, energies and solve bookkeeping; includes
        the converged wavefunctions unless the task disabled
        ``return_coefficients``.
    """
    t0 = time.perf_counter()
    v_screen = resolve_screening_potential(task)
    if problem is None:
        problem = get_task_problem(task)
    hamiltonian = problem.hamiltonian
    with problem.lock:
        hamiltonian.set_effective_potential(v_screen)
        solver = all_band_cg if task.eigensolver == "all_band" else band_by_band_cg
        result = solver(
            hamiltonian,
            problem.nbands,
            initial=task.initial_coefficients,
            max_iterations=task.max_iterations,
            tolerance=task.tolerance,
        )
        density = compute_density(
            problem.basis, result.coefficients, problem.occupations
        )
        # Quantum energy: kinetic + short-range ionic + nonlocal only (the
        # screening/electrostatic parts are assembled globally by GENPOT).
        saved = hamiltonian.v_screening
        hamiltonian.v_screening = np.zeros_like(saved)
        try:
            expect = hamiltonian.expectation(result.coefficients)
        finally:
            hamiltonian.v_screening = saved
    quantum_energy = float(np.sum(problem.occupations * expect))
    band_energy = float(np.sum(problem.occupations * result.eigenvalues))
    return FragmentTaskResult(
        label=task.label,
        eigenvalues=result.eigenvalues,
        density=density,
        quantum_energy=quantum_energy,
        band_energy=band_energy,
        solver_iterations=result.iterations,
        converged=result.converged,
        wall_time=time.perf_counter() - t0,
        worker_pid=os.getpid(),
        coefficients=result.coefficients if task.return_coefficients else None,
    )


@dataclass
class FragmentPipelineTask:
    """Fused Gen_VF -> PEtot_F -> Gen_dens unit of work for one fragment.

    The plain :class:`FragmentTask` covers only the Kohn-Sham solve; the
    driver then still owns two serial per-fragment loops (the Gen_VF
    restriction before the solve, the Gen_dens interior extraction after
    it).  This task fuses all three per-fragment steps into one picklable
    description, so a pool worker receives the global input potential plus
    index maps, performs restrict -> solve -> weighted-interior extraction
    locally, and ships back a single result — one round trip per fragment
    per SCF iteration instead of a solve round trip sandwiched between two
    driver-side loops.

    IPC trade-off (process pools): each submission pickles the *global*
    potential instead of the box-sized restriction the unfused path ships,
    buying the driver out of the serial per-fragment Gen_VF loop at the
    price of larger submissions.  At the scales this reproduction runs the
    loop is the bottleneck, not the bytes; the production code avoids both
    by point-to-point isend/irecv of box-sized pieces.

    Attributes
    ----------
    task:
        The underlying solve task.  Its ``screening_potential`` is
        ``None``; the worker assembles it from ``global_potential`` and
        ``passivation_potential``.
    global_potential:
        The global input potential V_in of this iteration, or ``None``
        when the potential was installed once per worker and
        ``global_potential_key`` references it instead.
    box_indices:
        Per-axis global-grid index arrays (periodically wrapped) of the
        full fragment box — the Gen_VF gather map.
    interior_slice:
        Slice selecting the fragment *region* (box minus buffer) inside
        the box — what the Gen_dens contribution is cut from.
    passivation_potential:
        The fixed passivation correction Delta V_F (subtracted from the
        restricted potential), or ``None`` for unpassivated fragments.
    global_potential_key:
        Install-channel fingerprint of V_in (see
        :func:`install_potential`); workers resolve it with
        :func:`fetch_potential` when ``global_potential`` is ``None``.
    """

    task: FragmentTask
    global_potential: np.ndarray | None
    box_indices: tuple[np.ndarray, np.ndarray, np.ndarray]
    interior_slice: tuple[slice, slice, slice]
    passivation_potential: np.ndarray | None = None
    global_potential_key: str | None = None

    @property
    def label(self) -> str:
        """The underlying solve task's fragment label."""
        return self.task.label

    def cost(self) -> float:
        """Relative cost for load balancing (the solve dominates)."""
        return self.task.cost()

    def with_potential_payload(
        self, key: str, payload: np.ndarray
    ) -> "FragmentPipelineTask":
        """Copy of this task with the installed potential attached inline.

        The executor's retry path: a worker that raised
        :class:`PotentialNotInstalledError` for ``key`` gets the task
        back with the actual array riding along.  Returns ``self``
        unchanged when the key does not match (or the array is already
        inline).
        """
        if self.global_potential_key != key or self.global_potential is not None:
            return self
        return replace(self, global_potential=payload)


def resolve_global_potential(pipeline_task: FragmentPipelineTask) -> np.ndarray:
    """The pipeline task's global potential — inline array or installed key.

    Raises :class:`PotentialNotInstalledError` when the task carries only
    a key this worker has not installed, and ``ValueError`` when it
    carries neither.
    """
    if pipeline_task.global_potential is not None:
        return np.asarray(pipeline_task.global_potential)
    if pipeline_task.global_potential_key is not None:
        return fetch_potential(pipeline_task.global_potential_key)
    raise ValueError(
        f"pipeline task {pipeline_task.label!r} has neither a global "
        "potential nor an installed-potential key"
    )


@dataclass
class FragmentPipelineResult:
    """Result of one fused restrict -> solve -> contribute pipeline task.

    ``contribution`` is the fragment's alpha-weighted region interior of
    the solved density — the exact array the Gen_dens reduction sums, so
    the driver never cuts into the fragment-box density again.  The
    driver already knows each fragment's scatter map
    (``division.global_indices``), so no index arrays ride along.
    """

    result: FragmentTaskResult
    contribution: np.ndarray
    gen_vf_time: float
    gen_dens_time: float

    @property
    def label(self) -> str:
        """The solved fragment's label."""
        return self.result.label

    @property
    def worker_pid(self) -> int:
        """PID of the process that executed the fused task."""
        return self.result.worker_pid

    @property
    def wall_time(self) -> float:
        """In-worker time of the whole fused step (restrict+solve+extract)."""
        return self.gen_vf_time + self.result.wall_time + self.gen_dens_time

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable snapshot of this fragment's completed work.

        The per-fragment half of a *mid-iteration* checkpoint
        (:func:`repro.io.checkpoint.save_partial_payload`): every field a
        resumed iteration needs to treat this fragment as already solved
        — density, contribution, energies, solve bookkeeping and the
        converged wavefunctions — as plain arrays suitable for an
        ``.npz`` payload.

        Returns
        -------
        dict[str, np.ndarray]
            Array-valued mapping; round-trips exactly through
            :meth:`from_state_dict`.
        """
        r = self.result
        state: dict[str, np.ndarray] = {
            "label": np.asarray(r.label),
            "eigenvalues": np.asarray(r.eigenvalues),
            "density": np.asarray(r.density),
            "quantum_energy": np.float64(r.quantum_energy),
            "band_energy": np.float64(r.band_energy),
            "solver_iterations": np.int64(r.solver_iterations),
            "converged": np.bool_(r.converged),
            "solve_wall_time": np.float64(r.wall_time),
            "worker_pid": np.int64(r.worker_pid),
            "contribution": np.asarray(self.contribution),
            "gen_vf_time": np.float64(self.gen_vf_time),
            "gen_dens_time": np.float64(self.gen_dens_time),
        }
        if r.coefficients is not None:
            state["coefficients"] = np.asarray(r.coefficients)
        return state

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "FragmentPipelineResult":
        """Rebuild a result from a :meth:`state_dict` snapshot.

        Parameters
        ----------
        state:
            The saved mapping (possibly after an ``.npz`` round trip).

        Returns
        -------
        FragmentPipelineResult
            Bit-identical to the saved result (arrays round-trip exactly
            through ``.npz``), so replaying it mid-iteration reproduces
            an uninterrupted run.
        """
        coefficients = state.get("coefficients")
        result = FragmentTaskResult(
            label=str(state["label"]),
            eigenvalues=np.asarray(state["eigenvalues"]),
            density=np.asarray(state["density"]),
            quantum_energy=float(state["quantum_energy"]),
            band_energy=float(state["band_energy"]),
            solver_iterations=int(state["solver_iterations"]),
            converged=bool(state["converged"]),
            wall_time=float(state["solve_wall_time"]),
            worker_pid=int(state["worker_pid"]),
            coefficients=None if coefficients is None else np.asarray(coefficients),
        )
        return cls(
            result=result,
            contribution=np.asarray(state["contribution"]),
            gen_vf_time=float(state["gen_vf_time"]),
            gen_dens_time=float(state["gen_dens_time"]),
        )


def run_fragment_pipeline_task(
    pipeline_task: FragmentPipelineTask, problem: TaskProblem | None = None
) -> FragmentPipelineResult:
    """Execute one fused fragment pipeline task (worker-side Figure 2 lap).

    Performs, in the worker, the three embarrassingly parallel steps of
    one LS3DF iteration for one fragment:

    1. **Gen_VF** — gather the fragment-box restriction of the global
       input potential and subtract the fixed passivation correction;
    2. **PEtot_F** — run the shared solve kernel
       (:func:`solve_fragment_task`, same static-problem cache and warm
       starts as the unfused path);
    3. **Gen_dens** — extract the region interior of the solved density
       and apply the fragment's charge-conserving alpha weight.

    The arithmetic matches the driver-side unfused path operation for
    operation, so fused and unfused runs differ only in where (and in what
    summation grouping) the global density is reduced.

    Parameters
    ----------
    pipeline_task:
        The fused work unit (solve task + global potential + index maps).
    problem:
        Optional pre-built static problem forwarded to
        :func:`solve_fragment_task`.

    Returns
    -------
    FragmentPipelineResult
        The solve result plus the alpha-weighted interior density
        contribution and the in-worker Gen_VF / Gen_dens times.
    """
    t0 = time.perf_counter()
    ix, iy, iz = pipeline_task.box_indices
    global_potential = resolve_global_potential(pipeline_task)
    # Advanced indexing already yields a fresh array — no copy needed.
    v_screen = global_potential[np.ix_(ix, iy, iz)]
    if pipeline_task.passivation_potential is not None:
        v_screen = v_screen - pipeline_task.passivation_potential
    task = pipeline_task.task
    task.screening_potential = v_screen
    gen_vf_time = time.perf_counter() - t0
    result = solve_fragment_task(task, problem=problem)
    t0 = time.perf_counter()
    interior = result.density[pipeline_task.interior_slice]
    contribution = task.weight * np.real(interior)
    gen_dens_time = time.perf_counter() - t0
    return FragmentPipelineResult(
        result=result,
        contribution=contribution,
        gen_vf_time=gen_vf_time,
        gen_dens_time=gen_dens_time,
    )


# ---------------------------------------------------------------------------
# Stacked small-fragment tasks (PR 6)


@dataclass
class StackedPipelineTask:
    """Several small fragment pipeline tasks fused into one submission.

    Pool submission overhead (pickling, future bookkeeping, scheduler
    round trips) is per-submission, so many tiny fragments — single-cell
    boxes at divided-surface corners — pay it over and over while the big
    fragments still bound the wall clock.  Stacking bins the small tasks
    (see :func:`repro.parallel.scheduler.pack_stacks`) so each bin rides
    one pool submission and runs its members sequentially in the worker.
    Logical-task accounting (``tasks_submitted``) is unchanged; only the
    physical ``pool_submissions`` count drops.
    """

    tasks: list[FragmentPipelineTask]

    @property
    def label(self) -> str:
        """Synthetic label naming the stack's members."""
        inner = ",".join(t.label for t in self.tasks)
        return f"stack[{inner}]"

    def cost(self) -> float:
        """Relative cost for load balancing: the members' summed cost."""
        return float(sum(t.cost() for t in self.tasks))

    def with_potential_payload(
        self, key: str, payload: np.ndarray
    ) -> "StackedPipelineTask":
        """Copy with the installed potential attached to matching members."""
        return StackedPipelineTask(
            tasks=[t.with_potential_payload(key, payload) for t in self.tasks]
        )


@dataclass
class StackedPipelineResult:
    """Results of one stacked submission, in the stack's member order.

    Executors flatten these back into per-fragment
    :class:`FragmentPipelineResult` entries at gather time, so reports
    look exactly like unstacked runs.
    """

    results: list[FragmentPipelineResult]


def run_stacked_pipeline_task(stacked: StackedPipelineTask) -> StackedPipelineResult:
    """Execute a stack's members sequentially in this worker.

    Each member runs through the ordinary
    :func:`run_fragment_pipeline_task` kernel, so the arithmetic — and
    therefore every result array — is bit-identical to unstacked
    execution.  A missing installed potential propagates as
    :class:`PotentialNotInstalledError` for the whole stack; the executor
    retries the stack with the payload attached.
    """
    return StackedPipelineResult(
        results=[run_fragment_pipeline_task(t) for t in stacked.tasks]
    )


# ---------------------------------------------------------------------------
# Grouped (band-parallel) variants: one fragment, a whole worker group


def solve_fragment_task_grouped(
    task: FragmentTask,
    executor,
    band_slices: int,
    problem: TaskProblem | None = None,
    install_potentials: bool = True,
    sliced_nonlocal: bool = True,
):
    """Solve one fragment with its band block distributed over a group.

    The band-parallel counterpart of :func:`solve_fragment_task`: the
    calling process acts as the *group root* — it runs the outer all-band
    CG loop and every dense cross-band reduction — while the heavy
    per-band work (H·psi, preconditioned residuals) is sliced into
    :class:`repro.parallel.bands.BandBlockTask` batches and pushed
    through ``executor.run_bands``.  Results are **bit-identical** to
    :func:`solve_fragment_task` for any slice count and backend (the
    property ``tests/test_band_parallel.py`` asserts), because the sliced
    kernels are row-independent bit for bit and the root-side algebra
    operates on full blocks of unchanged shape.

    Only the ``"all_band"`` eigensolver can be grouped (the band-by-band
    reference algorithm is inherently sequential over bands).

    Parameters
    ----------
    task:
        The fragment solve description; must carry a real
        ``screening_potential`` array.
    executor:
        Backend implementing
        :class:`repro.parallel.bands.BandGroupExecutor` (all backends in
        :mod:`repro.parallel.executor` do).
    band_slices:
        Number of band slices — the local analogue of the paper's Np
        cores per fragment group.
    problem:
        Optional pre-built static problem, bypassing the cache lookup.
    install_potentials:
        Install the screening potential once per worker and reference it
        by key from every band slice (PR 6); ``False`` ships the array
        in every task as before.  Bit-identical either way.
    sliced_nonlocal:
        Apply the Kleinman-Bylander term inside band slices via the
        blocked fixed-shape kernel (PR 6); ``False`` keeps it on the
        group root.  Bit-identical either way.

    Returns
    -------
    tuple[FragmentTaskResult, repro.parallel.bands.BandGroupStats]
        The solve result (identical to the ungrouped kernel's) plus the
        group's task accounting (stages, submissions, in-worker times).
    """
    # Imported lazily: repro.parallel.bands depends on this module, so a
    # module-level import here would be circular.
    from repro.parallel.bands import BandGroup
    from repro.pw.eigensolver import all_band_cg as all_band_solver

    t0 = time.perf_counter()
    v_screen = resolve_screening_potential(task)
    if task.eigensolver != "all_band":
        raise ValueError(
            f"band groups require the all-band eigensolver; task {task.label!r} "
            f"uses {task.eigensolver!r}"
        )
    if problem is None:
        problem = get_task_problem(task)
    hamiltonian = problem.hamiltonian
    # The problem lock is safe to hold across the grouped solve: the band
    # task kernel never acquires it (grouped solves own their fragment's
    # problem for the duration; see run_band_block_task).
    with problem.lock:
        hamiltonian.set_effective_potential(v_screen)
        group = BandGroup(
            executor,
            band_slices,
            task,
            problem=problem,
            install=install_potentials,
            sliced_nonlocal=sliced_nonlocal,
        )
        result = all_band_solver(
            hamiltonian,
            problem.nbands,
            initial=task.initial_coefficients,
            max_iterations=task.max_iterations,
            tolerance=task.tolerance,
            band_groups=group,
        )
        density = compute_density(
            problem.basis, result.coefficients, problem.occupations
        )
        saved = hamiltonian.v_screening
        hamiltonian.v_screening = np.zeros_like(saved)
        try:
            expect = hamiltonian.expectation(result.coefficients)
        finally:
            hamiltonian.v_screening = saved
    quantum_energy = float(np.sum(problem.occupations * expect))
    band_energy = float(np.sum(problem.occupations * result.eigenvalues))
    task_result = FragmentTaskResult(
        label=task.label,
        eigenvalues=result.eigenvalues,
        density=density,
        quantum_energy=quantum_energy,
        band_energy=band_energy,
        solver_iterations=result.iterations,
        converged=result.converged,
        wall_time=time.perf_counter() - t0,
        worker_pid=os.getpid(),
        coefficients=result.coefficients if task.return_coefficients else None,
    )
    return task_result, group.stats


def run_fragment_pipeline_task_grouped(
    pipeline_task: FragmentPipelineTask,
    executor,
    band_slices: int,
    problem: TaskProblem | None = None,
    install_potentials: bool = True,
    sliced_nonlocal: bool = True,
):
    """Execute one fused fragment pipeline with a band-sliced solve.

    The grouped counterpart of :func:`run_fragment_pipeline_task`: the
    restriction and the weighted-interior extraction run on the group
    root (the caller — with band grouping the driver orchestrates one
    fragment at a time, so there is no per-fragment round trip to fuse
    them into), and the solve in the middle is
    :func:`solve_fragment_task_grouped`.  The arithmetic matches the
    ungrouped pipeline kernel operation for operation.

    Parameters
    ----------
    pipeline_task:
        The fused work unit (solve task + global potential + index maps).
    executor:
        Backend implementing
        :class:`repro.parallel.bands.BandGroupExecutor`.
    band_slices:
        Number of band slices per solve.
    problem:
        Optional pre-built static problem forwarded to the solve.
    install_potentials, sliced_nonlocal:
        Forwarded to :func:`solve_fragment_task_grouped` (PR 6 knobs;
        bit-identical on or off).

    Returns
    -------
    tuple[FragmentPipelineResult, repro.parallel.bands.BandGroupStats]
        The pipeline result (identical to the ungrouped kernel's) plus
        the solve's band-task accounting.
    """
    t0 = time.perf_counter()
    ix, iy, iz = pipeline_task.box_indices
    global_potential = resolve_global_potential(pipeline_task)
    v_screen = global_potential[np.ix_(ix, iy, iz)]
    if pipeline_task.passivation_potential is not None:
        v_screen = v_screen - pipeline_task.passivation_potential
    task = pipeline_task.task
    task.screening_potential = v_screen
    gen_vf_time = time.perf_counter() - t0
    result, stats = solve_fragment_task_grouped(
        task,
        executor,
        band_slices,
        problem=problem,
        install_potentials=install_potentials,
        sliced_nonlocal=sliced_nonlocal,
    )
    t0 = time.perf_counter()
    interior = result.density[pipeline_task.interior_slice]
    contribution = task.weight * np.real(interior)
    gen_dens_time = time.perf_counter() - t0
    return (
        FragmentPipelineResult(
            result=result,
            contribution=contribution,
            gen_vf_time=gen_vf_time,
            gen_dens_time=gen_dens_time,
        ),
        stats,
    )


class FragmentStateCache:
    """Executor-agnostic warm-start store, keyed by fragment label.

    The outer SCF loop fills tasks' ``initial_coefficients`` from here and
    writes converged coefficients back after every iteration, so fragments
    warm-start across outer iterations regardless of which backend (or
    which pool worker) solved them last time.  The cache is also the
    per-fragment half of an SCF checkpoint
    (:mod:`repro.io.checkpoint`): :meth:`state_dict` /
    :meth:`load_state_dict` move the stored wavefunction coefficients to
    and from disk payloads, so a resumed run warm-starts exactly where
    the interrupted one stopped.
    """

    def __init__(self) -> None:
        self._coefficients: dict[str, np.ndarray] = {}

    def get(self, label: str) -> np.ndarray | None:
        """Warm-start coefficients of one fragment.

        Parameters
        ----------
        label:
            Fragment label (``Fragment.label``).

        Returns
        -------
        np.ndarray | None
            The last converged wavefunction coefficients of that
            fragment, or ``None`` when it has not been solved yet.
        """
        return self._coefficients.get(label)

    def update(self, results: Sequence[FragmentTaskResult]) -> None:
        """Store the converged coefficients of a batch of solves.

        Parameters
        ----------
        results:
            Executed task results; entries whose ``coefficients`` are
            ``None`` (tasks run with ``return_coefficients=False``) are
            skipped, keeping whatever the cache held before.
        """
        for res in results:
            if res.coefficients is not None:
                self._coefficients[res.label] = res.coefficients

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable snapshot of every stored wavefunction.

        Returns
        -------
        dict[str, np.ndarray]
            Fragment label -> coefficient array, suitable for an
            ``.npz`` checkpoint payload.  The arrays are the cached
            objects themselves (the SCF loop never mutates them in
            place); callers that need isolation should copy.
        """
        return dict(self._coefficients)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Replace the cache contents with a :meth:`state_dict` snapshot.

        Parameters
        ----------
        state:
            Fragment label -> coefficient array mapping (possibly after
            an ``.npz`` round trip).  Previous contents are discarded,
            so a resumed run sees exactly the interrupted run's state.
        """
        self._coefficients = {
            str(label): np.asarray(coeffs) for label, coeffs in state.items()
        }

    def clear(self) -> None:
        """Drop all stored wavefunctions (fresh-start SCF runs)."""
        self._coefficients.clear()

    def __len__(self) -> int:
        return len(self._coefficients)

    def __contains__(self, label: str) -> bool:
        return label in self._coefficients


@runtime_checkable
class FragmentExecutor(Protocol):
    """Protocol every fragment-execution backend implements.

    Backends take a batch of :class:`FragmentTask` and return an
    execution report whose ``results`` list is ordered like the input
    tasks.  Implementations live in :mod:`repro.parallel.executor`
    (serial, thread pool, process pool); anything with this shape — e.g.
    an MPI- or cluster-backed mapper — plugs into
    :class:`repro.core.scf.LS3DFSCF` the same way.
    """

    n_workers: int

    def run(self, tasks: Sequence[FragmentTask]) -> "ExecutionReport":
        """Execute a batch of fragment solve tasks.

        Parameters
        ----------
        tasks:
            Picklable solve descriptions, one per fragment.

        Returns
        -------
        ExecutionReport
            With ``results`` (:class:`FragmentTaskResult`) in task order.
        """
        ...


@runtime_checkable
class PipelineFragmentExecutor(FragmentExecutor, Protocol):
    """A backend that additionally runs fused fragment pipeline tasks.

    All backends shipped in :mod:`repro.parallel.executor` implement this;
    :class:`repro.core.scf.LS3DFSCF` requires it when ``pipeline=True``.
    """

    def run_pipeline(
        self, tasks: Sequence[FragmentPipelineTask]
    ) -> "ExecutionReport":
        """Execute a batch of fused restrict -> solve -> contribute tasks.

        Parameters
        ----------
        tasks:
            One :class:`FragmentPipelineTask` per fragment.

        Returns
        -------
        ExecutionReport
            With ``results`` (:class:`FragmentPipelineResult`) in task
            order.
        """
        ...


@dataclass
class ExecutionReport:
    """Timing summary of one batch of fragment solves.

    ``results`` holds :class:`FragmentTaskResult` objects for plain solve
    batches and :class:`FragmentPipelineResult` objects for fused pipeline
    batches; both expose the ``label`` / ``wall_time`` / ``worker_pid``
    fields the summary properties use.

    ``resubmissions`` counts tasks this batch re-dispatched after a
    worker died mid-task (always 0 for the local backends, whose workers
    share the driver's fate); results are bit-identical either way, the
    counter only records that the self-healing path ran.
    """

    results: list
    wall_time: float
    worker_count: int
    schedule: object | None = None
    resubmissions: int = 0

    @property
    def total_cpu_time(self) -> float:
        """Summed in-worker task time (the batch's serial-equivalent cost)."""
        return float(sum(r.wall_time for r in self.results))

    @property
    def parallel_efficiency(self) -> float:
        """total task time / (workers * wall time); 1.0 is ideal."""
        if self.wall_time <= 0 or self.worker_count <= 0:
            return 0.0
        return self.total_cpu_time / (self.worker_count * self.wall_time)

    @property
    def speedup(self) -> float:
        """total task time / wall time — the measured PEtot_F speedup."""
        if self.wall_time <= 0:
            return 0.0
        return self.total_cpu_time / self.wall_time

    @property
    def distinct_workers(self) -> int:
        """Number of distinct worker PIDs that executed the batch."""
        return len({r.worker_pid for r in self.results})
