"""Gen_VF and Gen_dens: the LS3DF restriction and patching operators.

These are the two data-movement kernels of the paper's flow chart:

* **Gen_VF** takes the global input potential ``V_tot_in(r)`` and produces,
  for every fragment, its restriction to the fragment box Omega_F (the
  fragment region plus buffer);
* **Gen_dens** takes the fragment charge densities ``rho_F(r)`` and patches
  them into the global density ``rho_tot(r) = sum_F alpha_F rho_F(r)``,
  accumulating only over each fragment's *region* (the buffer is excluded),
  where the +/- weights make every grid point counted exactly once.

Because the fragment grids share the global grid spacing, both operations
are exact periodic array gathers/scatters — the Python analogue of the
MPI communication the paper optimised from file-I/O to collectives to
point-to-point isend/irecv.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Sequence

import numpy as np

from repro.core.division import SpatialDivision
from repro.core.fragments import Fragment


def restrict_to_fragment(
    division: SpatialDivision,
    fragment: Fragment,
    global_field: np.ndarray,
) -> np.ndarray:
    """Gen_VF: restrict a global real-space field to one fragment box.

    Parameters
    ----------
    division:
        The spatial division (owns the index maps).
    fragment:
        Target fragment.
    global_field:
        Field on the global FFT grid.

    Returns
    -------
    numpy.ndarray
        Field on the fragment-box grid (periodically wrapped copy).
    """
    if global_field.shape != division.global_grid.shape:
        raise ValueError("global field shape does not match the global grid")
    ix, iy, iz = division.global_indices(fragment, interior_only=False)
    return global_field[np.ix_(ix, iy, iz)].copy()


#: Index arrays (per axis, periodically wrapped) plus the weighted interior
#: array of one fragment — the unit the Gen_dens reduction sums over.
FragmentContribution = tuple[
    tuple[np.ndarray, np.ndarray, np.ndarray], np.ndarray
]


# Accumulator-allocation accounting of the Gen_dens reduction (PR 6): the
# chunked tree-reduce used to allocate one fresh global-grid array per
# chunk *and* one per merge (~2x chunks); with buffer recycling it
# allocates O(log #chunks).  Approximate counters (no lock) — used by the
# regression test and the kernel-pack benchmark, not for control flow.
_REDUCE_STATS = {"allocations": 0, "reused": 0}


def reduce_stats() -> dict[str, int]:
    """Snapshot of the Gen_dens accumulator allocation/reuse counters."""
    return dict(_REDUCE_STATS)


def reset_reduce_stats() -> None:
    """Zero the accumulator counters (benchmarks / tests)."""
    for k in _REDUCE_STATS:
        _REDUCE_STATS[k] = 0


def _accumulate_chunk(
    shape: tuple[int, int, int],
    contributions: Iterable[FragmentContribution],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter-add weighted interiors into one partial field.

    A fragment *region* never exceeds one period of the global grid per
    axis, so the per-axis index arrays are duplicate-free and the sliced
    in-place add is exact (one addition per addressed element — the same
    arithmetic as ``np.add.at``, without its slow unbuffered path).

    ``out`` may be a recycled accumulator of the right shape; it is
    zero-filled first, which is byte-identical to a fresh ``np.zeros``.
    """
    if out is None:
        partial = np.zeros(shape, dtype=float)
        _REDUCE_STATS["allocations"] += 1
    else:
        partial = out
        partial.fill(0.0)
        _REDUCE_STATS["reused"] += 1
    for (ix, iy, iz), interior in contributions:
        partial[np.ix_(ix, iy, iz)] += interior
    return partial


def tree_reduce_fields(
    partials: Iterable[np.ndarray],
    in_place: bool = False,
    release=None,
) -> np.ndarray:
    """Pairwise (binary-tree) sum of partial global fields.

    The reduction order is fixed by the input order alone — never by a
    worker count or arrival order — so results are bit-for-bit
    reproducible across execution backends.  This is the Python analogue
    of the production code's Gen_dens reduction over processor groups.

    Accepts any iterable and consumes it lazily with a binary-counter
    merge (equal-height subtrees combine as soon as both exist), so at
    most O(log N) partial fields are alive at once even when the input is
    a generator producing N of them.

    Parameters
    ----------
    partials:
        The partial fields, earliest first.
    in_place:
        Merge subtrees by mutating the earlier operand (``left += node``)
        instead of allocating a fresh array per merge.  Only valid when
        the caller owns every input array; elementwise float addition is
        commutative and the in-place form computes the identical sums, so
        the result is byte-identical to the allocating path.
    release:
        Optional callback receiving each input array the reduction has
        fully consumed (``in_place`` only) — the recycling hook
        :func:`patch_contributions` uses to refill its accumulator pool.
    """
    # Stack of (subtree height, subtree sum); heights strictly decrease
    # from bottom to top, exactly the binary representation of the count
    # of partials consumed so far.
    stack: list[tuple[int, np.ndarray]] = []
    for array in partials:
        node = array
        height = 0
        while stack and stack[-1][0] == height:
            _, left = stack.pop()
            if in_place:
                left += node  # left operand is the earlier subtree
                if release is not None:
                    release(node)
                node = left
            else:
                node = left + node
            height += 1
        stack.append((height, node))
    if not stack:
        raise ValueError("tree reduce needs at least one partial field")
    total: np.ndarray | None = None
    for _, node in reversed(stack):  # latest (smallest) subtree first
        if total is None:
            total = node
        elif in_place:
            node += total  # same bits as node + total (float add commutes)
            if release is not None:
                release(total)
            total = node
        else:
            total = node + total
    return total


def patch_contributions(
    shape: tuple[int, int, int],
    contributions: Iterable[FragmentContribution],
    chunk_size: int | None = None,
) -> np.ndarray:
    """Sum pre-weighted fragment interiors into a global field.

    This is the reduction half of Gen_dens, operating on contributions
    whose alpha weights have already been applied — exactly what the fused
    fragment pipeline ships back from its workers.  ``contributions`` may
    be any iterable (it is consumed lazily, one chunk at a time).

    ``chunk_size=None`` accumulates every contribution sequentially into a
    single array (the seed behaviour, byte-identical addition order).  A
    positive ``chunk_size`` splits the contributions into fixed
    consecutive chunks, accumulates each into its own partial field, and
    combines the partials with a pairwise tree sum — the deterministic
    chunked tree-reduce the pipeline path uses.  The chunk boundaries
    depend only on the contribution order and ``chunk_size``, so every
    backend (and any worker count) produces identical bits.
    """
    if chunk_size is None:
        return _accumulate_chunk(shape, contributions)
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    iterator = iter(contributions)
    first_chunk = list(islice(iterator, chunk_size))
    if not first_chunk:
        return np.zeros(shape, dtype=float)

    # Accumulator pool (PR 6): every array the tree reduce finishes with
    # comes back here and seeds the next chunk's accumulation, so the
    # whole reduction allocates O(log #chunks) global-grid arrays instead
    # of ~2x #chunks.  The returned total is one of this call's own
    # arrays, so handing it to the caller is safe.
    pool: list[np.ndarray] = []

    def partials():
        # Lazy: together with the streaming tree reduce, only
        # O(log #chunks) partial global fields are alive at once.
        yield _accumulate_chunk(shape, first_chunk, out=pool.pop() if pool else None)
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                return
            yield _accumulate_chunk(
                shape, chunk, out=pool.pop() if pool else None
            )

    return tree_reduce_fields(partials(), in_place=True, release=pool.append)


def patch_fragment_fields(
    division: SpatialDivision,
    fragments: Sequence[Fragment],
    fragment_fields: Iterable[np.ndarray],
    weights: Sequence[int] | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Gen_dens: patch weighted fragment fields into a global field.

    Only the fragment-region part of each fragment field (the box interior
    excluding the buffer) is accumulated, multiplied by the fragment's
    alpha weight.  For fragment fields that are restrictions of a common
    global field the output reproduces that field exactly (the patching
    identity); for independently computed fragment densities the +/-
    pattern cancels the artificial boundary contributions.

    Parameters
    ----------
    division:
        The spatial division.
    fragments:
        Fragments in the same order as ``fragment_fields``.
    fragment_fields:
        Per-fragment arrays on the fragment-box grids.
    weights:
        Optional per-fragment weight overrides (defaults to each
        fragment's alpha).
    chunk_size:
        ``None`` (default) accumulates sequentially in fragment order —
        the seed behaviour, byte-identical addition order.  A positive
        value sums through the deterministic chunked tree-reduce of
        :func:`patch_contributions` instead.

    Returns
    -------
    numpy.ndarray
        The patched field on the global grid.
    """
    fragments = list(fragments)
    fields = list(fragment_fields)
    if len(fields) != len(fragments):
        raise ValueError("number of fields must match number of fragments")
    if weights is None:
        weights = [f.weight for f in fragments]
    elif len(weights) != len(fragments):
        raise ValueError("weights length mismatch")

    def contributions():
        # Lazy: each weighted interior is built only as the accumulation
        # consumes it, keeping the transient footprint at one interior
        # (plus the partial fields) rather than all of them at once.
        for fragment, field, weight in zip(fragments, fields, weights):
            box = division.fragment_box(fragment)
            if field.shape != box.npoints:
                raise ValueError(
                    f"fragment field shape {field.shape} does not match box {box.npoints}"
                )
            interior = field[box.interior_slice]
            indices = division.global_indices(fragment, interior_only=True)
            yield (indices, weight * np.real(interior))

    return patch_contributions(
        division.global_grid.shape, contributions(), chunk_size=chunk_size
    )


def patching_identity_residual(
    division: SpatialDivision, global_field: np.ndarray
) -> float:
    """Max-norm residual of the restrict->patch round trip on a global field.

    Restricting an arbitrary global field to every fragment and patching
    the restrictions back must reproduce the field exactly; this helper
    (used by tests and by the driver's self-check) returns the maximum
    absolute deviation.
    """
    from repro.core.fragments import enumerate_fragments

    fragments = enumerate_fragments(division.grid_dims)
    fields = [
        restrict_to_fragment(division, f, global_field) for f in fragments
    ]
    patched = patch_fragment_fields(division, fragments, fields)
    return float(np.max(np.abs(patched - global_field)))
