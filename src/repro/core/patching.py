"""Gen_VF and Gen_dens: the LS3DF restriction and patching operators.

These are the two data-movement kernels of the paper's flow chart:

* **Gen_VF** takes the global input potential ``V_tot_in(r)`` and produces,
  for every fragment, its restriction to the fragment box Omega_F (the
  fragment region plus buffer);
* **Gen_dens** takes the fragment charge densities ``rho_F(r)`` and patches
  them into the global density ``rho_tot(r) = sum_F alpha_F rho_F(r)``,
  accumulating only over each fragment's *region* (the buffer is excluded),
  where the +/- weights make every grid point counted exactly once.

Because the fragment grids share the global grid spacing, both operations
are exact periodic array gathers/scatters — the Python analogue of the
MPI communication the paper optimised from file-I/O to collectives to
point-to-point isend/irecv.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.division import SpatialDivision
from repro.core.fragments import Fragment


def restrict_to_fragment(
    division: SpatialDivision,
    fragment: Fragment,
    global_field: np.ndarray,
) -> np.ndarray:
    """Gen_VF: restrict a global real-space field to one fragment box.

    Parameters
    ----------
    division:
        The spatial division (owns the index maps).
    fragment:
        Target fragment.
    global_field:
        Field on the global FFT grid.

    Returns
    -------
    numpy.ndarray
        Field on the fragment-box grid (periodically wrapped copy).
    """
    if global_field.shape != division.global_grid.shape:
        raise ValueError("global field shape does not match the global grid")
    ix, iy, iz = division.global_indices(fragment, interior_only=False)
    return global_field[np.ix_(ix, iy, iz)].copy()


def patch_fragment_fields(
    division: SpatialDivision,
    fragments: Sequence[Fragment],
    fragment_fields: Iterable[np.ndarray],
    weights: Sequence[int] | None = None,
) -> np.ndarray:
    """Gen_dens: patch weighted fragment fields into a global field.

    Only the fragment-region part of each fragment field (the box interior
    excluding the buffer) is accumulated, multiplied by the fragment's
    alpha weight.  For fragment fields that are restrictions of a common
    global field the output reproduces that field exactly (the patching
    identity); for independently computed fragment densities the +/-
    pattern cancels the artificial boundary contributions.

    Parameters
    ----------
    division:
        The spatial division.
    fragments:
        Fragments in the same order as ``fragment_fields``.
    fragment_fields:
        Per-fragment arrays on the fragment-box grids.
    weights:
        Optional per-fragment weight overrides (defaults to each
        fragment's alpha).

    Returns
    -------
    numpy.ndarray
        The patched field on the global grid.
    """
    out = np.zeros(division.global_grid.shape, dtype=float)
    fragments = list(fragments)
    fields = list(fragment_fields)
    if len(fields) != len(fragments):
        raise ValueError("number of fields must match number of fragments")
    if weights is None:
        weights = [f.weight for f in fragments]
    elif len(weights) != len(fragments):
        raise ValueError("weights length mismatch")
    for fragment, field, weight in zip(fragments, fields, weights):
        box = division.fragment_box(fragment)
        if field.shape != box.npoints:
            raise ValueError(
                f"fragment field shape {field.shape} does not match box {box.npoints}"
            )
        interior = field[box.interior_slice]
        ix, iy, iz = division.global_indices(fragment, interior_only=True)
        np.add.at(out, np.ix_(ix, iy, iz), weight * np.real(interior))
    return out


def patching_identity_residual(
    division: SpatialDivision, global_field: np.ndarray
) -> float:
    """Max-norm residual of the restrict->patch round trip on a global field.

    Restricting an arbitrary global field to every fragment and patching
    the restrictions back must reproduce the field exactly; this helper
    (used by tests and by the driver's self-check) returns the maximum
    absolute deviation.
    """
    from repro.core.fragments import enumerate_fragments

    fragments = enumerate_fragments(division.grid_dims)
    fields = [
        restrict_to_fragment(division, f, global_field) for f in fragments
    ]
    patched = patch_fragment_fields(division, fragments, fields)
    return float(np.max(np.abs(patched - global_field)))
