"""The LS3DF outer self-consistent loop (Figure 2 of the paper).

Every iteration performs the four steps Gen_VF -> PEtot_F -> Gen_dens ->
GENPOT.  Fragment solves are independent of each other — the property the
paper exploits for near-perfect parallel scaling — so PEtot_F is executed
through a pluggable backend implementing the
:class:`repro.core.fragment_task.FragmentExecutor` protocol: the serial
default, a thread pool, or a process pool
(:mod:`repro.parallel.executor`).  The loop itself only builds picklable
fragment tasks and consumes their results; it never cares *where* a
fragment was solved.

In the paper *all three* per-fragment steps are embarrassingly parallel,
not just the solves; only the small GENPOT Poisson solve is serial.  The
``pipeline=True`` mode reproduces that: Gen_VF, the solve and the
Gen_dens contribution are fused into one
:class:`~repro.core.fragment_task.FragmentPipelineTask` per fragment (a
single executor round trip), and the global density is assembled by a
deterministic chunked tree-reduce — the driver's remaining serial work
per iteration is task building, the reduce and GENPOT.  The default
``pipeline=False`` path produces byte-identical *results* to the seed;
only its timing attribution moved (task building — restriction plus
screening-potential assembly, i.e. the paper's Gen_VF — is now timed
under ``gen_vf`` instead of inflating the ``petot_f`` wall time, and the
fixed passivation potential is cached across iterations instead of
rebuilt).

The paper's parallelism is two-level: fragments go to processor
*groups*, and the Np cores inside a group distribute one fragment's
all-band CG among themselves.  ``band_groups=`` reproduces the second
level: each fragment's solve is band-sliced over the executor's workers
(:mod:`repro.parallel.bands`), with the driver as group root — so a
single huge fragment no longer bounds the PEtot_F wall time — while
results stay bit-identical to the single-worker paths for any slice
count and backend.

Long runs can be checkpointed and resumed (``checkpoint_dir=`` /
``checkpoint_every=`` / ``resume=`` on :meth:`LS3DFSCF.run`): the
cross-iteration state — input potential, mixer history, warm-start
wavefunctions — is persisted via :mod:`repro.io.checkpoint`, and a
resumed run's iterates are bit-identical to an uninterrupted run's.  On
the band-grouped path, completed fragments are additionally persisted
*within* each iteration, so a kill mid-PEtot_F replays only the
unfinished fragments.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.core.division import SpatialDivision
from repro.core.fragment_solver import FragmentSolveResult, FragmentSolver
from repro.core.fragment_task import (
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentStateCache,
    PipelineFragmentExecutor,
    potential_fingerprint,
    run_fragment_pipeline_task_grouped,
)
from repro.core.fragments import Fragment, enumerate_fragments
from repro.core.genpot import GlobalPotentialSolver
from repro.core.patching import (
    patch_contributions,
    patch_fragment_fields,
    restrict_to_fragment,
)
from repro.io.checkpoint import (
    SCFCheckpoint,
    clear_partial_payloads,
    has_checkpoint,
    load_checkpoint,
    load_partial_payloads,
    save_checkpoint,
    save_partial_payload,
)
from repro.pw.grid import FFTGrid
from repro.pw.pseudopotential import PseudopotentialSet, default_pseudopotentials


@dataclass
class IterationTimings:
    """Wall-clock split of one LS3DF iteration over the paper's four steps.

    ``petot_f`` is the wall-clock time of the whole PEtot_F step as seen
    by the outer loop; ``petot_f_fragments`` holds each fragment's own
    solve time (in fragment order), so real speedups and parallel
    efficiencies can be measured instead of modelled.

    With the fused fragment pipeline (``pipeline`` True) the Gen_VF
    restriction and the Gen_dens interior extraction run *inside* the
    per-fragment tasks: their in-worker times land in
    ``gen_vf_fragments`` / ``gen_dens_fragments`` (and inside
    ``petot_f_fragments``, which then times the whole fused step), while
    the driver-side ``gen_vf`` / ``gen_dens`` shrink to task building and
    the chunked tree-reduce.  ``serial_time`` / ``measured_serial_fraction``
    expose how much of the iteration actually remained serial — the
    measured counterpart of the paper's Amdahl fit (compare
    :func:`repro.parallel.amdahl.serial_fraction_history`).

    With the overlapped pipeline reduce (``overlap`` True — the default
    whenever the executor offers ``submit_pipeline_batch``) the driver
    consumes fragment futures in fragment order while the batch tail is
    still draining: ``overlap_wait`` / ``overlap_busy`` split that loop
    into blocked-on-workers versus useful reduce work (see
    ``overlap_occupancy``), and ``gen_dens`` shrinks to the residue left
    *after* the last fragment landed.

    ``genpot_poisson`` / ``genpot_xc`` / ``genpot_mix`` break the GENPOT
    wall time down into its three global steps.  With ``genpot_shards >
    1`` those steps run as per-slab tasks through the executor: their
    in-worker wall times land in ``genpot_tasks`` (counted as parallel
    work by ``parallel_cpu``), ``genpot_sharded`` is set, and only the
    driver residue ``genpot_driver`` (slab scatter/gather/exchange,
    scalar reductions, task overhead) stays in ``serial_time``.  With the
    streaming engine (``genpot_overlap``; :mod:`repro.parallel.streaming`)
    the three steps interleave per slab: ``genpot_wait`` is the driver
    loop's blocked time and ``layout_conversion`` the *measured*
    scatter/exchange/gather copy seconds — the previously modelled
    layout-conversion cost of the paper's dual-layout design.

    With band-parallel PEtot_F (``band_groups > 1``) each fragment's
    all-band CG is itself distributed: ``band_sliced`` is set,
    ``band_slices`` records the slice count (the local Np per group),
    ``band_tasks`` holds the in-worker wall time of every per-slice
    :class:`~repro.parallel.bands.BandBlockTask` (the parallel bucket),
    ``band_stages`` counts the sliced stages dispatched and
    ``band_replayed`` the fragments replayed from a mid-iteration
    partial checkpoint instead of re-solved (their per-fragment timing
    entries are zero — this run only paid the payload read, counted in
    ``checkpoint_io``).  The group root's dense cross-band algebra plus
    dispatch overhead — ``band_driver`` = ``petot_f - band_cpu`` — is
    what stays serial, so ``measured_intra_group_efficiency`` is the
    measured counterpart of the modelled
    :meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`.
    ``band_schedule`` carries a
    :class:`repro.parallel.scheduler.GroupExecutionRecord`: the LPT
    plan over group-sized bins *plus* the measured wall time of every
    group bin and of the whole step.  With ``concurrent_groups`` (and an
    executor whose ``partition`` can split its workers) the Ng groups
    run on disjoint sub-pools from concurrent driver threads, so the
    record's ``concurrent`` flag is set and ``measured_makespan`` /
    ``concurrency_efficiency`` describe a genuinely overlapped
    execution; otherwise the groups time-share one pool sequentially
    and the same fields measure that serialisation.  The modelled
    quantities (Np, modelled intra-group efficiency) remain reachable
    through the record's delegating properties.

    ``checkpoint_io`` records the seconds spent writing this iteration's
    checkpoint — including mid-iteration partial-fragment payloads on
    the band-grouped path (zero when checkpointing is off).  Checkpoint
    I/O happens on the driver while every worker idles, so it is counted
    in ``serial_time`` — the Amdahl accounting stays honest about the
    cost of restartability.
    """

    gen_vf: float = 0.0
    petot_f: float = 0.0
    gen_dens: float = 0.0
    genpot: float = 0.0
    petot_f_fragments: list[float] = field(default_factory=list)
    petot_f_workers: int = 1
    gen_vf_fragments: list[float] = field(default_factory=list)
    gen_dens_fragments: list[float] = field(default_factory=list)
    pipeline: bool = False
    overlap: bool = False
    overlap_wait: float = 0.0
    overlap_busy: float = 0.0
    genpot_poisson: float = 0.0
    genpot_xc: float = 0.0
    genpot_mix: float = 0.0
    genpot_driver: float = 0.0
    genpot_tasks: list[float] = field(default_factory=list)
    genpot_sharded: bool = False
    genpot_overlap: bool = False
    genpot_wait: float = 0.0
    layout_conversion: float = 0.0
    checkpoint_io: float = 0.0
    band_sliced: bool = False
    band_slices: int = 0
    band_stages: int = 0
    band_replayed: int = 0
    band_tasks: list[float] = field(default_factory=list)
    band_schedule: object | None = None

    @property
    def total(self) -> float:
        """Whole-iteration wall time (the four steps plus checkpoint I/O)."""
        return (
            self.gen_vf + self.petot_f + self.gen_dens + self.genpot
            + self.checkpoint_io
        )

    @property
    def petot_f_cpu(self) -> float:
        """Summed per-fragment solve time (serial-equivalent PEtot_F cost)."""
        return float(sum(self.petot_f_fragments))

    @property
    def petot_f_speedup(self) -> float:
        """Measured PEtot_F speedup: summed fragment time / wall time."""
        if self.petot_f <= 0:
            return 0.0
        return self.petot_f_cpu / self.petot_f

    @property
    def genpot_cpu(self) -> float:
        """Summed in-worker time of the sharded GENPOT's per-slab tasks."""
        return float(sum(self.genpot_tasks))

    @property
    def overlap_occupancy(self) -> float:
        """Useful fraction of the overlapped Gen_dens reduce's driver loop.

        With the overlapped pipeline reduce (``overlap`` True) the driver
        consumes fragment futures in order while the batch tail drains:
        ``overlap_busy`` seconds went into the chunked tree-reduce under
        still-running workers and ``overlap_wait`` seconds were spent
        blocked on the next future.  This is their ratio — 0.0 when the
        overlapped path did not run.
        """
        denom = self.overlap_busy + self.overlap_wait
        return self.overlap_busy / denom if denom > 0 else 0.0

    @property
    def band_cpu(self) -> float:
        """Summed in-worker time of the band-sliced eigensolver tasks."""
        return float(sum(self.band_tasks))

    @property
    def band_driver(self) -> float:
        """Group-root residue of a band-sliced PEtot_F step.

        The PEtot_F wall time minus the summed in-worker band-task time
        (clamped at zero, since a real pool overlaps tasks): the dense
        cross-band reductions, gathers and dispatch overhead the group
        root keeps.  Zero when the step did not run band-sliced.
        """
        if not self.band_sliced:
            return 0.0
        return max(0.0, self.petot_f - self.band_cpu)

    @property
    def measured_intra_group_efficiency(self) -> float:
        """Measured efficiency of the band groups: band CPU / (Np x wall).

        Delegates to
        :func:`repro.parallel.amdahl.measured_intra_group_efficiency`
        (imported lazily — a module-level parallel import here would be
        circular), the single home of the formula; the measured
        counterpart of the modelled
        :meth:`repro.parallel.groups.GroupDecomposition.intra_group_efficiency`.
        0.0 when the step did not run band-sliced.
        """
        if not self.band_sliced:
            return 0.0
        from repro.parallel.amdahl import measured_intra_group_efficiency

        return measured_intra_group_efficiency(
            self.band_cpu, self.petot_f, self.band_slices
        )

    @property
    def serial_time(self) -> float:
        """Driver-side unparallelised time of the iteration.

        The Gen_VF and Gen_dens entries time serial per-fragment driver
        loops on the unfused path but only task building plus the chunked
        tree-reduce on the pipeline path.  GENPOT is serial on the
        default path; with ``genpot_shards > 1`` the per-slab Poisson/XC/
        mixing work moves to the executor (parallel bucket) and only the
        driver residue — layout conversion, scalar reductions, task
        overhead (``genpot_driver``) — remains serial.  With band-sliced
        PEtot_F the group root's share (``band_driver``) is likewise
        serial, while the sliced band tasks count as parallel.
        Checkpoint I/O, when enabled, is driver-only work and counts
        here too.
        """
        genpot_serial = self.genpot_driver if self.genpot_sharded else self.genpot
        return (
            self.gen_vf
            + self.gen_dens
            + genpot_serial
            + self.band_driver
            + self.checkpoint_io
        )

    @property
    def parallel_cpu(self) -> float:
        """Serial-equivalent cost of the executor-distributable work.

        The summed per-fragment wall times (replaced by the summed
        per-slice band-task times when PEtot_F ran band-sliced — the
        fragment walls then contain root-side serial work), plus the
        summed per-slab GENPOT task times when the global step is
        sharded.
        """
        genpot_parallel = self.genpot_cpu if self.genpot_sharded else 0.0
        petot_parallel = self.band_cpu if self.band_sliced else self.petot_f_cpu
        return petot_parallel + genpot_parallel

    @property
    def measured_serial_fraction(self) -> float:
        """Measured Amdahl alpha: serial / (serial + parallelisable CPU).

        The parallelisable part is the summed per-fragment wall time
        (plus the per-slab GENPOT task time when sharded) — the
        serial-equivalent cost of the work the executor may spread over
        any number of workers.
        """
        denominator = self.serial_time + self.parallel_cpu
        if denominator <= 0:
            return 0.0
        return self.serial_time / denominator

    def as_dict(self) -> dict[str, float]:
        return {
            "Gen_VF": self.gen_vf,
            "PEtot_F": self.petot_f,
            "Gen_dens": self.gen_dens,
            "GENPOT": self.genpot,
            "total": self.total,
        }


@dataclass
class LS3DFResult:
    """Outcome of an LS3DF self-consistent calculation.

    Attributes
    ----------
    density:
        Converged global electron density (patched).
    potential:
        Converged global screening potential (V_es + V_xc).
    total_energy:
        Patched total energy E = sum_F alpha_F E_F^quantum + E_es + E_xc
        - E_self (Hartree a.u.).
    quantum_energy:
        The patched fragment quantum-energy part alone.
    converged:
        True when the potential metric dropped below tolerance.
    iterations:
        Number of outer iterations performed.
    convergence_history:
        integral |V_out - V_in| d^3r per iteration (the paper's Fig. 6).
    energy_history:
        Total energy per iteration.
    fragment_results:
        Final-iteration per-fragment solve results.
    timings:
        Per-iteration four-subroutine wall-clock timings.
    nfragments:
        Number of fragments.
    """

    density: np.ndarray
    potential: np.ndarray
    total_energy: float
    quantum_energy: float
    converged: bool
    iterations: int
    convergence_history: list[float] = field(default_factory=list)
    energy_history: list[float] = field(default_factory=list)
    fragment_results: list[FragmentSolveResult] = field(default_factory=list)
    timings: list[IterationTimings] = field(default_factory=list)
    nfragments: int = 0


class LS3DFSCF:
    """LS3DF self-consistent field driver.

    Parameters
    ----------
    structure:
        Global periodic supercell.
    grid_dims:
        Fragment grid ``(m1, m2, m3)``.
    ecut:
        Plane-wave cutoff for the fragment solves (Hartree).
    global_grid:
        Global FFT grid; chosen automatically (divisible by ``grid_dims``)
        when omitted.
    pseudopotentials:
        Model pseudopotential set.
    buffer_cells:
        Fragment buffer size as a fraction of a cell (see SpatialDivision).
    n_empty:
        Extra empty bands per fragment.
    mixer, mixer_options:
        Global potential mixing scheme (GENPOT step).
    eigensolver:
        Fragment eigensolver algorithm.
    passivate, polar_passivation:
        Fragment surface passivation options.
    executor:
        Fragment-execution backend implementing the
        :class:`~repro.core.fragment_task.FragmentExecutor` protocol; the
        default :class:`~repro.parallel.executor.SerialFragmentExecutor`
        solves fragments one after another in-process.  Pass a
        :class:`~repro.parallel.executor.ThreadPoolFragmentExecutor` or
        :class:`~repro.parallel.executor.ProcessPoolFragmentExecutor` to
        solve the independent fragment problems concurrently.
    pipeline:
        When True, fuse Gen_VF -> PEtot_F -> Gen_dens into one
        :class:`~repro.core.fragment_task.FragmentPipelineTask` per
        fragment per iteration: the serial per-fragment driver loops
        disappear (the restriction and the weighted-interior extraction
        run inside the workers, one round trip per fragment) and the
        global density is assembled by a deterministic chunked
        tree-reduce.  Requires an executor with a ``run_pipeline`` method
        (all backends in :mod:`repro.parallel.executor` have one).  The
        default False keeps the seed serial data path (byte-identical
        results; see the module docstring for the timing-attribution
        changes).
    patch_chunk_size:
        Chunk size of the pipeline path's Gen_dens tree-reduce (see
        :func:`repro.core.patching.patch_contributions`).  Fixed by
        fragment order only, so results are independent of the backend
        and worker count.  Ignored when ``pipeline`` is False.
    genpot_shards:
        Number of 1D z-slabs the GENPOT global steps are distributed
        over (the paper's dual fragment/slab data layout).  The default
        ``None`` (or 1) keeps the serial global step.  With more shards
        the Poisson solve, XC and mixing run as per-slab
        :class:`~repro.parallel.distributed.GlobalStepTask` batches
        through this driver's ``executor`` — bit-identical results for
        any shard count and backend — and the iteration timings count the
        per-slab work as parallel (see :class:`IterationTimings`).
    genpot_overlap:
        Stream the sharded GENPOT (resident slabs, fused stages, layout
        conversion overlapped with compute; see
        :mod:`repro.parallel.streaming`) and, on the pipeline paths,
        consume fragment futures in order while the batch tail drains
        instead of idling behind the whole batch.  Default on; purely a
        scheduling choice — iterates are bit-identical with it on or
        off — taking effect only where the executor offers the
        ``submit_global`` / ``submit_pipeline_batch`` futures surface.
    band_groups:
        Number of band slices each fragment's all-band CG is distributed
        over — the local analogue of the paper's Np cores *per fragment
        group*.  The default ``None`` keeps the one-worker-per-fragment
        paths.  When set, PEtot_F switches to the band-grouped pipeline:
        the driver hands fragments to the executor one group at a time
        (LPT over group-sized bins, heaviest first; see
        :meth:`repro.parallel.scheduler.FragmentScheduler.schedule_grouped`),
        acts as each group's root for the dense cross-band reductions,
        and pushes the per-slice H·psi / residual work through
        ``executor.run_bands`` as
        :class:`~repro.parallel.bands.BandBlockTask` batches —
        bit-identical results to the ungrouped paths for any slice count
        and backend, which is what removes the largest-fragment floor on
        the PEtot_F wall time.  Requires the ``"all_band"`` eigensolver
        and an executor with ``run_bands`` (all backends in
        :mod:`repro.parallel.executor`).  With ``checkpoint_dir=`` set
        on :meth:`run`, completed fragments are additionally persisted
        *within* each iteration, so a killed run replays only the
        unfinished ones (see :mod:`repro.io.checkpoint`).
    install_potentials:
        Install each iteration's global input potential once per worker
        through the executor's install channel and ship pipeline (and
        band-slice) tasks with a fingerprint key instead of the array
        (PR 6).  Bit-identical on or off; silently falls back to inline
        shipping when the executor lacks ``install_state``.  Only
        affects the pipeline / band-grouped paths.
    sliced_nonlocal:
        Run the Kleinman-Bylander term inside band slices via the
        blocked fixed-shape projector kernel instead of on each group
        root (PR 6).  Bit-identical on or off; only affects the
        band-grouped path.
    concurrent_groups:
        Run the Ng band groups of a ``band_groups`` iteration
        *concurrently*: the executor's workers are partitioned into one
        sub-pool per group (``executor.partition``; see
        :func:`repro.parallel.groups.partition_worker_counts`), each
        group bin's LPT task queue is drained by its own driver thread
        acting as that group's root, and
        ``IterationTimings.band_schedule`` records the measured
        per-group walls instead of only the modelled decomposition.
        Bit-identical on or off — fragment results are pure functions
        of their tasks and the Gen_dens reduce is order-fixed.  Takes
        effect when the schedule yields more than one group (total
        workers > ``band_groups``) and the executor supports
        ``partition``; otherwise the groups run sequentially as before.
        Default True.
    """

    def __init__(
        self,
        structure: Structure,
        grid_dims: Sequence[int],
        ecut: float = 4.0,
        global_grid: FFTGrid | None = None,
        pseudopotentials: PseudopotentialSet | None = None,
        buffer_cells: float = 0.5,
        n_empty: int = 2,
        mixer: str = "kerker",
        mixer_options: dict | None = None,
        eigensolver: str = "all_band",
        passivate: bool = True,
        polar_passivation: bool = True,
        points_per_bohr: float | None = None,
        executor: FragmentExecutor | None = None,
        pipeline: bool = False,
        patch_chunk_size: int = 8,
        genpot_shards: int | None = None,
        genpot_overlap: bool = True,
        band_groups: int | None = None,
        install_potentials: bool = True,
        sliced_nonlocal: bool = True,
        concurrent_groups: bool = True,
    ) -> None:
        self.structure = structure
        self.grid_dims = tuple(int(m) for m in grid_dims)
        self.pseudopotentials = pseudopotentials or default_pseudopotentials()
        self.ecut = float(ecut)
        if global_grid is None:
            global_grid = self._default_grid(points_per_bohr)
        self.global_grid = global_grid
        self.division = SpatialDivision(
            structure, self.grid_dims, global_grid, buffer_cells
        )
        self.fragments: list[Fragment] = enumerate_fragments(self.grid_dims)
        self.fragment_solver = FragmentSolver(
            self.division,
            self.pseudopotentials,
            ecut=self.ecut,
            n_empty=n_empty,
            eigensolver=eigensolver,
            passivate=passivate,
            polar_passivation=polar_passivation,
        )
        if executor is None:
            # Imported lazily: repro.parallel.executor depends on
            # repro.core.fragment_task, so a module-level import here would
            # be circular.
            from repro.parallel.executor import SerialFragmentExecutor

            executor = SerialFragmentExecutor()
        self.genpot = GlobalPotentialSolver(
            structure,
            global_grid,
            self.pseudopotentials,
            mixer=mixer,
            mixer_options=mixer_options,
            shards=genpot_shards,
            executor=executor,
            overlap=genpot_overlap,
        )
        self.genpot_shards = self.genpot.shards
        self.genpot_overlap = self.genpot.overlap
        self.pipeline = bool(pipeline)
        if self.pipeline and not isinstance(executor, PipelineFragmentExecutor):
            raise TypeError(
                f"pipeline=True needs an executor with run_pipeline(); "
                f"{type(executor).__name__} only supports plain run() — use a "
                f"backend from repro.parallel.executor or set pipeline=False"
            )
        if patch_chunk_size < 1:
            raise ValueError("patch_chunk_size must be positive")
        self.patch_chunk_size = int(patch_chunk_size)
        self.band_groups = None if band_groups is None else int(band_groups)
        if self.band_groups is not None:
            if self.band_groups < 1:
                raise ValueError("band_groups must be positive")
            if eigensolver != "all_band":
                raise ValueError(
                    "band_groups requires the all-band eigensolver "
                    f"(got {eigensolver!r})"
                )
            if not hasattr(executor, "run_bands"):
                raise TypeError(
                    f"band_groups needs an executor with run_bands(); "
                    f"{type(executor).__name__} does not provide one — use a "
                    f"backend from repro.parallel.executor or set "
                    f"band_groups=None"
                )
        self.executor = executor
        self.install_potentials = bool(install_potentials)
        self.sliced_nonlocal = bool(sliced_nonlocal)
        self.concurrent_groups = bool(concurrent_groups)
        self.state_cache = FragmentStateCache()
        self._last_install_key: str | None = None

    # ------------------------------------------------------------------
    def _default_grid(self, points_per_bohr: float | None) -> FFTGrid:
        """Global grid whose axes divide evenly into the fragment grid."""
        if points_per_bohr is None:
            gmax = np.sqrt(2.0 * self.ecut)
            points_per_bohr = max(1.2, 2.0 * gmax / np.pi * 1.05)
        cell = self.structure.cell
        shape = []
        for c, m in zip(cell, self.grid_dims):
            per_cell = max(4, int(np.ceil(c / m * points_per_bohr)))
            if per_cell % 2:
                per_cell += 1
            shape.append(per_cell * m)
        return FFTGrid(cell, shape)

    @property
    def nfragments(self) -> int:
        return len(self.fragments)

    def _problem_signature(self) -> str:
        """Checkpoint compatibility digest of this solver's SCF problem.

        The division signature (structure + grids + buffer) salted with
        the solve parameters that shape the persisted state: ``ecut`` and
        ``n_empty`` determine the warm-start coefficient shapes, so a
        checkpoint from a differently configured solver must fail the
        manifest validation instead of crashing mid-solve.

        Returns
        -------
        str
            Hex SHA-256 digest.
        """
        h = hashlib.sha256()
        h.update(self.division.signature().encode())
        h.update(np.float64(self.ecut).tobytes())
        h.update(np.int64(self.fragment_solver.n_empty).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def _build_pipeline_tasks(
        self,
        v_in: np.ndarray,
        eigensolver_tolerance: float,
        eigensolver_iterations: int,
    ) -> list:
        """One fused pipeline task per fragment (the driver's Gen_VF residue).

        Shared by the pipeline and band-grouped iteration paths so their
        task construction — and hence their bit-identity — cannot
        diverge.  With ``install_potentials`` (and an executor exposing
        ``install_state``) the iteration's V_in is installed once per
        worker and the tasks carry only its fingerprint key — the
        restriction then reads the exact installed bytes, so results are
        bit-identical to inline shipping.
        """
        potential_key = None
        if self.install_potentials and hasattr(self.executor, "install_state"):
            potential_key = potential_fingerprint(v_in)
            self.executor.install_state(potential_key, v_in)
        self._last_install_key = potential_key
        return [
            self.fragment_solver.make_pipeline_task(
                f,
                v_in,
                eigensolver_tolerance=eigensolver_tolerance,
                eigensolver_iterations=eigensolver_iterations,
                initial_coefficients=self.state_cache.get(f.label),
                global_potential_key=potential_key,
            )
            for f in self.fragments
        ]

    def _reduce_pipeline_results(
        self, results: Sequence
    ) -> tuple[np.ndarray, list[FragmentSolveResult]]:
        """Consume pipeline results: cache update, conversion, tree-reduce.

        The driver-side Gen_dens residue shared by the pipeline and
        band-grouped paths: store warm starts, attach fragments to the
        kernel results, and assemble the global density with the
        deterministic chunked tree sum (scatter maps come from the
        division — no index arrays ride on results).
        """
        self.state_cache.update([p.result for p in results])
        frag_results = [
            FragmentSolver.result_from_task(f, p.result)
            for f, p in zip(self.fragments, results)
        ]
        density = patch_contributions(
            self.global_grid.shape,
            (
                (self.division.global_indices(f, interior_only=True), p.contribution)
                for f, p in zip(self.fragments, results)
            ),
            chunk_size=self.patch_chunk_size,
        )
        return density, frag_results

    def _run_pipeline_iteration(
        self,
        v_in: np.ndarray,
        eigensolver_tolerance: float,
        eigensolver_iterations: int,
        t: IterationTimings,
    ) -> tuple[np.ndarray, list[FragmentSolveResult]]:
        """One fused Gen_VF -> PEtot_F -> Gen_dens lap of the iteration.

        Each fragment is a single
        :class:`~repro.core.fragment_task.FragmentPipelineTask` — one
        executor submission per fragment per iteration — whose worker
        performs the restriction, the Kohn-Sham solve and the
        weighted-interior extraction.  The driver only builds tasks
        (timed as ``gen_vf``) and reduces the returned contributions with
        the deterministic chunked tree sum (timed as ``gen_dens``), so
        the per-fragment serial loops of the unfused path vanish from the
        driver's serial time.
        """
        t.pipeline = True
        # --- Gen_VF (driver residue): build one fused task per fragment.
        t0 = time.perf_counter()
        tasks = self._build_pipeline_tasks(
            v_in, eigensolver_tolerance, eigensolver_iterations
        )
        t.gen_vf = time.perf_counter() - t0

        if self.genpot_overlap and hasattr(self.executor, "submit_pipeline_batch"):
            return self._run_overlapped_pipeline_batch(tasks, t)

        # --- PEtot_F (fused): restrict + solve + contribute per worker.
        t0 = time.perf_counter()
        report = self.executor.run_pipeline(tasks)
        t.petot_f = time.perf_counter() - t0
        t.petot_f_fragments = [p.wall_time for p in report.results]
        t.petot_f_workers = report.worker_count
        t.gen_vf_fragments = [p.gen_vf_time for p in report.results]
        t.gen_dens_fragments = [p.gen_dens_time for p in report.results]

        # --- Gen_dens (driver residue): consume the results and chunked-
        # tree-reduce the pre-weighted contributions the workers shipped
        # back.  Cache update and conversion are serial driver work and
        # belong in this bucket, not in the PEtot_F wall time.
        t0 = time.perf_counter()
        density, frag_results = self._reduce_pipeline_results(report.results)
        t.gen_dens = time.perf_counter() - t0
        return density, frag_results

    def _run_overlapped_pipeline_batch(
        self, tasks: list, t: IterationTimings
    ) -> tuple[np.ndarray, list[FragmentSolveResult]]:
        """Consume a pipeline batch future-by-future, reducing under the tail.

        The physical submissions are the same heaviest-first (optionally
        stacked) units as :meth:`run_pipeline
        <repro.parallel.executor._PoolFragmentExecutor.run_pipeline>` —
        only the driver's schedule changes: instead of idling until the
        whole batch returns, the chunked tree-reduce of Gen_dens consumes
        each fragment's future as soon as it resolves.  The reduce walks
        fragments in fragment order with the same ``patch_chunk_size``
        chunking, so the summation tree — and hence every density bit —
        matches the synchronous path exactly.
        """
        t.overlap = True
        t0 = time.perf_counter()
        futures = self.executor.submit_pipeline_batch(tasks)
        results: list = [None] * len(tasks)
        wait = [0.0]

        def ordered_contributions():
            for i, future in enumerate(futures):
                tw = time.perf_counter()
                p = future.result()
                wait[0] += time.perf_counter() - tw
                results[i] = p
                yield (
                    self.division.global_indices(
                        self.fragments[i], interior_only=True
                    ),
                    p.contribution,
                )

        density = patch_contributions(
            self.global_grid.shape,
            ordered_contributions(),
            chunk_size=self.patch_chunk_size,
        )
        wall = time.perf_counter() - t0
        # The consume loop is PEtot_F as the outer loop sees it; its
        # blocked/busy split is the overlap accounting (the busy part ran
        # under still-working workers and leaves the serial residue).
        t.petot_f = wall
        t.overlap_wait = wait[0]
        t.overlap_busy = max(wall - wait[0], 0.0)
        t.petot_f_fragments = [p.wall_time for p in results]
        t.petot_f_workers = getattr(self.executor, "n_workers", 1)
        t.gen_vf_fragments = [p.gen_vf_time for p in results]
        t.gen_dens_fragments = [p.gen_dens_time for p in results]

        # --- Gen_dens residue: only the post-tail work remains serial.
        t0 = time.perf_counter()
        self.state_cache.update([p.result for p in results])
        frag_results = [
            FragmentSolver.result_from_task(f, p.result)
            for f, p in zip(self.fragments, results)
        ]
        t.gen_dens = time.perf_counter() - t0
        return density, frag_results

    # ------------------------------------------------------------------
    def _run_band_grouped_iteration(
        self,
        v_in: np.ndarray,
        eigensolver_tolerance: float,
        eigensolver_iterations: int,
        t: IterationTimings,
        iteration: int,
        checkpoint_path: Path | None,
        division_signature: str,
        replay_partials: bool,
    ) -> tuple[np.ndarray, list[FragmentSolveResult]]:
        """One band-parallel Gen_VF -> PEtot_F -> Gen_dens lap.

        The two-level hierarchy in action: fragments are LPT-assigned to
        *worker groups* (bins of ``band_groups`` workers).  With
        ``concurrent_groups`` and a partitionable executor the Ng bins
        run genuinely in parallel — each group gets its own worker
        sub-pool (``executor.partition``) and its own driver thread as
        group root, draining that bin's queue heaviest-first — while the
        per-slice H·psi / residual work of each fragment spreads over
        the group's sub-pool as
        :class:`~repro.parallel.bands.BandBlockTask` batches.  Without
        partition support (or when the schedule has a single group) the
        bins time-share the executor sequentially, heaviest fragment
        first, exactly as before.  Either way the measured per-group
        walls land in ``t.band_schedule`` (a
        :class:`~repro.parallel.scheduler.GroupExecutionRecord`).  The
        data path around the solves is the fused pipeline's (same task
        construction, same deterministic chunked tree-reduce), and each
        fragment's grouped solve is a pure function of its task, so
        results are bit-identical to ``pipeline=True`` runs — and hence
        to the seed path — for any slice count, backend and group
        concurrency.

        With ``checkpoint_path`` set, every completed fragment's
        :class:`~repro.core.fragment_task.FragmentPipelineResult` is
        persisted immediately
        (:func:`repro.io.checkpoint.save_partial_payload`); on entry —
        only when the caller asked to ``resume`` (``replay_partials``) —
        any partials saved for this same iteration are replayed from
        disk instead of re-solved, so a kill mid-PEtot_F costs only the
        unfinished fragments.  A fresh run never replays (its partials
        were wiped up front by :meth:`run`).
        """
        t.pipeline = True
        t.band_sliced = True
        t.band_slices = self.band_groups
        # --- Gen_VF (driver residue): build one fused task per fragment.
        t0 = time.perf_counter()
        tasks = self._build_pipeline_tasks(
            v_in, eigensolver_tolerance, eigensolver_iterations
        )
        t.gen_vf = time.perf_counter() - t0

        # --- Mid-iteration replay: fragments already completed (and
        # persisted) by a killed attempt at this very iteration.  The
        # state fingerprint pins the replay to this iteration's actual
        # solve inputs — a resume with a changed tolerance or a different
        # input potential re-solves instead of splicing stale results.
        state_fingerprint = ""
        if checkpoint_path is not None:
            fp = hashlib.sha256()
            fp.update(np.ascontiguousarray(v_in).tobytes())
            fp.update(np.float64(eigensolver_tolerance).tobytes())
            fp.update(np.int64(eigensolver_iterations).tobytes())
            state_fingerprint = fp.hexdigest()
        replayed: dict[str, FragmentPipelineResult] = {}
        if checkpoint_path is not None and replay_partials:
            t0 = time.perf_counter()
            replayed = {
                label: FragmentPipelineResult.from_state_dict(arrays)
                for label, arrays in load_partial_payloads(
                    checkpoint_path,
                    iteration,
                    division_signature,
                    state_fingerprint=state_fingerprint,
                ).items()
            }
            t.checkpoint_io += time.perf_counter() - t0

        # --- PEtot_F (band-grouped): LPT over group-sized bins, then run
        # the bins — concurrently on partitioned sub-pools when possible,
        # else one grouped solve at a time, heaviest fragment first.
        t0 = time.perf_counter()
        n_workers = int(getattr(self.executor, "n_workers", 1))
        from repro.parallel.scheduler import FragmentScheduler, GroupExecutionRecord

        plan = FragmentScheduler().schedule_grouped(
            tasks,
            total_cores=max(n_workers, self.band_groups),
            cores_per_group=self.band_groups,
        )
        ngroups = len(plan.assignments)
        concurrent = bool(
            self.concurrent_groups
            and ngroups > 1
            and callable(getattr(self.executor, "partition", None))
        )
        results: list[FragmentPipelineResult | None] = [None] * len(tasks)
        replayed_indices: set[int] = set()
        # Replay saved fragments up front (group-independent), leaving each
        # group bin's queue with only the work that still needs solving.
        queues: list[list[int]] = []
        for members in plan.assignments:
            queue: list[int] = []
            for idx in members:
                saved = replayed.get(self.fragments[idx].label)
                if saved is not None:
                    results[idx] = saved
                    replayed_indices.add(idx)
                    t.band_replayed += 1
                else:
                    queue.append(idx)
            queues.append(queue)

        group_walls = [0.0] * ngroups
        group_io = [0.0] * ngroups
        group_stats: list[list] = [[] for _ in range(ngroups)]
        io_lock = threading.Lock()

        def _solve_into_group(idx: int, group: int, executor) -> None:
            pres, stats = run_fragment_pipeline_task_grouped(
                tasks[idx],
                executor,
                self.band_groups,
                install_potentials=self.install_potentials,
                sliced_nonlocal=self.sliced_nonlocal,
            )
            results[idx] = pres
            group_stats[group].append(stats)
            if checkpoint_path is not None:
                tio = time.perf_counter()
                with io_lock:
                    save_partial_payload(
                        checkpoint_path,
                        iteration,
                        division_signature,
                        self.fragments[idx].label,
                        pres.state_dict(),
                        state_fingerprint=state_fingerprint,
                    )
                group_io[group] += time.perf_counter() - tio

        if concurrent:
            subs = self.executor.partition(ngroups)
            # The iteration's input potential was installed on the parent
            # executor when the tasks were built; each group sub-pool has
            # its own workers, so install it there too (per-sub-pool dedup
            # makes repeats free).
            if self._last_install_key is not None:
                for sub in subs:
                    if hasattr(sub, "install_state"):
                        sub.install_state(self._last_install_key, v_in)
            errors: list[BaseException | None] = [None] * ngroups

            def _run_group(group: int) -> None:
                g0 = time.perf_counter()
                try:
                    for idx in queues[group]:
                        _solve_into_group(idx, group, subs[group])
                except BaseException as exc:
                    errors[group] = exc
                finally:
                    group_walls[group] = time.perf_counter() - g0

            threads = [
                threading.Thread(target=_run_group, args=(g,), daemon=True)
                for g in range(ngroups)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # A dead group must not lose its siblings' work: every other
            # group has finished its queue (and persisted its partials)
            # before the failure propagates, so a resume re-solves only
            # the dead group's fragments.
            for error in errors:
                if error is not None:
                    raise error
        else:
            group_of = {
                idx: g for g, members in enumerate(plan.assignments) for idx in members
            }
            order = np.argsort([task.cost() for task in tasks], kind="stable")[::-1]
            for idx in order:
                idx = int(idx)
                if idx in replayed_indices:
                    continue
                f0 = time.perf_counter()
                _solve_into_group(idx, group_of[idx], self.executor)
                group_walls[group_of[idx]] += time.perf_counter() - f0

        for stats_list in group_stats:
            for stats in stats_list:
                t.band_stages += stats.stages
                t.band_tasks.extend(stats.task_times)
        step_wall = time.perf_counter() - t0
        partial_io = float(sum(group_io))
        t.band_schedule = GroupExecutionRecord(
            plan=plan,
            group_walls=group_walls,
            wall_time=step_wall,
            concurrent=concurrent,
        )
        t.petot_f = max(0.0, step_wall - partial_io)
        t.checkpoint_io += partial_io
        # Replayed fragments cost this run only the payload read (already in
        # checkpoint_io), so their entries are zero — the killed attempt's
        # wall times must not inflate this iteration's petot_f_cpu/speedup.
        t.petot_f_fragments = [
            0.0 if i in replayed_indices else p.wall_time
            for i, p in enumerate(results)
        ]
        t.petot_f_workers = n_workers
        t.gen_vf_fragments = [
            0.0 if i in replayed_indices else p.gen_vf_time
            for i, p in enumerate(results)
        ]
        t.gen_dens_fragments = [
            0.0 if i in replayed_indices else p.gen_dens_time
            for i, p in enumerate(results)
        ]

        # --- Gen_dens (driver residue): identical to the pipeline path.
        t0 = time.perf_counter()
        density, frag_results = self._reduce_pipeline_results(results)
        t.gen_dens = time.perf_counter() - t0
        return density, frag_results

    # ------------------------------------------------------------------
    def run(
        self,
        max_iterations: int = 30,
        potential_tolerance: float = 1e-3,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
        initial_potential: np.ndarray | None = None,
        callback: Callable[[int, float, float], None] | None = None,
        verbose: bool = False,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        event_hook: Callable[[str, dict], None] | None = None,
    ) -> LS3DFResult:
        """Run the LS3DF outer loop.

        Each call is a fresh SCF by default: the mixing history and the
        warm-start wavefunction cache are cleared up front, so
        back-to-back runs of one solver match runs of freshly built
        solvers bit for bit.  With ``resume=True`` the cross-iteration
        state is instead restored from ``checkpoint_dir`` and the loop
        continues at the saved iteration, producing iterates
        bit-identical to a never-interrupted run (see
        :mod:`repro.io.checkpoint`).

        Parameters
        ----------
        max_iterations:
            Maximum number of outer (potential) iterations; the paper's
            production runs use ~60.  Counts from iteration 1 even when
            resuming (a run resumed at iteration k performs at most
            ``max_iterations - k`` further iterations).
        potential_tolerance:
            Convergence threshold on integral |V_out - V_in| d^3r (a.u.).
        eigensolver_tolerance, eigensolver_iterations:
            Passed to the fragment eigensolver.
        initial_potential:
            Optional starting input potential (defaults to the neutral-atom
            guess).  Ignored when resuming from a checkpoint.
        callback:
            Optional ``callback(iteration, potential_difference, energy)``.
        verbose:
            Print per-iteration progress.
        checkpoint_dir:
            Directory to write SCF checkpoints to (input potential, mixer
            state, warm-start wavefunctions, histories).  ``None``
            (default) disables checkpointing.  The write time is recorded
            as serial work in ``IterationTimings.checkpoint_io``.  On the
            band-grouped path (``band_groups=``) each completed fragment
            is additionally persisted *within* the iteration, so a killed
            run replays the finished fragments from disk and re-solves
            only the rest.
        checkpoint_every:
            Save every this-many iterations (default 1: every iteration).
        resume:
            Restore state from ``checkpoint_dir`` and continue at the
            saved iteration.  The checkpoint's grid shape, fragment-
            division signature and mixer kind are validated — resuming a
            different problem raises
            :class:`repro.io.checkpoint.CheckpointMismatchError`.  When
            the directory holds no checkpoint yet, the run simply starts
            fresh (so a kill-and-rerun workflow can always pass
            ``resume=True``).
        event_hook:
            Optional ``event_hook(kind, data)`` called alongside the
            checkpoint hooks — the emission channel of the run store
            (:mod:`repro.store`).  Emitted kinds: ``"iteration"`` after
            every completed outer iteration (``iteration``,
            ``potential_difference``, ``energy``, ``converged``) and
            ``"checkpointed"`` after every checkpoint save
            (``iteration``).  A hook exception fails the run loudly — a
            run whose durable record cannot be written must not continue
            silently.

        Returns
        -------
        LS3DFResult
            Converged (or iteration-limited) density, potential, energies
            and per-iteration histories.  On a resumed run the histories
            include the checkpointed iterations; ``timings`` covers only
            the iterations this call executed.
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be positive")
        checkpoint_path = Path(checkpoint_dir) if checkpoint_dir is not None else None
        if resume and checkpoint_path is None:
            raise ValueError("resume=True requires checkpoint_dir")
        mixer = self.genpot.mixer
        mixer_kind = getattr(mixer, "kind", type(mixer).__name__)
        division_signature = self._problem_signature()

        restored = None
        if resume and has_checkpoint(checkpoint_path):
            restored = load_checkpoint(
                checkpoint_path,
                grid_shape=self.global_grid.shape,
                division_signature=division_signature,
                mixer_kind=mixer_kind,
            )

        conv_history: list[float] = []
        energy_history: list[float] = []
        start_iteration = 1
        if restored is not None:
            load_mixer_state = getattr(mixer, "load_state_dict", None)
            if callable(load_mixer_state):
                load_mixer_state(restored.mixer_state)
            elif restored.mixer_state:
                raise ValueError(
                    f"checkpoint carries mixer state but {type(mixer).__name__} "
                    f"has no load_state_dict"
                )
            self.state_cache.load_state_dict(restored.fragment_coefficients)
            conv_history = list(restored.convergence_history)
            energy_history = list(restored.energy_history)
            v_in = restored.v_in.copy()
            start_iteration = restored.iteration + 1
            if start_iteration > max_iterations:
                raise ValueError(
                    f"checkpoint is already at iteration {restored.iteration}; "
                    f"raise max_iterations (= {max_iterations}) to resume"
                )
        else:
            # A fresh SCF: drop every piece of cross-iteration state so a
            # reused solver behaves exactly like a newly built one — and,
            # when the user explicitly asked for a fresh run, wipe any
            # mid-iteration partials a previous (killed) run left in the
            # checkpoint directory, so a resume=False run never replays
            # stale fragment results.  (With resume=True this branch also
            # runs when no full checkpoint exists yet — a kill during the
            # very first iteration — and the partials are exactly what
            # the resumed run should replay, so they are kept.)
            self.genpot.reset()
            self.state_cache.clear()
            if checkpoint_path is not None and not resume:
                clear_partial_payloads(checkpoint_path)
            v_in = (
                initial_potential.copy()
                if initial_potential is not None
                else self.genpot.initial_potential()
            )
            if v_in.shape != self.global_grid.shape:
                raise ValueError("initial potential shape mismatch")

        timings: list[IterationTimings] = []
        frag_results: list[FragmentSolveResult] = []
        converged = False
        density = np.zeros(self.global_grid.shape)
        total_energy = 0.0
        quantum_energy = 0.0
        iteration = start_iteration - 1

        for iteration in range(start_iteration, max_iterations + 1):
            t = IterationTimings()

            if self.band_groups is not None:
                density, frag_results = self._run_band_grouped_iteration(
                    v_in,
                    eigensolver_tolerance,
                    eigensolver_iterations,
                    t,
                    iteration,
                    checkpoint_path,
                    division_signature,
                    replay_partials=resume,
                )
            elif self.pipeline:
                density, frag_results = self._run_pipeline_iteration(
                    v_in, eigensolver_tolerance, eigensolver_iterations, t
                )
            else:
                # --- Gen_VF: restrict the global potential to every fragment
                # box and assemble the screening potentials (task building —
                # the paper's "restrict V_in, add passivation potential").
                t0 = time.perf_counter()
                tasks = [
                    self.fragment_solver.make_task(
                        f,
                        restrict_to_fragment(self.division, f, v_in),
                        eigensolver_tolerance=eigensolver_tolerance,
                        eigensolver_iterations=eigensolver_iterations,
                        initial_coefficients=self.state_cache.get(f.label),
                    )
                    for f in self.fragments
                ]
                t.gen_vf = time.perf_counter() - t0

                # --- PEtot_F: solve every fragment (independent problems)
                # through the pluggable execution backend.
                t0 = time.perf_counter()
                report = self.executor.run(tasks)
                t.petot_f = time.perf_counter() - t0
                t.petot_f_fragments = [res.wall_time for res in report.results]
                t.petot_f_workers = report.worker_count

                # --- Gen_dens: consume the results (warm-start cache,
                # result conversion) and patch the fragment densities into
                # the global one — all of it serial driver work, so it is
                # timed here rather than hiding in the PEtot_F wall time.
                t0 = time.perf_counter()
                self.state_cache.update(report.results)
                frag_results = [
                    FragmentSolver.result_from_task(f, res)
                    for f, res in zip(self.fragments, report.results)
                ]
                density = patch_fragment_fields(
                    self.division,
                    self.fragments,
                    [res.density for res in frag_results],
                )
                t.gen_dens = time.perf_counter() - t0

            # --- GENPOT: global Poisson + XC + mixing (slab-distributed
            # through the executor when genpot_shards > 1).
            t0 = time.perf_counter()
            out = self.genpot.evaluate(density, v_in)
            density = out.density
            t.genpot = time.perf_counter() - t0
            if out.timings is not None:
                t.genpot_poisson = out.timings.poisson
                t.genpot_xc = out.timings.xc
                t.genpot_mix = out.timings.mix
                t.genpot_driver = out.timings.driver
                t.genpot_tasks = out.timings.task_times
                t.genpot_sharded = out.timings.sharded
                t.genpot_overlap = out.timings.overlap
                t.genpot_wait = out.timings.wait
                t.layout_conversion = out.timings.layout_conversion
            timings.append(t)

            quantum_energy = float(
                sum(res.fragment.weight * res.quantum_energy for res in frag_results)
            )
            total_energy = (
                quantum_energy
                + out.electrostatic_energy
                + out.xc_energy
                - self.genpot.ionic_self_energy
            )
            conv_history.append(out.potential_difference)
            energy_history.append(total_energy)
            if callback is not None:
                callback(iteration, out.potential_difference, total_energy)
            if event_hook is not None:
                event_hook(
                    "iteration",
                    {
                        "iteration": int(iteration),
                        "potential_difference": float(out.potential_difference),
                        "energy": float(total_energy),
                        "converged": bool(
                            out.potential_difference < potential_tolerance
                        ),
                    },
                )
            if verbose:  # pragma: no cover - logging
                print(
                    f"LS3DF {iteration:3d}: |Vout-Vin| = {out.potential_difference:.3e}"
                    f"  E = {total_energy:.6f} Ha"
                    f"  (VF {t.gen_vf:.2f}s  F {t.petot_f:.2f}s"
                    f"  dens {t.gen_dens:.2f}s  pot {t.genpot:.2f}s)"
                )
            if out.potential_difference < potential_tolerance:
                converged = True
                v_in = out.output_potential
                break
            v_in = out.next_input_potential

            # --- Checkpoint: persist the cross-iteration state (the next
            # input potential, mixer history, warm-start wavefunctions,
            # histories) so a killed run resumes at iteration+1 with
            # bit-identical iterates.  Driver-only I/O, counted as serial.
            if checkpoint_path is not None and iteration % checkpoint_every == 0:
                t0 = time.perf_counter()
                mixer_state_dict = getattr(mixer, "state_dict", None)
                save_checkpoint(
                    checkpoint_path,
                    SCFCheckpoint(
                        iteration=iteration,
                        v_in=v_in,
                        mixer_kind=mixer_kind,
                        division_signature=division_signature,
                        mixer_state=(
                            mixer_state_dict() if callable(mixer_state_dict) else {}
                        ),
                        fragment_coefficients=self.state_cache.state_dict(),
                        convergence_history=conv_history,
                        energy_history=energy_history,
                    ),
                )
                # The full checkpoint supersedes this (and any earlier)
                # iteration's mid-iteration partials; partials of a later
                # iteration would still be the only record of that work
                # and are kept.
                clear_partial_payloads(checkpoint_path, up_to_iteration=iteration)
                t.checkpoint_io += time.perf_counter() - t0
                if event_hook is not None:
                    event_hook("checkpointed", {"iteration": int(iteration)})

        # A converged iteration breaks out before the checkpoint block, so
        # its mid-iteration partials would otherwise outlive the run; the
        # run succeeded, nothing is left to replay.
        if converged and checkpoint_path is not None:
            clear_partial_payloads(checkpoint_path, up_to_iteration=iteration)

        return LS3DFResult(
            density=density,
            potential=v_in,
            total_energy=total_energy,
            quantum_energy=quantum_energy,
            converged=converged,
            iterations=iteration,
            convergence_history=conv_history,
            energy_history=energy_history,
            fragment_results=frag_results,
            timings=timings,
            nfragments=self.nfragments,
        )
