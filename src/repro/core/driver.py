"""High-level LS3DF public API.

:class:`LS3DF` wraps the whole paper workflow behind one object:

>>> from repro.atoms import build_znteo_alloy
>>> from repro.core import LS3DF
>>> alloy = build_znteo_alloy((2, 2, 2), oxygen_fraction=0.03, rng=0)
>>> ls3df = LS3DF(alloy, grid_dims=(2, 2, 2), ecut=3.0)
>>> result = ls3df.run(max_iterations=20)
>>> states = ls3df.band_edge_states(result, n_states=4)

The post-processing (full-system Hamiltonian in the converged potential +
folded spectrum method) mirrors the paper's Section VII, where the
converged LS3DF potential is used to compute only the band-edge states of
the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.structure import Structure
from repro.core.fragment_task import FragmentExecutor
from repro.core.scf import LS3DFResult, LS3DFSCF
from repro.pw.basis import PlaneWaveBasis
from repro.pw.eigensolver import EigensolverResult, all_band_cg
from repro.pw.fsm import FoldedSpectrumResult, folded_spectrum
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.pseudopotential import PseudopotentialSet, default_pseudopotentials


@dataclass
class BandEdgeStates:
    """Band-edge states of the full system from the converged LS3DF potential."""

    energies: np.ndarray
    coefficients: np.ndarray
    reference_energy: float
    basis: PlaneWaveBasis
    residual_norms: np.ndarray

    def wavefunctions_on_grid(self) -> np.ndarray:
        """Real-space wavefunctions, shape ``(nstates, *grid.shape)``."""
        return self.basis.to_real_space(self.coefficients)

    def densities_on_grid(self) -> np.ndarray:
        """|psi|^2 of each state on the real-space grid."""
        psi = self.wavefunctions_on_grid()
        return np.real(psi * np.conj(psi))


class LS3DF:
    """Linearly scaling three-dimensional fragment method (public API).

    Parameters
    ----------
    structure:
        Global periodic supercell (Bohr).
    grid_dims:
        LS3DF fragment grid ``(m1, m2, m3)``; for the paper's systems this
        equals the supercell dimensions in eight-atom cells.
    ecut:
        Plane-wave cutoff (Hartree).
    pseudopotentials:
        Model pseudopotential set.
    executor:
        Fragment-execution backend (see
        :class:`~repro.core.fragment_task.FragmentExecutor`); defaults to
        the serial in-process backend.  Pass e.g.
        ``ProcessPoolFragmentExecutor(n_workers=4)`` from
        :mod:`repro.parallel.executor` to solve fragments concurrently.
    pipeline:
        When True, run every fragment as one fused
        Gen_VF -> solve -> Gen_dens task per iteration instead of serial
        driver loops around the solves (see
        :class:`repro.core.scf.LS3DFSCF`); all shipped executors support
        it.  Default False (the serial data path, byte-identical results
        to the seed).
    genpot_shards:
        Distribute the GENPOT global steps (Poisson, XC, mixing) over
        this many 1D z-slabs pushed through ``executor`` — the paper's
        slab data layout for the global grid.  Bit-identical results for
        any shard count; default 1 (serial global step).  See
        :class:`repro.core.genpot.GlobalPotentialSolver` and
        :mod:`repro.parallel.distributed`.
    band_groups:
        Distribute each fragment's all-band CG over this many band
        slices pushed through ``executor`` — the paper's Np cores *per
        fragment group*, removing the largest-fragment floor on the
        PEtot_F wall time.  Bit-identical results for any slice count;
        default ``None`` (one worker per fragment).  See
        :class:`repro.core.scf.LS3DFSCF` and
        :mod:`repro.parallel.bands`.
    kwargs:
        Remaining options forwarded to :class:`repro.core.scf.LS3DFSCF`
        (buffer_cells, mixer, eigensolver, passivation switches,
        patch_chunk_size, ...).
    """

    def __init__(
        self,
        structure: Structure,
        grid_dims,
        ecut: float = 4.0,
        pseudopotentials: PseudopotentialSet | None = None,
        executor: FragmentExecutor | None = None,
        pipeline: bool = False,
        genpot_shards: int | None = None,
        band_groups: int | None = None,
        **kwargs,
    ) -> None:
        self.structure = structure
        self.pseudopotentials = pseudopotentials or default_pseudopotentials()
        self.scf = LS3DFSCF(
            structure,
            grid_dims,
            ecut=ecut,
            pseudopotentials=self.pseudopotentials,
            executor=executor,
            pipeline=pipeline,
            genpot_shards=genpot_shards,
            band_groups=band_groups,
            **kwargs,
        )
        self.ecut = float(ecut)

    @property
    def executor(self) -> FragmentExecutor:
        """The fragment-execution backend used by the SCF loop."""
        return self.scf.executor

    @property
    def pipeline(self) -> bool:
        """Whether the SCF loop runs fused fragment pipeline tasks."""
        return self.scf.pipeline

    @property
    def genpot_shards(self) -> int:
        """Number of z-slabs the GENPOT global steps are distributed over."""
        return self.scf.genpot_shards

    @property
    def band_groups(self) -> int | None:
        """Band slices per fragment solve (``None`` = ungrouped PEtot_F)."""
        return self.scf.band_groups

    @property
    def concurrent_groups(self) -> bool:
        """Whether band groups run on concurrent per-group worker sub-pools."""
        return self.scf.concurrent_groups

    # -- convenience accessors ------------------------------------------------
    @property
    def global_grid(self) -> FFTGrid:
        return self.scf.global_grid

    @property
    def nfragments(self) -> int:
        return self.scf.nfragments

    @property
    def fragments(self):
        return self.scf.fragments

    # -- main entry points ------------------------------------------------------
    def run(self, **kwargs) -> LS3DFResult:
        """Run the LS3DF self-consistent loop.

        Parameters
        ----------
        kwargs:
            Forwarded to :meth:`repro.core.scf.LS3DFSCF.run` —
            ``max_iterations``, ``potential_tolerance``, eigensolver
            controls, and the checkpoint/restart options
            ``checkpoint_dir=`` / ``checkpoint_every=`` / ``resume=``
            (persist the SCF state each iteration and resume a killed
            run with bit-identical iterates; see
            :mod:`repro.io.checkpoint`).

        Returns
        -------
        LS3DFResult
            Converged (or iteration-limited) density, potential,
            energies and per-iteration histories.
        """
        return self.scf.run(**kwargs)

    def full_system_hamiltonian(
        self, result: LS3DFResult, ecut: float | None = None
    ) -> tuple[Hamiltonian, PlaneWaveBasis]:
        """Hamiltonian of the *whole* supercell in the converged LS3DF potential.

        Used for post-processing (folded-spectrum band-edge states, direct
        eigenvalue comparisons against a conventional DFT run) — exactly
        what the paper does after convergence.
        """
        basis = PlaneWaveBasis(self.global_grid, ecut or self.ecut)
        hamiltonian = Hamiltonian.from_structure(
            self.structure, basis, self.pseudopotentials
        )
        hamiltonian.set_effective_potential(result.potential)
        return hamiltonian, basis

    def band_edge_states(
        self,
        result: LS3DFResult,
        n_states: int = 4,
        reference_energy: float | None = None,
        tolerance: float = 1e-7,
        max_iterations: int = 150,
    ) -> BandEdgeStates:
        """Folded-spectrum band-edge states in the converged potential.

        Parameters
        ----------
        result:
            Converged LS3DF result.
        n_states:
            Number of states around the reference energy.
        reference_energy:
            Fold point; when omitted, an estimate of the mid-gap energy is
            used (from the highest occupied fragment eigenvalues).
        """
        hamiltonian, basis = self.full_system_hamiltonian(result)
        if reference_energy is None:
            reference_energy = self.estimate_gap_center(result)
        fsm: FoldedSpectrumResult = folded_spectrum(
            hamiltonian,
            reference_energy,
            n_states,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
        return BandEdgeStates(
            energies=fsm.eigenvalues,
            coefficients=fsm.coefficients,
            reference_energy=reference_energy,
            basis=basis,
            residual_norms=fsm.residual_norms,
        )

    def lowest_states(
        self, result: LS3DFResult, n_states: int, tolerance: float = 1e-6
    ) -> EigensolverResult:
        """Lowest eigenstates of the full system in the converged potential."""
        hamiltonian, _ = self.full_system_hamiltonian(result)
        return all_band_cg(
            hamiltonian, n_states, tolerance=tolerance, max_iterations=200
        )

    # -- helpers -------------------------------------------------------------
    def estimate_gap_center(self, result: LS3DFResult) -> float:
        """Estimate the gap-centre energy from the fragment spectra.

        Takes the patched-weighted mean of each fragment's HOMO and LUMO
        (positive-weight fragments only, which are the physically meaningful
        large pieces) and returns their midpoint.
        """
        homos = []
        lumos = []
        for res in result.fragment_results:
            if res.fragment.weight < 0:
                continue
            problem = self.scf.fragment_solver.build_problem(res.fragment)
            nocc = int(np.count_nonzero(problem.occupations))
            if nocc == 0 or nocc >= len(res.eigenvalues):
                continue
            homos.append(res.eigenvalues[nocc - 1])
            lumos.append(res.eigenvalues[nocc])
        if not homos:
            raise RuntimeError("cannot estimate gap centre: no fragment spectra")
        return 0.5 * (float(np.max(homos)) + float(np.min(lumos)))

    def fragment_summary(self) -> list[dict]:
        """Per-fragment bookkeeping (atoms, passivants, bands, plane waves)."""
        rows = []
        for f in self.fragments:
            problem = self.scf.fragment_solver.build_problem(f)
            rows.append(
                {
                    "label": f.label,
                    "weight": f.weight,
                    "cells": f.ncells,
                    "atoms": problem.structure.natoms - problem.passivation.n_passivants,
                    "passivants": problem.passivation.n_passivants,
                    "electrons": problem.nelectrons,
                    "bands": problem.nbands,
                    "plane_waves": problem.basis.npw,
                }
            )
        return rows
