"""LS3DF versus direct DFT comparisons (the paper's accuracy claims).

Section V/VI of the paper reports that, with the eight-atom cell as the
smallest fragment, LS3DF reproduces the direct LDA results to a few
meV/atom in the total energy, ~2 meV in band-edge eigenvalues, ~1e-5 a.u.
in atomic forces and <1% in dipole moments.  This module computes the same
comparison quantities for the model systems in this repository:

* total energy per atom difference,
* eigenvalue differences of the band-edge states (the full-system
  Hamiltonian evaluated in the LS3DF converged potential versus the
  direct-SCF converged potential),
* the L1/L2 density difference,
* the dipole-moment difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.structure import Structure
from repro.constants import HARTREE_TO_MEV
from repro.core.driver import LS3DF
from repro.core.scf import LS3DFResult
from repro.pw.eigensolver import all_band_cg
from repro.pw.grid import FFTGrid
from repro.pw.scf import DirectSCF, SCFResult


@dataclass
class ComparisonReport:
    """Side-by-side LS3DF vs direct-DFT accuracy metrics.

    All energies in Hartree unless stated otherwise.
    """

    natoms: int
    ls3df_total_energy: float
    direct_total_energy: float
    energy_per_atom_mev: float
    eigenvalue_rms_mev: float
    eigenvalue_max_mev: float
    band_gap_ls3df: float
    band_gap_direct: float
    band_gap_difference_mev: float
    density_l1_error: float
    density_l2_error: float
    dipole_difference_relative: float

    def as_dict(self) -> dict[str, float]:
        return {
            "natoms": self.natoms,
            "ls3df_total_energy": self.ls3df_total_energy,
            "direct_total_energy": self.direct_total_energy,
            "energy_per_atom_mev": self.energy_per_atom_mev,
            "eigenvalue_rms_mev": self.eigenvalue_rms_mev,
            "eigenvalue_max_mev": self.eigenvalue_max_mev,
            "band_gap_ls3df": self.band_gap_ls3df,
            "band_gap_direct": self.band_gap_direct,
            "band_gap_difference_mev": self.band_gap_difference_mev,
            "density_l1_error": self.density_l1_error,
            "density_l2_error": self.density_l2_error,
            "dipole_difference_relative": self.dipole_difference_relative,
        }


def dipole_moment(density: np.ndarray, grid: FFTGrid) -> np.ndarray:
    """Electronic dipole moment of a density relative to the cell centre.

    The paper validates LS3DF against direct LDA dipole moments of
    thousand-atom quantum rods (<1% deviation); this is the same quantity
    on the model grid.
    """
    coords = grid.real_coordinates
    # Centre on the mean grid coordinate so a uniform density has exactly
    # zero dipole on the discrete grid.
    center = coords.reshape(-1, 3).mean(axis=0)
    rel = coords - center[None, None, None, :]
    return np.einsum("xyzc,xyz->c", rel, density) * grid.dvol


def compare_ls3df_to_direct(
    structure: Structure,
    grid_dims,
    ecut: float = 3.0,
    n_band_edge: int = 4,
    ls3df_kwargs: dict | None = None,
    direct_kwargs: dict | None = None,
    run_kwargs: dict | None = None,
    direct_run_kwargs: dict | None = None,
) -> tuple[ComparisonReport, LS3DFResult, SCFResult]:
    """Run both LS3DF and the direct SCF on one structure and compare.

    Parameters
    ----------
    structure:
        The supercell to solve (kept small: the direct solve is O(N^3)).
    grid_dims:
        LS3DF fragment grid.
    ecut:
        Plane-wave cutoff shared by both calculations.
    n_band_edge:
        Number of eigenvalues around the gap compared between the two
        converged potentials.
    ls3df_kwargs, direct_kwargs, run_kwargs, direct_run_kwargs:
        Extra options for the respective constructors / run calls.

    Returns
    -------
    (ComparisonReport, LS3DFResult, SCFResult)
    """
    ls3df_kwargs = dict(ls3df_kwargs or {})
    direct_kwargs = dict(direct_kwargs or {})
    run_kwargs = dict(run_kwargs or {})
    direct_run_kwargs = dict(direct_run_kwargs or run_kwargs or {})

    ls3df = LS3DF(structure, grid_dims, ecut=ecut, **ls3df_kwargs)
    ls_result = ls3df.run(**run_kwargs)

    direct = DirectSCF(
        structure,
        ecut=ecut,
        grid=ls3df.global_grid,
        n_empty=max(4, n_band_edge),
        **direct_kwargs,
    )
    d_result = direct.run(**direct_run_kwargs)

    natoms = structure.natoms
    nelec = structure.total_valence_electrons()
    nocc = nelec // 2

    # Band-edge eigenvalues of the full system in each converged potential.
    h_ls, basis = ls3df.full_system_hamiltonian(ls_result)
    nbands = nocc + max(2, n_band_edge // 2)
    ls_bands = all_band_cg(h_ls, nbands, tolerance=1e-6, max_iterations=200)
    d_eigs = d_result.eigenvalues[:nbands]
    ls_eigs = ls_bands.eigenvalues[:nbands]
    lo = max(0, nocc - n_band_edge // 2)
    hi = min(nbands, nocc + max(1, n_band_edge // 2))
    window = slice(lo, hi)
    diff = (ls_eigs[window] - d_eigs[window]) * HARTREE_TO_MEV
    gap_ls = float(ls_eigs[nocc] - ls_eigs[nocc - 1])
    gap_d = float(d_eigs[nocc] - d_eigs[nocc - 1])

    rho_ls = ls_result.density
    rho_d = d_result.density
    l1 = float(np.sum(np.abs(rho_ls - rho_d)) * ls3df.global_grid.dvol) / nelec
    l2 = float(
        np.sqrt(np.sum((rho_ls - rho_d) ** 2) * ls3df.global_grid.dvol)
    ) / nelec

    dip_ls = dipole_moment(rho_ls, ls3df.global_grid)
    dip_d = dipole_moment(rho_d, ls3df.global_grid)
    denom = np.linalg.norm(dip_d)
    dip_rel = float(np.linalg.norm(dip_ls - dip_d) / denom) if denom > 1e-8 else float(
        np.linalg.norm(dip_ls - dip_d)
    )

    report = ComparisonReport(
        natoms=natoms,
        ls3df_total_energy=ls_result.total_energy,
        direct_total_energy=d_result.total_energy,
        energy_per_atom_mev=float(
            (ls_result.total_energy - d_result.total_energy) / natoms * HARTREE_TO_MEV
        ),
        eigenvalue_rms_mev=float(np.sqrt(np.mean(diff**2))),
        eigenvalue_max_mev=float(np.max(np.abs(diff))),
        band_gap_ls3df=gap_ls,
        band_gap_direct=gap_d,
        band_gap_difference_mev=float((gap_ls - gap_d) * HARTREE_TO_MEV),
        density_l1_error=l1,
        density_l2_error=l2,
        dipole_difference_relative=dip_rel,
    )
    return report, ls_result, d_result
