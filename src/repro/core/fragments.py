"""Fragment enumeration and the +/- patching weights.

This module implements the combinatorial heart of LS3DF (Figure 1 of the
paper): from every corner ``(i, j, k)`` of the ``m1 x m2 x m3`` cell grid,
eight fragments are generated with sizes ``S = (s1, s2, s3)``,
``s_d in {1, 2}``, carrying the weight

    alpha_S = (-1)^(number of dimensions with s_d == 1)

(+1 for 2x2x2, -1 for 2x2x1-type, +1 for 2x1x1-type, -1 for 1x1x1).  With
these weights the total quantum energy and charge density are assembled as
``E = sum_F alpha_F E_F`` and ``rho = sum_F alpha_F rho_F``: per corner the
signed cell count is 8 - 3*4 + 3*2 - 1 = 1, so every cell of the supercell
is represented exactly once while the artificial surface, edge and corner
contributions of the fragments cancel between the + and - members.

The two-dimensional variant (used in the paper's Figure 1 and handy for
tests) is obtained by passing a grid with one dimension equal to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import Iterator, Sequence

import numpy as np


def fragment_weight(size: Sequence[int], grid_dims: Sequence[int] | None = None) -> int:
    """The LS3DF patching weight alpha_S of a fragment of the given size.

    Parameters
    ----------
    size:
        Fragment extent in grid cells along each axis; every entry must be
        1 or 2.
    grid_dims:
        Optional fragment-grid dimensions.  Axes along which the grid has
        only a single cell are *not subdivided* and therefore do not
        contribute to the sign (they behave like the "size 2" full-coverage
        direction); this is what makes the 2D illustration of the paper's
        Figure 1 (one degenerate axis) carry the 2D weights
        +1 / -1 / -1 / +1.

    Returns
    -------
    int
        ``+1`` or ``-1``.
    """
    size = tuple(int(s) for s in size)
    if any(s not in (1, 2) for s in size):
        raise ValueError(f"fragment sizes must be 1 or 2, got {size}")
    if grid_dims is None:
        active = (True,) * len(size)
    else:
        if len(grid_dims) != len(size):
            raise ValueError("grid_dims and size must have equal length")
        active = tuple(int(m) > 1 for m in grid_dims)
    ones = sum(1 for s, a in zip(size, active) if a and s == 1)
    return -1 if ones % 2 else 1


@dataclass(frozen=True)
class Fragment:
    """One LS3DF fragment: a corner, a size and a patching weight.

    Attributes
    ----------
    corner:
        Grid-cell index ``(i, j, k)`` of the fragment's origin corner.
    size:
        Extent in cells along each axis (each 1 or 2).
    weight:
        Patching weight alpha_F (+1 or -1).
    grid_dims:
        The global fragment-grid dimensions ``(m1, m2, m3)``; needed to
        resolve periodic wrap-around of the covered cells.
    """

    corner: tuple[int, int, int]
    size: tuple[int, int, int]
    weight: int
    grid_dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.corner) != 3 or len(self.size) != 3 or len(self.grid_dims) != 3:
            raise ValueError("corner, size and grid_dims must be 3-tuples")
        if any(s not in (1, 2) for s in self.size):
            raise ValueError("fragment sizes must be 1 or 2")
        if any(m < 1 for m in self.grid_dims):
            raise ValueError("grid dimensions must be positive")
        if any(not 0 <= c < m for c, m in zip(self.corner, self.grid_dims)):
            raise ValueError("corner must lie inside the grid")
        if self.weight != fragment_weight(self.size, self.grid_dims):
            raise ValueError("weight inconsistent with fragment size")

    # ------------------------------------------------------------------
    @property
    def ncells(self) -> int:
        """Number of grid cells covered by the fragment."""
        return int(np.prod(self.size))

    @property
    def label(self) -> str:
        """Human-readable identifier, e.g. ``'F(1,0,2)x212'``."""
        return (
            f"F({self.corner[0]},{self.corner[1]},{self.corner[2]})"
            f"x{self.size[0]}{self.size[1]}{self.size[2]}"
        )

    def covered_cells(self) -> list[tuple[int, int, int]]:
        """Grid-cell indices covered by the fragment (with periodic wrap)."""
        cells = []
        for di in range(self.size[0]):
            for dj in range(self.size[1]):
                for dk in range(self.size[2]):
                    cells.append(
                        (
                            (self.corner[0] + di) % self.grid_dims[0],
                            (self.corner[1] + dj) % self.grid_dims[1],
                            (self.corner[2] + dk) % self.grid_dims[2],
                        )
                    )
        return cells

    def covers_cell(self, cell: Sequence[int]) -> bool:
        """True if the given grid cell lies inside this fragment."""
        for c, corner, s, m in zip(cell, self.corner, self.size, self.grid_dims):
            offset = (int(c) - corner) % m
            if offset >= s:
                return False
        return True


def enumerate_fragments(grid_dims: Sequence[int]) -> list[Fragment]:
    """All fragments of an ``m1 x m2 x m3`` periodic fragment grid.

    From every grid corner, one fragment per size in {1,2}^3 is produced,
    except that along an axis where the grid has only one cell the size is
    fixed to 1 (a "2" would wrap onto itself and double-count).  For the
    usual case ``m_d >= 2`` this yields ``8 * m1 * m2 * m3`` fragments, the
    count the paper's cost model uses.

    Parameters
    ----------
    grid_dims:
        Fragment-grid dimensions (each >= 1).

    Returns
    -------
    list[Fragment]
    """
    dims = tuple(int(m) for m in grid_dims)
    if len(dims) != 3 or any(m < 1 for m in dims):
        raise ValueError("grid_dims must be three positive integers")
    size_choices = [(1,) if m == 1 else (1, 2) for m in dims]
    fragments: list[Fragment] = []
    for corner in product(*(range(m) for m in dims)):
        for size in product(*size_choices):
            fragments.append(
                Fragment(
                    corner=corner,
                    size=size,
                    weight=fragment_weight(size, dims),
                    grid_dims=dims,
                )
            )
    return fragments


def coverage_map(grid_dims: Sequence[int]) -> np.ndarray:
    """Net signed coverage of every grid cell, sum_F alpha_F * 1_F(cell).

    The LS3DF patching identity states this is exactly 1 everywhere; the
    test suite asserts it for arbitrary grid dimensions (property-based).
    """
    dims = tuple(int(m) for m in grid_dims)
    cover = np.zeros(dims, dtype=int)
    for frag in enumerate_fragments(dims):
        for cell in frag.covered_cells():
            cover[cell] += frag.weight
    return cover


def fragments_by_weight(fragments: Sequence[Fragment]) -> dict[int, list[Fragment]]:
    """Split a fragment list into the +1 and -1 classes."""
    out: dict[int, list[Fragment]] = {1: [], -1: []}
    for f in fragments:
        out[f.weight].append(f)
    return out


@lru_cache(maxsize=None)
def fragment_size_multiset(ndim_active: int = 3) -> dict[tuple[int, ...], int]:
    """Count of fragments per size class emitted from one corner.

    For the full 3D case this is {(1,1,1):1, (2,1,1)-type:3, (2,2,1)-type:3,
    (2,2,2):1}; used by the performance model to weight per-fragment costs.
    """
    counts: dict[tuple[int, ...], int] = {}
    for size in product((1, 2), repeat=ndim_active):
        key = tuple(sorted(size, reverse=True))
        counts[key] = counts.get(key, 0) + 1
    return counts


def iter_corner_fragments(
    corner: Sequence[int], grid_dims: Sequence[int]
) -> Iterator[Fragment]:
    """Fragments emitted from one specific grid corner (paper's Figure 1)."""
    dims = tuple(int(m) for m in grid_dims)
    corner = tuple(int(c) % m for c, m in zip(corner, dims))
    size_choices = [(1,) if m == 1 else (1, 2) for m in dims]
    for size in product(*size_choices):
        yield Fragment(corner, size, fragment_weight(size, dims), dims)
