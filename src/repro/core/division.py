"""Spatial division of the supercell into the LS3DF fragment grid.

The supercell is divided into ``m1 x m2 x m3`` equal cells; atoms are
assigned to cells by position (the paper: "The atoms are assigned to
fragments depending on their spatial locations").  The division also owns
the relationship between the global FFT grid and the fragment boxes: the
fragment grids reuse the *same grid spacing* as the global grid, so that
the Gen_VF restriction and the Gen_dens patching are exact array
operations with no interpolation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.atoms.structure import Structure
from repro.core.fragments import Fragment
from repro.pw.grid import FFTGrid


@dataclass(frozen=True)
class FragmentBox:
    """Geometry of one fragment's periodic calculation box.

    Attributes
    ----------
    start:
        Global-grid index (per axis) of the box origin (may be negative
        before periodic wrapping).
    npoints:
        Number of global-grid points per axis covered by the box
        (fragment region plus buffer on both sides).
    buffer_points:
        Buffer thickness in grid points per axis.
    origin:
        Cartesian coordinate (Bohr) of the box origin in the supercell
        frame (unwrapped).
    cell:
        Box edge lengths (Bohr).
    """

    start: tuple[int, int, int]
    npoints: tuple[int, int, int]
    buffer_points: tuple[int, int, int]
    origin: tuple[float, float, float]
    cell: tuple[float, float, float]

    @property
    def interior_slice(self) -> tuple[slice, slice, slice]:
        """Slice selecting the fragment region (without buffer) inside the box."""
        return tuple(
            slice(b, n - b) for b, n in zip(self.buffer_points, self.npoints)
        )


class SpatialDivision:
    """Division of a periodic supercell into an LS3DF fragment grid.

    Parameters
    ----------
    structure:
        The global supercell.
    grid_dims:
        Fragment-grid dimensions ``(m1, m2, m3)``.
    global_grid:
        The global FFT grid.  Each axis size must be divisible by the
        corresponding ``m`` so fragment cells contain an integer number of
        grid points.
    buffer_cells:
        Buffer thickness around the fragment region, expressed as a
        *fraction of one cell* per axis (default 0.5).  Internally rounded
        to whole grid points.
    """

    def __init__(
        self,
        structure: Structure,
        grid_dims: tuple[int, int, int] | list[int],
        global_grid: FFTGrid,
        buffer_cells: float | tuple[float, float, float] = 0.5,
    ) -> None:
        dims = tuple(int(m) for m in grid_dims)
        if len(dims) != 3 or any(m < 1 for m in dims):
            raise ValueError("grid_dims must be three positive integers")
        if not np.allclose(structure.cell, global_grid.cell):
            raise ValueError("structure and global grid must share the same cell")
        shape = global_grid.shape
        for n, m in zip(shape, dims):
            if n % m != 0:
                raise ValueError(
                    f"global grid axis of {n} points not divisible by {m} fragment cells"
                )
        self.structure = structure
        self.grid_dims = dims
        self.global_grid = global_grid
        self.points_per_cell = tuple(n // m for n, m in zip(shape, dims))
        if np.isscalar(buffer_cells):
            buffer_cells = (float(buffer_cells),) * 3
        self.buffer_points = tuple(
            int(round(b * p)) for b, p in zip(buffer_cells, self.points_per_cell)
        )
        if any(b < 0 for b in self.buffer_points):
            raise ValueError("buffer must be non-negative")
        self.cell_lengths = tuple(
            c / m for c, m in zip(structure.cell, dims)
        )
        self._assignments = self._assign_atoms()

    # ------------------------------------------------------------------
    def _assign_atoms(self) -> np.ndarray:
        """Cell index (per axis) of every atom, shape ``(natoms, 3)``."""
        frac = self.structure.fractional_positions
        idx = np.floor(frac * np.asarray(self.grid_dims)).astype(int)
        # Guard against atoms sitting exactly on the upper boundary.
        return np.minimum(idx, np.asarray(self.grid_dims) - 1)

    @property
    def atom_cell_indices(self) -> np.ndarray:
        """Per-atom fragment-grid cell indices, shape ``(natoms, 3)``."""
        return self._assignments.copy()

    def atoms_in_cell(self, cell: tuple[int, int, int]) -> np.ndarray:
        """Indices of the atoms assigned to one grid cell."""
        mask = np.all(self._assignments == np.asarray(cell, dtype=int), axis=1)
        return np.nonzero(mask)[0]

    def atoms_in_fragment(self, fragment: Fragment) -> np.ndarray:
        """Indices of the atoms assigned to any of the fragment's cells."""
        if fragment.grid_dims != self.grid_dims:
            raise ValueError("fragment grid dims do not match this division")
        cells = fragment.covered_cells()
        indices = [self.atoms_in_cell(c) for c in cells]
        if not indices:
            return np.zeros(0, dtype=int)
        return np.concatenate(indices)

    # ------------------------------------------------------------------
    def fragment_box(self, fragment: Fragment) -> FragmentBox:
        """Geometry of the fragment's periodic calculation box Omega_F."""
        if fragment.grid_dims != self.grid_dims:
            raise ValueError("fragment grid dims do not match this division")
        start = tuple(
            c * p - b
            for c, p, b in zip(fragment.corner, self.points_per_cell, self.buffer_points)
        )
        npoints = tuple(
            s * p + 2 * b
            for s, p, b in zip(fragment.size, self.points_per_cell, self.buffer_points)
        )
        spacing = self.global_grid.spacing
        origin = tuple(float(st * sp) for st, sp in zip(start, spacing))
        cell = tuple(float(n * sp) for n, sp in zip(npoints, spacing))
        return FragmentBox(
            start=start,
            npoints=npoints,
            buffer_points=self.buffer_points,
            origin=origin,
            cell=cell,
        )

    def fragment_grid(self, fragment: Fragment) -> FFTGrid:
        """FFT grid of the fragment box (same spacing as the global grid)."""
        box = self.fragment_box(fragment)
        return FFTGrid(box.cell, box.npoints)

    def fragment_structure(self, fragment: Fragment) -> Structure:
        """The fragment's atoms, in the fragment-box coordinate frame.

        Atom positions are mapped with the minimum-image convention
        relative to the box so that atoms of a fragment that wraps around
        the supercell boundary end up contiguous inside the box.
        Passivation atoms are added separately by
        :func:`repro.core.passivation.passivate_fragment`.
        """
        box = self.fragment_box(fragment)
        atom_idx = self.atoms_in_fragment(fragment)
        global_cell = np.asarray(self.structure.cell)
        origin = np.asarray(box.origin)
        # Centre of the fragment *region* in the supercell frame.
        region_lengths = np.asarray(
            [s * c for s, c in zip(fragment.size, self.cell_lengths)]
        )
        buffer_lengths = np.asarray(box.cell) - region_lengths
        region_center = origin + 0.5 * buffer_lengths + 0.5 * region_lengths
        positions = self.structure.positions[atom_idx]
        # Minimum image relative to the region centre, then shift into box frame.
        rel = positions - region_center
        rel -= global_cell * np.round(rel / global_cell)
        box_positions = rel + (region_center - origin)
        symbols = [self.structure.symbols[i] for i in atom_idx]
        return Structure(box.cell, symbols, box_positions)

    # ------------------------------------------------------------------
    def global_indices(self, fragment: Fragment, interior_only: bool = False) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Global-grid index arrays addressed by the fragment box.

        Returns per-axis integer index arrays (with periodic wrap) such
        that ``global_field[np.ix_(ix, iy, iz)]`` is the restriction of a
        global field to the fragment box (``interior_only=False``) or to
        the fragment region only (``interior_only=True``).
        """
        box = self.fragment_box(fragment)
        shape = self.global_grid.shape
        axes = []
        for axis in range(3):
            start = box.start[axis]
            n = box.npoints[axis]
            b = box.buffer_points[axis]
            if interior_only:
                idx = np.arange(start + b, start + n - b)
            else:
                idx = np.arange(start, start + n)
            axes.append(np.mod(idx, shape[axis]))
        return axes[0], axes[1], axes[2]

    def n_fragment_cells(self) -> int:
        """Total number of grid cells M = m1*m2*m3."""
        return int(np.prod(self.grid_dims))

    def signature(self) -> str:
        """Digest identifying this division (checkpoint compatibility key).

        Hashes the geometry the fragment problems are built from — the
        supercell (cell vectors, atom symbols and positions), the
        fragment grid dimensions, the global FFT grid shape and the
        buffer thickness.  Solver parameters that also shape persisted
        state (plane-wave cutoff, empty-band count) live outside the
        division; :meth:`repro.core.scf.LS3DFSCF._problem_signature`
        salts this digest with them before it is stored in a checkpoint
        manifest, and resuming refuses to load when the combined
        signature differs.

        Returns
        -------
        str
            Hex SHA-256 digest.
        """
        h = hashlib.sha256()
        h.update(np.asarray(self.structure.cell, dtype=float).tobytes())
        h.update(",".join(self.structure.symbols).encode())
        h.update(np.ascontiguousarray(self.structure.positions, dtype=float).tobytes())
        h.update(np.asarray(self.grid_dims, dtype=np.int64).tobytes())
        h.update(np.asarray(self.global_grid.shape, dtype=np.int64).tobytes())
        h.update(np.asarray(self.buffer_points, dtype=np.int64).tobytes())
        return h.hexdigest()
