"""PEtot_F: the per-fragment Kohn-Sham solve.

Each LS3DF fragment is an independent periodic plane-wave problem in its
buffered box Omega_F: the Hamiltonian is built from the fragment's own
atoms plus the passivation atoms (short-range local potential, smeared
ionic potential, Kleinman-Bylander projectors), while the *self-consistent*
screening part comes from the restriction of the global input potential
produced by Gen_VF.  The solver keeps the fragment's wavefunctions between
outer iterations (warm starts), which is exactly why subsequent LS3DF SCF
iterations are much cheaper than the first one — the behaviour the paper
relies on when timing "the second iteration".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.atoms.structure import Structure
from repro.core.division import SpatialDivision
from repro.core.fragments import Fragment
from repro.core.passivation import PassivationResult, passivate_fragment
from repro.pw.basis import PlaneWaveBasis
from repro.pw.density import compute_density, occupations_for_insulator
from repro.pw.eigensolver import all_band_cg, band_by_band_cg
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.hartree import hartree_potential
from repro.pw.pseudopotential import PseudopotentialSet


@dataclass
class FragmentSolveResult:
    """Output of one fragment solve within one LS3DF iteration.

    Attributes
    ----------
    fragment:
        The fragment that was solved.
    eigenvalues:
        Fragment band energies (Hartree).
    density:
        Electron density on the fragment-box grid.
    quantum_energy:
        sum_i occ_i <psi_i| T + V_sr + V_NL |psi_i> of the fragment — the
        piece entering the patched total energy E = sum_F alpha_F E_F.
    band_energy:
        sum_i occ_i eps_i with the full (screened) fragment Hamiltonian.
    solver_iterations:
        Iterations used by the iterative eigensolver.
    converged:
        Eigensolver convergence flag.
    """

    fragment: Fragment
    eigenvalues: np.ndarray
    density: np.ndarray
    quantum_energy: float
    band_energy: float
    solver_iterations: int
    converged: bool


@dataclass
class FragmentProblem:
    """Static (iteration-independent) data of one fragment's Kohn-Sham problem.

    Construction is the expensive "setup" the paper eliminated from the per-
    iteration cost by storing everything in the LS3DF global module; here it
    is built once by :class:`FragmentSolver` and reused every iteration.
    """

    fragment: Fragment
    structure: Structure
    passivation: PassivationResult
    grid: FFTGrid
    basis: PlaneWaveBasis
    hamiltonian: Hamiltonian
    ionic_density: np.ndarray
    nelectrons: int
    nbands: int
    occupations: np.ndarray
    wavefunctions: np.ndarray | None = field(default=None, repr=False)


class FragmentSolver:
    """Builds and solves the Kohn-Sham problems of all fragments.

    Parameters
    ----------
    division:
        The spatial division of the supercell.
    pseudopotentials:
        Model pseudopotential set (shared with the global solver).
    ecut:
        Plane-wave cutoff for the fragment problems (Hartree).
    n_empty:
        Number of extra (empty) bands per fragment.
    eigensolver:
        ``"all_band"`` (default, BLAS-3) or ``"band_by_band"`` (BLAS-2
        reference algorithm).
    passivate:
        Whether to add pseudo-hydrogen passivation atoms (the paper always
        does; turning it off is useful to demonstrate *why* it is needed).
    polar_passivation:
        Use partially charged pseudo-hydrogens (H_cation / H_anion).
    """

    def __init__(
        self,
        division: SpatialDivision,
        pseudopotentials: PseudopotentialSet,
        ecut: float,
        n_empty: int = 2,
        eigensolver: str = "all_band",
        passivate: bool = True,
        polar_passivation: bool = True,
    ) -> None:
        if eigensolver not in {"all_band", "band_by_band"}:
            raise ValueError(f"unknown eigensolver {eigensolver!r}")
        self.division = division
        self.pseudopotentials = pseudopotentials
        self.ecut = float(ecut)
        self.n_empty = int(n_empty)
        self.eigensolver = eigensolver
        self.passivate = passivate
        self.polar_passivation = polar_passivation
        self._problems: dict[str, FragmentProblem] = {}

    # ------------------------------------------------------------------
    def build_problem(self, fragment: Fragment) -> FragmentProblem:
        """Construct (or fetch the cached) static problem of one fragment."""
        key = fragment.label
        if key in self._problems:
            return self._problems[key]
        if self.passivate:
            passivation = passivate_fragment(
                self.division, fragment, polar=self.polar_passivation
            )
        else:
            structure = self.division.fragment_structure(fragment)
            passivation = PassivationResult(
                structure=structure,
                n_passivants=0,
                passivant_indices=[],
                cut_bonds=[],
            )
        structure = passivation.structure
        grid = self.division.fragment_grid(fragment)
        basis = PlaneWaveBasis(grid, self.ecut)
        hamiltonian = Hamiltonian.from_structure(
            structure, basis, self.pseudopotentials
        )
        ionic_density = self.pseudopotentials.ionic_density(structure, grid)
        nelectrons = structure.total_valence_electrons()
        nbands = (nelectrons + 1) // 2 + self.n_empty
        if nbands > basis.npw // 2:
            raise ValueError(
                f"fragment {key}: {nbands} bands exceed half the basis size "
                f"({basis.npw} plane waves); increase ecut or the grid density"
            )
        occupations = occupations_for_insulator(nelectrons, nbands)
        problem = FragmentProblem(
            fragment=fragment,
            structure=structure,
            passivation=passivation,
            grid=grid,
            basis=basis,
            hamiltonian=hamiltonian,
            ionic_density=ionic_density,
            nelectrons=nelectrons,
            nbands=nbands,
            occupations=occupations,
        )
        self._problems[key] = problem
        return problem

    # ------------------------------------------------------------------
    def fragment_screening_potential(
        self, problem: FragmentProblem, restricted_potential: np.ndarray
    ) -> np.ndarray:
        """Combine the restricted global potential with the fragment's own parts.

        The restriction of the *global* screening potential carries the
        electrostatics of the whole system; the passivation atoms (absent
        from the global system) additionally contribute their own smeared
        ionic attraction so that the dangling-bond termination is charge
        neutral.  This extra term is the fixed passivation potential
        Delta V_F of the paper: nonzero only near the fragment boundary.
        """
        if restricted_potential.shape != problem.grid.shape:
            raise ValueError("restricted potential shape mismatch")
        v = restricted_potential
        if problem.passivation.n_passivants:
            # Electrostatic potential of *neutral* passivant pseudo-atoms:
            # the compact ionic Gaussian minus a diffuse electron cloud of
            # the same total charge.  This terminates the cut bonds without
            # injecting a net monopole into the fragment box.
            passivants = problem.passivation.passivant_indices
            sub = Structure(
                problem.structure.cell,
                [problem.structure.symbols[i] for i in passivants],
                problem.structure.positions[passivants],
            )
            rho_ion_pass = self.pseudopotentials.ionic_density(sub, problem.grid)
            cloud_overrides = {}
            for sym in set(sub.symbols):
                pp = self.pseudopotentials[sym]
                cloud_overrides[sym] = replace(pp, core_width=2.0 * pp.core_width)
            cloud_set = self.pseudopotentials.with_override(cloud_overrides)
            rho_cloud_pass = cloud_set.ionic_density(sub, problem.grid)
            v = v - hartree_potential(rho_ion_pass - rho_cloud_pass, problem.grid)
        return v

    def solve_fragment(
        self,
        fragment: Fragment,
        restricted_potential: np.ndarray,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
    ) -> FragmentSolveResult:
        """Solve one fragment for the given restricted global input potential."""
        problem = self.build_problem(fragment)
        v_screen = self.fragment_screening_potential(problem, restricted_potential)
        problem.hamiltonian.set_effective_potential(v_screen)
        solver = all_band_cg if self.eigensolver == "all_band" else band_by_band_cg
        result = solver(
            problem.hamiltonian,
            problem.nbands,
            initial=problem.wavefunctions,
            max_iterations=eigensolver_iterations,
            tolerance=eigensolver_tolerance,
        )
        problem.wavefunctions = result.coefficients
        density = compute_density(
            problem.basis, result.coefficients, problem.occupations
        )
        # Quantum energy: kinetic + short-range ionic + nonlocal only (the
        # screening/electrostatic parts are assembled globally by GENPOT).
        saved = problem.hamiltonian.v_screening
        problem.hamiltonian.v_screening = np.zeros_like(saved)
        try:
            expect = problem.hamiltonian.expectation(result.coefficients)
        finally:
            problem.hamiltonian.v_screening = saved
        quantum_energy = float(np.sum(problem.occupations * expect))
        band_energy = float(np.sum(problem.occupations * result.eigenvalues))
        return FragmentSolveResult(
            fragment=fragment,
            eigenvalues=result.eigenvalues,
            density=density,
            quantum_energy=quantum_energy,
            band_energy=band_energy,
            solver_iterations=result.iterations,
            converged=result.converged,
        )

    # ------------------------------------------------------------------
    def problems(self) -> dict[str, FragmentProblem]:
        """All fragment problems built so far, keyed by fragment label."""
        return dict(self._problems)

    def total_fragment_atoms(self) -> int:
        """Total atom count over all built fragments (incl. passivants)."""
        return sum(p.structure.natoms for p in self._problems.values())
