"""PEtot_F problem construction: passivation, screening potential, tasks.

Each LS3DF fragment is an independent periodic plane-wave problem in its
buffered box Omega_F: the Hamiltonian is built from the fragment's own
atoms plus the passivation atoms (short-range local potential, smeared
ionic potential, Kleinman-Bylander projectors), while the *self-consistent*
screening part comes from the restriction of the global input potential
produced by Gen_VF.

:class:`FragmentSolver` owns the parts of PEtot_F that need the spatial
division — passivation and the fragment screening potential — and turns
them into picklable :class:`~repro.core.fragment_task.FragmentTask`
descriptions.  The solve itself is the shared kernel
:func:`repro.core.fragment_task.solve_fragment_task`, the same code every
execution backend in :mod:`repro.parallel.executor` runs; this class adds
no second solve path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.atoms.structure import Structure
from repro.core.division import SpatialDivision
from repro.core.fragment_task import (
    FragmentPipelineTask,
    FragmentTask,
    FragmentTaskResult,
    TaskProblem,
    build_task_problem,
    seed_task_problem,
    solve_fragment_task,
    solve_fragment_task_grouped,
)
from repro.core.fragments import Fragment
from repro.core.passivation import PassivationResult, passivate_fragment
from repro.pw.basis import PlaneWaveBasis
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.hartree import hartree_potential
from repro.pw.pseudopotential import PseudopotentialSet


@dataclass
class FragmentSolveResult:
    """Output of one fragment solve within one LS3DF iteration.

    Attributes
    ----------
    fragment:
        The fragment that was solved.
    eigenvalues:
        Fragment band energies (Hartree).
    density:
        Electron density on the fragment-box grid.
    quantum_energy:
        sum_i occ_i <psi_i| T + V_sr + V_NL |psi_i> of the fragment — the
        piece entering the patched total energy E = sum_F alpha_F E_F.
    band_energy:
        sum_i occ_i eps_i with the full (screened) fragment Hamiltonian.
    solver_iterations:
        Iterations used by the iterative eigensolver.
    converged:
        Eigensolver convergence flag.
    wall_time:
        Wall-clock seconds of this fragment's solve.
    worker_pid:
        PID of the process that executed the solve.
    """

    fragment: Fragment
    eigenvalues: np.ndarray
    density: np.ndarray
    quantum_energy: float
    band_energy: float
    solver_iterations: int
    converged: bool
    wall_time: float = 0.0
    worker_pid: int = 0


@dataclass
class FragmentProblem:
    """Static (iteration-independent) data of one fragment's Kohn-Sham problem.

    Construction is the expensive "setup" the paper eliminated from the per-
    iteration cost by storing everything in the LS3DF global module; here it
    is built once by :class:`FragmentSolver`, seeded into the shared
    per-process task-problem cache, and reused every iteration.  The
    numerical pieces (grid, basis, Hamiltonian, band counts) live on the
    wrapped :class:`~repro.core.fragment_task.TaskProblem` — the single
    copy every backend uses — and are exposed here as read-only views.
    """

    fragment: Fragment
    structure: Structure
    passivation: PassivationResult
    ionic_density: np.ndarray
    task_problem: TaskProblem = field(repr=False)
    wavefunctions: np.ndarray | None = field(default=None, repr=False)
    # Fixed passivation correction Delta V_F (see
    # FragmentSolver.passivation_potential); computed once, reused every
    # iteration.  None until first requested or for unpassivated fragments.
    passivation_potential: np.ndarray | None = field(default=None, repr=False)

    @property
    def grid(self) -> FFTGrid:
        return self.task_problem.grid

    @property
    def basis(self) -> PlaneWaveBasis:
        return self.task_problem.basis

    @property
    def hamiltonian(self) -> Hamiltonian:
        return self.task_problem.hamiltonian

    @property
    def nelectrons(self) -> int:
        return self.task_problem.nelectrons

    @property
    def nbands(self) -> int:
        return self.task_problem.nbands

    @property
    def occupations(self) -> np.ndarray:
        return self.task_problem.occupations


class FragmentSolver:
    """Builds the Kohn-Sham problems and solve tasks of all fragments.

    Parameters
    ----------
    division:
        The spatial division of the supercell.
    pseudopotentials:
        Model pseudopotential set (shared with the global solver).
    ecut:
        Plane-wave cutoff for the fragment problems (Hartree).
    n_empty:
        Number of extra (empty) bands per fragment.
    eigensolver:
        ``"all_band"`` (default, BLAS-3) or ``"band_by_band"`` (BLAS-2
        reference algorithm).
    passivate:
        Whether to add pseudo-hydrogen passivation atoms (the paper always
        does; turning it off is useful to demonstrate *why* it is needed).
    polar_passivation:
        Use partially charged pseudo-hydrogens (H_cation / H_anion).
    """

    def __init__(
        self,
        division: SpatialDivision,
        pseudopotentials: PseudopotentialSet,
        ecut: float,
        n_empty: int = 2,
        eigensolver: str = "all_band",
        passivate: bool = True,
        polar_passivation: bool = True,
    ) -> None:
        if eigensolver not in {"all_band", "band_by_band"}:
            raise ValueError(f"unknown eigensolver {eigensolver!r}")
        self.division = division
        self.pseudopotentials = pseudopotentials
        self.ecut = float(ecut)
        self.n_empty = int(n_empty)
        self.eigensolver = eigensolver
        self.passivate = passivate
        self.polar_passivation = polar_passivation
        self._problems: dict[str, FragmentProblem] = {}

    # ------------------------------------------------------------------
    def build_problem(self, fragment: Fragment) -> FragmentProblem:
        """Construct (or fetch the cached) static problem of one fragment."""
        key = fragment.label
        if key in self._problems:
            return self._problems[key]
        if self.passivate:
            passivation = passivate_fragment(
                self.division, fragment, polar=self.polar_passivation
            )
        else:
            structure = self.division.fragment_structure(fragment)
            passivation = PassivationResult(
                structure=structure,
                n_passivants=0,
                passivant_indices=[],
                cut_bonds=[],
            )
        structure = passivation.structure
        grid = self.division.fragment_grid(fragment)
        # The basis/Hamiltonian/occupations construction is the shared
        # kernel's — one build path for this solver and the pool workers.
        template = self._static_task(fragment, structure, grid)
        task_problem = build_task_problem(template)
        ionic_density = self.pseudopotentials.ionic_density(structure, grid)
        # Seed the shared per-process cache so the in-process backends
        # (serial, threads) reuse this Hamiltonian instead of rebuilding it.
        # Process pools benefit too on fork platforms: workers forked at
        # first use inherit the seeded cache copy-on-write.
        seed_task_problem(task_problem)
        problem = FragmentProblem(
            fragment=fragment,
            structure=structure,
            passivation=passivation,
            ionic_density=ionic_density,
            task_problem=task_problem,
        )
        self._problems[key] = problem
        return problem

    def _static_task(
        self,
        fragment: Fragment,
        structure: Structure,
        grid: FFTGrid,
        screening_potential: np.ndarray | None = None,
    ) -> FragmentTask:
        """Task skeleton carrying the static problem data."""
        return FragmentTask(
            label=fragment.label,
            cell=tuple(grid.cell),
            grid_shape=tuple(grid.shape),
            symbols=list(structure.symbols),
            positions=structure.positions,
            screening_potential=screening_potential,
            ecut=self.ecut,
            n_empty=self.n_empty,
            eigensolver=self.eigensolver,
            pseudopotentials=self.pseudopotentials,
            weight=fragment.weight,
            ncells=fragment.ncells,
        )

    # ------------------------------------------------------------------
    def passivation_potential(self, problem: FragmentProblem) -> np.ndarray | None:
        """The fixed passivation correction Delta V_F of one fragment.

        Electrostatic potential of the *neutral* passivant pseudo-atoms:
        the compact ionic Gaussian minus a diffuse electron cloud of the
        same total charge.  This terminates the cut bonds without
        injecting a net monopole into the fragment box.  The term is
        iteration-independent — only the restricted global potential
        changes between outer iterations — so it is computed once per
        fragment and cached on the problem; warm iterations reuse the
        array instead of redoing the per-fragment Hartree solves every
        Gen_VF.  Returns ``None`` for unpassivated fragments.
        """
        if not problem.passivation.n_passivants:
            return None
        if problem.passivation_potential is None:
            passivants = problem.passivation.passivant_indices
            sub = Structure(
                problem.structure.cell,
                [problem.structure.symbols[i] for i in passivants],
                problem.structure.positions[passivants],
            )
            rho_ion_pass = self.pseudopotentials.ionic_density(sub, problem.grid)
            cloud_overrides = {}
            for sym in set(sub.symbols):
                pp = self.pseudopotentials[sym]
                cloud_overrides[sym] = replace(pp, core_width=2.0 * pp.core_width)
            cloud_set = self.pseudopotentials.with_override(cloud_overrides)
            rho_cloud_pass = cloud_set.ionic_density(sub, problem.grid)
            problem.passivation_potential = hartree_potential(
                rho_ion_pass - rho_cloud_pass, problem.grid
            )
        return problem.passivation_potential

    def fragment_screening_potential(
        self, problem: FragmentProblem, restricted_potential: np.ndarray
    ) -> np.ndarray:
        """Combine the restricted global potential with the fragment's own parts.

        The restriction of the *global* screening potential carries the
        electrostatics of the whole system; the passivation atoms (absent
        from the global system) additionally contribute the fixed (cached)
        passivation potential Delta V_F of the paper: nonzero only near
        the fragment boundary.
        """
        if restricted_potential.shape != problem.grid.shape:
            raise ValueError("restricted potential shape mismatch")
        v = restricted_potential
        delta_v = self.passivation_potential(problem)
        if delta_v is not None:
            v = v - delta_v
        return v

    # ------------------------------------------------------------------
    def make_task(
        self,
        fragment: Fragment,
        restricted_potential: np.ndarray,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
        initial_coefficients: np.ndarray | None = None,
    ) -> FragmentTask:
        """Picklable solve task for one fragment and one input potential.

        This is what :class:`repro.core.scf.LS3DFSCF` hands to its
        execution backend every outer iteration.
        """
        problem = self.build_problem(fragment)
        v_screen = self.fragment_screening_potential(problem, restricted_potential)
        task = self._static_task(
            fragment, problem.structure, problem.grid, screening_potential=v_screen
        )
        task.tolerance = float(eigensolver_tolerance)
        task.max_iterations = int(eigensolver_iterations)
        task.initial_coefficients = initial_coefficients
        return task

    def make_pipeline_task(
        self,
        fragment: Fragment,
        global_potential: np.ndarray,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
        initial_coefficients: np.ndarray | None = None,
        global_potential_key: str | None = None,
    ) -> FragmentPipelineTask:
        """Fused Gen_VF -> PEtot_F -> Gen_dens task for one fragment.

        Unlike :meth:`make_task`, the screening potential is *not*
        assembled here: the task carries the global input potential, the
        fragment's gather/scatter index maps and the cached passivation
        correction, and the worker performs the restriction, the solve and
        the weighted-interior extraction itself
        (:func:`repro.core.fragment_task.run_fragment_pipeline_task`).
        This is what :class:`repro.core.scf.LS3DFSCF` hands to a
        pipeline-capable backend every outer iteration when
        ``pipeline=True``.

        With ``global_potential_key`` set (the PR 6 install channel) the
        task references the potential by fingerprint instead of carrying
        the array — the caller must have installed ``global_potential``
        under that key through the executor first.
        """
        if global_potential.shape != self.division.global_grid.shape:
            raise ValueError("global potential shape mismatch")
        problem = self.build_problem(fragment)
        task = self._static_task(fragment, problem.structure, problem.grid)
        task.tolerance = float(eigensolver_tolerance)
        task.max_iterations = int(eigensolver_iterations)
        task.initial_coefficients = initial_coefficients
        box = self.division.fragment_box(fragment)
        return FragmentPipelineTask(
            task=task,
            global_potential=None if global_potential_key else global_potential,
            box_indices=self.division.global_indices(fragment, interior_only=False),
            interior_slice=box.interior_slice,
            passivation_potential=self.passivation_potential(problem),
            global_potential_key=global_potential_key,
        )

    @staticmethod
    def result_from_task(
        fragment: Fragment, result: FragmentTaskResult
    ) -> FragmentSolveResult:
        """Attach the fragment object to a kernel result."""
        if result.label != fragment.label:
            raise ValueError(
                f"task result {result.label!r} does not match fragment "
                f"{fragment.label!r}"
            )
        return FragmentSolveResult(
            fragment=fragment,
            eigenvalues=result.eigenvalues,
            density=result.density,
            quantum_energy=result.quantum_energy,
            band_energy=result.band_energy,
            solver_iterations=result.solver_iterations,
            converged=result.converged,
            wall_time=result.wall_time,
            worker_pid=result.worker_pid,
        )

    def solve_fragment(
        self,
        fragment: Fragment,
        restricted_potential: np.ndarray,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
    ) -> FragmentSolveResult:
        """Solve one fragment for the given restricted global input potential.

        Convenience in-process entry point: builds the task (warm-started
        from this solver's own per-fragment state) and runs the shared
        kernel directly.
        """
        problem = self.build_problem(fragment)
        task = self.make_task(
            fragment,
            restricted_potential,
            eigensolver_tolerance=eigensolver_tolerance,
            eigensolver_iterations=eigensolver_iterations,
            initial_coefficients=problem.wavefunctions,
        )
        result = solve_fragment_task(task, problem=problem.task_problem)
        problem.wavefunctions = result.coefficients
        return self.result_from_task(fragment, result)

    def solve_fragment_grouped(
        self,
        fragment: Fragment,
        restricted_potential: np.ndarray,
        executor,
        band_slices: int,
        eigensolver_tolerance: float = 1e-5,
        eigensolver_iterations: int = 60,
    ) -> FragmentSolveResult:
        """Solve one fragment with its band block spread over a worker group.

        The band-parallel counterpart of :meth:`solve_fragment`: the task
        is built identically, but the solve runs through
        :func:`repro.core.fragment_task.solve_fragment_task_grouped` —
        this process acts as the group root while ``executor`` carries
        the per-slice H·psi and residual work.  Results are bit-identical
        to :meth:`solve_fragment` for any ``band_slices``.

        Parameters
        ----------
        fragment:
            The fragment to solve.
        restricted_potential:
            The Gen_VF restriction of the global input potential.
        executor:
            Backend implementing
            :class:`repro.parallel.bands.BandGroupExecutor`.
        band_slices:
            Number of band slices (the paper's Np per group, locally).
        eigensolver_tolerance, eigensolver_iterations:
            Eigensolver controls, as in :meth:`solve_fragment`.
        """
        problem = self.build_problem(fragment)
        task = self.make_task(
            fragment,
            restricted_potential,
            eigensolver_tolerance=eigensolver_tolerance,
            eigensolver_iterations=eigensolver_iterations,
            initial_coefficients=problem.wavefunctions,
        )
        result, _stats = solve_fragment_task_grouped(
            task, executor, band_slices, problem=problem.task_problem
        )
        problem.wavefunctions = result.coefficients
        return self.result_from_task(fragment, result)

    # ------------------------------------------------------------------
    def problems(self) -> dict[str, FragmentProblem]:
        """All fragment problems built so far, keyed by fragment label."""
        return dict(self._problems)

    def total_fragment_atoms(self) -> int:
        """Total atom count over all built fragments (incl. passivants)."""
        return sum(p.structure.natoms for p in self._problems.values())
