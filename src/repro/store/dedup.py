"""Serialisable problem specs and the content-addressed dedup signature.

A *spec* is the JSON-safe description of one solve: which toy-structure
builder to call, how to configure the :class:`~repro.core.scf.LS3DFSCF`
solver, and the run parameters.  From a spec this module can (a) build
the actual solver — identically on any host, which is what makes the
daemon's auto-resume bit-identical — and (b) derive the *problem
signature*: the solver's own checkpoint-compatibility digest
(``LS3DFSCF._problem_signature``: structure + grids + buffer + ecut +
n_empty) salted with every remaining knob that shapes the trajectory
(mixer, eigensolver settings, tolerances, iteration budget).

The signature is the store's dedup key: two submits whose specs produce
the same signature are, by construction, asking for the same sequence
of iterates — so the second attaches to the first's event stream
instead of burning a second solve.  Anything that could change even one
iterate (a different mixer, a looser eigensolver) changes the
signature and gets its own run.
"""

from __future__ import annotations

import hashlib
import json

from repro.atoms.toy import cscl_binary, simple_cubic
from repro.core.scf import LS3DFSCF

__all__ = ["BUILDERS", "build_solver", "canonical_spec", "problem_signature"]

#: Structure builders a spec may name.  Each takes ``dims`` plus the
#: keyword arguments listed in its own signature.
BUILDERS = {
    "cscl_binary": cscl_binary,
    "simple_cubic": simple_cubic,
}

#: Keyword arguments a spec may pass to :class:`~repro.core.scf.LS3DFSCF`.
SOLVER_KEYS = frozenset(
    {
        "grid_dims",
        "ecut",
        "buffer_cells",
        "n_empty",
        "mixer",
        "mixer_options",
        "eigensolver",
        "passivate",
        "polar_passivation",
        "points_per_bohr",
    }
)

#: Keyword arguments a spec may pass to :meth:`LS3DFSCF.run` (the store
#: controls ``checkpoint_dir``/``resume``/``event_hook`` itself).
RUN_KEYS = frozenset(
    {
        "max_iterations",
        "potential_tolerance",
        "eigensolver_tolerance",
        "eigensolver_iterations",
        "checkpoint_every",
    }
)


def canonical_spec(spec: dict) -> dict:
    """Validate and normalise a problem spec.

    Parameters
    ----------
    spec:
        Mapping with keys ``builder`` (a name in :data:`BUILDERS`),
        ``builder_args`` (keyword arguments for it; must include
        ``dims``), ``solver`` (restricted to :data:`SOLVER_KEYS`;
        must include ``grid_dims``) and optionally ``run`` (restricted
        to :data:`RUN_KEYS`).

    Returns
    -------
    dict
        A plain-JSON copy with exactly those four keys, tuples
        normalised to lists — the form that is persisted as
        ``spec.json`` and hashed for the signature.
    """
    if not isinstance(spec, dict):
        raise TypeError(f"spec must be a mapping, got {type(spec).__name__}")
    unknown = set(spec) - {"builder", "builder_args", "solver", "run"}
    if unknown:
        raise ValueError(f"unknown spec keys: {sorted(unknown)}")
    builder = spec.get("builder")
    if builder not in BUILDERS:
        raise ValueError(
            f"unknown builder {builder!r}; choose from {sorted(BUILDERS)}"
        )
    builder_args = dict(spec.get("builder_args", {}))
    if "dims" not in builder_args:
        raise ValueError("builder_args must include 'dims'")
    solver = dict(spec.get("solver", {}))
    bad = set(solver) - SOLVER_KEYS
    if bad:
        raise ValueError(f"unsupported solver keys: {sorted(bad)}")
    if "grid_dims" not in solver:
        raise ValueError("solver must include 'grid_dims'")
    run = dict(spec.get("run", {}))
    bad = set(run) - RUN_KEYS
    if bad:
        raise ValueError(f"unsupported run keys: {sorted(bad)}")
    # Round-trip through JSON: tuples -> lists, and reject anything that
    # would not survive spec.json.
    return json.loads(
        json.dumps(
            {
                "builder": builder,
                "builder_args": builder_args,
                "solver": solver,
                "run": run,
            },
            sort_keys=True,
        )
    )


def build_solver(spec: dict, executor=None) -> tuple[LS3DFSCF, dict]:
    """Materialise a spec into a ready solver plus run kwargs.

    Parameters
    ----------
    spec:
        A (canonical or raw) problem spec.
    executor:
        Optional :class:`~repro.parallel.executor.FragmentExecutor` to
        run fragments on — the daemon passes its pooled executor here;
        None means the serial in-process executor.

    Returns
    -------
    tuple
        ``(solver, run_kwargs)``: the configured
        :class:`~repro.core.scf.LS3DFSCF` and the keyword arguments for
        its :meth:`~repro.core.scf.LS3DFSCF.run`.
    """
    spec = canonical_spec(spec)
    structure = BUILDERS[spec["builder"]](**spec["builder_args"])
    solver = LS3DFSCF(structure, executor=executor, **spec["solver"])
    return solver, dict(spec["run"])


def problem_signature(spec: dict) -> str:
    """Content-addressed dedup key of a spec.

    Builds the solver (cheaply, for the toy problems the spec language
    covers) and extends its checkpoint-compatibility digest with the
    mixer and run parameters — the knobs the digest ignores because the
    checkpoint format does not depend on them, but the *trajectory*
    does.

    Returns
    -------
    str
        Hex SHA-256 digest; ``run-<first 16 hex>`` becomes the run id.
    """
    spec = canonical_spec(spec)
    solver, run_kwargs = build_solver(spec)
    h = hashlib.sha256()
    h.update(solver._problem_signature().encode())
    salt = {
        "mixer": spec["solver"].get("mixer", "kerker"),
        "mixer_options": spec["solver"].get("mixer_options"),
        "eigensolver": spec["solver"].get("eigensolver", "all_band"),
        "run": run_kwargs,
    }
    h.update(json.dumps(salt, sort_keys=True, separators=(",", ":")).encode())
    return h.hexdigest()
