"""``repro-serve``: the SCF job daemon over an event-sourced run store.

The daemon fronts one :class:`~repro.store.store.RunStore` with a TCP
request/response protocol on the same ``RPW1`` framing the remote
fragment workers speak (:func:`repro.parallel.remote.send_frame` /
:func:`~repro.parallel.remote.recv_frame`): a 4-byte magic, a length,
a pickled dict.  Clients (:mod:`repro.store.client`) submit problem
specs and query status/events/results; the daemon multiplexes every
admitted job onto a small pool of *job slots*, each owning one
long-lived fragment executor, so N concurrent solves share N warm
worker pools instead of spawning per job.

Durability is the store's, not the daemon's: every lifecycle transition
is an appended event, every iteration lands in the run's checkpoint
directory, so the daemon itself is disposable.  ``kill -9`` it, start a
new one over the same root, and the startup scan re-enqueues every
non-terminal run with ``resume=True`` — the solve continues from the
latest checkpoint and finishes bit-identical to an uninterrupted run
(the guarantee inherited from :mod:`repro.io.checkpoint`, proven in
``tests/test_service.py``).
"""

from __future__ import annotations

import argparse
import os
import queue
import socket
import threading
import traceback
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.io.checkpoint import has_checkpoint
from repro.parallel.remote import (
    _DEFAULT_MAX_FRAME,
    RemoteProtocolError,
    recv_frame,
    send_frame,
)
from repro.store.dedup import build_solver
from repro.store.events import TERMINAL_KINDS
from repro.store.store import RunStore

__all__ = ["SERVICE_PROTOCOL_VERSION", "StoreServer", "serve_main"]

#: Bumped on any incompatible change to the request/response dicts.
SERVICE_PROTOCOL_VERSION = 1


def _make_executor_factory(
    backend: str, workers: int
) -> Callable[[], object] | None:
    """Executor factory for one job slot (None = serial in-process)."""
    if backend == "serial":
        return None
    if backend == "thread":
        from repro.parallel.executor import ThreadPoolFragmentExecutor

        return lambda: ThreadPoolFragmentExecutor(workers)
    if backend == "process":
        from repro.parallel.executor import ProcessPoolFragmentExecutor

        return lambda: ProcessPoolFragmentExecutor(workers)
    raise ValueError(f"unknown backend {backend!r}")


class StoreServer:
    """The SCF-as-a-service daemon: admission, scheduling, queries.

    Parameters
    ----------
    root:
        The run store root to serve (shared with any other process that
        mounts the same directory — coordination is the store's file
        locks).
    host, port:
        Bind address; port 0 lets the OS pick (published in
        :attr:`address` after :meth:`start`).
    job_slots:
        Number of concurrent solves; each slot owns one executor from
        ``executor_factory`` for its whole lifetime (the shared pool).
    executor_factory:
        Zero-argument callable building one slot's fragment executor;
        None runs fragments serially in the slot thread.
    """

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        job_slots: int = 1,
        executor_factory: Callable[[], object] | None = None,
        max_frame_bytes: int = _DEFAULT_MAX_FRAME,
    ) -> None:
        if job_slots < 1:
            raise ValueError("job_slots must be positive")
        self.store = RunStore(root)
        self.host = host
        self.port = int(port)
        self.job_slots = int(job_slots)
        self.executor_factory = executor_factory
        self.max_frame_bytes = int(max_frame_bytes)
        self.address: tuple[str, int] | None = None
        self.jobs_started = 0
        self.jobs_finished = 0
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._queued: set[str] = set()
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Recover pending runs, bind, and serve; returns the address.

        The startup scan is the auto-resume half of the crash story:
        every run whose stream is not terminal — submitted but never
        scheduled, or killed mid-solve — is re-enqueued before the
        socket even opens, so a restarted daemon needs no client help
        to finish interrupted work.
        """
        for run_id in self.store.pending_runs():
            self._enqueue(run_id)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self.address = (self.host, int(sock.getsockname()[1]))
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        for slot in range(self.job_slots):
            runner = threading.Thread(
                target=self._runner_loop, args=(slot,), daemon=True
            )
            runner.start()
            self._threads.append(runner)
        return self.address

    def stop(self) -> None:
        """Stop accepting and signal the runner loops (idempotent)."""
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._sock = None

    def join(self, timeout: float | None = None) -> None:
        """Block until :meth:`stop` is called (the daemon's main wait)."""
        self._stop.wait(timeout)

    def __enter__(self) -> "StoreServer":
        if self.address is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- scheduling ----------------------------------------------------
    def _enqueue(self, run_id: str) -> bool:
        """Queue a run unless it is already queued or being solved."""
        with self._lock:
            if run_id in self._queued:
                return False
            self._queued.add(run_id)
        self._queue.put(run_id)
        return True

    def _runner_loop(self, slot: int) -> None:
        executor = None
        try:
            while not self._stop.is_set():
                try:
                    run_id = self._queue.get(timeout=0.2)
                except queue.Empty:
                    continue
                if executor is None and self.executor_factory is not None:
                    executor = self.executor_factory()
                try:
                    self._execute(run_id, executor, slot)
                finally:
                    with self._lock:
                        self._queued.discard(run_id)
        finally:
            close = getattr(executor, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - teardown best effort
                    pass

    def _execute(self, run_id: str, executor, slot: int) -> None:
        """Run one job to a terminal event, always via the resume path."""
        stream = self.store.stream(run_id)
        if stream.read_head()["status"] in TERMINAL_KINDS:
            return
        spec = self.store.spec(run_id)
        ckpt = self.store.checkpoint_dir(run_id)
        resumed = has_checkpoint(ckpt)
        stream.append(
            "scheduled",
            {"resumed": resumed, "pid": os.getpid(), "slot": int(slot)},
        )
        with self._lock:
            self.jobs_started += 1
        try:
            solver, run_kwargs = build_solver(spec, executor=executor)
            result = solver.run(
                checkpoint_dir=ckpt,
                resume=True,
                event_hook=lambda kind, data: stream.append(kind, data),
                **run_kwargs,
            )
        except Exception as exc:
            stream.append(
                "failed",
                {
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                    "traceback": traceback.format_exc(limit=20),
                },
            )
        else:
            stream.append(
                "converged",
                {
                    "converged": bool(result.converged),
                    "iterations": int(result.iterations),
                    "energy": float(result.total_energy),
                },
                payload_arrays={
                    "density": result.density,
                    "potential": result.potential,
                    "energy": np.float64(result.total_energy),
                },
            )
        finally:
            with self._lock:
                self.jobs_finished += 1

    # -- serving -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request, _ = recv_frame(conn, self.max_frame_bytes)
                except (ConnectionError, OSError, EOFError):
                    return
                except RemoteProtocolError:
                    return
                try:
                    reply = self._handle(request)
                except Exception as exc:  # never kill the daemon on a request
                    reply = {
                        "ok": False,
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                    }
                try:
                    send_frame(conn, reply, self.max_frame_bytes)
                except (ConnectionError, OSError):
                    return

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "hello":
            if request.get("version") != SERVICE_PROTOCOL_VERSION:
                return {
                    "ok": False,
                    "error_type": "RemoteProtocolError",
                    "error": (
                        f"service protocol mismatch: client "
                        f"{request.get('version')} != server "
                        f"{SERVICE_PROTOCOL_VERSION}"
                    ),
                }
            return {
                "ok": True,
                "pid": os.getpid(),
                "version": SERVICE_PROTOCOL_VERSION,
                "root": str(self.store.root),
            }
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            receipt = self.store.submit(
                request["spec"], client=str(request.get("client", "remote"))
            )
            head = self.store.read_head(receipt.run_id)
            queued = False
            if head["status"] not in TERMINAL_KINDS:
                queued = self._enqueue(receipt.run_id)
            return {
                "ok": True,
                "run_id": receipt.run_id,
                "signature": receipt.signature,
                "attached": receipt.attached,
                "queued": queued,
                "status": head["status"],
            }
        if op == "status":
            return {"ok": True, "head": self.store.read_head(request["run_id"])}
        if op == "events":
            events = self.store.events(
                request["run_id"], since_seq=int(request.get("since_seq", 0))
            )
            return {"ok": True, "events": [e.to_json() for e in events]}
        if op == "result":
            result = self.store.result(request["run_id"])
            return {"ok": True, "result": result}
        if op == "runs":
            return {
                "ok": True,
                "runs": {
                    run_id: self.store.read_head(run_id)["status"]
                    for run_id in self.store.run_ids()
                },
            }
        if op == "stats":
            with self._lock:
                return {
                    "ok": True,
                    "jobs_started": self.jobs_started,
                    "jobs_finished": self.jobs_finished,
                    "queued": len(self._queued),
                }
        if op == "shutdown":
            # Reply first (the client awaits it), then stop; interrupted
            # solves are no loss — the next daemon resumes them.
            self._stop.set()
            return {"ok": True}
        return {
            "ok": False,
            "error_type": "RemoteProtocolError",
            "error": f"unknown op {op!r}",
        }


def serve_main(argv: Sequence[str] | None = None) -> int:
    """``repro-serve`` entry point: serve a run store until shut down.

    Prints ``REPRO-SERVE LISTENING <host> <port>`` on stdout once bound
    (port 0 resolves to the OS-assigned port) so spawners and shell
    scripts can scrape the address; then blocks until a ``shutdown``
    frame or Ctrl-C.  Restarting over the same ``--root`` auto-resumes
    every interrupted run.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "LS3DF SCF-as-a-service daemon over an event-sourced run "
            "store (trusted networks only)."
        ),
    )
    parser.add_argument("--root", required=True, help="run store root directory")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = any)")
    parser.add_argument(
        "--job-slots", type=int, default=1, help="concurrent solves"
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="fragment executor each job slot owns",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="workers per slot executor"
    )
    args = parser.parse_args(argv)
    server = StoreServer(
        args.root,
        host=args.host,
        port=args.port,
        job_slots=args.job_slots,
        executor_factory=_make_executor_factory(args.backend, args.workers),
    )
    host, port = server.start()
    print(f"REPRO-SERVE LISTENING {host} {port}", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()
    return 0
