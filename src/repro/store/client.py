"""``repro-submit``: the run-store service client and CLI.

:class:`ServiceClient` speaks the daemon's strict request/response
protocol over one persistent connection (``RPW1`` framing shared with
:mod:`repro.parallel.remote`), with a version handshake on connect.
The CLI wraps it into subcommands — ``submit`` a spec file, ``status``
/ ``events`` / ``result`` / ``wait`` on a run, ``runs`` to list the
store, ``shutdown`` to stop the daemon — each printing JSON so shell
pipelines (and the CI smoke job) can assert on the output.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.parallel.remote import (
    _DEFAULT_MAX_FRAME,
    RemoteProtocolError,
    recv_frame,
    send_frame,
)
from repro.store.events import TERMINAL_KINDS
from repro.store.server import SERVICE_PROTOCOL_VERSION

__all__ = ["ServiceClient", "ServiceError", "client_main"]


class ServiceError(RuntimeError):
    """The daemon answered a request with ``ok: False``."""


class ServiceClient:
    """One client connection to a ``repro-serve`` daemon.

    Parameters
    ----------
    address:
        The daemon's ``(host, port)``.
    client:
        Label recorded in ``submitted``/``attached`` events.
    connect_timeout:
        Socket timeout for connect and the handshake; requests
        afterwards block until answered (a ``wait`` poll never races a
        slow solve).
    """

    def __init__(
        self,
        address: tuple[str, int],
        client: str = "repro-submit",
        connect_timeout: float = 10.0,
        max_frame_bytes: int = _DEFAULT_MAX_FRAME,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.client = str(client)
        self.connect_timeout = float(connect_timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock: socket.socket | None = None

    # -- plumbing ------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            send_frame(
                sock,
                {"op": "hello", "version": SERVICE_PROTOCOL_VERSION},
                self.max_frame_bytes,
            )
            reply, _ = recv_frame(sock, self.max_frame_bytes)
            if not reply.get("ok"):
                raise RemoteProtocolError(reply.get("error", "handshake refused"))
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)
        self._sock = sock
        return sock

    def _request(self, request: dict) -> dict:
        sock = self._connect()
        send_frame(sock, request, self.max_frame_bytes)
        reply, _ = recv_frame(sock, self.max_frame_bytes)
        if not reply.get("ok"):
            raise ServiceError(
                f"{reply.get('error_type', 'ServiceError')}: "
                f"{reply.get('error', 'request failed')}"
            )
        return reply

    def close(self) -> None:
        """Close the connection (idempotent)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    def __enter__(self) -> "ServiceClient":
        self._connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ----------------------------------------------------
    def ping(self) -> dict:
        """Daemon liveness probe; returns its pid."""
        return self._request({"op": "ping"})

    def submit(self, spec: dict) -> dict:
        """Submit a problem spec; dedup happens server-side.

        Returns
        -------
        dict
            ``run_id``, ``signature``, ``attached`` (True when this
            submission joined an existing run) and the run's current
            ``status``.
        """
        return self._request(
            {"op": "submit", "spec": dict(spec), "client": self.client}
        )

    def status(self, run_id: str) -> dict:
        """The run's head snapshot (O(1) server-side, no payload reads)."""
        return self._request({"op": "status", "run_id": str(run_id)})["head"]

    def events(self, run_id: str, since_seq: int = 0) -> list[dict]:
        """The run's events (JSON form) with ``seq >= since_seq``."""
        return self._request(
            {"op": "events", "run_id": str(run_id), "since_seq": int(since_seq)}
        )["events"]

    def result(self, run_id: str) -> dict | None:
        """The finished run's arrays + scalars, or None while running."""
        return self._request({"op": "result", "run_id": str(run_id)})["result"]

    def runs(self) -> dict:
        """All runs in the store: ``{run_id: status}``."""
        return self._request({"op": "runs"})["runs"]

    def stats(self) -> dict:
        """Daemon scheduling counters."""
        return self._request({"op": "stats"})

    def wait(self, run_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll ``status`` until the run is terminal; returns the head.

        Raises
        ------
        TimeoutError
            The run did not reach a terminal state in time.
        """
        deadline = time.monotonic() + float(timeout)
        while True:
            head = self.status(run_id)
            if head["status"] in TERMINAL_KINDS:
                return head
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {head['status']!r} after "
                    f"{timeout:.1f}s"
                )
            time.sleep(float(poll))

    def shutdown(self) -> dict:
        """Ask the daemon to stop (in-flight solves resume on restart)."""
        try:
            return self._request({"op": "shutdown"})
        finally:
            self.close()


def _print_json(obj) -> None:
    json.dump(obj, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def client_main(argv: Sequence[str] | None = None) -> int:
    """``repro-submit`` entry point.

    ``repro-submit --host H --port P submit spec.json [--wait]`` and
    friends; every subcommand prints a JSON document on stdout.
    ``result`` prints scalar metadata and (optionally) saves the arrays
    with ``--save out.npz`` — arrays never land on stdout.
    """
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Client for the repro-serve SCF daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="daemon host")
    parser.add_argument("--port", type=int, required=True, help="daemon port")
    parser.add_argument(
        "--client", default="repro-submit", help="client label recorded in events"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit a problem spec file")
    p_submit.add_argument("spec", help="path to a spec JSON file ('-' = stdin)")
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the run is terminal"
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, help="--wait timeout (s)"
    )

    p_status = sub.add_parser("status", help="print a run's head snapshot")
    p_status.add_argument("run_id")

    p_events = sub.add_parser("events", help="print a run's event log")
    p_events.add_argument("run_id")
    p_events.add_argument("--since", type=int, default=0, help="first seq")

    p_result = sub.add_parser("result", help="print a finished run's scalars")
    p_result.add_argument("run_id")
    p_result.add_argument("--save", help="write result arrays to this .npz")

    p_wait = sub.add_parser("wait", help="block until a run is terminal")
    p_wait.add_argument("run_id")
    p_wait.add_argument("--timeout", type=float, default=300.0)

    sub.add_parser("runs", help="list every run and its status")
    sub.add_parser("ping", help="daemon liveness probe")
    sub.add_parser("shutdown", help="stop the daemon")

    args = parser.parse_args(argv)
    with ServiceClient((args.host, args.port), client=args.client) as client:
        if args.command == "submit":
            if args.spec == "-":
                spec = json.load(sys.stdin)
            else:
                spec = json.loads(Path(args.spec).read_text())
            reply = client.submit(spec)
            if args.wait:
                reply = dict(reply)
                reply["head"] = client.wait(
                    reply["run_id"], timeout=args.timeout
                )
            _print_json(reply)
        elif args.command == "status":
            _print_json(client.status(args.run_id))
        elif args.command == "events":
            _print_json(client.events(args.run_id, since_seq=args.since))
        elif args.command == "result":
            result = client.result(args.run_id)
            if result is None:
                _print_json(None)
            else:
                if args.save:
                    np.savez(
                        args.save,
                        density=result["density"],
                        potential=result["potential"],
                    )
                _print_json(
                    {
                        "energy": result["energy"],
                        "converged": result["converged"],
                        "iterations": result["iterations"],
                        "density_sum": float(np.sum(result["density"])),
                        "saved": args.save or None,
                    }
                )
        elif args.command == "wait":
            _print_json(client.wait(args.run_id, timeout=args.timeout))
        elif args.command == "runs":
            _print_json(client.runs())
        elif args.command == "ping":
            _print_json(client.ping())
        elif args.command == "shutdown":
            _print_json(client.shutdown())
    return 0
