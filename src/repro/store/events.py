"""The run store's event record format.

A run's history is a flat file of newline-framed records, one event per
line::

    REV1 <crc32:08x> <length:08d> <json-body>\\n

The fixed-width header makes every record self-describing: ``length``
is the byte length of the JSON body, ``crc32`` its checksum.  A process
killed mid-append leaves a *torn tail* — a final line that is short,
checksum-broken, or missing its newline — which replay detects and
ignores (and the next locked append truncates away).  Torn bytes
anywhere *before* the tail mean real corruption and fail loudly.

The JSON body carries the :class:`Event` fields: a contiguous ``seq``
number (0-based position in the stream), the event ``kind``, a
wall-clock timestamp, a small JSON ``data`` mapping, and optionally the
filename of a sidecar ``.npz`` payload (written separately via
:func:`repro.io.gridio.write_npz_atomic` — bulk arrays never live in
the log itself, which is what keeps ``status`` queries payload-free).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

__all__ = [
    "EVENT_KINDS",
    "TERMINAL_KINDS",
    "Event",
    "TornRecordError",
    "decode_record",
    "encode_record",
]

RECORD_MAGIC = "REV1"
_HEADER_LEN = len(RECORD_MAGIC) + 1 + 8 + 1 + 8 + 1  # "REV1 crc8 len8 "

#: Lifecycle vocabulary of a run's event stream, in the order a healthy
#: run emits them.  ``attached`` records a deduplicated second client;
#: ``scheduled`` may repeat (a daemon restart re-schedules with
#: ``resumed: True``); ``iteration`` and ``checkpointed`` repeat per
#: outer iteration.
EVENT_KINDS = (
    "submitted",
    "attached",
    "scheduled",
    "iteration",
    "checkpointed",
    "converged",
    "failed",
)

#: Kinds that end a run: no further solve work follows them.
TERMINAL_KINDS = frozenset({"converged", "failed"})


class TornRecordError(ValueError):
    """A record failed framing or checksum validation.

    At the very end of a log this is the expected signature of a kill
    mid-append (the replayer ignores it); anywhere else it is real
    corruption and surfaces loudly.
    """


@dataclass
class Event:
    """One record of a run's append-only history.

    Attributes
    ----------
    seq:
        0-based, contiguous position in the stream (the append under the
        stream's file lock assigns it).
    kind:
        One of :data:`EVENT_KINDS`.
    ts:
        Wall-clock POSIX timestamp of the append (informational only —
        ordering is ``seq``, never the clock).
    data:
        Small JSON-serialisable mapping (iteration counters, convergence
        metrics, error strings — never bulk arrays).
    payload:
        Filename (relative to the run directory) of a sidecar ``.npz``
        holding this event's bulk arrays, or ``None``.
    """

    seq: int
    kind: str
    ts: float
    data: dict = field(default_factory=dict)
    payload: str | None = None

    def to_json(self) -> dict:
        """Plain-dict form (what rides in the record body and over the wire)."""
        body = {"seq": int(self.seq), "kind": self.kind, "ts": float(self.ts),
                "data": self.data}
        if self.payload is not None:
            body["payload"] = self.payload
        return body

    @classmethod
    def from_json(cls, body: dict) -> "Event":
        """Rebuild an event from its :meth:`to_json` form."""
        return cls(
            seq=int(body["seq"]),
            kind=str(body["kind"]),
            ts=float(body["ts"]),
            data=dict(body.get("data", {})),
            payload=body.get("payload"),
        )


def encode_record(event: Event) -> bytes:
    """Frame one event as a checksummed log line.

    Returns
    -------
    bytes
        ``REV1 <crc32> <length> <json>\\n`` — the exact bytes appended
        to the log.
    """
    body = json.dumps(event.to_json(), sort_keys=True, separators=(",", ":"))
    raw = body.encode("utf-8")
    crc = zlib.crc32(raw) & 0xFFFFFFFF
    return f"{RECORD_MAGIC} {crc:08x} {len(raw):08d} ".encode("ascii") + raw + b"\n"


def decode_record(line: bytes) -> Event:
    """Decode one framed line back into an :class:`Event`.

    Parameters
    ----------
    line:
        One record's bytes, trailing newline included.

    Raises
    ------
    TornRecordError
        Missing newline, bad magic, short body, or checksum mismatch —
        the signatures of a write cut short.
    """
    if not line.endswith(b"\n"):
        raise TornRecordError("record is missing its terminating newline")
    if len(line) < _HEADER_LEN + 1:
        raise TornRecordError("record is shorter than its fixed header")
    header = line[: _HEADER_LEN].decode("ascii", errors="replace")
    magic, crc_hex, len_dec = header.split(" ")[:3]
    if magic != RECORD_MAGIC:
        raise TornRecordError(f"bad record magic {magic!r}")
    try:
        expected_crc = int(crc_hex, 16)
        body_len = int(len_dec, 10)
    except ValueError as exc:
        raise TornRecordError(f"unparsable record header {header!r}") from exc
    raw = line[_HEADER_LEN:-1]
    if len(raw) != body_len:
        raise TornRecordError(
            f"record body is {len(raw)} bytes, header promised {body_len}"
        )
    if (zlib.crc32(raw) & 0xFFFFFFFF) != expected_crc:
        raise TornRecordError("record checksum mismatch")
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TornRecordError("record body is not valid JSON") from exc
    return Event.from_json(body)
