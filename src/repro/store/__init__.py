"""SCF-as-a-service: the event-sourced run store and job daemon.

Every LS3DF solve handled by this layer is a first-class persistent
object — an append-only *event stream* (``submitted -> scheduled ->
iteration(k) -> checkpointed -> converged | failed``) on disk, with a
snapshot index for O(1) catch-up, advisory file locking for concurrent
writers, and content-addressed problem signatures as dedup keys: two
clients submitting the identical problem attach to one in-flight solve
and both stream its events.

Layers (bottom up):

* :mod:`repro.store.events` — the record format: checksummed,
  newline-framed JSON events whose torn tails are detectable.
* :mod:`repro.store.lock` — advisory file locks
  (:class:`~repro.store.lock.FileLock`) serialising concurrent writers.
* :mod:`repro.store.stream` — :class:`~repro.store.stream.EventStream`,
  one run's append-only log + ``head.json`` snapshot, crash-safe via
  the :func:`repro.io.gridio.write_npz_atomic`-grade durable writers.
* :mod:`repro.store.index` — the store-wide registry mapping problem
  signatures to run ids.
* :mod:`repro.store.dedup` — serialisable problem specs, solver
  construction and the content-addressed signature.
* :mod:`repro.store.store` — :class:`~repro.store.store.RunStore`, the
  facade tying streams, index, locks and dedup together.
* :mod:`repro.store.server` / :mod:`repro.store.client` — the
  ``repro-serve`` daemon (socket protocol on the ``RPW1`` framing of
  :mod:`repro.parallel.remote`) and the ``repro-submit`` client/CLI.
"""

from repro.store.dedup import build_solver, canonical_spec, problem_signature
from repro.store.events import (
    EVENT_KINDS,
    TERMINAL_KINDS,
    Event,
    TornRecordError,
    decode_record,
    encode_record,
)
from repro.store.index import StoreIndex
from repro.store.lock import FileLock, LockTimeoutError
from repro.store.store import RunStore, SubmitReceipt
from repro.store.stream import AppendFaultPlan, EventStream, KilledAppend

__all__ = [
    "EVENT_KINDS",
    "TERMINAL_KINDS",
    "AppendFaultPlan",
    "Event",
    "EventStream",
    "FileLock",
    "KilledAppend",
    "LockTimeoutError",
    "RunStore",
    "StoreIndex",
    "SubmitReceipt",
    "TornRecordError",
    "build_solver",
    "canonical_spec",
    "decode_record",
    "encode_record",
    "problem_signature",
]
