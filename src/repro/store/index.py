"""The store-wide registry: problem signature -> run id.

One JSON file (``index.json``) at the store root maps every known
problem signature to its run id and records submission metadata.  It is
a *cache over the streams* — each run's ``spec.json`` + ``submitted``
event carry the same facts — so a lost index could be rebuilt by
scanning run directories; but in normal operation the index is what
makes dedup O(1): a submit looks its signature up here instead of
replaying every stream.

All mutation happens under the store root's :class:`~repro.store.lock.FileLock`
(held by :class:`~repro.store.store.RunStore`, not here), and every
rewrite goes through :func:`repro.io.gridio.write_text_atomic`, so a
kill mid-registration leaves either the old or the new index — never a
truncated one.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.io.gridio import write_text_atomic

__all__ = ["StoreIndex"]

INDEX_NAME = "index.json"
_FORMAT = "repro-store-index"


class StoreIndex:
    """Signature -> run-id registry of one store root.

    Parameters
    ----------
    root:
        The store root directory.

    Notes
    -----
    The index does no locking of its own: callers that mutate it must
    hold the store root lock (``RunStore`` does).  Reads are safe at any
    time because rewrites are atomic replaces.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / INDEX_NAME

    def _load(self) -> dict:
        if not self.path.is_file():
            return {"format": _FORMAT, "runs": {}}
        data = json.loads(self.path.read_text())
        if data.get("format") != _FORMAT:
            raise ValueError(f"{self.path} is not a {_FORMAT} file")
        return data

    def lookup(self, signature: str) -> str | None:
        """Run id already registered for ``signature``, or None."""
        for run_id, entry in self._load()["runs"].items():
            if entry.get("signature") == signature:
                return run_id
        return None

    def register(self, run_id: str, signature: str, ts: float) -> None:
        """Record a new run (caller holds the store root lock).

        Parameters
        ----------
        run_id:
            The run's id (also its directory name under ``runs/``).
        signature:
            The content-addressed problem signature.
        ts:
            Submission wall-clock timestamp.
        """
        data = self._load()
        existing = data["runs"].get(run_id)
        if existing is not None and existing.get("signature") != signature:
            raise ValueError(
                f"run id {run_id} already registered with a different signature"
            )
        data["runs"][run_id] = {"signature": signature, "submitted_ts": float(ts)}
        write_text_atomic(
            self.path, json.dumps(data, indent=2, sort_keys=True) + "\n"
        )

    def run_ids(self) -> list[str]:
        """All registered run ids, oldest submission first."""
        runs = self._load()["runs"]
        return sorted(runs, key=lambda rid: runs[rid].get("submitted_ts", 0.0))
