"""The run store facade: submit-with-dedup, queries, and run layout.

A store root looks like::

    <root>/
        store.lock            # serialises submits / index registration
        index.json            # signature -> run id registry
        runs/
            run-<sig16>/
                spec.json     # the canonical problem spec
                events.log    # the run's event stream (stream.py)
                head.json     # snapshot index
                stream.lock
                payload-*.npz
                checkpoint/   # LS3DFSCF checkpoints (repro.io.checkpoint)

:class:`RunStore` is deliberately daemon-free: it is the persistence
layer both the ``repro-serve`` daemon and offline tools share.  Two
*processes* holding the same root cooperate purely through the file
locks — which is exactly what the crash/concurrency battery in
``tests/test_store.py`` exercises.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.io.gridio import write_text_atomic
from repro.store.dedup import canonical_spec, problem_signature
from repro.store.events import TERMINAL_KINDS, Event
from repro.store.index import StoreIndex
from repro.store.lock import FileLock
from repro.store.stream import EventStream

__all__ = ["RunStore", "SubmitReceipt"]

SPEC_NAME = "spec.json"
ROOT_LOCK_NAME = "store.lock"
RUNS_DIR = "runs"


@dataclass(frozen=True)
class SubmitReceipt:
    """What a client gets back from :meth:`RunStore.submit`.

    Attributes
    ----------
    run_id:
        The run the submission landed on (new or existing).
    signature:
        The spec's content-addressed problem signature.
    attached:
        False when this submit created the run; True when it
        deduplicated onto an existing stream (an ``attached`` event was
        appended instead of a new run being born).
    """

    run_id: str
    signature: str
    attached: bool


class RunStore:
    """Event-sourced store of LS3DF runs under one root directory.

    Parameters
    ----------
    root:
        Store root (created on first use).
    lock_timeout:
        Seconds to wait for the root / stream locks.
    """

    def __init__(self, root: str | Path, lock_timeout: float = 30.0) -> None:
        self.root = Path(root)
        self.lock_timeout = float(lock_timeout)

    # -- layout --------------------------------------------------------
    @property
    def runs_root(self) -> Path:
        """Directory holding one subdirectory per run."""
        return self.root / RUNS_DIR

    def run_dir(self, run_id: str) -> Path:
        """A run's directory (existence not checked)."""
        return self.runs_root / run_id

    def checkpoint_dir(self, run_id: str) -> Path:
        """Where a run's SCF checkpoints live."""
        return self.run_dir(run_id) / "checkpoint"

    def stream(self, run_id: str) -> EventStream:
        """The run's event stream."""
        return EventStream(self.run_dir(run_id), lock_timeout=self.lock_timeout)

    def _root_lock(self) -> FileLock:
        return FileLock(self.root / ROOT_LOCK_NAME, timeout=self.lock_timeout)

    # -- write side ----------------------------------------------------
    def submit(self, spec: dict, client: str = "anonymous") -> SubmitReceipt:
        """Submit a problem, deduplicating on its signature.

        Under the store root lock: if the signature is already
        registered, append an ``attached`` event to the existing run's
        stream and report ``attached=True``; otherwise create the run
        directory, persist ``spec.json``, append the ``submitted``
        event, and register the signature in the index — in that order,
        so a kill at any point leaves either a complete, indexed run or
        an unindexed directory the next identical submit simply reuses.

        Parameters
        ----------
        spec:
            Problem spec (see :func:`repro.store.dedup.canonical_spec`).
        client:
            Free-form client label recorded in the event.

        Returns
        -------
        SubmitReceipt
        """
        spec = canonical_spec(spec)
        signature = problem_signature(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        with self._root_lock():
            index = StoreIndex(self.root)
            existing = index.lookup(signature)
            if existing is not None:
                self.stream(existing).append(
                    "attached", {"client": client, "signature": signature}
                )
                return SubmitReceipt(
                    run_id=existing, signature=signature, attached=True
                )
            run_id = f"run-{signature[:16]}"
            rdir = self.run_dir(run_id)
            rdir.mkdir(parents=True, exist_ok=True)
            write_text_atomic(
                rdir / SPEC_NAME,
                json.dumps(spec, indent=2, sort_keys=True) + "\n",
            )
            self.stream(run_id).append(
                "submitted", {"client": client, "signature": signature}
            )
            index.register(run_id, signature, ts=time.time())
            return SubmitReceipt(run_id=run_id, signature=signature, attached=False)

    # -- read side -----------------------------------------------------
    def run_ids(self) -> list[str]:
        """All known runs, oldest first."""
        return StoreIndex(self.root).run_ids()

    def spec(self, run_id: str) -> dict:
        """A run's persisted canonical spec."""
        return json.loads((self.run_dir(run_id) / SPEC_NAME).read_text())

    def read_head(self, run_id: str) -> dict:
        """The run's folded status snapshot — never touches payloads."""
        return self.stream(run_id).read_head()

    def events(self, run_id: str, since_seq: int = 0) -> list[Event]:
        """The run's events with ``seq >= since_seq``."""
        return self.stream(run_id).replay(since_seq=since_seq)

    def pending_runs(self) -> list[str]:
        """Runs whose streams are not terminal — the daemon's restart queue."""
        return [
            run_id
            for run_id in self.run_ids()
            if self.read_head(run_id)["status"] not in TERMINAL_KINDS
        ]

    def result(self, run_id: str) -> dict | None:
        """A finished run's result arrays + scalars, or None if still going.

        Returns
        -------
        dict | None
            ``{"density": ndarray, "potential": ndarray, "energy": float,
            "converged": bool, "iterations": int}`` loaded from the
            ``converged`` event's payload; None while the run is not
            terminal; raises on a ``failed`` run.
        """
        stream = self.stream(run_id)
        head = stream.read_head()
        if head["status"] == "failed":
            raise RuntimeError(f"run {run_id} failed: {head.get('error')}")
        if head["status"] != "converged" or head.get("result_payload") is None:
            return None
        event = Event(
            seq=int(head["seq"]),
            kind="converged",
            ts=float(head.get("updated_ts", 0.0)),
            data={},
            payload=head["result_payload"],
        )
        arrays = stream.load_payload(event)
        return {
            "density": arrays["density"],
            "potential": arrays["potential"],
            "energy": float(np.asarray(arrays["energy"])),
            "converged": bool(head.get("converged", True)),
            "iterations": int(head.get("iteration", 0)),
        }
