"""Advisory file locks for the run store's concurrent writers.

Appends to one run's event stream — and registrations in the store-wide
index — can come from several processes at once (two clients submitting,
a daemon resuming, a test battery hammering one stream on purpose).
:class:`FileLock` serialises them with an OS advisory lock
(``fcntl.flock`` where available, an ``O_EXCL`` spin-lock fallback
elsewhere): cheap, crash-safe (the OS drops a dead holder's flock
automatically), and honoured across processes on one host — the same
trust model as the checkpoint directory itself.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # pragma: no cover - import guard for non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback path
    fcntl = None

__all__ = ["FileLock", "LockTimeoutError"]


class LockTimeoutError(TimeoutError):
    """The lock's holder did not release it within the acquire timeout."""


class FileLock:
    """Exclusive advisory lock on a sidecar file, usable as a context manager.

    Parameters
    ----------
    path:
        The lock file (created on first use; its *content* is never
        read — only the OS lock on it matters).
    timeout:
        Seconds to wait for the holder before raising
        :class:`LockTimeoutError`.
    poll_interval:
        Sleep between acquisition attempts.

    Notes
    -----
    With ``fcntl`` the lock dies with its holder — a ``kill -9``'d
    writer never wedges the store.  The ``O_EXCL`` fallback (non-POSIX
    platforms only) is best effort: a stale lock file older than
    ``stale_after`` seconds is broken.
    """

    def __init__(
        self,
        path: str | Path,
        timeout: float = 30.0,
        poll_interval: float = 0.01,
        stale_after: float = 300.0,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_after = float(stale_after)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._fd is not None

    def acquire(self) -> "FileLock":
        """Block (up to ``timeout``) until the lock is exclusively held."""
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held by this object")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        if fcntl is not None:
            fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise LockTimeoutError(
                            f"could not acquire {self.path} within "
                            f"{self.timeout:.1f}s"
                        ) from None
                    time.sleep(self.poll_interval)
        # O_EXCL fallback: create-exclusive spin lock with staleness break.
        while True:  # pragma: no cover - non-POSIX platforms only
            try:
                fd = os.open(
                    str(self.path), os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
                self._fd = fd
                return self
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > self.stale_after:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                if time.monotonic() >= deadline:
                    raise LockTimeoutError(
                        f"could not acquire {self.path} within {self.timeout:.1f}s"
                    ) from None
                time.sleep(self.poll_interval)

    def release(self) -> None:
        """Release the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - release is best effort
                pass
            os.close(fd)
        else:  # pragma: no cover - non-POSIX platforms only
            os.close(fd)
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
