"""One run's append-only event stream, crash-safe and multi-writer-safe.

A stream is a directory::

    <run_dir>/
        events.log        # newline-framed checksummed records (events.py)
        head.json         # snapshot index: O(1) catch-up state
        stream.lock       # FileLock serialising writers
        payload-NNNNNN.npz  # sidecar arrays (one per payload-carrying event)

Durability ladder (the ``write_npz_atomic`` discipline applied to a
log): payload ``.npz`` files are written atomically *before* the event
that references them; the record append is flushed and fsynced; the
log's creation fsyncs the directory; and ``head.json`` is replaced
atomically after the append it describes.  A kill at any byte leaves
either a fully valid log, or a valid log plus a *torn tail* that replay
ignores and the next locked append truncates away — never a lie.

``head.json`` is the snapshot index: the folded state of every event up
to a byte ``offset`` into the log.  :meth:`EventStream.read_head` reads
it and folds only the (typically zero) records past the offset, so a
``status`` query is O(1) in the run's history and never opens a
payload ``.npz``.

Fault injection follows the :mod:`repro.parallel.faults` style: an
:class:`AppendFaultPlan` attached to a stream kills configured appends
after a configured number of bytes — deterministically, so the crash
battery in ``tests/test_store.py`` replays exactly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.io.gridio import fsync_directory, write_npz_atomic, write_text_atomic
from repro.store.events import (
    TERMINAL_KINDS,
    Event,
    TornRecordError,
    decode_record,
    encode_record,
)
from repro.store.lock import FileLock

__all__ = [
    "AppendFaultPlan",
    "EventStream",
    "KilledAppend",
    "StoreCorruptionError",
    "fold_head",
]

LOG_NAME = "events.log"
HEAD_NAME = "head.json"
LOCK_NAME = "stream.lock"


class StoreCorruptionError(RuntimeError):
    """Invalid record bytes *before* the tail: real corruption, not a crash.

    A kill mid-append can only tear the final record; broken framing
    followed by more records means the log was damaged some other way,
    and replay refuses to guess.
    """


class KilledAppend(RuntimeError):
    """Raised by :class:`AppendFaultPlan` to simulate death mid-append."""


@dataclass
class AppendFaultPlan:
    """What goes wrong, and exactly when (by append sequence number).

    Attributes
    ----------
    torn_at:
        Event ``seq`` -> number of record bytes actually written before
        the simulated kill (0 = the process died before any byte
        landed).  The append writes exactly that prefix, fsyncs it, and
        raises :class:`KilledAppend` — the on-disk state is byte-for-
        byte what a real ``kill -9`` at that point leaves behind.
    skip_head_update_at:
        Event ``seq`` values whose append writes the full record but
        dies *before* the ``head.json`` snapshot update — the
        stale-snapshot crash window, which catch-up must absorb.
    """

    torn_at: Mapping[int, int] = field(default_factory=dict)
    skip_head_update_at: tuple = ()

    def bytes_before_kill(self, seq: int) -> int | None:
        """Bytes to write for ``seq`` before dying, or None for no fault."""
        value = self.torn_at.get(int(seq))
        return None if value is None else int(value)

    def kills_head_update(self, seq: int) -> bool:
        """Whether the ``seq`` append dies between log append and head write."""
        return int(seq) in self.skip_head_update_at


def _empty_head() -> dict:
    return {
        "format": "repro-run-head",
        "seq": -1,
        "offset": 0,
        "status": "empty",
        "kind": None,
        "clients": 0,
        "solves": 0,
        "iteration": 0,
        "checkpointed_iteration": 0,
        "potential_difference": None,
        "energy": None,
        "converged": None,
        "result_payload": None,
        "error": None,
        "updated_ts": 0.0,
    }


def fold_head(head: dict, event: Event, offset: int) -> dict:
    """Fold one event into the snapshot-index state (pure function).

    Parameters
    ----------
    head:
        The state before the event (not mutated).
    event:
        The event to fold.
    offset:
        Byte offset just past the event's record in the log.

    Returns
    -------
    dict
        The updated head: latest ``seq``/``offset``, the derived
        lifecycle ``status``, client/solve counters, last iteration
        metrics, and the terminal result payload reference — everything
        a ``status`` query needs, none of it requiring a payload read.
    """
    out = dict(head)
    out["seq"] = event.seq
    out["offset"] = int(offset)
    out["kind"] = event.kind
    out["updated_ts"] = event.ts
    if event.kind == "submitted":
        out["status"] = "submitted"
        out["clients"] = out.get("clients", 0) + 1
    elif event.kind == "attached":
        out["clients"] = out.get("clients", 0) + 1
    elif event.kind == "scheduled":
        out["status"] = "scheduled"
        if not event.data.get("resumed", False):
            out["solves"] = out.get("solves", 0) + 1
    elif event.kind == "iteration":
        out["status"] = "running"
        out["iteration"] = int(event.data.get("iteration", out.get("iteration", 0)))
        out["potential_difference"] = event.data.get("potential_difference")
        out["energy"] = event.data.get("energy")
    elif event.kind == "checkpointed":
        out["status"] = "running"
        out["checkpointed_iteration"] = int(
            event.data.get("iteration", out.get("checkpointed_iteration", 0))
        )
    elif event.kind == "converged":
        out["status"] = "converged"
        out["converged"] = bool(event.data.get("converged", True))
        out["iteration"] = int(event.data.get("iterations", out.get("iteration", 0)))
        out["energy"] = event.data.get("energy", out.get("energy"))
        out["result_payload"] = event.payload
    elif event.kind == "failed":
        out["status"] = "failed"
        out["error"] = event.data.get("error")
    return out


class EventStream:
    """Append-only, crash-safe event log of one run.

    Parameters
    ----------
    run_dir:
        The run's directory (created on first append).
    lock_timeout:
        Seconds an append waits for a competing writer.
    fault_plan:
        Optional :class:`AppendFaultPlan` for the crash test battery.
    """

    def __init__(
        self,
        run_dir: str | Path,
        lock_timeout: float = 30.0,
        fault_plan: AppendFaultPlan | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.lock_timeout = float(lock_timeout)
        self.fault_plan = fault_plan

    # -- paths ---------------------------------------------------------
    @property
    def log_path(self) -> Path:
        """The record log file."""
        return self.run_dir / LOG_NAME

    @property
    def head_path(self) -> Path:
        """The snapshot-index file."""
        return self.run_dir / HEAD_NAME

    def _lock(self) -> FileLock:
        return FileLock(self.run_dir / LOCK_NAME, timeout=self.lock_timeout)

    def payload_path(self, name: str) -> Path:
        """Absolute path of a payload file named by an event."""
        return self.run_dir / name

    # -- write side ----------------------------------------------------
    def append(
        self,
        kind: str,
        data: dict | None = None,
        payload_arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Event:
        """Append one event under the stream's file lock.

        The append is serialised against every other writer (thread or
        process) by ``stream.lock``; inside the lock it first heals any
        torn tail a killed writer left (truncating to the last valid
        record), assigns the next contiguous ``seq``, writes the payload
        sidecar (if any) atomically, appends + fsyncs the record, and
        atomically replaces the ``head.json`` snapshot.

        Parameters
        ----------
        kind:
            Event kind (see :data:`repro.store.events.EVENT_KINDS`).
        data:
            Small JSON-serialisable mapping.
        payload_arrays:
            Optional bulk arrays; written to ``payload-<seq>.npz`` via
            :func:`repro.io.gridio.write_npz_atomic` and referenced by
            filename from the event.

        Returns
        -------
        Event
            The appended event (with its assigned ``seq``).
        """
        self.run_dir.mkdir(parents=True, exist_ok=True)
        with self._lock():
            head, _ = self._recover_locked()
            seq = int(head["seq"]) + 1
            payload_name = None
            if payload_arrays is not None:
                payload_name = f"payload-{seq:06d}.npz"
                write_npz_atomic(self.payload_path(payload_name), **payload_arrays)
            event = Event(
                seq=seq,
                kind=str(kind),
                ts=time.time(),
                data=dict(data or {}),
                payload=payload_name,
            )
            record = encode_record(event)
            created = not self.log_path.exists()
            kill_after = (
                self.fault_plan.bytes_before_kill(seq)
                if self.fault_plan is not None
                else None
            )
            with open(self.log_path, "ab") as handle:
                if kill_after is not None:
                    handle.write(record[:kill_after])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise KilledAppend(
                        f"injected kill after {kill_after} of {len(record)} "
                        f"bytes of event seq {seq}"
                    )
                handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
                offset = handle.tell()
            if created:
                fsync_directory(self.run_dir)
            if self.fault_plan is not None and self.fault_plan.kills_head_update(seq):
                raise KilledAppend(
                    f"injected kill before the head update of event seq {seq}"
                )
            head = fold_head(head, event, offset)
            write_text_atomic(
                self.head_path, json.dumps(head, indent=2, sort_keys=True) + "\n"
            )
            return event

    def _recover_locked(self) -> tuple[dict, list[Event]]:
        """Heal the log under the held lock; return the up-to-date head.

        Scans the records past the snapshot's verified ``offset``; a
        torn tail (the signature of a killed append) is truncated away,
        and any events a crashed writer appended without updating the
        snapshot are folded in.  Returns ``(head, tail_events)``.
        """
        head = self._load_snapshot()
        if not self.log_path.exists():
            return head, []
        with open(self.log_path, "rb") as handle:
            handle.seek(int(head["offset"]))
            tail = handle.read()
        events, valid, torn = _scan_records(tail, int(head["seq"]) + 1)
        offset = int(head["offset"])
        for event, end in zip(events, valid):
            head = fold_head(head, event, offset + end)
        if torn:
            # Truncate the torn bytes: the killed append never happened.
            with open(self.log_path, "rb+") as handle:
                handle.truncate(offset + (valid[-1] if valid else 0))
                handle.flush()
                os.fsync(handle.fileno())
        return head, events

    # -- read side -----------------------------------------------------
    def _load_snapshot(self) -> dict:
        if not self.head_path.is_file():
            return _empty_head()
        try:
            head = json.loads(self.head_path.read_text())
        except (OSError, json.JSONDecodeError):  # pragma: no cover - torn head
            return _empty_head()
        if head.get("format") != "repro-run-head":
            return _empty_head()
        return head

    def read_head(self) -> dict:
        """The run's current folded state — O(1), zero payload reads.

        Reads ``head.json`` and folds only the records the snapshot has
        not seen yet (normally none; bounded by the events of a single
        crashed append window).  Purely a read: the log is never
        truncated or rewritten, no lock is taken, and no payload
        ``.npz`` is ever opened.
        """
        head = self._load_snapshot()
        if not self.log_path.exists():
            return head
        size = self.log_path.stat().st_size
        if size <= int(head["offset"]):
            return head
        with open(self.log_path, "rb") as handle:
            handle.seek(int(head["offset"]))
            tail = handle.read()
        events, valid, _torn = _scan_records(tail, int(head["seq"]) + 1)
        offset = int(head["offset"])
        for event, end in zip(events, valid):
            head = fold_head(head, event, offset + end)
        return head

    def replay(self, since_seq: int = 0) -> list[Event]:
        """All valid events with ``seq >= since_seq``, torn tail ignored."""
        if not self.log_path.exists():
            return []
        raw = self.log_path.read_bytes()
        events, _valid, _torn = _scan_records(raw, 0)
        return [e for e in events if e.seq >= int(since_seq)]

    def last_event(self) -> Event | None:
        """The newest valid event, or None on an empty stream."""
        events = self.replay()
        return events[-1] if events else None

    def is_terminal(self) -> bool:
        """Whether the run has converged or failed."""
        return self.read_head()["status"] in TERMINAL_KINDS

    def load_payload(self, event: Event) -> dict[str, np.ndarray]:
        """Materialise an event's sidecar arrays.

        Parameters
        ----------
        event:
            An event whose ``payload`` names a sidecar ``.npz``.

        Returns
        -------
        dict[str, np.ndarray]
            The stored arrays.
        """
        if event.payload is None:
            raise ValueError(f"event seq {event.seq} carries no payload")
        with np.load(self.payload_path(event.payload)) as payload:
            return {name: payload[name] for name in payload.files}


def _scan_records(
    raw: bytes, first_seq: int
) -> tuple[list[Event], list[int], bool]:
    """Decode a byte run of records, tolerating only a torn tail.

    Parameters
    ----------
    raw:
        Record bytes starting at a record boundary.
    first_seq:
        The ``seq`` the first record must carry (contiguity check).

    Returns
    -------
    tuple
        ``(events, end_offsets, torn)`` — the valid events, each one's
        end offset relative to ``raw``, and whether torn tail bytes
        follow them.

    Raises
    ------
    StoreCorruptionError
        Invalid bytes *followed by* further newline-terminated data, or
        a sequence-number discontinuity — damage no crash can explain.
    """
    events: list[Event] = []
    ends: list[int] = []
    pos = 0
    expected = int(first_seq)
    while pos < len(raw):
        newline = raw.find(b"\n", pos)
        if newline < 0:
            return events, ends, True  # torn tail: no newline
        line = raw[pos : newline + 1]
        try:
            event = decode_record(line)
        except TornRecordError as exc:
            if newline + 1 >= len(raw):
                return events, ends, True  # torn tail: last line invalid
            raise StoreCorruptionError(
                f"invalid record at byte {pos} followed by further data: {exc}"
            ) from exc
        if event.seq != expected:
            raise StoreCorruptionError(
                f"record at byte {pos} carries seq {event.seq}, expected "
                f"{expected} (lost or duplicated append)"
            )
        events.append(event)
        ends.append(newline + 1)
        pos = newline + 1
        expected += 1
    return events, ends, False
