"""Kohn-Sham Hamiltonian in the plane-wave basis (dual-space application).

H = -1/2 nabla^2 + V_eff(r) + V_NL, applied to a *block* of bands at once:

* kinetic term: diagonal |G|^2/2 multiplication in reciprocal space;
* local effective potential (ionic local + Hartree + XC + LS3DF passivation
  potential): FFT each band to real space, multiply, FFT back;
* nonlocal Kleinman-Bylander term: two matrix-matrix multiplications with
  the projector matrix (the BLAS-3 structure from the paper's all-band
  optimisation).

The class also exposes a dense-matrix builder used by tests and by the
exact-diagonalization reference solver on tiny fragments.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.atoms.structure import Structure
from repro.pw import fftcache
from repro.pw.basis import PlaneWaveBasis
from repro.pw.pseudopotential import PseudopotentialSet


def default_nonlocal_block() -> int:
    """Column-block size of the fixed-shape nonlocal kernel (PR 6).

    ``REPRO_NONLOCAL_BLOCK`` overrides the default of 8; ``0`` disables
    blocking and restores the seed's single variable-shape GEMM pair
    (which is *not* row-slice stable — see :meth:`Hamiltonian.add_nonlocal`).
    """
    try:
        return int(os.environ.get("REPRO_NONLOCAL_BLOCK", "8"))
    except ValueError:
        return 8


@dataclass
class ApplyCounter:
    """Counts Hamiltonian applications and FFTs for performance accounting.

    Updates go through :meth:`add` under a lock: the band-sliced
    eigensolver's thread backend applies slices of one band block on the
    *same* Hamiltonian concurrently, and bare ``+=`` read-modify-writes
    would lose increments.
    """

    n_apply: int = 0
    n_fft: int = 0
    n_projector_flops: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self, n_apply: int = 0, n_fft: int = 0, n_projector_flops: float = 0.0
    ) -> None:
        """Atomically accumulate application/FFT/flop counts."""
        with self._lock:
            self.n_apply += n_apply
            self.n_fft += n_fft
            self.n_projector_flops += n_projector_flops

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.n_apply = 0
            self.n_fft = 0
            self.n_projector_flops = 0.0


class Hamiltonian:
    """Plane-wave Kohn-Sham Hamiltonian for one periodic cell or fragment.

    Parameters
    ----------
    basis:
        Plane-wave basis (defines the grid and the kinetic diagonal).
    local_potential:
        Real-space local potential on ``basis.grid`` (ionic local +
        passivation potential).  The *screening* parts (Hartree + XC) are
        added separately via :meth:`set_effective_potential` so the SCF
        loop can update them cheaply.
    projectors, projector_strengths:
        Kleinman-Bylander projectors ``(nproj, npw)`` and strengths
        ``(nproj,)``; pass empty arrays for a purely local Hamiltonian.
    """

    def __init__(
        self,
        basis: PlaneWaveBasis,
        local_potential: np.ndarray,
        projectors: np.ndarray | None = None,
        projector_strengths: np.ndarray | None = None,
    ) -> None:
        if local_potential.shape != basis.grid.shape:
            raise ValueError("local potential shape does not match grid")
        self.basis = basis
        self.v_ionic = np.asarray(local_potential, dtype=float)
        self.v_screening = np.zeros_like(self.v_ionic)
        if projectors is None:
            projectors = np.zeros((0, basis.npw), dtype=complex)
        if projector_strengths is None:
            projector_strengths = np.zeros(0)
        projectors = np.asarray(projectors, dtype=complex)
        projector_strengths = np.asarray(projector_strengths, dtype=float)
        if projectors.shape[0] != projector_strengths.shape[0]:
            raise ValueError("projector count mismatch")
        if projectors.size and projectors.shape[1] != basis.npw:
            raise ValueError("projector length must equal npw")
        self.projectors = projectors
        self.projector_strengths = projector_strengths
        self.counter = ApplyCounter()
        self.nonlocal_block = default_nonlocal_block()
        self._projectors_conj: np.ndarray | None = None
        self._projectors_t: np.ndarray | None = None
        self._default_preconditioner: np.ndarray | None = None

    # -- construction ----------------------------------------------------
    @classmethod
    def from_structure(
        cls,
        structure: Structure,
        basis: PlaneWaveBasis,
        pseudopotentials: PseudopotentialSet,
        extra_local_potential: np.ndarray | None = None,
    ) -> "Hamiltonian":
        """Build the ionic Hamiltonian for a structure (no screening yet)."""
        v_loc = pseudopotentials.local_potential(structure, basis.grid)
        if extra_local_potential is not None:
            if extra_local_potential.shape != basis.grid.shape:
                raise ValueError("extra potential shape mismatch")
            v_loc = v_loc + extra_local_potential
        proj, strength = pseudopotentials.nonlocal_projectors(structure, basis)
        return cls(basis, v_loc, proj, strength)

    # -- potential management -----------------------------------------------
    @property
    def nproj(self) -> int:
        return self.projectors.shape[0]

    def set_effective_potential(self, v_screening: np.ndarray) -> None:
        """Set the screening (Hartree + XC) part of the local potential."""
        if v_screening.shape != self.basis.grid.shape:
            raise ValueError("screening potential shape mismatch")
        self.v_screening = np.asarray(v_screening, dtype=float)

    def set_total_local_potential(self, v_total: np.ndarray) -> None:
        """Set the *total* local potential directly (LS3DF Gen_VF path).

        In LS3DF the fragment receives the global input potential restricted
        to its box plus the fixed passivation correction; in that mode the
        Hamiltonian does not recompute Hartree/XC itself.
        """
        if v_total.shape != self.basis.grid.shape:
            raise ValueError("potential shape mismatch")
        self.v_ionic = np.asarray(v_total, dtype=float)
        self.v_screening = np.zeros_like(self.v_ionic)

    @property
    def local_potential(self) -> np.ndarray:
        """Current total local potential (ionic + screening)."""
        return self.v_ionic + self.v_screening

    # -- application ---------------------------------------------------------
    def apply_local(self, coefficients: np.ndarray) -> np.ndarray:
        """Kinetic + local-potential part of H on a band block ``(m, npw)``.

        This is the dual-space (FFT-heavy) share of :meth:`apply`, and it is
        *row-independent bit for bit*: every output row depends only on the
        matching input row through elementwise products and per-band FFTs
        (numpy's batched pocketfft transforms each band identically no
        matter how the leading axis is batched — the same verified property
        the slab-distributed FFT of :mod:`repro.parallel.distributed` rests
        on).  The band-sliced eigensolver
        (:mod:`repro.parallel.bands`) therefore ships row slices of a band
        block through this kernel on worker threads/processes and
        concatenates the outputs, bit-identical to one full-block call.
        """
        c = np.asarray(coefficients, dtype=complex)
        if c.ndim != 2 or c.shape[1] != self.basis.npw:
            raise ValueError("coefficient length must equal npw")
        nbands = c.shape[0]

        # Kinetic: diagonal in G.
        out = c * self.basis.kinetic[None, :]

        # Local potential: FFT to real space, multiply, FFT back — through
        # pooled workspace buffers (repro.pw.fftcache): identical operations
        # on reused memory, bit-identical to the allocating path.
        shape = (nbands,) + self.basis.grid.shape
        with fftcache.scratch(shape) as w1, fftcache.scratch(shape) as w2:
            psi_r = self.basis.to_real_space(c, out=w2, work=w1)
            psi_r *= self.local_potential[None, :, :, :]
            out += self.basis.from_real_space(psi_r, work=w1)
        self.counter.add(n_fft=2 * nbands)
        return out

    def add_nonlocal(
        self, out: np.ndarray, coefficients: np.ndarray, band_offset: int = 0
    ) -> np.ndarray:
        """Add the nonlocal KB term of a band block to ``out`` (in place).

        Blocked fixed-shape kernel (PR 6).  Bands are pushed through the
        two projection GEMMs in column blocks of exactly
        ``self.nonlocal_block`` columns, aligned to the *global* band index
        ``band_offset + i``; columns the call does not own are zero-filled.
        A BLAS GEMM output column depends only on its own input column once
        the operand shapes and the column position are fixed (verified
        property, ``tests/test_kernel_pack.py`` — the GEMM analogue of the
        batched-pocketfft property ``apply_local`` rests on), so every
        band's result is bit-identical no matter how the block is sliced
        across workers.  The band-sliced eigensolver therefore runs this
        term inside band slices (``band_offset = slice.lo``) instead of on
        the group root.  ``nonlocal_block = 0`` restores the seed's single
        variable-shape GEMM pair, which is *not* row-slice stable.
        """
        if not self.nproj:
            return out
        c = coefficients
        m = c.shape[0]
        strengths = self.projector_strengths[:, None]
        if self._projectors_conj is None:
            self._projectors_conj = self.projectors.conj()
        if self._projectors_t is None:
            # ``projectors.T`` is an F-contiguous view; BLAS then runs the
            # back-projection GEMM in transposed mode.  Cache a C-contiguous
            # copy once so both GEMM operands are contiguous (the ROADMAP
            # "below numpy" item; measured by tools/profile_hot_paths.py).
            self._projectors_t = np.ascontiguousarray(self.projectors.T)
        projectors_t = self._projectors_t
        blk = int(self.nonlocal_block or 0)
        if blk <= 0:
            beta = self._projectors_conj @ c.T  # (nproj, nbands)
            out += (projectors_t @ (strengths * beta)).T
        elif m:
            npw = self.basis.npw
            cblk = np.empty((npw, blk), dtype=complex)
            first = band_offset // blk
            last = (band_offset + m - 1) // blk
            for k in range(first, last + 1):
                g_lo = max(band_offset, k * blk)
                g_hi = min(band_offset + m, (k + 1) * blk)
                cols = slice(g_lo - k * blk, g_hi - k * blk)
                rows = slice(g_lo - band_offset, g_hi - band_offset)
                if g_hi - g_lo < blk:
                    cblk.fill(0)
                cblk[:, cols] = c[rows].T
                beta = self._projectors_conj @ cblk  # (nproj, blk)
                nl = projectors_t @ (strengths * beta)  # (npw, blk)
                out[rows] += nl[:, cols].T
        self.counter.add(
            n_projector_flops=16.0 * self.nproj * self.basis.npw * m
        )
        return out

    def apply(self, coefficients: np.ndarray) -> np.ndarray:
        """Apply H to a block of band coefficients ``(nbands, npw)``.

        Accepts a single vector ``(npw,)`` as well.  Exactly
        :meth:`apply_local` followed by :meth:`add_nonlocal` — the split the
        band-sliced eigensolver distributes.
        """
        c = np.asarray(coefficients, dtype=complex)
        single = c.ndim == 1
        if single:
            c = c[None, :]
        out = self.add_nonlocal(self.apply_local(c), c)
        self.counter.add(n_apply=c.shape[0])
        return out[0] if single else out

    def expectation(self, coefficients: np.ndarray) -> np.ndarray:
        """Diagonal expectation values <psi_i|H|psi_i> for a band block."""
        c = np.atleast_2d(np.asarray(coefficients, dtype=complex))
        hc = self.apply(c)
        return np.real(np.einsum("ij,ij->i", c.conj(), hc))

    def subspace_matrix(self, coefficients: np.ndarray) -> np.ndarray:
        """Subspace (Rayleigh-Ritz) matrix  C H C^H  for a band block."""
        c = np.atleast_2d(np.asarray(coefficients, dtype=complex))
        hc = self.apply(c)
        return c.conj() @ hc.T

    # -- dense reference -------------------------------------------------------
    def dense_matrix(self) -> np.ndarray:
        """Build the full (npw x npw) Hamiltonian matrix.

        Only sensible for small bases (tests, exact reference); cost and
        memory are O(npw^2).
        """
        npw = self.basis.npw
        if npw > 4000:
            raise MemoryError("dense Hamiltonian requested for npw > 4000")
        h = np.zeros((npw, npw), dtype=complex)
        identity = np.eye(npw, dtype=complex)
        # Column-by-column application in blocks to bound memory.
        block = 256
        for start in range(0, npw, block):
            stop = min(npw, start + block)
            h[:, start:stop] = self.apply(identity[start:stop]).T
        # Enforce exact hermiticity against round-off.
        return 0.5 * (h + h.conj().T)

    # -- preconditioner ----------------------------------------------------------
    def preconditioner(self, reference_kinetic: float | None = None) -> np.ndarray:
        """Diagonal TPA-style preconditioner for the CG eigensolvers.

        Returns a positive array ``(npw,)`` approximating (H - eps)^{-1}
        for low-lying states; larger kinetic energy components are damped.
        The default-reference array depends only on the basis, so it is
        computed once and cached — the band-sliced eigensolver requests
        it in every ``residual_precond`` worker task.
        """
        t = self.basis.kinetic
        if reference_kinetic is None:
            if self._default_preconditioner is None:
                def build() -> np.ndarray:
                    x = t / max(1.0, float(np.median(t)))
                    return 1.0 / (1.0 + x + x * x)

                # Shared (read-only) across every Hamiltonian on an equal
                # grid/cutoff — fragment re-instantiation hits the memo.
                self._default_preconditioner = self.basis.grid.memo(
                    ("default_preconditioner", self.basis.ecut), build
                )
            return self._default_preconditioner
        x = t / reference_kinetic
        return 1.0 / (1.0 + x + x * x)
