"""Iterative eigensolvers for the plane-wave Kohn-Sham problem.

Two solvers are provided, mirroring the paper's PEtot_F optimisation story:

* :func:`band_by_band_cg` — the original PEtot algorithm: solve one band at
  a time with preconditioned conjugate gradients, Gram-Schmidt
  orthogonalising against the already-converged bands.  Its inner products
  are matrix-vector (BLAS-2-like) operations.

* :func:`all_band_cg` — the optimised algorithm: iterate on the whole band
  block simultaneously, using an expanded subspace [X, W] (current block +
  preconditioned residuals), an overlap-matrix orthogonalisation and a
  Rayleigh-Ritz subspace diagonalisation.  All heavy operations are
  matrix-matrix (BLAS-3) products, which is exactly the change that took
  PEtot from 15% to ~56% of peak in the paper.

* :func:`exact_diagonalization` — dense reference for small fragments and
  for the test-suite's correctness checks.

:func:`all_band_cg` additionally accepts ``band_groups=`` — a band-parallel
worker group (:class:`repro.parallel.bands.BandGroup`) that distributes the
per-band heavy work (H·psi, preconditioned residuals) over executor
workers while the caller remains the serial group root for the dense
cross-band reductions; results are bit-identical for any slice count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pw.hamiltonian import Hamiltonian


@dataclass
class EigensolverResult:
    """Result of an iterative (or exact) diagonalisation.

    Attributes
    ----------
    eigenvalues:
        Band energies (Hartree), ascending, shape ``(nbands,)``.
    coefficients:
        Orthonormal band coefficients, shape ``(nbands, npw)``.
    residual_norms:
        Final residual norm per band.
    iterations:
        Number of outer iterations performed.
    converged:
        True when all residuals fell below the tolerance.
    history:
        Per-iteration maximum residual norm (diagnostics / tests of
        monotone convergence behaviour).
    """

    eigenvalues: np.ndarray
    coefficients: np.ndarray
    residual_norms: np.ndarray
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def _residuals(h: Hamiltonian, coeffs: np.ndarray, evals: np.ndarray) -> np.ndarray:
    return h.apply(coeffs) - evals[:, None] * coeffs


def exact_diagonalization(h: Hamiltonian, nbands: int) -> EigensolverResult:
    """Dense diagonalisation of the full plane-wave Hamiltonian.

    Intended for small bases only (tests and tiny fragments); cost is
    O(npw^3).
    """
    if nbands < 1 or nbands > h.basis.npw:
        raise ValueError("nbands out of range")
    mat = h.dense_matrix()
    evals, evecs = np.linalg.eigh(mat)
    coeffs = np.ascontiguousarray(evecs[:, :nbands].T)
    res = _residuals(h, coeffs, evals[:nbands])
    rn = np.linalg.norm(res, axis=1)
    return EigensolverResult(
        eigenvalues=evals[:nbands].copy(),
        coefficients=coeffs,
        residual_norms=rn,
        iterations=1,
        converged=True,
        history=[float(rn.max()) if nbands else 0.0],
    )


# ---------------------------------------------------------------------------
# All-band solver (BLAS-3): block iteration with Rayleigh-Ritz on [X, W]
# ---------------------------------------------------------------------------

def all_band_cg(
    h: Hamiltonian,
    nbands: int,
    initial: np.ndarray | None = None,
    max_iterations: int = 60,
    tolerance: float = 1e-6,
    rng: np.random.Generator | int | None = 0,
    band_groups=None,
) -> EigensolverResult:
    """All-band preconditioned block solver (LOBPCG-style without history).

    Parameters
    ----------
    h:
        Hamiltonian to diagonalise.
    nbands:
        Number of lowest eigenpairs wanted.
    initial:
        Optional starting coefficients ``(nbands, npw)``; reusing the
        previous SCF iteration's wavefunctions (as LS3DF does) makes each
        SCF step much cheaper.
    max_iterations:
        Maximum outer iterations.
    tolerance:
        Convergence threshold on the maximum residual 2-norm.
    rng:
        Seed/generator for the random start when ``initial`` is None.
    band_groups:
        Optional band-parallel worker group (duck-typed; canonically a
        :class:`repro.parallel.bands.BandGroup`).  When given, the heavy
        per-band work — H·psi applications and the preconditioned-residual
        line-search step — is delegated to its ``apply_h`` /
        ``residual_precond`` methods, which slice the band block over a
        worker group, while this function (the *group root*) keeps every
        cross-band dense reduction: Gram/overlap matrices, subspace
        rotations, Rayleigh-Ritz.  Results are bit-identical to the
        default in-process path for any slice count, because the sliced
        kernels are row-independent bit for bit
        (:meth:`repro.pw.hamiltonian.Hamiltonian.apply_local`) and the
        root-side algebra runs on full blocks of identical shape.  The
        default ``None`` keeps the single-worker path.

    Returns
    -------
    EigensolverResult
    """
    basis = h.basis
    if nbands < 1 or nbands > basis.npw // 2:
        raise ValueError(
            f"nbands={nbands} out of range for basis with {basis.npw} plane waves"
        )
    if initial is None:
        x = basis.random_coefficients(nbands, rng)
    else:
        x = basis.orthonormalize(np.asarray(initial, dtype=complex))
        if x.shape != (nbands, basis.npw):
            raise ValueError("initial coefficients have the wrong shape")

    precond = h.preconditioner()
    if band_groups is None:
        apply_h = h.apply

        def residual_precond(x, hx, evals):
            r = hx - evals[:, None] * x
            return r * precond[None, :], np.linalg.norm(r, axis=1)
    else:
        apply_h = band_groups.apply_h
        residual_precond = band_groups.residual_precond
    history: list[float] = []
    evals = np.zeros(nbands)
    converged = False
    it = 0
    p: np.ndarray | None = None  # LOBPCG-style search directions (history)
    for it in range(1, max_iterations + 1):
        hx = apply_h(x)
        # Rayleigh-Ritz within the current block first (keeps x H-orthogonal).
        hsub = x.conj() @ hx.T
        hsub = 0.5 * (hsub + hsub.conj().T)
        evals_sub, u = np.linalg.eigh(hsub)
        x = u.T @ x
        hx = u.T @ hx
        evals = evals_sub

        # Preconditioned residuals (per-band work: sliceable), then the
        # cross-band projection out of the current subspace (root work).
        w, rnorm = residual_precond(x, hx, evals)
        history.append(float(rnorm.max()))
        if rnorm.max() < tolerance:
            converged = True
            break

        w -= (w @ x.conj().T) @ x
        wnorm = np.linalg.norm(w, axis=1)
        keep = wnorm > 1e-14
        w = w[keep] / wnorm[keep, None]
        if w.shape[0] == 0:
            converged = rnorm.max() < tolerance
            break

        # Rayleigh-Ritz on the expanded subspace [x, w, p]  (the p block of
        # previous search directions gives LOBPCG-grade convergence while
        # keeping every heavy operation a matrix-matrix product).
        blocks = [x, w]
        if p is not None and p.shape[0]:
            q = p - (p @ x.conj().T) @ x
            q -= (q @ w.conj().T) @ w
            qnorm = np.linalg.norm(q, axis=1)
            keep_q = qnorm > 1e-10
            if np.any(keep_q):
                blocks.append(q[keep_q] / qnorm[keep_q, None])
        sub = np.vstack(blocks)
        overlap = sub @ sub.conj().T
        overlap = 0.5 * (overlap + overlap.conj().T)
        # Drop near-null directions for numerical safety.
        svals, svecs = np.linalg.eigh(overlap)
        good = svals > 1e-10
        trans = svecs[:, good] * (1.0 / np.sqrt(svals[good]))[None, :]
        sub_on = trans.conj().T @ sub
        hsub_big = sub_on.conj() @ apply_h(sub_on).T
        hsub_big = 0.5 * (hsub_big + hsub_big.conj().T)
        evals_big, u_big = np.linalg.eigh(hsub_big)
        x_new = u_big[:, :nbands].T @ sub_on
        # New search directions: the part of the update outside the old block.
        p = x_new - (x_new @ x.conj().T) @ x
        x = basis.orthonormalize(x_new)

    hx = apply_h(x)
    hsub = x.conj() @ hx.T
    hsub = 0.5 * (hsub + hsub.conj().T)
    evals, u = np.linalg.eigh(hsub)
    x = u.T @ x
    r = apply_h(x) - evals[:, None] * x
    rnorm = np.linalg.norm(r, axis=1)
    return EigensolverResult(
        eigenvalues=evals,
        coefficients=x,
        residual_norms=rnorm,
        iterations=it,
        converged=bool(converged or rnorm.max() < tolerance),
        history=history,
    )


# ---------------------------------------------------------------------------
# Band-by-band solver (BLAS-2): the pre-optimisation PEtot algorithm
# ---------------------------------------------------------------------------

def band_by_band_cg(
    h: Hamiltonian,
    nbands: int,
    initial: np.ndarray | None = None,
    max_iterations: int = 60,
    cg_steps_per_band: int = 5,
    tolerance: float = 1e-6,
    rng: np.random.Generator | int | None = 0,
) -> EigensolverResult:
    """Band-by-band preconditioned CG minimisation of the Rayleigh quotient.

    Each band is relaxed with a few CG steps while being Gram-Schmidt
    orthogonalised against all lower bands after every step — the memory-
    lean but BLAS-2-bound algorithm the paper replaced.  A final subspace
    rotation makes the output directly comparable to :func:`all_band_cg`.
    """
    basis = h.basis
    if nbands < 1 or nbands > basis.npw // 2:
        raise ValueError("nbands out of range")
    if initial is None:
        x = basis.random_coefficients(nbands, rng)
    else:
        x = basis.orthonormalize(np.asarray(initial, dtype=complex))

    precond = h.preconditioner()
    history: list[float] = []
    it = 0
    converged = False

    def _project_out(vec: np.ndarray, block: np.ndarray) -> np.ndarray:
        """Gram-Schmidt vec against the rows of block (one band at a time)."""
        for b in block:
            vec = vec - (b.conj() @ vec) * b
        return vec

    for it in range(1, max_iterations + 1):
        for band in range(nbands):
            c = x[band]
            prev_dir = None
            prev_gk = None
            for _ in range(cg_steps_per_band):
                c = _project_out(c, x[:band])
                c = c / np.linalg.norm(c)
                hc = h.apply(c)
                eps = np.real(c.conj() @ hc)
                g = hc - eps * c
                gk = g * precond
                gk = _project_out(gk, x[:band])
                gk -= (c.conj() @ gk) * c
                gamma = 0.0
                if prev_dir is not None and prev_gk is not None:
                    denom = np.real(np.vdot(prev_gk, prev_gk))
                    if denom > 1e-30:
                        gamma = np.real(np.vdot(gk, gk)) / denom
                d = -gk + gamma * (prev_dir if prev_dir is not None else 0.0)
                prev_dir, prev_gk = d, gk
                dn = np.linalg.norm(d)
                if dn < 1e-14:
                    break
                d = d / dn
                # Exact line minimisation on the 2D subspace span{c, d}.
                hd = h.apply(d)
                h11 = np.real(c.conj() @ hc)
                h22 = np.real(d.conj() @ hd)
                h12 = c.conj() @ hd
                theta_mat = np.array([[h11, h12], [np.conj(h12), h22]])
                evals2, evecs2 = np.linalg.eigh(theta_mat)
                a, b = evecs2[0, 0], evecs2[1, 0]
                c = a * c + b * d
                c = c / np.linalg.norm(c)
            x[band] = c
        # Subspace rotation (kept cheap: nbands x nbands) + residual check.
        x = basis.orthonormalize(x)
        hx = h.apply(x)
        hsub = x.conj() @ hx.T
        hsub = 0.5 * (hsub + hsub.conj().T)
        evals, u = np.linalg.eigh(hsub)
        x = u.T @ x
        hx = u.T @ hx
        r = hx - evals[:, None] * x
        rnorm = np.linalg.norm(r, axis=1)
        history.append(float(rnorm.max()))
        if rnorm.max() < tolerance:
            converged = True
            break

    return EigensolverResult(
        eigenvalues=evals,
        coefficients=x,
        residual_norms=rnorm,
        iterations=it,
        converged=converged,
        history=history,
    )
