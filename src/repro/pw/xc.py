"""Local density approximation (LDA) exchange-correlation.

Slater exchange plus Perdew-Zunger 1981 parametrisation of the Ceperley-
Alder correlation energy, spin-unpolarised.  Returns both the energy
density and the XC potential, which is what the Kohn-Sham Hamiltonian and
the total-energy functional need.
"""

from __future__ import annotations

import numpy as np

# Slater exchange constant: e_x(n) = -Cx * n^{1/3}
_CX = 0.75 * (3.0 / np.pi) ** (1.0 / 3.0)

# Perdew-Zunger correlation parameters (unpolarised).
_PZ_GAMMA = -0.1423
_PZ_BETA1 = 1.0529
_PZ_BETA2 = 0.3334
_PZ_A = 0.0311
_PZ_B = -0.048
_PZ_C = 0.0020
_PZ_D = -0.0116

_DENSITY_FLOOR = 1e-20


def _rs(density: np.ndarray) -> np.ndarray:
    """Wigner-Seitz radius r_s from the density."""
    n = np.maximum(density, _DENSITY_FLOOR)
    return (3.0 / (4.0 * np.pi * n)) ** (1.0 / 3.0)


def lda_exchange(density: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Slater exchange energy density per particle and potential.

    Returns ``(eps_x, v_x)`` where ``eps_x`` is the exchange energy per
    electron and ``v_x = d(n eps_x)/dn = 4/3 eps_x``.
    """
    n = np.maximum(np.asarray(density, dtype=float), 0.0)
    n13 = np.cbrt(np.maximum(n, _DENSITY_FLOOR))
    eps_x = -_CX * n13
    v_x = (4.0 / 3.0) * eps_x
    # Exactly zero where the density is (numerically) zero.
    zero = n <= _DENSITY_FLOOR
    eps_x = np.where(zero, 0.0, eps_x)
    v_x = np.where(zero, 0.0, v_x)
    return eps_x, v_x


def lda_correlation(density: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Perdew-Zunger 81 correlation energy per particle and potential."""
    n = np.maximum(np.asarray(density, dtype=float), 0.0)
    rs = _rs(n)
    eps_c = np.empty_like(rs)
    v_c = np.empty_like(rs)

    high = rs >= 1.0  # low-density branch
    low = ~high

    # rs >= 1 (Pade form)
    rs_h = rs[high]
    sq = np.sqrt(rs_h)
    denom = 1.0 + _PZ_BETA1 * sq + _PZ_BETA2 * rs_h
    ec_h = _PZ_GAMMA / denom
    # v_c = ec * (1 + 7/6 b1 sqrt(rs) + 4/3 b2 rs) / (1 + b1 sqrt(rs) + b2 rs)
    v_h = ec_h * (1.0 + (7.0 / 6.0) * _PZ_BETA1 * sq + (4.0 / 3.0) * _PZ_BETA2 * rs_h) / denom
    eps_c[high] = ec_h
    v_c[high] = v_h

    # rs < 1 (logarithmic form)
    rs_l = rs[low]
    ln = np.log(np.maximum(rs_l, 1e-30))
    ec_l = _PZ_A * ln + _PZ_B + _PZ_C * rs_l * ln + _PZ_D * rs_l
    v_l = (
        _PZ_A * ln
        + (_PZ_B - _PZ_A / 3.0)
        + (2.0 / 3.0) * _PZ_C * rs_l * ln
        + ((2.0 * _PZ_D - _PZ_C) / 3.0) * rs_l
    )
    eps_c[low] = ec_l
    v_c[low] = v_l

    zero = n <= _DENSITY_FLOOR
    eps_c = np.where(zero, 0.0, eps_c)
    v_c = np.where(zero, 0.0, v_c)
    return eps_c, v_c


def lda_xc(density: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Combined LDA exchange-correlation.

    Parameters
    ----------
    density:
        Electron density on the real-space grid (electrons / Bohr^3);
        negative values (from mixing overshoot) are clipped to zero.

    Returns
    -------
    eps_xc:
        Exchange-correlation energy per electron at each grid point.
    v_xc:
        Exchange-correlation potential at each grid point (Hartree).
    """
    eps_x, v_x = lda_exchange(density)
    eps_c, v_c = lda_correlation(density)
    return eps_x + eps_c, v_x + v_c


def xc_energy(density: np.ndarray, dvol: float) -> float:
    """Total XC energy  E_xc = integral n(r) eps_xc(n(r)) dr."""
    n = np.maximum(np.asarray(density, dtype=float), 0.0)
    eps_xc, _ = lda_xc(n)
    return float(np.sum(n * eps_xc) * dvol)
