"""Real-space / reciprocal-space FFT grids for orthorhombic cells.

The plane-wave method represents periodic fields (density, potentials) on a
regular real-space grid and applies kinetic/Poisson operators in reciprocal
space; the two representations are connected by FFTs.  The paper's runs use
a 40x40x40 (Franklin) or 32x32x32 (Intrepid) grid per eight-atom cell; this
reproduction uses smaller grids but the machinery is identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from repro.pw import fftcache

# -- cross-instance memo -------------------------------------------------------
# LS3DF instantiates one FFTGrid per fragment, but fragments of the same
# class share (cell, shape) — and everything derived from ``g2`` (Poisson
# masks, preconditioners, pseudopotential form factors) is then identical
# across those instances.  The memo below shares such arrays across *equal*
# grids so repeated fragment instantiation stops recomputing them.  Memoized
# ndarrays are frozen read-only because they are shared.
_MEMO_LOCK = threading.Lock()
_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
_MEMO_MAX = 512
_MEMO_STATS = {"hits": 0, "misses": 0}


def grid_memo_stats() -> dict:
    """Snapshot of the grid-memo hit/miss counters."""
    with _MEMO_LOCK:
        return dict(_MEMO_STATS, entries=len(_MEMO))


def clear_grid_memo() -> None:
    """Drop all memoized grid-derived arrays and zero the counters."""
    with _MEMO_LOCK:
        _MEMO.clear()
        _MEMO_STATS["hits"] = 0
        _MEMO_STATS["misses"] = 0


@dataclass(frozen=True)
class FFTGrid:
    """A regular FFT grid on an orthorhombic periodic cell.

    Parameters
    ----------
    cell:
        Orthorhombic cell edge lengths in Bohr, shape ``(3,)``.
    shape:
        Number of grid points along each axis, shape ``(3,)``.
    """

    cell: tuple[float, float, float]
    shape: tuple[int, int, int]

    def __init__(self, cell: Sequence[float], shape: Sequence[int]) -> None:
        cell_arr = tuple(float(c) for c in cell)
        shape_arr = tuple(int(s) for s in shape)
        if len(cell_arr) != 3 or any(c <= 0 for c in cell_arr):
            raise ValueError("cell must be three positive lengths")
        if len(shape_arr) != 3 or any(s < 2 for s in shape_arr):
            raise ValueError("shape must be three integers >= 2")
        object.__setattr__(self, "cell", cell_arr)
        object.__setattr__(self, "shape", shape_arr)

    # -- sizes -------------------------------------------------------------
    @property
    def npoints(self) -> int:
        """Total number of real-space grid points."""
        return int(np.prod(self.shape))

    @property
    def volume(self) -> float:
        """Cell volume (Bohr^3)."""
        return float(np.prod(self.cell))

    @property
    def dvol(self) -> float:
        """Volume element associated with one grid point (Bohr^3)."""
        return self.volume / self.npoints

    @property
    def spacing(self) -> np.ndarray:
        """Grid spacing along each axis (Bohr)."""
        return np.asarray(self.cell) / np.asarray(self.shape)

    # -- coordinates ---------------------------------------------------------
    @cached_property
    def real_coordinates(self) -> np.ndarray:
        """Cartesian coordinates of every grid point, shape ``(*shape, 3)``."""
        axes = [
            np.arange(n) * c / n for n, c in zip(self.shape, self.cell)
        ]
        xx, yy, zz = np.meshgrid(*axes, indexing="ij")
        return np.stack([xx, yy, zz], axis=-1)

    @cached_property
    def g_vectors(self) -> np.ndarray:
        """Reciprocal lattice vectors G on the FFT grid, shape ``(*shape, 3)``.

        Ordering matches ``numpy.fft.fftn`` frequencies.
        """
        axes = [
            2.0 * np.pi * np.fft.fftfreq(n, d=c / n)
            for n, c in zip(self.shape, self.cell)
        ]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        return np.stack([gx, gy, gz], axis=-1)

    @cached_property
    def g2(self) -> np.ndarray:
        """|G|^2 for every FFT-grid reciprocal vector, shape ``shape``."""
        g = self.g_vectors
        return np.einsum("...i,...i->...", g, g)

    @cached_property
    def gmax2(self) -> float:
        """Largest representable |G|^2 before aliasing (Nyquist sphere)."""
        gnyq = np.pi * np.asarray(self.shape) / np.asarray(self.cell)
        return float(np.min(gnyq) ** 2)

    # -- derived-array memo -----------------------------------------------------
    def memo(self, key, factory: Callable[[], object]):
        """Memoize a grid-derived value across *equal* grids.

        ``key`` must uniquely describe the derivation (include every extra
        parameter, e.g. an ``ecut``); the value is shared by every
        ``FFTGrid`` with the same ``(cell, shape)``, so returned ndarrays
        are frozen read-only.  Hot-path users: the Poisson nonzero mask,
        the default eigensolver preconditioner and the pseudopotential
        form factors.
        """
        full = (self.cell, self.shape, key)
        with _MEMO_LOCK:
            if full in _MEMO:
                _MEMO.move_to_end(full)
                _MEMO_STATS["hits"] += 1
                return _MEMO[full]
        value = factory()
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
        with _MEMO_LOCK:
            if full in _MEMO:
                _MEMO_STATS["hits"] += 1
            else:
                _MEMO[full] = value
                _MEMO_STATS["misses"] += 1
                while len(_MEMO) > _MEMO_MAX:
                    _MEMO.popitem(last=False)
            return _MEMO[full]

    # -- transforms -----------------------------------------------------------
    def to_reciprocal(self, field_r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Forward FFT of a real-space field (convention: plain ``fftn``).

        ``out`` may be a workspace buffer from :mod:`repro.pw.fftcache`;
        results are bit-identical with or without it.
        """
        if field_r.shape != self.shape:
            raise ValueError(f"field shape {field_r.shape} != grid shape {self.shape}")
        return fftcache.fftn(field_r, out=out)

    def to_real(self, field_g: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Inverse FFT back to real space."""
        if field_g.shape != self.shape:
            raise ValueError(f"field shape {field_g.shape} != grid shape {self.shape}")
        return fftcache.ifftn(field_g, out=out)

    # -- reductions -----------------------------------------------------------
    def integrate(self, field_r: np.ndarray) -> float | complex:
        """Integrate a real-space field over the cell (trapezoid-free: the
        grid is uniform and periodic, so the sum times ``dvol`` is spectrally
        accurate for band-limited fields)."""
        if field_r.shape != self.shape:
            raise ValueError("field shape mismatch")
        total = np.sum(field_r) * self.dvol
        if np.iscomplexobj(field_r):
            return complex(total)
        return float(total)

    def inner_product(self, f: np.ndarray, g: np.ndarray) -> complex:
        """<f|g> = integral conj(f) g dr on the real-space grid."""
        return complex(np.vdot(f, g) * self.dvol)

    # -- construction helpers -------------------------------------------------
    @classmethod
    def for_structure(
        cls,
        cell: Sequence[float],
        points_per_bohr: float = 2.0,
        even: bool = True,
    ) -> "FFTGrid":
        """Choose a grid shape from a target real-space resolution.

        Parameters
        ----------
        cell:
            Orthorhombic cell (Bohr).
        points_per_bohr:
            Grid density.  The paper's 40-point grid on an ~11.5 Bohr cell
            corresponds to ~3.5 points/Bohr; model runs use ~1.5-2.
        even:
            Round the grid size up to an even number (faster FFTs, and the
            fragment grids then always divide evenly).
        """
        shape = []
        for c in cell:
            n = max(4, int(np.ceil(c * points_per_bohr)))
            if even and n % 2:
                n += 1
            shape.append(n)
        return cls(cell, shape)

    def compatible_with(self, other: "FFTGrid") -> bool:
        """True when both grids share the same spacing (fragment/global check)."""
        return bool(np.allclose(self.spacing, other.spacing, rtol=1e-10, atol=1e-12))
