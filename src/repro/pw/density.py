"""Charge density construction from plane-wave orbitals.

rho(r) = sum_i occ_i |psi_i(r)|^2, evaluated by inverse FFT of each band's
coefficients onto the real-space grid.  This is the per-fragment ``rho_F``
of the LS3DF flow chart, later patched into the global density by
Gen_dens.
"""

from __future__ import annotations

import numpy as np

from repro.pw.basis import PlaneWaveBasis


def occupations_for_insulator(nelectrons: int, nbands: int) -> np.ndarray:
    """Fixed (insulating, spin-paired) occupations for ``nelectrons``.

    The lowest ``nelectrons // 2`` bands get occupation 2; an odd electron
    (only possible for passivated fragments with an odd electron count)
    puts a single electron in the next band.
    """
    if nelectrons < 0:
        raise ValueError("nelectrons must be non-negative")
    if nbands * 2 < nelectrons:
        raise ValueError(
            f"{nbands} bands cannot hold {nelectrons} electrons (need >= {(nelectrons + 1) // 2})"
        )
    occ = np.zeros(nbands)
    nfull = nelectrons // 2
    occ[:nfull] = 2.0
    if nelectrons % 2:
        occ[nfull] = 1.0
    return occ


def compute_density(
    basis: PlaneWaveBasis,
    coefficients: np.ndarray,
    occupations: np.ndarray,
) -> np.ndarray:
    """Real-space density from a block of orbital coefficients.

    Parameters
    ----------
    basis:
        Plane-wave basis the coefficients live in.
    coefficients:
        ``(nbands, npw)`` complex coefficients, rows orthonormal.
    occupations:
        ``(nbands,)`` occupation numbers.

    Returns
    -------
    numpy.ndarray
        Density on ``basis.grid``; integrates to ``sum(occupations)``.
    """
    coefficients = np.asarray(coefficients)
    occupations = np.asarray(occupations, dtype=float)
    if coefficients.ndim != 2 or coefficients.shape[1] != basis.npw:
        raise ValueError("coefficients must have shape (nbands, npw)")
    if occupations.shape != (coefficients.shape[0],):
        raise ValueError("occupations length must equal number of bands")
    density = np.zeros(basis.grid.shape, dtype=float)
    for occ, c in zip(occupations, coefficients):
        if occ == 0.0:
            continue
        psi_r = basis.to_real_space(c)
        density += occ * np.real(psi_r * np.conj(psi_r))
    return density


def integrated_charge(density: np.ndarray, dvol: float) -> float:
    """Number of electrons represented by a real-space density."""
    return float(np.sum(density) * dvol)


def normalize_density(density: np.ndarray, nelectrons: float, dvol: float) -> np.ndarray:
    """Rescale a density so it integrates to exactly ``nelectrons``.

    Production codes renormalise after mixing to protect against drift from
    the linear mixing of densities/potentials; the LS3DF driver uses this
    after patching.
    """
    total = integrated_charge(density, dvol)
    if total <= 0:
        raise ValueError("density must have positive total charge")
    return density * (nelectrons / total)
