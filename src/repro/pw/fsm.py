"""Folded spectrum method (FSM) for interior (band-edge) eigenstates.

After the LS3DF potential is converged, the paper solves the Schroedinger
equation of the *whole* system for only the band-edge states with the
folded spectrum method (Wang & Zunger, J. Chem. Phys. 100, 2394 (1994)):
the lowest eigenstates of the folded operator

    (H - eps_ref)^2

are the eigenstates of H closest to the reference energy ``eps_ref``.
Because only a handful of states around the gap are needed, this step is
O(N) and is a fast post-process of the LS3DF calculation (the conduction-
band minimum and the oxygen-induced band of Figure 7 are obtained this
way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pw.eigensolver import all_band_cg
from repro.pw.hamiltonian import Hamiltonian


class FoldedHamiltonian:
    """Wrapper applying (H - eps_ref)^2; plugs into the block eigensolver.

    Exposes the same ``apply`` / ``basis`` / ``preconditioner`` surface that
    :func:`repro.pw.eigensolver.all_band_cg` needs, so the existing BLAS-3
    solver is reused unchanged.
    """

    def __init__(self, hamiltonian: Hamiltonian, reference_energy: float) -> None:
        self.inner = hamiltonian
        self.reference_energy = float(reference_energy)
        self.basis = hamiltonian.basis

    def apply(self, coefficients: np.ndarray) -> np.ndarray:
        h_minus = self.inner.apply(coefficients) - self.reference_energy * np.asarray(
            coefficients, dtype=complex
        )
        return self.inner.apply(h_minus) - self.reference_energy * h_minus

    def expectation(self, coefficients: np.ndarray) -> np.ndarray:
        c = np.atleast_2d(np.asarray(coefficients, dtype=complex))
        fc = self.apply(c)
        return np.real(np.einsum("ij,ij->i", c.conj(), fc))

    def preconditioner(self, reference_kinetic: float | None = None) -> np.ndarray:
        p = self.inner.preconditioner(reference_kinetic)
        return p * p


@dataclass
class FoldedSpectrumResult:
    """Band-edge states found by the folded spectrum method.

    Attributes
    ----------
    eigenvalues:
        Energies of the found states (Hartree), sorted by distance from the
        reference energy (the folded ordering), then re-sorted ascending.
    coefficients:
        Orthonormal state coefficients ``(nstates, npw)``.
    folded_values:
        Eigenvalues of the folded operator (distance-squared to reference).
    reference_energy:
        The fold point used.
    residual_norms:
        Residuals ``|| H psi - eps psi ||`` with respect to the *original*
        Hamiltonian, the physically meaningful accuracy measure.
    """

    eigenvalues: np.ndarray
    coefficients: np.ndarray
    folded_values: np.ndarray
    reference_energy: float
    residual_norms: np.ndarray


def folded_spectrum(
    hamiltonian: Hamiltonian,
    reference_energy: float,
    nstates: int,
    initial: np.ndarray | None = None,
    max_iterations: int = 120,
    tolerance: float = 1e-8,
    rng: np.random.Generator | int | None = 0,
) -> FoldedSpectrumResult:
    """Find the ``nstates`` eigenstates of ``hamiltonian`` nearest ``reference_energy``.

    Parameters
    ----------
    hamiltonian:
        The converged-potential Hamiltonian of the full system.
    reference_energy:
        Fold point (Hartree); place it inside the gap near the band edge of
        interest (e.g. just below the CBM for conduction states, inside the
        gap near the oxygen level for the O-induced band).
    nstates:
        Number of band-edge states to extract.
    initial, max_iterations, tolerance, rng:
        Passed through to the block eigensolver operating on the folded
        operator (note the tolerance applies to the *folded* residual).

    Returns
    -------
    FoldedSpectrumResult
    """
    folded = FoldedHamiltonian(hamiltonian, reference_energy)
    block = all_band_cg(
        folded,  # type: ignore[arg-type]  (duck-typed operator)
        nstates,
        initial=initial,
        max_iterations=max_iterations,
        tolerance=tolerance,
        rng=rng,
    )
    coeffs = block.coefficients
    # Rayleigh-Ritz with the *original* H inside the found subspace to get
    # clean unfolded eigenvalues and states.
    hsub = coeffs.conj() @ hamiltonian.apply(coeffs).T
    hsub = 0.5 * (hsub + hsub.conj().T)
    evals, u = np.linalg.eigh(hsub)
    states = u.T @ coeffs
    residual = hamiltonian.apply(states) - evals[:, None] * states
    rnorm = np.linalg.norm(residual, axis=1)
    folded_values = (evals - reference_energy) ** 2
    return FoldedSpectrumResult(
        eigenvalues=evals,
        coefficients=states,
        folded_values=folded_values,
        reference_energy=reference_energy,
        residual_norms=rnorm,
    )
