"""Plane-wave density functional theory substrate (PEtot-like).

LS3DF solves each fragment with a plane-wave Kohn–Sham solver; the paper
uses PEtot (norm-conserving pseudopotentials, all-band conjugate-gradient
minimization, FFT-based dual-space Hamiltonian application).  This package
implements that substrate from scratch in NumPy:

* :mod:`repro.pw.grid`       — real/reciprocal FFT grids for orthorhombic cells
* :mod:`repro.pw.basis`      — plane-wave basis set (energy cutoff sphere)
* :mod:`repro.pw.pseudopotential` — analytic local + Kleinman–Bylander
  nonlocal model pseudopotentials
* :mod:`repro.pw.xc`         — LDA exchange-correlation (Slater + PZ81)
* :mod:`repro.pw.hartree`    — FFT Poisson solver / Hartree potential
* :mod:`repro.pw.hamiltonian`— dual-space Hamiltonian application
* :mod:`repro.pw.eigensolver`— all-band and band-by-band CG eigensolvers
* :mod:`repro.pw.density`    — charge density construction
* :mod:`repro.pw.energy`     — total energy functional
* :mod:`repro.pw.mixing`     — potential mixing (linear / Kerker / Anderson)
* :mod:`repro.pw.scf`        — direct (O(N^3)) self-consistent field driver
* :mod:`repro.pw.fsm`        — folded spectrum method for band-edge states
"""

from repro.pw.grid import FFTGrid
from repro.pw.basis import PlaneWaveBasis
from repro.pw.pseudopotential import (
    PseudopotentialSet,
    SpeciesPseudopotential,
    default_pseudopotentials,
)
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.eigensolver import all_band_cg, band_by_band_cg, exact_diagonalization
from repro.pw.mixing import AndersonMixer, KerkerMixer, LinearMixer, Mixer, make_mixer
from repro.pw.scf import DirectSCF, SCFResult
from repro.pw.fsm import folded_spectrum

__all__ = [
    "FFTGrid",
    "PlaneWaveBasis",
    "PseudopotentialSet",
    "SpeciesPseudopotential",
    "default_pseudopotentials",
    "Hamiltonian",
    "all_band_cg",
    "band_by_band_cg",
    "exact_diagonalization",
    "AndersonMixer",
    "KerkerMixer",
    "LinearMixer",
    "Mixer",
    "make_mixer",
    "DirectSCF",
    "SCFResult",
    "folded_spectrum",
]
