"""Direct (conventional, O(N^3)) self-consistent field driver.

This is the "direct DFT" the paper compares LS3DF against: a single
Kohn-Sham problem over the whole supercell, solved self-consistently with
potential mixing.  It is used three ways in this repository:

* as the reference for the LS3DF-vs-direct accuracy experiments (E7);
* as the per-fragment solver inside LS3DF (fragments are just small
  periodic cells);
* as the cost model anchor for the O(N^3) crossover analysis (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atoms.structure import Structure
from repro.pw.basis import PlaneWaveBasis
from repro.pw.density import compute_density, occupations_for_insulator
from repro.pw.eigensolver import EigensolverResult, all_band_cg, band_by_band_cg, exact_diagonalization
from repro.pw.energy import (
    EnergyBreakdown,
    potential_distance,
    screening_potential,
    total_energy_from_orbitals,
)
from repro.pw.density import normalize_density
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.mixing import AndersonMixer, make_mixer
from repro.pw.pseudopotential import PseudopotentialSet, default_pseudopotentials


@dataclass
class SCFResult:
    """Outcome of a self-consistent field calculation.

    Attributes
    ----------
    eigenvalues:
        Final band energies (Hartree).
    coefficients:
        Final orbital coefficients ``(nbands, npw)``.
    density:
        Final real-space density.
    potential:
        Final screening (Hartree + XC) potential.
    energy:
        Total-energy breakdown at the final density.
    converged:
        True when the potential-difference metric fell below the tolerance.
    iterations:
        Number of SCF iterations performed.
    convergence_history:
        Per-iteration value of integral |V_out - V_in| d^3r (the paper's
        Fig. 6 metric).
    energy_history:
        Per-iteration total energy.
    """

    eigenvalues: np.ndarray
    coefficients: np.ndarray
    density: np.ndarray
    potential: np.ndarray
    energy: EnergyBreakdown
    converged: bool
    iterations: int
    convergence_history: list[float] = field(default_factory=list)
    energy_history: list[float] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return self.energy.total

    def band_gap(self, nelectrons: int) -> float:
        """Kohn-Sham gap between the highest occupied and lowest empty band."""
        homo = nelectrons // 2 - 1 + (nelectrons % 2)
        lumo = homo + 1
        if lumo >= len(self.eigenvalues):
            raise ValueError("not enough bands to evaluate the gap; add empty bands")
        return float(self.eigenvalues[lumo] - self.eigenvalues[homo])


class DirectSCF:
    """Self-consistent Kohn-Sham solver for one periodic cell.

    Parameters
    ----------
    structure:
        Periodic structure (Bohr).
    ecut:
        Plane-wave cutoff (Hartree).
    grid:
        Optional explicit FFT grid; by default one is chosen from the
        cutoff via ``FFTGrid.for_structure`` with a density matched to the
        cutoff sphere.
    pseudopotentials:
        Model pseudopotential set; defaults to the paper's species set.
    nbands:
        Number of bands; defaults to enough for the electrons plus ~20%
        empty bands (needed for gap evaluation and for FSM references).
    n_empty:
        Explicit number of empty bands when ``nbands`` is not given.
    extra_local_potential:
        Optional fixed local potential added to the ionic part (used by the
        LS3DF fragment solver for the passivation potential).
    eigensolver:
        ``"all_band"`` (default), ``"band_by_band"`` or ``"exact"``.
    mixer:
        ``"anderson"`` (default), ``"kerker"`` or ``"linear"``.
    """

    def __init__(
        self,
        structure: Structure,
        ecut: float = 4.0,
        grid: FFTGrid | None = None,
        pseudopotentials: PseudopotentialSet | None = None,
        nbands: int | None = None,
        n_empty: int = 4,
        extra_local_potential: np.ndarray | None = None,
        eigensolver: str = "all_band",
        mixer: str = "anderson",
        mixer_options: dict | None = None,
        points_per_bohr: float | None = None,
    ) -> None:
        self.structure = structure
        self.pseudopotentials = pseudopotentials or default_pseudopotentials()
        for sym in set(structure.symbols):
            if sym not in self.pseudopotentials:
                raise KeyError(f"missing pseudopotential for {sym!r}")
        if grid is None:
            if points_per_bohr is None:
                # Nyquist criterion: the grid must support 2*sqrt(2*ecut)
                # (density cutoff) along each axis.
                gmax = np.sqrt(2.0 * ecut)
                points_per_bohr = max(1.2, 2.0 * gmax / np.pi * 1.05)
            grid = FFTGrid.for_structure(structure.cell, points_per_bohr)
        self.grid = grid
        self.basis = PlaneWaveBasis(grid, ecut)
        self.nelectrons = structure.total_valence_electrons()
        if nbands is None:
            nbands = (self.nelectrons + 1) // 2 + n_empty
        if nbands < (self.nelectrons + 1) // 2:
            raise ValueError("nbands too small to hold all electrons")
        self.nbands = int(nbands)
        self.occupations = occupations_for_insulator(self.nelectrons, self.nbands)
        self.hamiltonian = Hamiltonian.from_structure(
            structure, self.basis, self.pseudopotentials, extra_local_potential
        )
        self.ionic_density = self.pseudopotentials.ionic_density(structure, grid)
        self.ionic_self_energy = self.pseudopotentials.ionic_self_energy(structure)
        if eigensolver not in {"all_band", "band_by_band", "exact"}:
            raise ValueError(f"unknown eigensolver {eigensolver!r}")
        self.eigensolver = eigensolver
        self.mixer = make_mixer(mixer, grid=grid, **(mixer_options or {}))

    # ------------------------------------------------------------------
    def initial_density(self) -> np.ndarray:
        """Starting electron density guess.

        A superposition of the smeared ionic charges (clipped to be
        non-negative and renormalised to the electron count) — i.e. a
        neutral-pseudo-atom guess, the standard starting point of
        production plane-wave codes.  Falls back to a uniform density when
        the model carries no ionic charge.
        """
        if np.any(self.ionic_density > 0):
            rho = np.clip(self.ionic_density, 0.0, None)
            return normalize_density(rho, self.nelectrons, self.grid.dvol)
        return np.full(self.grid.shape, self.nelectrons / self.grid.volume)

    def _solve_bands(
        self,
        initial: np.ndarray | None,
        tolerance: float,
        max_iterations: int,
    ) -> EigensolverResult:
        if self.eigensolver == "exact":
            return exact_diagonalization(self.hamiltonian, self.nbands)
        if self.eigensolver == "band_by_band":
            return band_by_band_cg(
                self.hamiltonian,
                self.nbands,
                initial=initial,
                max_iterations=max_iterations,
                tolerance=tolerance,
            )
        return all_band_cg(
            self.hamiltonian,
            self.nbands,
            initial=initial,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )

    def run(
        self,
        max_scf_iterations: int = 40,
        potential_tolerance: float = 1e-4,
        eigensolver_tolerance: float = 1e-6,
        eigensolver_iterations: int = 40,
        initial_potential: np.ndarray | None = None,
        verbose: bool = False,
    ) -> SCFResult:
        """Run the SCF loop to convergence (or the iteration cap).

        The convergence metric is the paper's integral |V_out - V_in| d^3r.
        """
        grid = self.grid
        if initial_potential is None:
            rho0 = self.initial_density()
            v_in = screening_potential(rho0, grid, self.ionic_density)
        else:
            if initial_potential.shape != grid.shape:
                raise ValueError("initial potential shape mismatch")
            v_in = initial_potential.copy()
        if isinstance(self.mixer, AndersonMixer):
            self.mixer.reset()

        coeffs: np.ndarray | None = None
        conv_history: list[float] = []
        energy_history: list[float] = []
        converged = False
        eigenvalues = np.zeros(self.nbands)
        density = self.initial_density()

        iteration = 0
        for iteration in range(1, max_scf_iterations + 1):
            self.hamiltonian.set_effective_potential(v_in)
            band_result = self._solve_bands(
                coeffs, eigensolver_tolerance, eigensolver_iterations
            )
            coeffs = band_result.coefficients
            eigenvalues = band_result.eigenvalues
            density = compute_density(self.basis, coeffs, self.occupations)
            v_out = screening_potential(density, grid, self.ionic_density)
            diff = potential_distance(v_out, v_in, grid)
            conv_history.append(diff)
            energy = total_energy_from_orbitals(
                self.hamiltonian,
                coeffs,
                self.occupations,
                density,
                self.ionic_density,
                self.ionic_self_energy,
            )
            energy_history.append(energy.total)
            if verbose:  # pragma: no cover - logging
                print(
                    f"SCF {iteration:3d}: |Vout-Vin| = {diff:.3e}  "
                    f"E = {energy.total:.6f} Ha"
                )
            if diff < potential_tolerance:
                converged = True
                v_in = v_out
                break
            v_in = self.mixer.mix(v_in, v_out)

        energy = total_energy_from_orbitals(
            self.hamiltonian,
            coeffs,
            self.occupations,
            density,
            self.ionic_density,
            self.ionic_self_energy,
        )
        return SCFResult(
            eigenvalues=eigenvalues,
            coefficients=coeffs,
            density=density,
            potential=v_in,
            energy=energy,
            converged=converged,
            iterations=iteration,
            convergence_history=conv_history,
            energy_history=energy_history,
        )
