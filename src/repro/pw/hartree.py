"""Hartree potential / global Poisson solver via FFT.

This is the GENPOT kernel of the paper: given the (patched, global) charge
density, solve the periodic Poisson equation

    nabla^2 V_H(r) = -4 pi rho(r)      =>      V_H(G) = 4 pi rho(G) / |G|^2

with the G = 0 component set to zero (charge neutrality against a uniform
compensating background, the standard convention for periodic supercells).
"""

from __future__ import annotations

import numpy as np

from repro.constants import FOUR_PI
from repro.pw import fftcache
from repro.pw.grid import FFTGrid


def poisson_nonzero_mask(grid: FFTGrid) -> np.ndarray:
    """Memoized ``|G|^2 > 0`` mask shared by every Poisson solve on ``grid``."""
    return grid.memo("poisson_nonzero", lambda: grid.g2 > 1e-12)


def hartree_potential(density: np.ndarray, grid: FFTGrid) -> np.ndarray:
    """Hartree potential (Hartree a.u.) of a periodic density on ``grid``.

    Parameters
    ----------
    density:
        Real-space electron density (electrons / Bohr^3), shape ``grid.shape``.
    grid:
        The FFT grid.

    Returns
    -------
    numpy.ndarray
        Real-space Hartree potential, same shape.
    """
    if density.shape != grid.shape:
        raise ValueError("density shape does not match grid")
    g2 = grid.g2
    nonzero = poisson_nonzero_mask(grid)
    if fftcache.real_fft_enabled() and not np.iscomplexobj(density):
        # Real-FFT path (REPRO_REAL_FFT): the density is real, so the
        # half-spectrum rfftn carries the full information at half the
        # transform work.  Mathematically identical to the complex path
        # but not bit-identical, hence opt-in.
        half = g2.shape[2] // 2 + 1
        rho_g = fftcache.rfftn(density)
        g2h = g2[:, :, :half]
        vg = np.zeros(rho_g.shape, dtype=rho_g.dtype)
        mask = nonzero[:, :, :half]
        vg[mask] = FOUR_PI * rho_g[mask] / g2h[mask]
        return fftcache.irfftn(vg, s=grid.shape)
    # Workspace-pooled transforms: identical operations on reused buffers,
    # bit-identical to the allocating path (fftcache module docstring).
    with fftcache.scratch(grid.shape) as w1, fftcache.scratch(grid.shape) as w2:
        rho_g = fftcache.fftn(density, out=w1)
        vg = w2
        vg.fill(0)
        vg[nonzero] = FOUR_PI * rho_g[nonzero] / g2[nonzero]
        v = fftcache.ifftn(vg, out=w1)
        return v.real.copy()


def hartree_energy(density: np.ndarray, grid: FFTGrid) -> float:
    """Hartree energy  E_H = (1/2) integral rho(r) V_H(r) dr."""
    v = hartree_potential(density, grid)
    return 0.5 * float(np.sum(density * v) * grid.dvol)


def poisson_residual(potential: np.ndarray, density: np.ndarray, grid: FFTGrid) -> float:
    """L2 residual of nabla^2 V + 4 pi (rho - rho_avg) evaluated spectrally.

    Used by tests to verify the solver: the residual of the exact solution
    is zero to round-off for any band-limited density.
    """
    if potential.shape != grid.shape or density.shape != grid.shape:
        raise ValueError("shape mismatch")
    # Pooled-workspace transforms like the solver path above; the raw
    # np.fft calls here used to bypass the PR 6 workspace pool.
    with fftcache.scratch(grid.shape) as w1, fftcache.scratch(grid.shape) as w2:
        vg = fftcache.fftn(potential, out=w1)
        np.multiply(-grid.g2, vg, out=w2)
        lap = fftcache.ifftn(w2, out=w1).copy()
    rho_avg = np.mean(density)
    resid = np.real(lap) + FOUR_PI * (density - rho_avg)
    return float(np.sqrt(np.sum(np.abs(resid) ** 2) * grid.dvol))
