"""Shape-keyed FFT workspace pool for the hot-path kernels (PR 6).

The fragment kernels perform thousands of FFTs on identically-shaped
arrays per SCF iteration (every band block of every fragment shares the
fragment grid shape), and every ``np.fft.fftn`` call allocates a fresh
complex output plus intermediates.  numpy >= 2.0 pocketfft accepts an
``out=`` array and writes *bit-identical* results into it (verified
empirically by ``tests/test_kernel_pack.py``), which makes a workspace
pool safe for this codebase's bit-identity discipline: reusing a buffer
changes *where* results live, never what they are.

Usage pattern (the only safe one)::

    with fftcache.scratch(shape) as w1, fftcache.scratch(shape) as w2:
        field_g = fftcache.fftn(field_r, out=w1)
        ...
        result = make_fresh_array_from(w2)   # never return pooled buffers

Pooled buffers are only ever *intermediates*; anything returned to a
caller must be freshly allocated (or an explicit copy), because the pool
will hand the buffer to the next acquirer.

The pool is process-global and lock-guarded (the thread backend runs
kernels concurrently).  Disable it with ``REPRO_FFT_CACHE=0`` or
``fftcache.configure(enabled=False)``: the wrappers then ignore ``out=``
and every call allocates, which is exactly the un-cached reference path
the equivalence tests compare against.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

import numpy as np

_FALSEY = {"0", "false", "off", "no"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_FFT_CACHE", "1").strip().lower() not in _FALSEY


def _env_real_fft() -> bool:
    return os.environ.get("REPRO_REAL_FFT", "0").strip().lower() not in _FALSEY | {""}


_LOCK = threading.Lock()
_ENABLED: bool = _env_enabled()
_REAL_FFT: bool | None = None
_MAX_PER_KEY: int = 4
_MAX_KEYS: int = 32
_POOL: "OrderedDict[tuple, list[np.ndarray]]" = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "reused_bytes": 0, "evictions": 0}


def enabled() -> bool:
    """True when the workspace pool is active."""
    return _ENABLED


def real_fft_enabled() -> bool:
    """True when the real-FFT density path is active (PR 8 knob).

    The real-valued density -> Hartree chain can run through
    ``rfftn``/``irfftn`` (about half the FFT work and half the wire bytes
    of the middle exchanges of the streaming Poisson solve).  The real
    path is mathematically identical but *not* bit-identical to the
    complex path, so it defaults **off** — the repo's bit-identity
    discipline stays intact — and is enabled with ``REPRO_REAL_FFT=1``
    or :func:`configure_real_fft`.  The environment variable is re-read
    on every call unless an explicit override is installed, so tests can
    toggle it without re-importing.
    """
    if _REAL_FFT is not None:
        return _REAL_FFT
    return _env_real_fft()


def configure_real_fft(enabled: bool | None) -> None:
    """Override the ``REPRO_REAL_FFT`` knob (``None`` re-reads the env)."""
    global _REAL_FFT
    _REAL_FFT = None if enabled is None else bool(enabled)


def configure(
    enabled: bool | None = None,
    max_per_key: int | None = None,
    max_keys: int | None = None,
) -> None:
    """Adjust pool behaviour; disabling also drops all pooled buffers."""
    global _ENABLED, _MAX_PER_KEY, _MAX_KEYS
    with _LOCK:
        if enabled is not None:
            _ENABLED = bool(enabled)
            if not _ENABLED:
                _POOL.clear()
        if max_per_key is not None:
            _MAX_PER_KEY = int(max_per_key)
        if max_keys is not None:
            _MAX_KEYS = int(max_keys)


def clear() -> None:
    """Drop every pooled buffer (stats are kept)."""
    with _LOCK:
        _POOL.clear()


def reset_stats() -> None:
    """Zero the hit/miss counters."""
    with _LOCK:
        for k in _STATS:
            _STATS[k] = 0


def stats() -> dict:
    """Snapshot of pool counters plus current pooled memory."""
    with _LOCK:
        snap = dict(_STATS)
        snap["pooled_buffers"] = sum(len(b) for b in _POOL.values())
        snap["pooled_bytes"] = sum(
            buf.nbytes for bucket in _POOL.values() for buf in bucket
        )
        return snap


def _key(shape: tuple, dtype) -> tuple:
    return (tuple(int(s) for s in shape), np.dtype(dtype).str)


def acquire(shape, dtype=np.complex128) -> np.ndarray:
    """Take a buffer of ``shape``/``dtype`` from the pool (contents dirty).

    Falls back to a fresh allocation on a pool miss or when disabled.
    """
    key = _key(shape, dtype)
    if _ENABLED:
        with _LOCK:
            bucket = _POOL.get(key)
            if bucket:
                _POOL.move_to_end(key)
                buf = bucket.pop()
                _STATS["hits"] += 1
                _STATS["reused_bytes"] += buf.nbytes
                return buf
            _STATS["misses"] += 1
    return np.empty(key[0], dtype=dtype)


def release(buf: np.ndarray) -> None:
    """Return a buffer to the pool.  No-op when disabled or for views."""
    if not _ENABLED or not isinstance(buf, np.ndarray):
        return
    if buf.base is not None or not buf.flags.c_contiguous:
        return
    key = _key(buf.shape, buf.dtype)
    with _LOCK:
        bucket = _POOL.setdefault(key, [])
        _POOL.move_to_end(key)
        if len(bucket) < _MAX_PER_KEY:
            bucket.append(buf)
        while len(_POOL) > _MAX_KEYS:
            _POOL.popitem(last=False)
            _STATS["evictions"] += 1


@contextmanager
def scratch(shape, dtype=np.complex128) -> Iterator[np.ndarray]:
    """Context-managed :func:`acquire`/:func:`release` pair."""
    buf = acquire(shape, dtype)
    try:
        yield buf
    finally:
        release(buf)


# -- np.fft wrappers ---------------------------------------------------------
# Each forwards ``out=`` only while the pool is enabled, so disabling the
# pool reproduces the plain allocating numpy path exactly.

def fftn(a, axes=None, out=None) -> np.ndarray:
    if out is not None and _ENABLED:
        return np.fft.fftn(a, axes=axes, out=out)
    return np.fft.fftn(a, axes=axes)


def ifftn(a, axes=None, out=None) -> np.ndarray:
    if out is not None and _ENABLED:
        return np.fft.ifftn(a, axes=axes, out=out)
    return np.fft.ifftn(a, axes=axes)


def fft(a, axis=-1, out=None) -> np.ndarray:
    if out is not None and _ENABLED:
        return np.fft.fft(a, axis=axis, out=out)
    return np.fft.fft(a, axis=axis)


def ifft(a, axis=-1, out=None) -> np.ndarray:
    if out is not None and _ENABLED:
        return np.fft.ifft(a, axis=axis, out=out)
    return np.fft.ifft(a, axis=axis)


# -- real-FFT variants (PR 8) ------------------------------------------------
# The density -> Hartree chain transforms real fields, so the half-spectrum
# rfft family does the same job with ~2x less work and wire bytes.  The
# output shape of an rfft differs from the input shape (last transformed
# axis shrinks to n//2 + 1), so these wrappers never take ``out=`` from the
# shape-keyed pool — the transforms are cheap enough that the win is the
# halved spectrum, not buffer reuse.
#
# The 3D variants are deliberately *decomposed* into the per-axis 1D
# transforms of numpy's rfftn/irfftn order (rfft z, fft x, fft y; the
# inverses reversed) rather than calling the fused numpy.fft.rfftn:
# pocketfft's fused n-d real transform is not bit-identical to its own
# per-axis decomposition, and the decomposition is what the distributed
# slab pipeline (repro.parallel.streaming) can actually run — so the
# serial and streamed real paths agree bit for bit, at the cost of a
# round-off-level difference from the fused numpy call.

def rfftn(a) -> np.ndarray:
    out = rfft(a, axis=2)
    out = np.fft.fft(out, axis=0)
    return np.fft.fft(out, axis=1)


def irfftn(a, s) -> np.ndarray:
    out = np.fft.ifft(a, axis=0)
    out = np.fft.ifft(out, axis=1)
    return irfft(out, n=s[2], axis=2)


def rfft(a, axis=-1) -> np.ndarray:
    return np.fft.rfft(a, axis=axis)


def irfft(a, n, axis=-1) -> np.ndarray:
    return np.fft.irfft(a, n=n, axis=axis)
