"""Model pseudopotentials: analytic local parts + Kleinman-Bylander projectors.

The paper uses tabulated norm-conserving pseudopotentials with reciprocal
space (q-space) Kleinman-Bylander nonlocal projectors.  Those data files are
not available offline, so this module substitutes *analytic* model
pseudopotentials with the same mathematical structure:

* the local part of species ``s`` is a short-ranged attractive Gaussian well
  whose reciprocal-space form factor is
  ``f_s(|G|) = -V0 * (2*pi*sigma^2)^{3/2} * exp(-sigma^2 |G|^2 / 2)``;
* the nonlocal part is a single separable Kleinman-Bylander projector per
  atom with a Gaussian radial shape and species-dependent strength.

The total local potential is assembled in reciprocal space through the
structure factor ``S_s(G) = sum_{a in s} exp(-i G . tau_a)`` — exactly the
operation a production plane-wave code performs — and the nonlocal part is
applied with BLAS-3 projector matrices, which is the operation the paper's
all-band optimisation accelerates.

Species parameters are chosen so that the qualitative physics of the
paper's systems survives: the O well is much deeper than the Te well, so a
dilute ZnTe(O) alloy develops oxygen-induced states split off below the
host conduction states (the paper's mid-band-gap states).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.atoms.structure import Structure
from repro.pw.basis import PlaneWaveBasis
from repro.pw.grid import FFTGrid


@dataclass(frozen=True)
class SpeciesPseudopotential:
    """Analytic model pseudopotential parameters for one species.

    The ionic part of the pseudo-atom is a *Gaussian-smeared positive point
    charge* of magnitude ``zion`` (the number of valence electrons the
    species contributes) and width ``core_width``; its long-range -Z/r tail
    enters the Kohn-Sham potential through the global Poisson solve of the
    net charge density (electrons minus ions), exactly the way LS3DF's
    GENPOT step treats electrostatics.  On top of that sit a short-range
    Gaussian correction well (``v0``, ``sigma``) and a separable
    Kleinman-Bylander projector.

    Parameters
    ----------
    symbol:
        Species symbol.
    v0:
        Depth of the short-range local Gaussian correction (Hartree; a
        positive number means an attractive well
        ``-v0 * exp(-r^2 / (2 sigma^2))``, a negative number a repulsive
        core bump).
    sigma:
        Width of the local correction well (Bohr).
    zion:
        Ionic (valence) charge carried by the smeared Gaussian ion.
    core_width:
        Width of the Gaussian ionic charge (Bohr).  Smaller widths make the
        near-nucleus potential deeper (how the model differentiates the
        compact O ion from the larger Te ion).
    nonlocal_strength:
        Kleinman-Bylander energy ``E_KB`` (Hartree); may be positive
        (repulsive) or negative (attractive) or zero (purely local).
    nonlocal_radius:
        Radial width of the Gaussian KB projector (Bohr).
    """

    symbol: str
    v0: float
    sigma: float
    zion: float = 0.0
    core_width: float = 0.8
    nonlocal_strength: float = 0.0
    nonlocal_radius: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0 or self.core_width <= 0 or self.nonlocal_radius <= 0:
            raise ValueError(
                f"widths for {self.symbol!r} must be positive "
                f"(sigma={self.sigma}, core_width={self.core_width}, "
                f"nonlocal_radius={self.nonlocal_radius})"
            )

    def local_form_factor(self, gnorm2: np.ndarray) -> np.ndarray:
        """Reciprocal-space form factor of the short-range local part.

        Defined such that the contribution of one atom at tau to V_loc(G)
        is ``f(|G|^2) * exp(-i G tau) / Omega``.
        """
        s2 = self.sigma * self.sigma
        return -self.v0 * (2.0 * np.pi * s2) ** 1.5 * np.exp(-0.5 * s2 * gnorm2)

    def ionic_charge_form_factor(self, gnorm2: np.ndarray) -> np.ndarray:
        """Form factor of the Gaussian ionic charge density (positive charge).

        One atom at tau contributes ``zion * exp(-core_width^2 |G|^2 / 2)
        * exp(-i G tau) / Omega`` to the ionic charge density in reciprocal
        space, so the real-space ionic density integrates to ``zion``.
        """
        c2 = self.core_width * self.core_width
        return self.zion * np.exp(-0.5 * c2 * gnorm2)

    def gaussian_self_energy(self) -> float:
        """Electrostatic self-energy of the smeared ionic charge.

        The grid electrostatic energy of the net density includes the
        spurious self-interaction of each Gaussian ion,
        ``Z^2 / (2 sqrt(pi) * core_width)``; the total-energy functional
        subtracts this constant.
        """
        return self.zion * self.zion / (2.0 * np.sqrt(np.pi) * self.core_width)

    def projector_form_factor(self, gnorm2: np.ndarray) -> np.ndarray:
        """Reciprocal-space form factor of the KB projector (un-normalised).

        The projector in real space is a normalised Gaussian
        ``p(r) = (pi r_nl^2)^{-3/4} exp(-r^2/(2 r_nl^2))`` whose Fourier
        transform is again a Gaussian.
        """
        r2 = self.nonlocal_radius * self.nonlocal_radius
        norm = (4.0 * np.pi * r2) ** 0.75
        return norm * np.exp(-0.5 * r2 * gnorm2)


# Default parameter set for the species used in the paper's test systems.
# The numbers are model values (not fitted to experiment); the important
# qualitative relations are:
#   * anions carry Z=6 ionic charges, cations Z=2        -> ionic insulator,
#   * O is more compact (smaller core_width) than Te     -> gap states in ZnTe:O,
#   * cations get a repulsive short-range core           -> keeps the
#     conduction (cation-derived) states above the anion valence band,
#   * H passivation is a compact Z=1 pseudo-atom         -> removes dangling bonds.
_DEFAULT_PARAMS: dict[str, SpeciesPseudopotential] = {
    "Zn": SpeciesPseudopotential("Zn", v0=-1.0, sigma=0.90, zion=2.0, core_width=1.10, nonlocal_strength=0.30, nonlocal_radius=1.0),
    "Cd": SpeciesPseudopotential("Cd", v0=-1.0, sigma=1.00, zion=2.0, core_width=1.20, nonlocal_strength=0.30, nonlocal_radius=1.1),
    "Te": SpeciesPseudopotential("Te", v0=2.0, sigma=1.10, zion=6.0, core_width=0.85, nonlocal_strength=-0.10, nonlocal_radius=1.2),
    "Se": SpeciesPseudopotential("Se", v0=2.0, sigma=1.00, zion=6.0, core_width=0.80, nonlocal_strength=-0.10, nonlocal_radius=1.1),
    "S": SpeciesPseudopotential("S", v0=2.1, sigma=0.95, zion=6.0, core_width=0.78, nonlocal_strength=-0.10, nonlocal_radius=1.0),
    "O": SpeciesPseudopotential("O", v0=2.8, sigma=0.80, zion=6.0, core_width=0.72, nonlocal_strength=-0.20, nonlocal_radius=0.8),
    "Si": SpeciesPseudopotential("Si", v0=0.5, sigma=1.05, zion=4.0, core_width=0.95, nonlocal_strength=0.10, nonlocal_radius=1.1),
    "Ga": SpeciesPseudopotential("Ga", v0=-0.7, sigma=0.95, zion=3.0, core_width=1.05, nonlocal_strength=0.20, nonlocal_radius=1.1),
    "As": SpeciesPseudopotential("As", v0=1.5, sigma=1.10, zion=5.0, core_width=0.95, nonlocal_strength=-0.05, nonlocal_radius=1.2),
    "H": SpeciesPseudopotential("H", v0=0.4, sigma=0.60, zion=1.0, core_width=0.60, nonlocal_strength=0.0, nonlocal_radius=0.7),
    "H_cation": SpeciesPseudopotential("H_cation", v0=0.3, sigma=0.60, zion=1.0, core_width=0.60, nonlocal_strength=0.0, nonlocal_radius=0.7),
    "H_anion": SpeciesPseudopotential("H_anion", v0=0.5, sigma=0.60, zion=1.0, core_width=0.60, nonlocal_strength=0.0, nonlocal_radius=0.7),
}


def default_pseudopotentials() -> "PseudopotentialSet":
    """The default model pseudopotential set for the paper's species."""
    return PseudopotentialSet(dict(_DEFAULT_PARAMS))


class PseudopotentialSet:
    """A collection of species pseudopotentials bound by symbol."""

    def __init__(self, params: Mapping[str, SpeciesPseudopotential]) -> None:
        self._params = dict(params)
        for sym, pp in self._params.items():
            if pp.symbol != sym:
                raise ValueError(f"key {sym!r} does not match symbol {pp.symbol!r}")
            if pp.sigma <= 0 or pp.nonlocal_radius <= 0:
                raise ValueError(f"widths for {sym!r} must be positive")

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._params

    def __getitem__(self, symbol: str) -> SpeciesPseudopotential:
        try:
            return self._params[symbol]
        except KeyError as exc:
            raise KeyError(f"no pseudopotential for species {symbol!r}") from exc

    def species(self) -> list[str]:
        return sorted(self._params)

    # ------------------------------------------------------------------
    def local_potential(self, structure: Structure, grid: FFTGrid) -> np.ndarray:
        """Total local pseudopotential on the real-space grid (Hartree).

        Assembled in reciprocal space as
        ``V(G) = (1/Omega) sum_s f_s(|G|) S_s(G)`` and transformed back, so
        periodic images are summed exactly (no minimum-image truncation).
        """
        gvec = grid.g_vectors.reshape(-1, 3)
        vg = np.zeros(grid.npoints, dtype=complex)
        symbols = np.asarray(structure.symbols)
        positions = structure.positions
        for sym in np.unique(symbols):
            pp = self[sym]
            tau = positions[symbols == sym]
            # Structure factor S(G) = sum_a exp(-i G . tau_a)
            phase = np.exp(-1j * gvec @ tau.T)  # (npoints, natoms_of_species)
            sfac = phase.sum(axis=1)
            # The |G|^2-derived form factor depends only on (grid, species
            # params), so it is memoized on the grid — rebuilding the same
            # fragment class re-reads it instead of re-evaluating the exps.
            ff = grid.memo(
                ("local_ff", pp), lambda: pp.local_form_factor(grid.g2.ravel())
            )
            vg += ff * sfac
        vg /= grid.volume
        vr = np.fft.ifftn(vg.reshape(grid.shape)) * grid.npoints
        return np.real(vr)

    def ionic_density(self, structure: Structure, grid: FFTGrid) -> np.ndarray:
        """Smeared (Gaussian) ionic charge density on the real-space grid.

        The returned array is a *positive* charge density integrating to
        the total ionic charge (= total valence electron count for neutral
        systems).  The net charge handed to the Poisson solver is
        ``rho_electrons - rho_ions``.
        """
        gvec = grid.g_vectors.reshape(-1, 3)
        ng = np.zeros(grid.npoints, dtype=complex)
        symbols = np.asarray(structure.symbols)
        positions = structure.positions
        for sym in np.unique(symbols):
            pp = self[sym]
            if pp.zion == 0.0:
                continue
            tau = positions[symbols == sym]
            phase = np.exp(-1j * gvec @ tau.T)
            sfac = phase.sum(axis=1)
            ff = grid.memo(
                ("ionic_ff", pp),
                lambda: pp.ionic_charge_form_factor(grid.g2.ravel()),
            )
            ng += ff * sfac
        ng /= grid.volume
        nr = np.fft.ifftn(ng.reshape(grid.shape)) * grid.npoints
        return np.real(nr)

    def total_ionic_charge(self, structure: Structure) -> float:
        """Sum of the ionic charges of all atoms in the structure."""
        return float(sum(self[s].zion for s in structure.symbols))

    def ionic_self_energy(self, structure: Structure) -> float:
        """Total Gaussian self-energy of the smeared ions (to be subtracted)."""
        return float(sum(self[s].gaussian_self_energy() for s in structure.symbols))

    def nonlocal_projectors(
        self, structure: Structure, basis: PlaneWaveBasis
    ) -> tuple[np.ndarray, np.ndarray]:
        """Kleinman-Bylander projectors and strengths in the plane-wave basis.

        Returns
        -------
        projectors:
            Complex array of shape ``(nproj, npw)``; row ``a`` is the
            reciprocal-space projector of atom ``a`` (atoms whose species
            has zero nonlocal strength are skipped).
        strengths:
            Real array ``(nproj,)`` of KB energies ``E_KB``.

        The nonlocal operator is ``V_NL = sum_a |p_a> E_KB,a <p_a|`` and is
        applied to a band block as two matrix-matrix products — the BLAS-3
        structure the paper's PEtot_F optimisation exploits.
        """
        gvec = basis.g_vectors
        rows: list[np.ndarray] = []
        strengths: list[float] = []
        for atom in structure:
            pp = self[atom.symbol]
            if pp.nonlocal_strength == 0.0:
                continue
            # Keyed by ecut too: the basis |G|^2 set depends on the cutoff
            # (the grid alone does not determine it).
            radial = basis.grid.memo(
                ("proj_ff", pp, basis.ecut),
                lambda: pp.projector_form_factor(basis.g2),
            )
            phase = np.exp(-1j * gvec @ atom.position)
            proj = radial * phase / np.sqrt(basis.grid.volume)
            rows.append(proj)
            strengths.append(pp.nonlocal_strength)
        if rows:
            projectors = np.asarray(rows)
        else:
            projectors = np.zeros((0, basis.npw), dtype=complex)
        return projectors, np.asarray(strengths)

    # ------------------------------------------------------------------
    def with_override(
        self, overrides: Mapping[str, SpeciesPseudopotential]
    ) -> "PseudopotentialSet":
        """Return a new set with some species parameters replaced."""
        params = dict(self._params)
        params.update(overrides)
        return PseudopotentialSet(params)
