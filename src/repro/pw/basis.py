"""Plane-wave basis set restricted by a kinetic-energy cutoff.

A wavefunction is expanded as psi(r) = (1/sqrt(Omega)) sum_G c_G e^{iG.r}
over the reciprocal vectors with |G|^2/2 <= Ecut.  Coefficients are stored
as flat arrays indexed by the basis ordering; the basis knows how to
scatter them onto the FFT grid and gather them back, which is how the
dual-space Hamiltonian application works.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.pw import fftcache
from repro.pw.grid import FFTGrid


class PlaneWaveBasis:
    """Plane-wave basis |G|^2/2 <= Ecut on an FFT grid (Gamma point).

    Parameters
    ----------
    grid:
        The FFT grid; its reciprocal vectors define the candidate G set.
    ecut:
        Kinetic-energy cutoff in Hartree.  The paper uses 50 Ry (25 Ha) on
        Franklin and 40 Ry (20 Ha) on Intrepid; the model runs here use a
        few Hartree, which keeps fragment problems laptop-sized.
    """

    def __init__(self, grid: FFTGrid, ecut: float) -> None:
        if ecut <= 0:
            raise ValueError("ecut must be positive")
        self.grid = grid
        self.ecut = float(ecut)
        g2 = grid.g2
        mask = 0.5 * g2 <= self.ecut + 1e-12
        if 0.5 * grid.gmax2 < self.ecut:
            raise ValueError(
                "FFT grid too coarse for requested cutoff: "
                f"grid supports Ecut <= {0.5 * grid.gmax2:.3f} Ha, requested {ecut:.3f} Ha"
            )
        self._mask = mask
        self._indices = np.nonzero(mask.ravel())[0]
        self._g = grid.g_vectors.reshape(-1, 3)[self._indices]
        self._g2 = g2.ravel()[self._indices]

    # -- sizes ---------------------------------------------------------------
    @property
    def npw(self) -> int:
        """Number of plane waves in the basis."""
        return len(self._indices)

    @property
    def g_vectors(self) -> np.ndarray:
        """G vectors of the basis, shape ``(npw, 3)``."""
        return self._g

    @property
    def g2(self) -> np.ndarray:
        """|G|^2 of the basis vectors, shape ``(npw,)``."""
        return self._g2

    @property
    def kinetic(self) -> np.ndarray:
        """Kinetic-energy diagonal |G|^2/2, shape ``(npw,)``."""
        return 0.5 * self._g2

    @cached_property
    def gzero_index(self) -> int:
        """Index of the G = 0 plane wave within the basis."""
        idx = np.nonzero(self._g2 < 1e-12)[0]
        if len(idx) != 1:
            raise RuntimeError("basis must contain exactly one G=0 vector")
        return int(idx[0])

    # -- grid scatter / gather -------------------------------------------------
    def to_grid(self, coeffs: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Scatter coefficient vector(s) onto the full FFT reciprocal grid.

        ``coeffs`` has shape ``(..., npw)``; the result has shape
        ``(..., *grid.shape)`` with zeros outside the cutoff sphere.
        ``out`` may be a C-contiguous workspace buffer of the result shape
        (e.g. from :mod:`repro.pw.fftcache`); it is zero-filled and reused,
        which is bit-identical to allocating a fresh array.
        """
        coeffs = np.asarray(coeffs)
        lead = coeffs.shape[:-1]
        if out is None:
            flat = np.zeros(lead + (self.grid.npoints,), dtype=complex)
        else:
            if out.shape != lead + self.grid.shape:
                raise ValueError("scatter buffer shape mismatch")
            flat = out.reshape(lead + (self.grid.npoints,))
            flat.fill(0)
        flat[..., self._indices] = coeffs
        return flat.reshape(lead + self.grid.shape)

    def from_grid(self, field_g: np.ndarray) -> np.ndarray:
        """Gather FFT-grid reciprocal field(s) back into basis coefficients."""
        field_g = np.asarray(field_g)
        lead = field_g.shape[: -3]
        flat = field_g.reshape(lead + (self.grid.npoints,))
        return flat[..., self._indices]

    # -- real-space wavefunctions ----------------------------------------------
    def to_real_space(
        self,
        coeffs: np.ndarray,
        out: np.ndarray | None = None,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """Wavefunction(s) on the real-space grid from basis coefficients.

        Normalisation: with coefficients normalised as sum |c_G|^2 = 1 the
        returned psi(r) satisfies integral |psi|^2 dr = 1.  ``work``
        receives the reciprocal-space scatter and ``out`` the inverse
        transform (workspace buffers, bit-identical reuse).  Callers must
        use the *returned* array: with the pool disabled the buffers are
        ignored and a fresh array comes back.
        """
        field_g = self.to_grid(coeffs, out=work)
        # ifftn carries a 1/N factor; the physical convention needs
        # psi(r) = (1/sqrt(Omega)) sum_G c_G e^{iGr}, i.e. multiply by
        # N/sqrt(Omega).
        scale = self.grid.npoints / np.sqrt(self.grid.volume)
        psi = fftcache.ifftn(field_g, axes=(-3, -2, -1), out=out)
        psi *= scale
        return psi

    def from_real_space(self, psi_r: np.ndarray, work: np.ndarray | None = None) -> np.ndarray:
        """Project real-space wavefunction(s) back onto the basis.

        ``work`` may hold the forward transform (workspace buffer); the
        returned coefficient array is always freshly allocated.
        """
        scale = np.sqrt(self.grid.volume) / self.grid.npoints
        field_g = fftcache.fftn(np.asarray(psi_r), axes=(-3, -2, -1), out=work)
        field_g *= scale
        return self.from_grid(field_g)

    # -- misc --------------------------------------------------------------------
    def random_coefficients(
        self, nbands: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Random orthonormal starting coefficients, shape ``(nbands, npw)``.

        The coefficients are damped at high |G| (as a real code would seed
        from low-energy plane waves) and orthonormalised by QR.
        """
        if nbands > self.npw:
            raise ValueError("cannot request more bands than plane waves")
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        damp = 1.0 / (1.0 + self._g2)
        raw = (
            rng.standard_normal((nbands, self.npw))
            + 1j * rng.standard_normal((nbands, self.npw))
        ) * damp[None, :]
        q, _ = np.linalg.qr(raw.T.conj())
        return np.ascontiguousarray(q[:, :nbands].T.conj())

    def orthonormalize(self, coeffs: np.ndarray) -> np.ndarray:
        """Loewdin-orthonormalise a coefficient block (overlap-matrix based).

        This mirrors the paper's all-band optimisation: instead of
        band-by-band Gram-Schmidt, build the overlap matrix S = C C^H and
        apply S^{-1/2}, which is a BLAS-3 operation.
        """
        c = np.asarray(coeffs)
        s = c @ c.conj().T
        evals, evecs = np.linalg.eigh(s)
        if np.any(evals <= 1e-14):
            raise np.linalg.LinAlgError("linearly dependent band block")
        s_inv_half = (evecs * (1.0 / np.sqrt(evals))[None, :]) @ evecs.conj().T
        return s_inv_half @ c
