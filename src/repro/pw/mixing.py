"""Potential mixing schemes for the self-consistent field loop.

The LS3DF outer loop (and the direct DFT SCF) updates the input potential
from the output potential of the previous iteration.  Plain substitution
usually diverges ("charge sloshing"), so the paper mixes potentials from
previous iterations.  Three standard mixers are provided:

* :class:`LinearMixer`   — simple damping, V_in' = (1-a) V_in + a V_out;
* :class:`KerkerMixer`   — linear mixing with a G-dependent damping factor
  q^2/(q^2+q0^2) that suppresses long-wavelength sloshing in large cells;
* :class:`AndersonMixer` — Anderson/Pulay (DIIS) mixing over a history of
  residuals, the scheme production plane-wave codes (and LS3DF) use.

All mixers implement the :class:`Mixer` protocol — real-space potential
arrays in, the next input potential out — plus a declared *sharding*
capability that tells the distributed GENPOT path
(:mod:`repro.parallel.distributed`) how to run the mix on 1D slabs of the
global grid without changing a single bit of the result.

Mixers are also the one piece of GENPOT with cross-iteration memory
(Anderson's residual history), so the protocol includes
``state_dict()`` / ``load_state_dict()``: the checkpoint/restart layer
(:mod:`repro.io.checkpoint`) serialises the mixer state alongside the
wavefunctions and the input potential, and a resumed run replays the
exact arithmetic of an uninterrupted one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.pw import fftcache
from repro.pw.grid import FFTGrid


@runtime_checkable
class Mixer(Protocol):
    """Protocol of every potential-mixing scheme.

    ``kind`` is the mixer's registry name (what :func:`make_mixer`
    accepts and what checkpoint manifests record); ``sharding`` declares
    how the mix decomposes over 1D slabs of the global grid (see
    :func:`repro.parallel.distributed.sharded_mix`):

    * ``"pointwise"`` — the mix is elementwise; the mixer provides
      ``mix_slab(v_in_slab, v_out_slab)`` and any slab partition of the
      global mix is bit-identical to the full-array mix;
    * ``"spectral"``  — the mix filters the residual in reciprocal space;
      the mixer provides ``spectral_filter()`` (the full-grid filter, to
      be sliced into slabs) and ``alpha`` (the damped-step weight);
    * ``"serial"``    — the mix needs global reductions (e.g. a history
      gram matrix) and runs on the gathered potentials.

    Custom mixers only have to provide ``reset``/``mix`` (and default to
    serial sharding) to plug into
    :class:`repro.core.genpot.GlobalPotentialSolver`; implementing
    ``state_dict``/``load_state_dict`` as well makes them
    checkpointable (stateless custom mixers may omit the pair — the
    checkpoint layer then saves an empty state).
    """

    kind: str
    sharding: str

    def reset(self) -> None: ...

    def mix(self, v_in: np.ndarray, v_out: np.ndarray) -> np.ndarray: ...

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable snapshot of the mixer's cross-iteration state.

        The default (inherited by stateless custom mixers that subclass
        this protocol) is an empty snapshot.

        Returns
        -------
        dict[str, np.ndarray]
            Flat mapping of state names to arrays (scalars as 0-d
            arrays), suitable for an ``.npz`` payload.  Restoring the
            snapshot with :meth:`load_state_dict` must reproduce the
            mixer's future :meth:`mix` outputs bit for bit.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Parameters
        ----------
        state:
            The mapping returned by :meth:`state_dict` (possibly after
            an ``.npz`` round trip).  Implementations must raise
            ``ValueError`` when the snapshot belongs to a differently
            configured mixer (wrong damping, wrong history length, ...),
            so a checkpoint from a different problem fails loudly.  The
            default accepts only the empty snapshot its default
            :meth:`state_dict` produces.
        """
        if state:
            raise ValueError(
                f"{type(self).__name__} does not implement load_state_dict "
                f"but the checkpoint carries mixer state {sorted(state)}"
            )


def _require_matching_scalar(state: dict, key: str, expected: float, kind: str) -> None:
    """Fail loudly when a checkpointed mixer parameter differs.

    Parameters
    ----------
    state:
        The snapshot being restored.
    key:
        Parameter name inside ``state``.
    expected:
        The live mixer's value of that parameter.
    kind:
        Mixer kind (for the error message).
    """
    if key not in state:
        raise ValueError(f"{kind} mixer state is missing {key!r}")
    found = float(state[key])
    if found != expected:
        raise ValueError(
            f"checkpointed {kind} mixer has {key}={found!r} but this mixer "
            f"was built with {key}={expected!r}"
        )


class LinearMixer(Mixer):
    """Simple linear (damped) potential mixing."""

    kind = "linear"
    sharding = "pointwise"

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)

    def reset(self) -> None:
        """No state to clear; provided for interface uniformity."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot (the damping parameter only — linear mixing is stateless).

        Returns
        -------
        dict[str, np.ndarray]
            ``{"alpha": ...}``; recorded so a resumed run can verify it
            mixes with the same damping.
        """
        return {"alpha": np.float64(self.alpha)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Validate a snapshot (no mutable state to restore).

        Parameters
        ----------
        state:
            A :meth:`state_dict` snapshot; a differing ``alpha`` raises
            ``ValueError``.
        """
        _require_matching_scalar(state, "alpha", self.alpha, self.kind)

    def mix(self, v_in: np.ndarray, v_out: np.ndarray) -> np.ndarray:
        if v_in.shape != v_out.shape:
            raise ValueError("potential shape mismatch")
        return (1.0 - self.alpha) * v_in + self.alpha * v_out

    def mix_slab(self, v_in_slab: np.ndarray, v_out_slab: np.ndarray) -> np.ndarray:
        """Shard-wise mix: elementwise, so any slab of the global mix.

        Same arithmetic as :meth:`mix`, applied to one slab — the
        gathered slab mixes are bit-identical to the full-array mix.
        """
        return (1.0 - self.alpha) * v_in_slab + self.alpha * v_out_slab


class KerkerMixer(Mixer):
    """Kerker-preconditioned linear mixing.

    The residual is filtered in reciprocal space by q^2 / (q^2 + q0^2),
    which damps the long-wavelength components responsible for charge
    sloshing in large supercells — important precisely in the LS3DF regime
    of thousands of atoms.
    """

    kind = "kerker"
    sharding = "spectral"

    def __init__(self, grid: FFTGrid, alpha: float = 0.5, q0: float = 0.8) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if q0 <= 0:
            raise ValueError("q0 must be positive")
        self.grid = grid
        self.alpha = float(alpha)
        self.q0 = float(q0)

        def build_filter() -> np.ndarray:
            g2 = grid.g2
            filt = g2 / (g2 + q0 * q0)
            # G=0: keep a small fraction so the average potential can
            # still move.
            filt.flat[0] = alpha and 1.0
            return filt

        # Shared (read-only) across equal grids; the G=0 entry is always
        # 1.0 for any valid alpha > 0, so the filter depends only on q0.
        self._filter = grid.memo(("kerker_filter", self.q0), build_filter)

    def reset(self) -> None:
        """No state to clear; provided for interface uniformity."""

    def mix(self, v_in: np.ndarray, v_out: np.ndarray) -> np.ndarray:
        if v_in.shape != self.grid.shape or v_out.shape != self.grid.shape:
            raise ValueError("potential shape mismatch")
        # Pooled workspace transforms — bit-identical to the allocating
        # path (see repro.pw.fftcache).
        with fftcache.scratch(self.grid.shape) as w1, fftcache.scratch(
            self.grid.shape
        ) as w2:
            resid_g = fftcache.fftn(v_out - v_in, out=w1)
            resid_g *= self._filter
            update = fftcache.ifftn(resid_g, out=w2)
            return v_in + self.alpha * update.real

    def spectral_filter(self) -> np.ndarray:
        """Shard-wise mix: the full-grid reciprocal-space filter.

        The sharded GENPOT path slices this into z-slabs aligned with the
        distributed FFT of the residual, multiplies per slab (bit-
        identical to the full-array product) and recombines each slab as
        ``v_in + alpha * update`` — the arithmetic of :meth:`mix`,
        distributed.
        """
        return self._filter

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot (parameters only — the Kerker filter has no history).

        Returns
        -------
        dict[str, np.ndarray]
            ``{"alpha": ..., "q0": ...}``; the filter itself is derived
            deterministically from the grid and these parameters, so it
            is not stored.
        """
        return {"alpha": np.float64(self.alpha), "q0": np.float64(self.q0)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Validate a snapshot (no mutable state to restore).

        Parameters
        ----------
        state:
            A :meth:`state_dict` snapshot; a differing ``alpha`` or
            ``q0`` raises ``ValueError``.
        """
        _require_matching_scalar(state, "alpha", self.alpha, self.kind)
        _require_matching_scalar(state, "q0", self.q0, self.kind)


@dataclass
class _HistoryEntry:
    v_in: np.ndarray
    residual: np.ndarray


class AndersonMixer(Mixer):
    """Anderson (Pulay/DIIS) mixing with a bounded history.

    Finds the linear combination of previous (v_in, residual) pairs that
    minimises the norm of the combined residual, then takes a damped step
    along the combined output.  Falls back to plain linear mixing while the
    history is too short or the normal equations are ill-conditioned.

    Sharding is ``"serial"``: the history gram matrix is a global o(N)
    reduction over whole-grid residuals, so the sharded GENPOT path
    gathers the potentials and runs :meth:`mix` on the driver (the same
    place the paper's global module does its allreduces).
    """

    kind = "anderson"
    sharding = "serial"

    def __init__(self, alpha: float = 0.4, history: int = 5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.alpha = float(alpha)
        self.history = int(history)
        self._entries: deque[_HistoryEntry] = deque(maxlen=history)

    def reset(self) -> None:
        """Clear the mixing history (call when the SCF problem changes)."""
        self._entries.clear()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot: parameters plus the bounded (v_in, residual) history.

        Returns
        -------
        dict[str, np.ndarray]
            ``alpha`` and ``history`` (the configured bounds) plus
            ``v_in_stack`` / ``residual_stack``, the history entries
            stacked oldest-first along axis 0 (zero-length when the
            history is empty).  Restoring this with
            :meth:`load_state_dict` makes every later :meth:`mix` output
            bit-identical to a never-interrupted mixer's.
        """
        if self._entries:
            v_in_stack = np.stack([e.v_in for e in self._entries])
            residual_stack = np.stack([e.residual for e in self._entries])
        else:
            v_in_stack = np.zeros((0,))
            residual_stack = np.zeros((0,))
        return {
            "alpha": np.float64(self.alpha),
            "history": np.int64(self.history),
            "v_in_stack": v_in_stack,
            "residual_stack": residual_stack,
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot: replace the history deque entry for entry.

        Parameters
        ----------
        state:
            A :meth:`state_dict` snapshot; a differing ``alpha`` or
            ``history`` bound raises ``ValueError`` (the normal-equation
            arithmetic depends on both).
        """
        _require_matching_scalar(state, "alpha", self.alpha, self.kind)
        _require_matching_scalar(state, "history", self.history, self.kind)
        v_in_stack = np.asarray(state["v_in_stack"])
        residual_stack = np.asarray(state["residual_stack"])
        if v_in_stack.shape != residual_stack.shape:
            raise ValueError("anderson mixer state stacks disagree in shape")
        self._entries.clear()
        for v_in, residual in zip(v_in_stack, residual_stack):
            self._entries.append(_HistoryEntry(v_in.copy(), residual.copy()))

    def mix(self, v_in: np.ndarray, v_out: np.ndarray) -> np.ndarray:
        if v_in.shape != v_out.shape:
            raise ValueError("potential shape mismatch")
        residual = v_out - v_in
        self._entries.append(_HistoryEntry(v_in.copy(), residual.copy()))
        n = len(self._entries)
        if n == 1:
            return v_in + self.alpha * residual

        # Solve min || sum_k c_k r_k ||^2  subject to  sum_k c_k = 1.
        res_mat = np.stack([e.residual.ravel() for e in self._entries])
        gram = res_mat @ res_mat.T
        scale = np.trace(gram) / n
        if scale <= 0:
            return v_in + self.alpha * residual
        a = np.zeros((n + 1, n + 1))
        a[:n, :n] = gram / scale
        a[:n, n] = 1.0
        a[n, :n] = 1.0
        rhs = np.zeros(n + 1)
        rhs[n] = 1.0
        try:
            sol = np.linalg.solve(a, rhs)
            coeffs = sol[:n]
        except np.linalg.LinAlgError:
            coeffs = np.zeros(n)
            coeffs[-1] = 1.0
        if not np.all(np.isfinite(coeffs)) or np.abs(coeffs).max() > 1e4:
            # Ill-conditioned history: drop the oldest entries and fall back.
            while len(self._entries) > 1:
                self._entries.popleft()
            return v_in + self.alpha * residual

        v_opt = np.zeros_like(v_in)
        r_opt = np.zeros_like(v_in)
        for c_k, entry in zip(coeffs, self._entries):
            v_opt += c_k * entry.v_in
            r_opt += c_k * entry.residual
        return v_opt + self.alpha * r_opt


def make_mixer(kind: str, grid: FFTGrid | None = None, **kwargs) -> Mixer:
    """Factory used by the SCF drivers.

    All three shipped mixers implement (and explicitly subclass) the
    :class:`Mixer` protocol, so callers dispatch on the protocol rather
    than a concrete-class union.

    Parameters
    ----------
    kind:
        One of ``"linear"``, ``"kerker"``, ``"anderson"``.
    grid:
        Required for the Kerker mixer.
    kwargs:
        Forwarded to the mixer constructor.
    """
    kind = kind.lower()
    if kind == "linear":
        return LinearMixer(**kwargs)
    if kind == "kerker":
        if grid is None:
            raise ValueError("Kerker mixing requires the FFT grid")
        return KerkerMixer(grid, **kwargs)
    if kind == "anderson":
        return AndersonMixer(**kwargs)
    raise ValueError(f"unknown mixer kind {kind!r}")
