"""Result records, table formatting and grid-data export."""

from repro.io.results import ResultRecord, save_records, load_records
from repro.io.tables import format_table, table1_layout
from repro.io.gridio import write_cube_like, write_grid_npz

__all__ = [
    "ResultRecord",
    "save_records",
    "load_records",
    "format_table",
    "table1_layout",
    "write_cube_like",
    "write_grid_npz",
]
