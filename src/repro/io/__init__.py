"""Result records, table formatting, grid-data export and checkpoints."""

from repro.io.results import ResultRecord, save_records, load_records
from repro.io.tables import format_table, table1_layout
from repro.io.gridio import write_cube_like, write_grid_npz, write_npz_atomic
from repro.io.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointMismatchError,
    SCFCheckpoint,
    has_checkpoint,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
)

__all__ = [
    "ResultRecord",
    "save_records",
    "load_records",
    "format_table",
    "table1_layout",
    "write_cube_like",
    "write_grid_npz",
    "write_npz_atomic",
    "CHECKPOINT_VERSION",
    "CheckpointMismatchError",
    "SCFCheckpoint",
    "has_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "save_checkpoint",
]
