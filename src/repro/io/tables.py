"""Plain-text table formatting for the benchmark harness output.

The benchmarks print the same rows the paper's Table I reports
(system size, atoms, cores, Np, Tflop/s, % peak); this module renders
those row dictionaries as aligned monospace tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

TABLE1_COLUMNS: tuple[str, ...] = (
    "machine",
    "system",
    "atoms",
    "cores",
    "Np",
    "Tflop/s",
    "% peak",
)


def table1_layout() -> tuple[str, ...]:
    """Column order of the paper's Table I (plus the machine column)."""
    return TABLE1_COLUMNS


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table.

    Parameters
    ----------
    rows:
        Iterable of mappings; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        Format applied to float cells.
    """
    rows = [dict(r) for r in rows]
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return "" if value is None else str(value)

    cells = [[render(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].rjust(widths[i]) for i in range(len(columns))) for r in cells)
    return f"{header}\n{sep}\n{body}"
