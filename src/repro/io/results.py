"""Lightweight result records with JSON persistence.

The benchmark harness writes every experiment's rows to JSON so the
EXPERIMENTS.md numbers can be regenerated and traced back to a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable


def _to_jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays to plain Python types for JSON."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


@dataclass
class ResultRecord:
    """One experiment result: an identifier plus arbitrary key/value data."""

    experiment: str
    data: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"experiment": self.experiment, "data": _to_jsonable(self.data)}


def save_records(records: Iterable[ResultRecord], path: str | Path) -> Path:
    """Write records to a JSON file (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [r.as_dict() for r in records]
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_records(path: str | Path) -> list[ResultRecord]:
    """Read records previously written by :func:`save_records`."""
    payload = json.loads(Path(path).read_text())
    return [ResultRecord(experiment=e["experiment"], data=e["data"]) for e in payload]
