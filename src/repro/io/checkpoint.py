"""Checkpoint/restart of the LS3DF outer self-consistent loop.

The paper's production runs survive machine-time limits and preemption by
restarting mid-SCF: the per-fragment wavefunctions, the mixing history
and the current input potential are written out periodically, and a
restarted job continues from the saved iteration as if it had never been
killed.  This module reproduces that for
:class:`repro.core.scf.LS3DFSCF` (``checkpoint_dir=`` /
``checkpoint_every=`` / ``resume=`` on ``run``).

A checkpoint is one directory holding two files:

* ``state-NNNNNN.npz`` — the array payload (input potential,
  convergence/energy histories, mixer state under ``mixer.<name>`` keys,
  per-fragment wavefunction coefficients under ``frag.<label>`` keys),
  written crash-safely by :func:`repro.io.gridio.write_npz_atomic`;
* ``manifest.json`` — small JSON metadata naming the payload file and
  recording what problem the state belongs to: format version,
  iteration counter, global grid shape, the fragment-division signature
  (:meth:`repro.core.division.SpatialDivision.signature`) and the mixer
  kind.

For very large fragments a whole iteration is a long time to lose, so a
``partial/iter-NNNNNN/`` subdirectory additionally holds
**mid-iteration** state: one ``frag-<digest>.npz`` payload per
*completed* fragment of the iteration currently in flight, plus a small
per-iteration manifest (iteration counter, problem signature, and a
fingerprint of the iteration's solve inputs).  The band-grouped PEtot_F path
(:class:`repro.core.scf.LS3DFSCF` with ``band_groups=``), which solves
fragments one group at a time, appends to it as fragments finish; a
killed run replays the saved fragments from disk and re-solves only the
unfinished ones, bit-identically.  The functions
:func:`save_partial_payload` / :func:`load_partial_payloads` /
:func:`clear_partial_payloads` deal in plain label -> arrays mappings so
this module stays free of ``core`` imports; the array schema is owned by
:meth:`repro.core.fragment_task.FragmentPipelineResult.state_dict`.

The manifest is replaced atomically *after* its payload exists, so the
pair is consistent even when the process dies mid-save (the previous
checkpoint simply stays in effect).  On load the manifest is validated
against the resuming run's grid, division and mixer — a checkpoint from
a different problem fails loudly with :class:`CheckpointMismatchError`
instead of silently producing garbage physics.

What is saved is exactly the cross-iteration state of the outer loop;
everything else (fragment Hamiltonians, executor pools, slab layouts) is
deterministic setup that a resumed run rebuilds.  Restoring the saved
state makes every subsequent iterate bit-identical to an uninterrupted
run — the property ``tests/test_checkpoint.py`` asserts for all three
mixers and for the serial and process backends.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.io.gridio import write_npz_atomic, write_text_atomic

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"
PARTIAL_DIRNAME = "partial"

_MIXER_PREFIX = "mixer."
_FRAGMENT_PREFIX = "frag."


class CheckpointMismatchError(ValueError):
    """A checkpoint belongs to a different problem than the resuming run.

    Raised by :func:`load_checkpoint` when the manifest's grid shape,
    fragment-division signature, mixer kind or format version does not
    match what the caller expects.
    """


@dataclass
class SCFCheckpoint:
    """Cross-iteration state of an LS3DF run after a completed iteration.

    Attributes
    ----------
    iteration:
        The last completed outer iteration; a resumed run continues at
        ``iteration + 1``.
    v_in:
        The next iteration's input potential (the mixer output of the
        checkpointed iteration) on the global grid.
    mixer_kind:
        Registry name of the mixing scheme (``Mixer.kind``), validated
        on load.
    mixer_state:
        The mixer's :meth:`~repro.pw.mixing.Mixer.state_dict` snapshot
        (Anderson's bounded history; parameters for the stateless
        mixers).
    fragment_coefficients:
        :meth:`~repro.core.fragment_task.FragmentStateCache.state_dict`
        snapshot — warm-start wavefunctions keyed by fragment label.
    division_signature:
        :meth:`~repro.core.division.SpatialDivision.signature` of the
        run's fragment division, validated on load.
    convergence_history:
        ``integral |V_out - V_in| d^3r`` of iterations ``1..iteration``.
    energy_history:
        Total energy of iterations ``1..iteration``.
    version:
        Checkpoint format version (:data:`CHECKPOINT_VERSION`).
    """

    iteration: int
    v_in: np.ndarray
    mixer_kind: str
    division_signature: str
    mixer_state: dict[str, np.ndarray] = field(default_factory=dict)
    fragment_coefficients: dict[str, np.ndarray] = field(default_factory=dict)
    convergence_history: list[float] = field(default_factory=list)
    energy_history: list[float] = field(default_factory=list)
    version: int = CHECKPOINT_VERSION

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """Global-grid shape of the saved input potential."""
        return tuple(int(n) for n in self.v_in.shape)


def has_checkpoint(directory: str | Path) -> bool:
    """Whether ``directory`` holds a loadable checkpoint manifest.

    Parameters
    ----------
    directory:
        Checkpoint directory (may not exist yet).

    Returns
    -------
    bool
        True when ``manifest.json`` is present.
    """
    return (Path(directory) / MANIFEST_NAME).is_file()


def read_manifest(directory: str | Path) -> dict:
    """The checkpoint's manifest metadata, without loading the payload.

    Cheap peek for callers that only need the bookkeeping (iteration
    counter, grid shape, mixer kind) — e.g. to report where a resumed
    run will continue — while :func:`load_checkpoint` materialises the
    full array payload.

    Parameters
    ----------
    directory:
        Checkpoint directory written by :func:`save_checkpoint`.

    Returns
    -------
    dict
        The parsed ``manifest.json``; raises ``FileNotFoundError`` when
        the directory holds no checkpoint.
    """
    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no checkpoint manifest in {directory}")
    return json.loads(manifest_path.read_text())


def save_checkpoint(directory: str | Path, checkpoint: SCFCheckpoint) -> Path:
    """Write a checkpoint, crash-safely, replacing any previous one.

    The payload ``.npz`` is written first (atomically), then the
    manifest is atomically replaced to point at it, then stale payload
    files of earlier checkpoints are pruned (best effort).  A kill at
    any moment leaves either the previous checkpoint or the new one
    fully intact.

    Parameters
    ----------
    directory:
        Checkpoint directory; created if needed.  One directory holds
        one checkpoint (the latest saved).
    checkpoint:
        The state to persist.

    Returns
    -------
    Path
        The manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload_name = f"state-{int(checkpoint.iteration):06d}.npz"

    arrays: dict[str, np.ndarray] = {
        "iteration": np.int64(checkpoint.iteration),
        "v_in": np.asarray(checkpoint.v_in),
        "convergence_history": np.asarray(checkpoint.convergence_history, dtype=float),
        "energy_history": np.asarray(checkpoint.energy_history, dtype=float),
    }
    for name, value in checkpoint.mixer_state.items():
        arrays[_MIXER_PREFIX + name] = np.asarray(value)
    for label, coeffs in checkpoint.fragment_coefficients.items():
        arrays[_FRAGMENT_PREFIX + label] = np.asarray(coeffs)
    write_npz_atomic(directory / payload_name, **arrays)

    manifest = {
        "format": "repro-ls3df-checkpoint",
        "version": int(checkpoint.version),
        "iteration": int(checkpoint.iteration),
        "grid_shape": list(checkpoint.grid_shape),
        "division_signature": checkpoint.division_signature,
        "mixer_kind": checkpoint.mixer_kind,
        "nfragments_cached": len(checkpoint.fragment_coefficients),
        "payload": payload_name,
    }
    manifest_path = write_text_atomic(
        directory / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
    )

    # Prune earlier payloads and any .tmp orphans a mid-save kill left
    # behind (the atomic writer's cleanup cannot run when the process
    # dies between creating the temp file and replacing it).
    for pattern in ("state-*.npz", "state-*.npz.tmp"):
        for stale in directory.glob(pattern):
            if stale.name != payload_name:
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - cleanup is best effort
                    pass
    return manifest_path


def load_checkpoint(
    directory: str | Path,
    grid_shape: tuple[int, int, int] | None = None,
    division_signature: str | None = None,
    mixer_kind: str | None = None,
) -> SCFCheckpoint:
    """Load (and validate) the checkpoint stored in ``directory``.

    Parameters
    ----------
    directory:
        Checkpoint directory written by :func:`save_checkpoint`.
    grid_shape:
        When given, the resuming run's global-grid shape; a differing
        manifest raises :class:`CheckpointMismatchError`.
    division_signature:
        When given, the resuming run's fragment-division signature
        (:meth:`~repro.core.division.SpatialDivision.signature`);
        validated likewise.
    mixer_kind:
        When given, the resuming run's mixer kind; validated likewise.

    Returns
    -------
    SCFCheckpoint
        The saved state, ready to hand to the mixer's and state cache's
        ``load_state_dict``.

    Raises
    ------
    FileNotFoundError
        No manifest (or no payload) in ``directory``.
    CheckpointMismatchError
        The checkpoint belongs to a different problem, an unsupported
        format version, or an inconsistent manifest/payload pair.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)

    version = int(manifest.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise CheckpointMismatchError(
            f"checkpoint format version {version} is not the supported "
            f"version {CHECKPOINT_VERSION}"
        )
    if grid_shape is not None and list(grid_shape) != list(manifest["grid_shape"]):
        raise CheckpointMismatchError(
            f"checkpoint was written for global grid "
            f"{tuple(manifest['grid_shape'])}, not {tuple(grid_shape)}"
        )
    if (
        division_signature is not None
        and division_signature != manifest["division_signature"]
    ):
        raise CheckpointMismatchError(
            "checkpoint belongs to a different structure/fragment division "
            f"(signature {manifest['division_signature'][:12]}... != "
            f"{division_signature[:12]}...)"
        )
    if mixer_kind is not None and mixer_kind != manifest["mixer_kind"]:
        raise CheckpointMismatchError(
            f"checkpoint was written with the {manifest['mixer_kind']!r} "
            f"mixer, not {mixer_kind!r}"
        )

    payload_path = directory / manifest["payload"]
    if not payload_path.is_file():
        raise FileNotFoundError(f"checkpoint payload {payload_path} is missing")
    with np.load(payload_path) as payload:
        arrays = {name: payload[name] for name in payload.files}
    if int(arrays["iteration"]) != int(manifest["iteration"]):
        raise CheckpointMismatchError(
            "manifest and payload disagree on the iteration counter "
            f"({manifest['iteration']} vs {int(arrays['iteration'])})"
        )

    mixer_state = {
        name[len(_MIXER_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_MIXER_PREFIX)
    }
    fragment_coefficients = {
        name[len(_FRAGMENT_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_FRAGMENT_PREFIX)
    }
    return SCFCheckpoint(
        iteration=int(manifest["iteration"]),
        v_in=arrays["v_in"],
        mixer_kind=str(manifest["mixer_kind"]),
        division_signature=str(manifest["division_signature"]),
        mixer_state=mixer_state,
        fragment_coefficients=fragment_coefficients,
        convergence_history=[float(x) for x in arrays["convergence_history"]],
        energy_history=[float(x) for x in arrays["energy_history"]],
        version=version,
    )


# ---------------------------------------------------------------------------
# Mid-iteration partial checkpoints (per-fragment payloads)


def _partial_root(directory: str | Path) -> Path:
    return Path(directory) / PARTIAL_DIRNAME


def _partial_dir(directory: str | Path, iteration: int) -> Path:
    # One subdirectory per in-flight iteration, so a resumed run that
    # replays earlier iterations never clobbers the partials of a later
    # one (the only record of that work until the run catches up again).
    return _partial_root(directory) / f"iter-{int(iteration):06d}"


def _partial_payload_name(label: str) -> str:
    # Fragment labels contain characters unfit for filenames ("F(1,0,2)x212");
    # the digest keys the file, the true label rides inside the payload.
    return "frag-" + hashlib.sha256(label.encode()).hexdigest()[:16] + ".npz"


def _read_partial_manifest(pdir: Path) -> dict | None:
    manifest_path = pdir / MANIFEST_NAME
    if not manifest_path.is_file():
        return None
    try:
        return json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):  # pragma: no cover - torn manifest
        return None


def save_partial_payload(
    directory: str | Path,
    iteration: int,
    division_signature: str,
    label: str,
    arrays: dict[str, np.ndarray],
    state_fingerprint: str = "",
) -> Path:
    """Persist one completed fragment's arrays for the in-flight iteration.

    Partials live in one subdirectory per iteration
    (``partial/iter-NNNNNN/``), so saving for iteration k never disturbs
    partials of any other iteration.  The first save of a new
    ``(division_signature, state_fingerprint)`` pair for an iteration
    wipes that iteration's stale payloads and writes a fresh manifest;
    subsequent saves append one crash-safe ``.npz`` per fragment.  A
    kill at any moment leaves every already-saved fragment loadable.

    Parameters
    ----------
    directory:
        The run's checkpoint directory (the partials live in its
        ``partial/`` subdirectory).
    iteration:
        The iteration currently in flight (1-based, the one whose
        fragments are being solved — *not yet* completed).
    division_signature:
        The run's problem signature
        (:meth:`repro.core.division.SpatialDivision.signature`-derived);
        validated on load so partials never cross problems.
    label:
        The completed fragment's label.
    arrays:
        Array-valued snapshot of the completed work (canonically
        :meth:`repro.core.fragment_task.FragmentPipelineResult.state_dict`).
    state_fingerprint:
        Digest of the iteration's actual solve inputs (input potential,
        eigensolver controls).  A resumed run whose inputs differ — a
        changed tolerance, a different initial potential — must not
        splice these fragments into its iteration; load treats a
        mismatch as stale (re-solve), not as an error.

    Returns
    -------
    Path
        The written payload path.
    """
    pdir = _partial_dir(directory, iteration)
    pdir.mkdir(parents=True, exist_ok=True)
    manifest = _read_partial_manifest(pdir)
    if (
        manifest is None
        or int(manifest.get("iteration", -1)) != int(iteration)
        or manifest.get("division_signature") != division_signature
        or manifest.get("state_fingerprint", "") != state_fingerprint
        or int(manifest.get("version", -1)) != CHECKPOINT_VERSION
    ):
        for stale in pdir.glob("frag-*.npz*"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - cleanup is best effort
                pass
        fresh = {
            "format": "repro-ls3df-partial",
            "version": CHECKPOINT_VERSION,
            "iteration": int(iteration),
            "division_signature": division_signature,
            "state_fingerprint": state_fingerprint,
        }
        write_text_atomic(
            pdir / MANIFEST_NAME,
            json.dumps(fresh, indent=2, sort_keys=True) + "\n",
        )
    payload_path = pdir / _partial_payload_name(label)
    write_npz_atomic(payload_path, **arrays)
    return payload_path


def load_partial_payloads(
    directory: str | Path,
    iteration: int,
    division_signature: str,
    state_fingerprint: str = "",
) -> dict[str, dict[str, np.ndarray]]:
    """Completed-fragment payloads saved for the given in-flight iteration.

    Stale partials — a different format version, or a
    ``state_fingerprint`` recording different solve inputs (changed
    eigensolver controls, a different input potential) — are silently
    ignored: they belong to work the resuming run must redo.  A
    *different problem* is an error.

    Parameters
    ----------
    directory:
        The run's checkpoint directory.
    iteration:
        The iteration about to (re)run.
    division_signature:
        The resuming run's problem signature.
    state_fingerprint:
        The resuming iteration's solve-input digest; must match what the
        partials were saved under for them to be replayed.

    Returns
    -------
    dict[str, dict[str, np.ndarray]]
        Fragment label -> saved arrays, empty when nothing usable exists.

    Raises
    ------
    CheckpointMismatchError
        The partials belong to a different problem signature.
    """
    pdir = _partial_dir(directory, iteration)
    manifest = _read_partial_manifest(pdir)
    if manifest is None or int(manifest.get("version", -1)) != CHECKPOINT_VERSION:
        return {}
    if int(manifest.get("iteration", -1)) != int(iteration):
        return {}
    if manifest.get("division_signature") != division_signature:
        raise CheckpointMismatchError(
            "mid-iteration partials belong to a different structure/fragment "
            f"division (signature {str(manifest.get('division_signature'))[:12]}... "
            f"!= {division_signature[:12]}...)"
        )
    if manifest.get("state_fingerprint", "") != state_fingerprint:
        return {}
    payloads: dict[str, dict[str, np.ndarray]] = {}
    for path in sorted(pdir.glob("frag-*.npz")):
        try:
            with np.load(path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError):  # pragma: no cover - torn payload
            continue
        if "label" not in arrays:
            continue
        payloads[str(arrays["label"])] = arrays
    return payloads


def clear_partial_payloads(
    directory: str | Path, up_to_iteration: int | None = None
) -> None:
    """Remove mid-iteration partials that a full checkpoint superseded.

    Parameters
    ----------
    directory:
        The run's checkpoint directory.
    up_to_iteration:
        When given, only clear the per-iteration partial directories
        whose iteration is ``<= up_to_iteration`` (partials of a *later*
        iteration are still the only record of that work and are kept);
        ``None`` clears everything.
    """
    root = _partial_root(directory)
    if not root.is_dir():
        return
    for pdir in sorted(root.glob("iter-*")):
        if not pdir.is_dir():
            continue
        manifest = _read_partial_manifest(pdir)
        iteration = int(manifest.get("iteration", -1)) if manifest else -1
        if up_to_iteration is not None and iteration > int(up_to_iteration):
            continue
        for stale in list(pdir.glob("frag-*.npz*")) + [pdir / MANIFEST_NAME]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - cleanup is best effort
                pass
        try:
            pdir.rmdir()
        except OSError:  # pragma: no cover - non-empty/racing dir
            pass
    try:
        root.rmdir()
    except OSError:  # pragma: no cover - still holds newer iterations
        pass
