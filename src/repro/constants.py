"""Physical constants and unit conversions used throughout the LS3DF code.

The plane-wave solver works internally in Hartree atomic units
(energies in Hartree, lengths in Bohr).  The atomistic builders accept
Angstrom for convenience and convert on construction.  Conversion factors
follow CODATA 2018 to the precision relevant for a model solver.
"""

from __future__ import annotations

# --- energy -----------------------------------------------------------------
HARTREE_TO_EV: float = 27.211386245988
"""One Hartree in electron volts."""

EV_TO_HARTREE: float = 1.0 / HARTREE_TO_EV
"""One electron volt in Hartree."""

RYDBERG_TO_HARTREE: float = 0.5
"""One Rydberg in Hartree (exact)."""

HARTREE_TO_RYDBERG: float = 2.0
"""One Hartree in Rydberg (exact)."""

HARTREE_TO_MEV: float = HARTREE_TO_EV * 1000.0
"""One Hartree in milli-electron-volts."""

# --- length -----------------------------------------------------------------
BOHR_TO_ANGSTROM: float = 0.529177210903
"""One Bohr radius in Angstrom."""

ANGSTROM_TO_BOHR: float = 1.0 / BOHR_TO_ANGSTROM
"""One Angstrom in Bohr radii."""

# --- misc -------------------------------------------------------------------
KB_HARTREE_PER_K: float = 3.166811563e-6
"""Boltzmann constant in Hartree per Kelvin."""

FOUR_PI: float = 12.566370614359172
"""4*pi, used in the Poisson equation in Gaussian/atomic units."""

# Lattice constants (Angstrom) of the zinc-blende materials used in the
# paper's test systems.  ZnTe is the host of the ZnTe(1-x)O(x) alloy;
# CdSe appears in the 2000-atom quantum-rod optimization benchmark.
ZINCBLENDE_LATTICE_CONSTANTS_ANG = {
    "ZnTe": 6.1034,
    "ZnO": 4.62,     # hypothetical zinc-blende ZnO
    "CdSe": 6.052,
    "ZnS": 5.4102,
    "GaAs": 5.6533,
    "Si": 5.4310,
}
