"""Post-processing analysis of LS3DF results (band-edge states, spectra)."""

from repro.analysis.states import (
    inverse_participation_ratio,
    localization_report,
    band_structure_summary,
    oxygen_band_analysis,
)

__all__ = [
    "inverse_participation_ratio",
    "localization_report",
    "band_structure_summary",
    "oxygen_band_analysis",
]
