"""Analysis of band-edge states (paper Section VII / Figure 7).

The paper's science results rest on three analyses of the folded-spectrum
band-edge states of the converged ZnTeO potential:

* the energy gap between the conduction-band minimum of the host and the
  oxygen-induced band (0.2 eV in the paper);
* the width of the oxygen-induced band (0.7 eV);
* the spatial localisation / clustering of the oxygen-induced states
  around (a few) oxygen atoms, which reduces the electron mobility.

This module provides those analyses for the model systems of this
repository: inverse participation ratios, per-atom weights of a state,
band-gap/band-width extraction and the oxygen-band report used by the
Figure-7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.structure import Structure
from repro.constants import HARTREE_TO_EV
from repro.pw.grid import FFTGrid


def inverse_participation_ratio(state_density: np.ndarray, dvol: float) -> float:
    """Inverse participation ratio  IPR = integral |psi|^4 / (integral |psi|^2)^2.

    A delocalised state spread over volume V has IPR ~ 1/V; a state
    localised in a volume v << V has IPR ~ 1/v.  Larger values mean more
    localised states (the clustering the paper reports for the high-energy
    oxygen-induced states).
    """
    d = np.asarray(state_density, dtype=float)
    if np.any(d < -1e-12):
        raise ValueError("state density must be non-negative")
    norm = float(np.sum(d) * dvol)
    if norm <= 0:
        raise ValueError("state density integrates to zero")
    return float(np.sum(d * d) * dvol / norm**2)


def atomic_weights(
    state_density: np.ndarray,
    grid: FFTGrid,
    structure: Structure,
    radius: float = 3.0,
) -> np.ndarray:
    """Fraction of a state's density within ``radius`` Bohr of each atom."""
    coords = grid.real_coordinates.reshape(-1, 3)
    d = np.asarray(state_density, dtype=float).reshape(-1)
    total = float(np.sum(d))
    weights = np.zeros(structure.natoms)
    if total <= 0:
        return weights
    cell = structure.cell
    for i, pos in enumerate(structure.positions):
        delta = coords - pos[None, :]
        delta -= cell[None, :] * np.round(delta / cell[None, :])
        mask = np.einsum("ij,ij->i", delta, delta) <= radius * radius
        weights[i] = float(np.sum(d[mask])) / total
    return weights


@dataclass
class LocalizationReport:
    """Localisation summary of a set of states."""

    energies_ev: np.ndarray
    ipr: np.ndarray
    dominant_species: list[str]
    oxygen_weight: np.ndarray


def localization_report(
    energies: np.ndarray,
    state_densities: np.ndarray,
    grid: FFTGrid,
    structure: Structure,
    radius: float = 3.0,
) -> LocalizationReport:
    """Per-state localisation report (IPR, dominant species, O weight)."""
    energies = np.asarray(energies, dtype=float)
    iprs = []
    dominant = []
    o_weight = []
    symbols = structure.symbols
    for density in state_densities:
        iprs.append(inverse_participation_ratio(density, grid.dvol))
        w = atomic_weights(density, grid, structure, radius)
        dominant.append(symbols[int(np.argmax(w))] if len(w) else "")
        o_weight.append(
            float(sum(wi for wi, s in zip(w, symbols) if s == "O"))
        )
    return LocalizationReport(
        energies_ev=energies * HARTREE_TO_EV,
        ipr=np.asarray(iprs),
        dominant_species=dominant,
        oxygen_weight=np.asarray(o_weight),
    )


@dataclass
class BandStructureSummary:
    """Gap/band-width summary extracted from a sorted eigenvalue list."""

    vbm: float
    cbm: float
    gap_ev: float
    occupied_width_ev: float


def band_structure_summary(eigenvalues: np.ndarray, nelectrons: int) -> BandStructureSummary:
    """VBM, CBM, gap and occupied-band width from a full eigenvalue list."""
    eigenvalues = np.sort(np.asarray(eigenvalues, dtype=float))
    nocc = nelectrons // 2 + (nelectrons % 2)
    if nocc < 1 or nocc >= len(eigenvalues):
        raise ValueError("need at least one occupied and one empty eigenvalue")
    vbm = float(eigenvalues[nocc - 1])
    cbm = float(eigenvalues[nocc])
    return BandStructureSummary(
        vbm=vbm,
        cbm=cbm,
        gap_ev=(cbm - vbm) * HARTREE_TO_EV,
        occupied_width_ev=(vbm - float(eigenvalues[0])) * HARTREE_TO_EV,
    )


@dataclass
class OxygenBandAnalysis:
    """The paper's Figure-7 / Section-VII quantities for the model alloy."""

    host_gap_ev: float
    oxygen_band_width_ev: float
    separation_from_host_edge_ev: float
    oxygen_state_energies_ev: np.ndarray
    oxygen_state_ipr: np.ndarray
    host_state_ipr: float


def oxygen_band_analysis(
    energies: np.ndarray,
    state_densities: np.ndarray,
    grid: FFTGrid,
    structure: Structure,
    oxygen_weight_threshold: float = 0.15,
    radius: float = 3.0,
) -> OxygenBandAnalysis:
    """Classify band-edge states into oxygen-induced and host states.

    States whose density weight on oxygen atoms exceeds the threshold are
    classified as oxygen-induced; the analysis then reports the width of
    the oxygen band, its separation from the nearest host state and the
    localisation of both classes — the same quantities the paper reads off
    Figure 7 (0.7 eV band width, 0.2 eV gap to the CBM, clustering).
    """
    report = localization_report(energies, state_densities, grid, structure, radius)
    is_oxygen = report.oxygen_weight >= oxygen_weight_threshold
    energies_ev = report.energies_ev
    if not np.any(is_oxygen) or np.all(is_oxygen):
        # Degenerate classification: report widths over the whole set.
        width = float(np.ptp(energies_ev)) if len(energies_ev) else 0.0
        return OxygenBandAnalysis(
            host_gap_ev=0.0,
            oxygen_band_width_ev=width,
            separation_from_host_edge_ev=0.0,
            oxygen_state_energies_ev=energies_ev[is_oxygen],
            oxygen_state_ipr=report.ipr[is_oxygen],
            host_state_ipr=float(np.mean(report.ipr[~is_oxygen])) if np.any(~is_oxygen) else 0.0,
        )
    e_oxy = energies_ev[is_oxygen]
    e_host = energies_ev[~is_oxygen]
    width = float(np.ptp(e_oxy))
    # Separation between the oxygen band and the nearest host state.
    separation = float(np.min(np.abs(e_host[:, None] - e_oxy[None, :])))
    return OxygenBandAnalysis(
        host_gap_ev=float(np.ptp(e_host)),
        oxygen_band_width_ev=width,
        separation_from_host_edge_ev=separation,
        oxygen_state_energies_ev=e_oxy,
        oxygen_state_ipr=report.ipr[is_oxygen],
        host_state_ipr=float(np.mean(report.ipr[~is_oxygen])),
    )
