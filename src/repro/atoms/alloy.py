"""Substitutional alloy builders.

The paper's science target is the ZnTe(1-x)O(x) alloy with x ~ 3%: a small
fraction of Te anions substituted by oxygen at random, which produces
oxygen-induced states inside the ZnTe band gap.  Because the oxygen
fraction is small, large supercells are needed to represent the random
distribution — exactly the regime where LS3DF beats O(N^3) DFT.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.atoms.structure import Structure
from repro.atoms.zincblende import zincblende_supercell


def substitute_anions(
    structure: Structure,
    host_anion: str,
    substituent: str,
    fraction: float,
    rng: np.random.Generator | int | None = None,
) -> Structure:
    """Randomly replace a fraction of ``host_anion`` atoms by ``substituent``.

    Parameters
    ----------
    structure:
        Host structure (modified copy returned; the input is untouched).
    host_anion:
        Symbol of the species being substituted (e.g. ``"Te"``).
    substituent:
        Symbol of the replacement species (e.g. ``"O"``).
    fraction:
        Fraction of host anions to replace, in ``[0, 1]``.  The number of
        substitutions is ``round(fraction * n_host)``, matching the paper's
        convention (3% of Te -> 54 O atoms in the 8x6x9 / 3,456-atom cell).
    rng:
        ``numpy`` random generator or integer seed for reproducibility.

    Returns
    -------
    Structure
        New structure with substitutions applied.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    symbols = structure.symbols
    host_indices = [i for i, s in enumerate(symbols) if s == host_anion]
    if not host_indices and fraction > 0:
        raise ValueError(f"structure contains no {host_anion!r} atoms")
    n_sub = int(round(fraction * len(host_indices)))
    chosen = rng.choice(host_indices, size=n_sub, replace=False) if n_sub else []
    new_symbols = list(symbols)
    for idx in chosen:
        new_symbols[int(idx)] = substituent
    return Structure(structure.cell, new_symbols, structure.positions)


def build_znteo_alloy(
    dims: Sequence[int],
    oxygen_fraction: float = 0.03,
    rng: np.random.Generator | int | None = 0,
    lattice_constant: float | None = None,
) -> Structure:
    """Build a ZnTe(1-x)O(x) alloy supercell as used in the paper.

    Parameters
    ----------
    dims:
        Supercell dimensions ``(m1, m2, m3)`` in eight-atom cells; the
        paper's systems range from 3x3x3 (216 atoms) to 16x16x8
        (16,384 atoms).
    oxygen_fraction:
        Fraction of Te sites replaced by O; the paper uses ~3%.
    rng:
        Random generator or seed controlling which Te sites are replaced.
    lattice_constant:
        Optional override of the ZnTe lattice constant (Bohr).

    Returns
    -------
    Structure
        The alloy supercell (unrelaxed; pass through
        :func:`repro.atoms.vff.relax_structure` for the VFF-relaxed
        geometry, as done in the paper).
    """
    host = zincblende_supercell(dims, "Zn", "Te", lattice_constant)
    return substitute_anions(host, "Te", "O", oxygen_fraction, rng)


def oxygen_site_indices(structure: Structure) -> np.ndarray:
    """Indices of the oxygen atoms in an alloy structure."""
    return np.array(
        [i for i, s in enumerate(structure.symbols) if s == "O"], dtype=int
    )


def alloy_composition_summary(structure: Structure) -> dict[str, float]:
    """Return per-species fractions; useful for verifying alloy builders."""
    counts = structure.species_counts()
    total = structure.natoms
    return {sym: counts[sym] / total for sym in sorted(counts)}
