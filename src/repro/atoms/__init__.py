"""Atomistic substrate: structures, crystal builders, neighbours and VFF.

This subpackage provides everything the LS3DF driver needs to describe the
physical systems of the paper: periodic supercells of zinc-blende
semiconductors, random-substitution alloys such as ZnTe(1-x)O(x), periodic
neighbour lists, and the Keating valence force field (VFF) used by the
authors to relax the alloy geometries before the electronic-structure
calculation.
"""

from repro.atoms.structure import Atom, Species, Structure
from repro.atoms.zincblende import zincblende_unit_cell, zincblende_supercell
from repro.atoms.alloy import substitute_anions, build_znteo_alloy
from repro.atoms.neighbors import NeighborList, build_neighbor_list
from repro.atoms.vff import KeatingVFF, relax_structure
from repro.atoms.toy import cscl_binary, simple_cubic

__all__ = [
    "Atom",
    "Species",
    "Structure",
    "zincblende_unit_cell",
    "zincblende_supercell",
    "substitute_anions",
    "build_znteo_alloy",
    "NeighborList",
    "build_neighbor_list",
    "KeatingVFF",
    "relax_structure",
    "cscl_binary",
    "simple_cubic",
]
