"""Keating valence force field (VFF) for zinc-blende semiconductors.

The paper relaxes the ZnTeO alloy geometries with the classical valence
force field (VFF) rather than with DFT forces, because for these alloys the
VFF relaxation is accurate enough and vastly cheaper.  This module
implements the standard Keating form

    E = sum_bonds  3*alpha/(16 d0^2) * (|r_ij|^2 - d0^2)^2
      + sum_angles 3*beta /(8 d0_ij d0_ik) * (r_ij . r_ik + d0_ij d0_ik / 3)^2

with per-bond equilibrium lengths ``d0`` taken from the sum of covalent
radii (or a per-pair table), analytic forces, and an L-BFGS relaxer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize

from repro.atoms.structure import Structure, get_species
from repro.atoms.neighbors import build_neighbor_list, tetrahedral_bond_cutoff

# Keating parameters (N/m in the literature; here in model units of
# Hartree/Bohr^2 scaled to give realistic relative stiffness).  Only ratios
# matter for the relaxed geometry shape; the default values are typical
# II-VI semiconductor magnitudes.
DEFAULT_ALPHA = 0.0150
DEFAULT_BETA = 0.0035

# Equilibrium bond lengths (Bohr) for the pairs appearing in the paper's
# systems.  Values are ideal zinc-blende bond lengths a*sqrt(3)/4 from the
# tabulated lattice constants; Zn-O is shorter, which is what drives the
# local lattice distortion around oxygen substitutions.
DEFAULT_BOND_LENGTHS = {
    frozenset(("Zn", "Te")): 4.9963,
    frozenset(("Zn", "O")): 3.7823,
    frozenset(("Zn", "S")): 4.4287,
    frozenset(("Cd", "Se")): 4.9543,
    frozenset(("Ga", "As")): 4.6280,
    frozenset(("Si", "Si")): 4.4462,
}


def _equilibrium_length(sym_i: str, sym_j: str, table: dict) -> float:
    key = frozenset((sym_i, sym_j))
    if key in table:
        return table[key]
    # Fall back to the sum of covalent radii.
    return get_species(sym_i).covalent_radius + get_species(sym_j).covalent_radius


@dataclass
class KeatingVFF:
    """Keating valence force field bound to a specific structure topology.

    The neighbour topology (who is bonded to whom) is fixed at construction
    from the *input* geometry; the energy/forces are then smooth functions
    of the atomic positions, which is what a relaxation needs.

    Parameters
    ----------
    structure:
        Structure defining the cell, species and the bonding topology.
    alpha, beta:
        Keating bond-stretch and angle-bend force constants.
    bond_lengths:
        Optional per-pair equilibrium bond length table (Bohr), keyed by
        ``frozenset((sym_i, sym_j))``.
    cutoff:
        Neighbour cutoff (Bohr); default picks up first neighbours only.
    """

    structure: Structure
    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    bond_lengths: dict = field(default_factory=lambda: dict(DEFAULT_BOND_LENGTHS))
    cutoff: float | None = None

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("force constants must be non-negative")
        cutoff = self.cutoff or tetrahedral_bond_cutoff(self.structure)
        nl = build_neighbor_list(self.structure, cutoff)
        self._pairs = nl.pairs
        symbols = self.structure.symbols
        self._d0 = np.array(
            [
                _equilibrium_length(symbols[i], symbols[j], self.bond_lengths)
                for i, j in self._pairs
            ]
        )
        # Angle triples (j, i, k): center atom i with two distinct bonded
        # neighbours j < k.
        adj: list[list[int]] = [[] for _ in range(self.structure.natoms)]
        pair_index: dict[tuple[int, int], int] = {}
        for p, (a, b) in enumerate(self._pairs):
            adj[int(a)].append(int(b))
            adj[int(b)].append(int(a))
            pair_index[(int(a), int(b))] = p
            pair_index[(int(b), int(a))] = p
        triples: list[tuple[int, int, int]] = []
        d0_products: list[float] = []
        for i, neigh in enumerate(adj):
            for a_idx in range(len(neigh)):
                for b_idx in range(a_idx + 1, len(neigh)):
                    j, k = neigh[a_idx], neigh[b_idx]
                    triples.append((j, i, k))
                    d0_ij = self._d0[pair_index[(i, j)]]
                    d0_ik = self._d0[pair_index[(i, k)]]
                    d0_products.append(d0_ij * d0_ik)
        self._triples = np.asarray(triples, dtype=int).reshape(-1, 3)
        self._d0prod = np.asarray(d0_products)
        self._ref_positions = self.structure.positions

    # ------------------------------------------------------------------
    @property
    def nbonds(self) -> int:
        return len(self._pairs)

    @property
    def nangles(self) -> int:
        return len(self._triples)

    def _min_image(self, vec: np.ndarray) -> np.ndarray:
        cell = self.structure.cell
        return vec - cell * np.round(vec / cell)

    def _bond_vectors(self, positions: np.ndarray) -> np.ndarray:
        i, j = self._pairs[:, 0], self._pairs[:, 1]
        d = positions[j] - positions[i]
        return self._min_image(d)

    def energy(self, positions: np.ndarray | None = None) -> float:
        """Total VFF energy (model Hartree) for the given positions."""
        pos = self.structure.positions if positions is None else np.asarray(positions)
        e_bond = 0.0
        e_angle = 0.0
        if self.nbonds:
            d = self._bond_vectors(pos)
            r2 = np.einsum("ij,ij->i", d, d)
            e_bond = float(
                np.sum(3.0 * self.alpha / (16.0 * self._d0**2) * (r2 - self._d0**2) ** 2)
            )
        if self.nangles:
            j, i, k = self._triples[:, 0], self._triples[:, 1], self._triples[:, 2]
            dij = self._min_image(pos[j] - pos[i])
            dik = self._min_image(pos[k] - pos[i])
            dot = np.einsum("ij,ij->i", dij, dik)
            e_angle = float(
                np.sum(
                    3.0 * self.beta / (8.0 * self._d0prod) * (dot + self._d0prod / 3.0) ** 2
                )
            )
        return e_bond + e_angle

    def forces(self, positions: np.ndarray | None = None) -> np.ndarray:
        """Analytic forces ``-dE/dr`` (model Hartree/Bohr), shape (natoms, 3)."""
        pos = self.structure.positions if positions is None else np.asarray(positions)
        grad = np.zeros_like(pos)
        if self.nbonds:
            i, j = self._pairs[:, 0], self._pairs[:, 1]
            d = self._bond_vectors(pos)
            r2 = np.einsum("ij,ij->i", d, d)
            pref = 3.0 * self.alpha / (16.0 * self._d0**2) * 2.0 * (r2 - self._d0**2)
            # dE/dr_j = pref * 2 d ;  dE/dr_i = -pref * 2 d
            contrib = (pref[:, None] * 2.0) * d
            np.add.at(grad, j, contrib)
            np.add.at(grad, i, -contrib)
        if self.nangles:
            j, i, k = self._triples[:, 0], self._triples[:, 1], self._triples[:, 2]
            dij = self._min_image(pos[j] - pos[i])
            dik = self._min_image(pos[k] - pos[i])
            dot = np.einsum("ij,ij->i", dij, dik)
            pref = 3.0 * self.beta / (8.0 * self._d0prod) * 2.0 * (dot + self._d0prod / 3.0)
            # d(dot)/dr_j = dik ; d(dot)/dr_k = dij ; d(dot)/dr_i = -(dij + dik)
            np.add.at(grad, j, pref[:, None] * dik)
            np.add.at(grad, k, pref[:, None] * dij)
            np.add.at(grad, i, -pref[:, None] * (dij + dik))
        return -grad

    # ------------------------------------------------------------------
    def relax(
        self,
        max_steps: int = 200,
        force_tolerance: float = 1e-4,
    ) -> tuple[Structure, dict]:
        """Relax atomic positions at fixed cell with L-BFGS.

        Returns the relaxed structure and an info dict with the initial and
        final energies, the maximum residual force and the step count.
        """
        x0 = self.structure.positions.ravel().copy()
        natoms = self.structure.natoms

        def fun(x: np.ndarray) -> tuple[float, np.ndarray]:
            pos = x.reshape(natoms, 3)
            e = self.energy(pos)
            g = -self.forces(pos)
            return e, g.ravel()

        e0 = self.energy()
        res = minimize(
            fun,
            x0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": max_steps, "gtol": force_tolerance},
        )
        final_pos = res.x.reshape(natoms, 3)
        relaxed = Structure(self.structure.cell, self.structure.symbols, final_pos)
        fmax = float(np.max(np.abs(self.forces(final_pos)))) if natoms else 0.0
        info = {
            "initial_energy": e0,
            "final_energy": float(res.fun),
            "max_force": fmax,
            "nsteps": int(res.nit),
            "converged": bool(res.success or fmax < 10 * force_tolerance),
        }
        return relaxed, info


def relax_structure(
    structure: Structure,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
    max_steps: int = 200,
    force_tolerance: float = 1e-4,
) -> tuple[Structure, dict]:
    """Convenience wrapper: build a :class:`KeatingVFF` and relax.

    This mirrors the paper's workflow where every alloy supercell is
    VFF-relaxed before the LS3DF electronic-structure calculation.
    """
    vff = KeatingVFF(structure, alpha=alpha, beta=beta)
    return vff.relax(max_steps=max_steps, force_tolerance=force_tolerance)
