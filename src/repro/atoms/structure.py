"""Periodic atomic structures.

A :class:`Structure` is an orthorhombic periodic supercell holding atom
positions (in Bohr) and per-atom species.  The LS3DF code only needs
orthorhombic cells (the paper's supercells are m1 x m2 x m3 repetitions of
the cubic eight-atom zinc-blende cell), which keeps the FFT grids and the
fragment division axis-aligned and simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR


@dataclass(frozen=True)
class Species:
    """A chemical species with the parameters the model Hamiltonian needs.

    Parameters
    ----------
    symbol:
        Chemical symbol, e.g. ``"Zn"``.
    valence:
        Number of valence electrons contributed to the calculation.  The
        paper's ZnTeO runs exclude the Zn d states, giving an average of
        four valence electrons per atom.
    covalent_radius:
        Covalent radius in Bohr, used for passivation bond lengths.
    mass:
        Atomic mass (amu), used by the VFF relaxer's (fictitious) dynamics.
    """

    symbol: str
    valence: int
    covalent_radius: float
    mass: float = 1.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


# Registry of the species used in the paper's test systems.  Valence counts
# follow the paper (no Zn d electrons -> Zn contributes 2 s electrons, the
# anions contribute 6, H passivation contributes 1).
SPECIES_REGISTRY: dict[str, Species] = {
    "Zn": Species("Zn", valence=2, covalent_radius=2.31, mass=65.38),
    "Cd": Species("Cd", valence=2, covalent_radius=2.59, mass=112.41),
    "Te": Species("Te", valence=6, covalent_radius=2.57, mass=127.60),
    "Se": Species("Se", valence=6, covalent_radius=2.27, mass=78.97),
    "S": Species("S", valence=6, covalent_radius=1.98, mass=32.06),
    "O": Species("O", valence=6, covalent_radius=1.25, mass=16.00),
    "Si": Species("Si", valence=4, covalent_radius=2.10, mass=28.09),
    "Ga": Species("Ga", valence=3, covalent_radius=2.31, mass=69.72),
    "As": Species("As", valence=5, covalent_radius=2.25, mass=74.92),
    "H": Species("H", valence=1, covalent_radius=0.59, mass=1.008),
    # Partially charged pseudo-hydrogens used to passivate polar surfaces
    # (see Wang & Li, PRB 69, 153302 (2004)).  The fractional valence is
    # rounded to the nearest integer electron for the model solver; the
    # distinction matters only for the passivation potential strength.
    "H_cation": Species("H_cation", valence=1, covalent_radius=0.59, mass=1.008),
    "H_anion": Species("H_anion", valence=1, covalent_radius=0.59, mass=1.008),
}


def get_species(symbol: str) -> Species:
    """Look up a species by symbol, raising a clear error when unknown."""
    try:
        return SPECIES_REGISTRY[symbol]
    except KeyError as exc:
        raise KeyError(
            f"Unknown species {symbol!r}; known: {sorted(SPECIES_REGISTRY)}"
        ) from exc


@dataclass
class Atom:
    """A single atom: a species symbol and a Cartesian position in Bohr."""

    symbol: str
    position: np.ndarray
    tag: int = -1

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float)
        if self.position.shape != (3,):
            raise ValueError("Atom position must be a 3-vector")

    @property
    def species(self) -> Species:
        return get_species(self.symbol)


class Structure:
    """An orthorhombic periodic supercell of atoms.

    Parameters
    ----------
    cell:
        Length-3 sequence of orthorhombic cell edge lengths in Bohr.
    symbols:
        Sequence of chemical symbols, one per atom.
    positions:
        ``(natoms, 3)`` Cartesian positions in Bohr.  Positions are wrapped
        into the home cell on construction.
    """

    def __init__(
        self,
        cell: Sequence[float],
        symbols: Sequence[str],
        positions: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        cell_arr = np.asarray(cell, dtype=float)
        if cell_arr.shape != (3,):
            raise ValueError("cell must be a length-3 sequence (orthorhombic)")
        if np.any(cell_arr <= 0):
            raise ValueError("cell lengths must be positive")
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("positions must have shape (natoms, 3)")
        if len(symbols) != pos.shape[0]:
            raise ValueError(
                f"got {len(symbols)} symbols but {pos.shape[0]} positions"
            )
        for s in symbols:
            get_species(s)  # validate
        self._cell = cell_arr
        self._symbols = list(symbols)
        self._positions = np.mod(pos, cell_arr[None, :])

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_angstrom(
        cls,
        cell_ang: Sequence[float],
        symbols: Sequence[str],
        positions_ang: np.ndarray | Sequence[Sequence[float]],
    ) -> "Structure":
        """Build a structure from Angstrom inputs (converted to Bohr)."""
        cell = np.asarray(cell_ang, dtype=float) * ANGSTROM_TO_BOHR
        pos = np.asarray(positions_ang, dtype=float) * ANGSTROM_TO_BOHR
        return cls(cell, symbols, pos)

    # -- basic accessors --------------------------------------------------
    @property
    def cell(self) -> np.ndarray:
        """Orthorhombic cell edge lengths (Bohr), shape ``(3,)``."""
        return self._cell.copy()

    @property
    def volume(self) -> float:
        """Cell volume in Bohr^3."""
        return float(np.prod(self._cell))

    @property
    def natoms(self) -> int:
        return len(self._symbols)

    @property
    def symbols(self) -> list[str]:
        return list(self._symbols)

    @property
    def positions(self) -> np.ndarray:
        """Cartesian positions (Bohr), shape ``(natoms, 3)``."""
        return self._positions.copy()

    @property
    def fractional_positions(self) -> np.ndarray:
        """Positions in fractional (reduced) coordinates, in [0, 1)."""
        return self._positions / self._cell[None, :]

    def species_counts(self) -> dict[str, int]:
        """Histogram of species symbols present in the cell."""
        counts: dict[str, int] = {}
        for s in self._symbols:
            counts[s] = counts.get(s, 0) + 1
        return counts

    def total_valence_electrons(self) -> int:
        """Total number of valence electrons in the cell."""
        return sum(get_species(s).valence for s in self._symbols)

    def formula(self) -> str:
        """Hill-ish chemical formula string, e.g. ``'O54 Te1674 Zn1728'``."""
        counts = self.species_counts()
        return " ".join(f"{sym}{counts[sym]}" for sym in sorted(counts))

    # -- mutation-ish helpers (return new arrays, keep Structure simple) ---
    def set_positions(self, positions: np.ndarray) -> None:
        """Replace all positions (Bohr); wrapped back into the home cell."""
        pos = np.asarray(positions, dtype=float)
        if pos.shape != self._positions.shape:
            raise ValueError("positions shape mismatch")
        self._positions = np.mod(pos, self._cell[None, :])

    def displaced(self, displacements: np.ndarray) -> "Structure":
        """Return a copy with atoms displaced by ``displacements`` (Bohr)."""
        disp = np.asarray(displacements, dtype=float)
        if disp.shape != self._positions.shape:
            raise ValueError("displacements shape mismatch")
        return Structure(self._cell, self._symbols, self._positions + disp)

    def copy(self) -> "Structure":
        return Structure(self._cell, self._symbols, self._positions)

    # -- periodic geometry -------------------------------------------------
    def minimum_image_vector(self, i: int, j: int) -> np.ndarray:
        """Minimum-image vector from atom ``i`` to atom ``j`` (Bohr)."""
        d = self._positions[j] - self._positions[i]
        return d - self._cell * np.round(d / self._cell)

    def minimum_image_distance(self, i: int, j: int) -> float:
        """Minimum-image distance between atoms ``i`` and ``j`` (Bohr)."""
        return float(np.linalg.norm(self.minimum_image_vector(i, j)))

    def pairwise_min_image(self, positions: np.ndarray | None = None) -> np.ndarray:
        """All-pairs minimum-image displacement tensor ``(n, n, 3)``.

        Only suitable for small systems (used by tests and the VFF checks);
        production neighbour finding uses :mod:`repro.atoms.neighbors`.
        """
        pos = self._positions if positions is None else np.asarray(positions)
        d = pos[None, :, :] - pos[:, None, :]
        return d - self._cell[None, None, :] * np.round(d / self._cell[None, None, :])

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self.natoms

    def __iter__(self) -> Iterator[Atom]:
        for idx, (sym, pos) in enumerate(zip(self._symbols, self._positions)):
            yield Atom(sym, pos.copy(), tag=idx)

    def __getitem__(self, idx: int) -> Atom:
        return Atom(self._symbols[idx], self._positions[idx].copy(), tag=idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Structure({self.formula()}, natoms={self.natoms}, "
            f"cell={np.round(self._cell, 3).tolist()} Bohr)"
        )


def concatenate_structures(structures: Iterable[Structure]) -> Structure:
    """Merge structures sharing the same cell into one Structure.

    Used when passivation atoms are appended to a fragment's atom list.
    """
    structures = list(structures)
    if not structures:
        raise ValueError("need at least one structure")
    cell = structures[0].cell
    for s in structures[1:]:
        if not np.allclose(s.cell, cell):
            raise ValueError("all structures must share the same cell")
    symbols: list[str] = []
    positions: list[np.ndarray] = []
    for s in structures:
        symbols.extend(s.symbols)
        positions.append(s.positions)
    return Structure(cell, symbols, np.vstack(positions))
