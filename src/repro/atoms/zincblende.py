"""Zinc-blende crystal builders.

The paper's test systems are ``m1 x m2 x m3`` supercells of the cubic
eight-atom zinc-blende unit cell (so the total atom count is
``8 * m1 * m2 * m3``).  These builders generate exactly that geometry; the
alloy module then substitutes a fraction of anions by oxygen.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR, ZINCBLENDE_LATTICE_CONSTANTS_ANG
from repro.atoms.structure import Structure

# Fractional coordinates of the eight atoms of the conventional cubic
# zinc-blende cell: four cations on the FCC lattice, four anions displaced
# by (1/4, 1/4, 1/4).
_CATION_FRAC = np.array(
    [
        [0.00, 0.00, 0.00],
        [0.00, 0.50, 0.50],
        [0.50, 0.00, 0.50],
        [0.50, 0.50, 0.00],
    ]
)
_ANION_FRAC = _CATION_FRAC + 0.25


def zincblende_unit_cell(
    cation: str = "Zn",
    anion: str = "Te",
    lattice_constant: float | None = None,
) -> Structure:
    """Build the conventional eight-atom cubic zinc-blende cell.

    Parameters
    ----------
    cation, anion:
        Species symbols for the two sublattices.
    lattice_constant:
        Cubic lattice constant in Bohr.  When ``None``, the value is looked
        up from :data:`repro.constants.ZINCBLENDE_LATTICE_CONSTANTS_ANG`
        using the compound name ``cation + anion`` (e.g. ``"ZnTe"``).

    Returns
    -------
    Structure
        Eight-atom cell; cations occupy even indices 0-3, anions 4-7.
    """
    if lattice_constant is None:
        compound = f"{cation}{anion}"
        try:
            a_ang = ZINCBLENDE_LATTICE_CONSTANTS_ANG[compound]
        except KeyError as exc:
            raise KeyError(
                f"No tabulated lattice constant for {compound}; pass one explicitly"
            ) from exc
        lattice_constant = a_ang * ANGSTROM_TO_BOHR
    if lattice_constant <= 0:
        raise ValueError("lattice_constant must be positive")
    a = float(lattice_constant)
    cell = np.array([a, a, a])
    frac = np.vstack([_CATION_FRAC, _ANION_FRAC])
    symbols = [cation] * 4 + [anion] * 4
    return Structure(cell, symbols, frac * a)


def zincblende_supercell(
    dims: Sequence[int],
    cation: str = "Zn",
    anion: str = "Te",
    lattice_constant: float | None = None,
) -> Structure:
    """Build an ``m1 x m2 x m3`` supercell of eight-atom zinc-blende cells.

    This is the geometry used throughout the paper: the supercell dimension
    ``dims = (m1, m2, m3)`` is reported in units of the cubic eight-atom
    cell, and the LS3DF fragment grid coincides with this cell grid (the
    smallest fragment is one eight-atom cell).

    Parameters
    ----------
    dims:
        Number of cubic cells along each axis, each >= 1.
    cation, anion, lattice_constant:
        As for :func:`zincblende_unit_cell`.

    Returns
    -------
    Structure
        Supercell with ``8 * m1 * m2 * m3`` atoms.  Atoms are ordered cell
        by cell (z fastest), cations before anions within each cell, which
        makes the fragment assignment of atoms to cells deterministic.
    """
    dims_arr = np.asarray(dims, dtype=int)
    if dims_arr.shape != (3,) or np.any(dims_arr < 1):
        raise ValueError("dims must be three positive integers")
    unit = zincblende_unit_cell(cation, anion, lattice_constant)
    a = unit.cell[0]
    cell = dims_arr * a
    unit_pos = unit.positions
    unit_sym = unit.symbols
    symbols: list[str] = []
    positions: list[np.ndarray] = []
    for i in range(dims_arr[0]):
        for j in range(dims_arr[1]):
            for k in range(dims_arr[2]):
                shift = np.array([i, j, k], dtype=float) * a
                positions.append(unit_pos + shift[None, :])
                symbols.extend(unit_sym)
    return Structure(cell, symbols, np.vstack(positions))


def supercell_atom_cell_indices(dims: Sequence[int]) -> np.ndarray:
    """Return the (m1,m2,m3) cell index of every atom of a supercell.

    The ordering matches :func:`zincblende_supercell`.  Shape is
    ``(8*m1*m2*m3, 3)``.  Used by the fragment division to assign atoms to
    grid cells without geometric searches.
    """
    dims_arr = np.asarray(dims, dtype=int)
    if dims_arr.shape != (3,) or np.any(dims_arr < 1):
        raise ValueError("dims must be three positive integers")
    indices = []
    for i in range(dims_arr[0]):
        for j in range(dims_arr[1]):
            for k in range(dims_arr[2]):
                indices.extend([[i, j, k]] * 8)
    return np.asarray(indices, dtype=int)
