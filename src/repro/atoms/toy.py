"""Small toy crystals for fast tests and laptop-scale LS3DF demonstrations.

The paper's production systems (eight-atom zinc-blende cells, thousands of
atoms) are far beyond what a pure-Python plane-wave solver can turn around
in a test suite.  These builders provide *structurally simpler* periodic
crystals — a CsCl-type binary (two atoms per cubic cell) and a simple-cubic
elemental crystal (one atom per cell) — that exercise exactly the same
LS3DF code paths (fragment grids, passivation, patching, SCF) at a small
fraction of the cost.  The LS3DF fragment grid coincides with the cubic
cell grid, just as it does for the eight-atom zinc-blende cells.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.atoms.structure import Structure


def cscl_binary(
    dims: Sequence[int],
    cation: str = "Zn",
    anion: str = "O",
    lattice_constant: float = 6.0,
) -> Structure:
    """CsCl-structure binary supercell: 2 atoms per cubic cell.

    Parameters
    ----------
    dims:
        Supercell size in cubic cells ``(m1, m2, m3)``.
    cation, anion:
        Species on the corner and body-centre sublattices.
    lattice_constant:
        Cubic cell edge (Bohr).

    Returns
    -------
    Structure
        Supercell with ``2 * m1 * m2 * m3`` atoms, ordered cell by cell
        (cation then anion), matching the LS3DF cell-assignment convention.
    """
    dims_arr = np.asarray(dims, dtype=int)
    if dims_arr.shape != (3,) or np.any(dims_arr < 1):
        raise ValueError("dims must be three positive integers")
    if lattice_constant <= 0:
        raise ValueError("lattice_constant must be positive")
    a = float(lattice_constant)
    cell = dims_arr * a
    symbols: list[str] = []
    positions: list[list[float]] = []
    for i in range(dims_arr[0]):
        for j in range(dims_arr[1]):
            for k in range(dims_arr[2]):
                base = np.array([i, j, k], dtype=float) * a
                symbols.append(cation)
                positions.append((base + 0.25 * a).tolist())
                symbols.append(anion)
                positions.append((base + 0.75 * a).tolist())
    return Structure(cell, symbols, np.asarray(positions))


def simple_cubic(
    dims: Sequence[int],
    species: str = "Si",
    lattice_constant: float = 5.5,
) -> Structure:
    """Simple-cubic elemental supercell: 1 atom per cubic cell.

    The cheapest possible LS3DF workload — useful for property-based tests
    that need a real (if tiny) periodic solid per hypothesis example.
    """
    dims_arr = np.asarray(dims, dtype=int)
    if dims_arr.shape != (3,) or np.any(dims_arr < 1):
        raise ValueError("dims must be three positive integers")
    if lattice_constant <= 0:
        raise ValueError("lattice_constant must be positive")
    a = float(lattice_constant)
    cell = dims_arr * a
    symbols: list[str] = []
    positions: list[list[float]] = []
    for i in range(dims_arr[0]):
        for j in range(dims_arr[1]):
            for k in range(dims_arr[2]):
                symbols.append(species)
                positions.append(((np.array([i, j, k]) + 0.5) * a).tolist())
    return Structure(cell, symbols, np.asarray(positions))
