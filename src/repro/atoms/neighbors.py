"""Periodic neighbour lists via spatial binning (linked cells).

The Keating VFF and the passivation logic both need the four tetrahedral
neighbours of every atom in a periodic zinc-blende supercell.  A naive
all-pairs search is O(N^2); the linked-cell construction here is O(N) and
follows the standard HPC idiom of binning atoms into cells no smaller than
the cutoff and searching only the 27 surrounding bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atoms.structure import Structure


@dataclass
class NeighborList:
    """Neighbour list for a periodic structure.

    Attributes
    ----------
    pairs:
        ``(npairs, 2)`` integer array of atom index pairs ``(i, j)`` with
        ``i < j`` and minimum-image distance below the cutoff.
    vectors:
        ``(npairs, 3)`` minimum-image displacement vectors from ``i`` to
        ``j`` in Bohr.
    distances:
        ``(npairs,)`` pair distances in Bohr.
    cutoff:
        Cutoff radius used to build the list (Bohr).
    """

    pairs: np.ndarray
    vectors: np.ndarray
    distances: np.ndarray
    cutoff: float

    @property
    def npairs(self) -> int:
        return len(self.pairs)

    def neighbors_of(self, i: int) -> list[int]:
        """All neighbours of atom ``i`` (both orientations of each pair)."""
        out: list[int] = []
        for (a, b) in self.pairs:
            if a == i:
                out.append(int(b))
            elif b == i:
                out.append(int(a))
        return out

    def coordination_numbers(self, natoms: int) -> np.ndarray:
        """Number of neighbours of each atom; shape ``(natoms,)``."""
        coord = np.zeros(natoms, dtype=int)
        np.add.at(coord, self.pairs[:, 0], 1)
        np.add.at(coord, self.pairs[:, 1], 1)
        return coord

    def adjacency(self, natoms: int) -> list[list[tuple[int, np.ndarray]]]:
        """Per-atom adjacency: list of ``(j, vector_i_to_j)`` for each atom."""
        adj: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(natoms)]
        for (a, b), vec in zip(self.pairs, self.vectors):
            adj[int(a)].append((int(b), vec))
            adj[int(b)].append((int(a), -vec))
        return adj


def build_neighbor_list(structure: Structure, cutoff: float) -> NeighborList:
    """Build a minimum-image neighbour list with a linked-cell search.

    Parameters
    ----------
    structure:
        Periodic orthorhombic structure.
    cutoff:
        Pair cutoff in Bohr.  Must be positive and no larger than half the
        smallest cell edge *unless* the cell is so small that a brute-force
        minimum-image search is used instead (handled automatically).

    Returns
    -------
    NeighborList
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    cell = structure.cell
    pos = structure.positions
    n = structure.natoms
    if n == 0:
        empty = np.zeros((0, 2), dtype=int)
        return NeighborList(empty, np.zeros((0, 3)), np.zeros(0), cutoff)

    # For tiny cells (fewer than 3 bins along any axis) fall back to the
    # O(N^2) minimum-image search: the linked-cell bookkeeping would have to
    # consider multiple periodic images per bin and is not worth it.
    nbins = np.maximum(1, np.floor(cell / cutoff).astype(int))
    if np.any(nbins < 3) or n < 64:
        return _brute_force_neighbors(structure, cutoff)

    bin_size = cell / nbins
    bin_index = np.floor(pos / bin_size).astype(int) % nbins

    # Map from bin -> atom indices
    flat = (bin_index[:, 0] * nbins[1] + bin_index[:, 1]) * nbins[2] + bin_index[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    boundaries = np.searchsorted(sorted_flat, np.arange(np.prod(nbins) + 1))

    def atoms_in_bin(bx: int, by: int, bz: int) -> np.ndarray:
        f = (bx * nbins[1] + by) * nbins[2] + bz
        return order[boundaries[f] : boundaries[f + 1]]

    pairs: list[tuple[int, int]] = []
    vectors: list[np.ndarray] = []
    distances: list[float] = []
    cutoff2 = cutoff * cutoff
    offsets = [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    for bx in range(nbins[0]):
        for by in range(nbins[1]):
            for bz in range(nbins[2]):
                center_atoms = atoms_in_bin(bx, by, bz)
                if len(center_atoms) == 0:
                    continue
                for (dx, dy, dz) in offsets:
                    ox = (bx + dx) % nbins[0]
                    oy = (by + dy) % nbins[1]
                    oz = (bz + dz) % nbins[2]
                    other_atoms = atoms_in_bin(ox, oy, oz)
                    if len(other_atoms) == 0:
                        continue
                    d = pos[other_atoms][None, :, :] - pos[center_atoms][:, None, :]
                    d -= cell[None, None, :] * np.round(d / cell[None, None, :])
                    dist2 = np.einsum("ijk,ijk->ij", d, d)
                    ii, jj = np.nonzero(dist2 < cutoff2)
                    for a_loc, b_loc in zip(ii, jj):
                        a = int(center_atoms[a_loc])
                        b = int(other_atoms[b_loc])
                        if a < b:
                            pairs.append((a, b))
                            vectors.append(d[a_loc, b_loc])
                            distances.append(float(np.sqrt(dist2[a_loc, b_loc])))
    if pairs:
        pairs_arr = np.asarray(pairs, dtype=int)
        vec_arr = np.asarray(vectors)
        dist_arr = np.asarray(distances)
    else:  # pragma: no cover - degenerate
        pairs_arr = np.zeros((0, 2), dtype=int)
        vec_arr = np.zeros((0, 3))
        dist_arr = np.zeros(0)
    return NeighborList(pairs_arr, vec_arr, dist_arr, cutoff)


def _brute_force_neighbors(structure: Structure, cutoff: float) -> NeighborList:
    """O(N^2) minimum-image neighbour search for small systems."""
    pos = structure.positions
    cell = structure.cell
    n = structure.natoms
    d = pos[None, :, :] - pos[:, None, :]
    d -= cell[None, None, :] * np.round(d / cell[None, None, :])
    dist = np.sqrt(np.einsum("ijk,ijk->ij", d, d))
    iu, ju = np.triu_indices(n, k=1)
    mask = dist[iu, ju] < cutoff
    pairs = np.stack([iu[mask], ju[mask]], axis=1)
    vectors = d[iu[mask], ju[mask]]
    distances = dist[iu[mask], ju[mask]]
    return NeighborList(pairs, vectors, distances, cutoff)


def tetrahedral_bond_cutoff(structure: Structure, scale: float = 1.20) -> float:
    """Estimate a bond cutoff capturing first-neighbour (tetrahedral) bonds.

    Uses the smallest interatomic distance in the structure times ``scale``.
    For zinc-blende this captures the four nearest neighbours and excludes
    the twelve second neighbours (which sit at sqrt(8/3) ~ 1.63x the bond
    length).
    """
    if structure.natoms < 2:
        raise ValueError("need at least two atoms")
    # Sample a few atoms and find their nearest minimum-image neighbour;
    # in a homogeneous crystal this equals the global minimum bond length
    # and avoids building a full O(N^2) distance matrix.
    pos = structure.positions
    cell = structure.cell
    n = structure.natoms
    samples = sorted({0, n // 2, n - 1})
    dmin = np.inf
    for i in samples:
        d = pos - pos[i]
        d -= cell[None, :] * np.round(d / cell[None, :])
        dist = np.sqrt(np.einsum("ij,ij->i", d, d))
        dist[i] = np.inf
        dmin = min(dmin, float(np.min(dist)))
    if not np.isfinite(dmin) or dmin <= 0:
        raise ValueError("could not determine a bond length; structure too sparse")
    return scale * dmin
