"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the paper:
it runs the corresponding experiment (performance model or real model-scale
calculation), prints the same rows/series the paper reports, stores them as
JSON under ``benchmarks/results/`` and asserts the qualitative shape
(who wins, by roughly what factor, where crossovers fall).

Run with ``pytest benchmarks/ --benchmark-only`` (pytest-benchmark) or plain
``pytest benchmarks/`` to execute the experiments without timing overhead.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def pytest_configure(config):
    # Keep pytest-benchmark quiet about small sample counts: the model-scale
    # physics experiments are deliberately run once per benchmark round.
    config.addinivalue_line("markers", "paper_experiment: reproduces a paper artefact")
