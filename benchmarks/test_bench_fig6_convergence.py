"""E5 — Figure 6: LS3DF self-consistent convergence.

The paper plots integral |V_out - V_in| d^3r against SCF iteration for the
3,456-atom ZnTeO system: an overall steady decay over ~3 decades with
occasional upward jumps (a known property of potential mixing).  Here the
same metric is recorded for a model-scale alloy solved with the real LS3DF
driver; the assertions check the decay shape, not the absolute values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.driver import LS3DF
from repro.io.results import ResultRecord, save_records


def _make_alloy(dims):
    # Model-scale analogue of the ZnTe:O alloy: a CsCl-type Zn-Se host with
    # one Se site replaced by O (an isoelectronic substitution, as in the
    # paper's ZnTe(1-x)O(x) system).
    structure = cscl_binary(dims, "Zn", "Se", 6.5)
    symbols = structure.symbols
    symbols[symbols.index("Se")] = "O"
    from repro.atoms.structure import Structure

    return Structure(structure.cell, symbols, structure.positions)


def _run_convergence():
    ls3df = LS3DF(
        _make_alloy((2, 2, 1)),
        grid_dims=(2, 2, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        mixer_options={"alpha": 0.6, "q0": 0.8},
    )
    result = ls3df.run(
        max_iterations=18,
        potential_tolerance=1e-3,
        eigensolver_tolerance=1e-4,
        eigensolver_iterations=40,
    )
    return result


def test_fig6_scf_convergence_smoke():
    """Fast variant of the Figure 6 case: same pipeline, tiny system."""
    ls3df = LS3DF(
        _make_alloy((2, 1, 1)),
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
    )
    result = ls3df.run(
        max_iterations=6,
        potential_tolerance=1e-3,
        eigensolver_tolerance=1e-4,
        eigensolver_iterations=40,
    )
    history = np.asarray(result.convergence_history)
    assert len(history) == result.iterations
    assert history[-1] < history[0]


@pytest.mark.slow
@pytest.mark.paper_experiment
def test_bench_fig6_scf_convergence(benchmark, results_dir):
    result = benchmark.pedantic(_run_convergence, rounds=1, iterations=1)
    history = np.asarray(result.convergence_history)
    print("\nFigure 6 (LS3DF SCF convergence, model alloy):")
    for i, v in enumerate(history, 1):
        print(f"  iteration {i:2d}:  |Vout - Vin| = {v:.4e} a.u.")
    save_records(
        [ResultRecord("fig6", {"history": history.tolist(),
                               "iterations": int(result.iterations),
                               "converged": bool(result.converged)})],
        results_dir / "fig6_convergence.json",
    )

    # Shape of the paper's Figure 6: a substantial overall decay ...
    assert history[-1] < 0.2 * history[0]
    assert np.min(history) < 0.1 * history[0]
    # ... that is monotone in trend but not necessarily per-step (the paper
    # explicitly notes occasional jumps are normal for potential mixing).
    first_third = history[: max(2, len(history) // 3)].mean()
    last_third = history[-max(2, len(history) // 3):].mean()
    assert last_third < first_third
    # The energy stabilises along the way.
    energies = np.asarray(result.energy_history)
    assert abs(energies[-1] - energies[-2]) < abs(energies[1] - energies[0]) + 1e-12
