"""Shared helper: build a real PEtot_F fragment-task batch for benchmarks.

Used by the Fig. 3/4 measured-speedup benchmarks to complement the
modelled evaluation with wall-clock numbers from the actual executors.
"""

from __future__ import annotations

import numpy as np

from repro.atoms import cscl_binary
from repro.core.division import SpatialDivision
from repro.core.fragment_solver import FragmentSolver
from repro.core.fragments import enumerate_fragments
from repro.pw.grid import FFTGrid
from repro.pw.pseudopotential import default_pseudopotentials


def make_real_tasks(dims=(2, 2, 1), ecut: float = 2.2):
    """Picklable solve tasks for every fragment of a small real system."""
    structure = cscl_binary(dims, "Zn", "Se", 6.5)
    points = tuple(10 * d for d in dims)
    grid = FFTGrid(structure.cell, points)
    division = SpatialDivision(structure, dims, grid, 0.5)
    solver = FragmentSolver(division, default_pseudopotentials(), ecut=ecut)
    tasks = []
    for frag in enumerate_fragments(dims):
        restricted = np.zeros(division.fragment_grid(frag).shape)
        tasks.append(
            solver.make_task(
                frag,
                restricted,
                eigensolver_tolerance=1e-3,
                eigensolver_iterations=25,
            )
        )
    return tasks
