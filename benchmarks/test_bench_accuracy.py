"""E7 — Section V/VI accuracy: LS3DF versus direct DFT on the same system.

The paper reports that LS3DF reproduces direct LDA results to a few
meV/atom in the total energy, ~2 meV in eigenvalues/band gaps and <1% in
dipole moments.  At the model scale of this reproduction (tiny fragments,
coarse grids, crude passivation) the absolute agreement is looser, but the
qualitative claim — the divide-and-conquer result tracks the direct result
closely, far better than a naive non-cancelling fragment sum would — is
asserted here.
"""

from __future__ import annotations

import pytest

from repro.atoms.toy import cscl_binary
from repro.core.compare import compare_ls3df_to_direct
from repro.io.results import ResultRecord, save_records


def _run_comparison():
    # A (2,2,1) fragment grid is the smallest geometry in which the +1 and
    # -1 fragments emitted from each corner expose comparable amounts of
    # artificial surface, so the passivation-energy errors largely cancel —
    # the mechanism behind the paper's meV/atom agreement.
    structure = cscl_binary((2, 2, 1), "Zn", "Se", 6.5)
    report, ls_result, d_result = compare_ls3df_to_direct(
        structure,
        grid_dims=(2, 2, 1),
        ecut=2.2,
        n_band_edge=4,
        ls3df_kwargs={"buffer_cells": 0.5, "n_empty": 2, "mixer": "kerker"},
        run_kwargs={"max_iterations": 10, "potential_tolerance": 2e-3,
                    "eigensolver_tolerance": 1e-4},
        direct_run_kwargs={"max_scf_iterations": 25, "potential_tolerance": 2e-3,
                           "eigensolver_tolerance": 1e-4},
    )
    return report, ls_result, d_result


def test_ls3df_vs_direct_accuracy_smoke():
    """Fast variant of the accuracy case: same comparison, tiny budget.

    Uses the smallest geometry and iteration counts that still exercise the
    full compare pipeline (LS3DF run + direct run + band-edge extraction).
    """
    structure = cscl_binary((2, 1, 1), "Zn", "Se", 6.5)
    report, ls_result, d_result = compare_ls3df_to_direct(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        n_band_edge=2,
        ls3df_kwargs={"buffer_cells": 0.5, "n_empty": 2, "mixer": "kerker"},
        run_kwargs={"max_iterations": 4, "potential_tolerance": 5e-3,
                    "eigensolver_tolerance": 1e-4},
        direct_run_kwargs={"max_scf_iterations": 8, "potential_tolerance": 5e-3,
                           "eigensolver_tolerance": 1e-4},
    )
    assert ls_result.convergence_history[-1] < ls_result.convergence_history[0]
    assert report.density_l1_error < 5.0
    assert abs(report.energy_per_atom_mev) < 1e7  # finite, sane scale


@pytest.mark.slow
@pytest.mark.paper_experiment
def test_bench_ls3df_vs_direct_accuracy(benchmark, results_dir):
    report, ls_result, d_result = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    print("\nLS3DF vs direct DFT accuracy (model scale):")
    for key, value in report.as_dict().items():
        print(f"  {key:32s} {value}")
    save_records(
        [ResultRecord("accuracy", report.as_dict())], results_dir / "accuracy.json"
    )

    # Both calculations made progress towards self-consistency.
    assert ls_result.convergence_history[-1] < ls_result.convergence_history[0]
    assert d_result.convergence_history[-1] < d_result.convergence_history[0]

    # Total energies agree at the level the model permits.  The paper's
    # production setting (8-atom fragments, 50 Ry, tuned passivation)
    # reaches a few meV/atom; this model-scale run uses 2-atom fragments
    # with generic pseudo-hydrogen termination, whose residual surface
    # energy does not fully cancel — the dominant, documented error source
    # (see EXPERIMENTS.md E7).  The assertion bounds the *relative* error
    # of the total energy rather than a meV target.
    per_atom_direct = abs(report.direct_total_energy) / report.natoms
    assert abs(report.energy_per_atom_mev) / 27211.4 < 0.5 * per_atom_direct

    # Band-edge eigenvalues from the LS3DF potential track the direct ones
    # to the eV scale at model settings (paper: ~2 meV at production scale).
    assert report.eigenvalue_rms_mev < 15000.0
    # Densities carry the same total charge and a bounded L1 deviation.
    assert report.density_l1_error < 1.5
    # Dipole moments of the two densities agree in order of magnitude
    # (paper: <1% at production settings).
    assert report.dipole_difference_relative < 5.0
    # Both methods find a gapped system.
    assert report.band_gap_ls3df > 0 and report.band_gap_direct > 0
