"""E6 — Figure 7 / Section VII: band-edge states of the oxygen alloy.

The paper uses the folded spectrum method on the converged LS3DF potential
to compute the conduction-band minimum and the oxygen-induced states of
ZnTe0.97O0.03, finding (i) oxygen-induced states inside the host gap,
(ii) a finite width of the oxygen-induced band, (iii) a remaining gap
between the oxygen band and the host band edge, and (iv) localisation of
the oxygen states on (clusters of) O atoms.

The model-scale analogue replaces Se by O in a small Zn-Se host; in the
model parameterisation the O-induced states split off the *valence* edge
into the gap (see DESIGN.md substitution notes) but the analysis pipeline
(FSM + localisation + band-width/gap extraction) is identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.states import localization_report
from repro.atoms.structure import Structure
from repro.atoms.toy import cscl_binary
from repro.constants import HARTREE_TO_EV
from repro.core.driver import LS3DF
from repro.io.results import ResultRecord, save_records


def _run_band_edge():
    host = cscl_binary((2, 1, 1), "Zn", "Se", 6.5)
    # Pure host reference.
    ls_host = LS3DF(host, grid_dims=(2, 1, 1), ecut=2.4, buffer_cells=0.5, n_empty=3)
    host_result = ls_host.run(max_iterations=10, potential_tolerance=5e-3,
                              eigensolver_tolerance=1e-4)
    nelec = host.total_valence_electrons()
    host_states = ls_host.lowest_states(host_result, nelec // 2 + 2, tolerance=1e-6)
    host_evals = host_states.eigenvalues

    # Alloy: one Se replaced by O (isoelectronic, like Te -> O in the paper).
    symbols = host.symbols
    symbols[symbols.index("Se")] = "O"
    alloy = Structure(host.cell, symbols, host.positions)
    ls_alloy = LS3DF(alloy, grid_dims=(2, 1, 1), ecut=2.4, buffer_cells=0.5, n_empty=3)
    alloy_result = ls_alloy.run(max_iterations=10, potential_tolerance=5e-3,
                                eigensolver_tolerance=1e-4)

    # Folded-spectrum band-edge states around the estimated gap centre.
    states = ls_alloy.band_edge_states(alloy_result, n_states=4,
                                       max_iterations=120, tolerance=1e-7)
    densities = states.densities_on_grid()
    report = localization_report(states.energies, densities,
                                 ls_alloy.global_grid, alloy)
    return host, host_evals, alloy, states, report


def test_fig7_band_edge_states_smoke():
    """Fast variant of the Figure 7 case: alloy + FSM with a tiny budget."""
    host = cscl_binary((2, 1, 1), "Zn", "Se", 6.5)
    symbols = host.symbols
    symbols[symbols.index("Se")] = "O"
    alloy = Structure(host.cell, symbols, host.positions)
    ls_alloy = LS3DF(alloy, grid_dims=(2, 1, 1), ecut=2.4, buffer_cells=0.5, n_empty=3)
    alloy_result = ls_alloy.run(max_iterations=4, potential_tolerance=5e-3,
                                eigensolver_tolerance=1e-4)
    states = ls_alloy.band_edge_states(alloy_result, n_states=2,
                                       max_iterations=40, tolerance=1e-5)
    assert states.energies.shape == (2,)
    assert np.all(np.isfinite(states.energies))
    densities = states.densities_on_grid()
    report = localization_report(states.energies, densities,
                                 ls_alloy.global_grid, alloy)
    assert np.all(np.isfinite(report.oxygen_weight))


@pytest.mark.slow
@pytest.mark.paper_experiment
def test_bench_fig7_band_edge_states(benchmark, results_dir):
    host, host_evals, alloy, states, report = benchmark.pedantic(
        _run_band_edge, rounds=1, iterations=1
    )
    nelec = host.total_valence_electrons()
    nocc = nelec // 2
    host_gap_ev = float((host_evals[nocc] - host_evals[nocc - 1]) * HARTREE_TO_EV)
    print("\nFigure 7 / Section VII (model alloy band-edge states):")
    print(f"  host gap: {host_gap_ev:.2f} eV")
    for e, ipr, species, ow in zip(report.energies_ev, report.ipr,
                                   report.dominant_species, report.oxygen_weight):
        print(f"  state at {e:8.3f} eV  IPR={ipr:.4f}  dominant={species}  O-weight={ow:.2f}")
    save_records(
        [ResultRecord("fig7", {
            "host_gap_ev": host_gap_ev,
            "state_energies_ev": report.energies_ev.tolist(),
            "state_ipr": report.ipr.tolist(),
            "oxygen_weight": report.oxygen_weight.tolist(),
        })],
        results_dir / "fig7_band_edge.json",
    )

    # (i) the host has a gap (LS3DF targets systems with a band gap);
    assert host_gap_ev > 0.1
    # (ii) the FSM found well-converged interior states;
    assert np.all(states.residual_norms < 1e-2)
    # (iii) at least one band-edge state carries significant oxygen weight
    #       (the oxygen-induced state of the paper's Figure 7b);
    assert np.max(report.oxygen_weight) > 0.10
    # (iv) the oxygen-dominated state is more localised than the most
    #      delocalised band-edge state (the clustering/localisation claim).
    o_idx = int(np.argmax(report.oxygen_weight))
    assert report.ipr[o_idx] >= 0.9 * np.min(report.ipr)
    assert np.max(report.ipr) / np.min(report.ipr) > 1.05
