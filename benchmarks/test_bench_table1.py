"""E1 — Table I: Tflop/s and %-of-peak for every run of the paper's table.

Regenerates all 28 rows (Franklin, Jaguar, Intrepid sections) with the
performance model and compares against the paper's reported numbers.  The
model is expected to reproduce the *shape*: the ordering of machines, the
%-peak level per machine, and the droop at very high concurrency.
"""

from __future__ import annotations

import pytest

from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table, table1_layout
from repro.parallel.comm import CommScheme
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN, INTREPID, JAGUAR
from repro.parallel.perfmodel import LS3DFPerformanceModel

# (machine, scheme, grid, ecut_ry, dims, atoms, cores, Np, paper Tflop/s, paper %peak)
TABLE1_ROWS = [
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (3, 3, 3), 216, 270, 10, 0.57, 40.4),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (3, 3, 3), 216, 540, 20, 1.14, 40.8),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (3, 3, 3), 216, 1080, 40, 2.27, 40.5),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (4, 4, 4), 512, 1280, 20, 2.64, 39.6),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (5, 5, 5), 1000, 2500, 20, 5.15, 39.6),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (6, 6, 6), 1728, 4320, 20, 8.72, 38.8),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 1080, 40, 2.28, 40.5),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 2160, 40, 4.51, 40.2),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 4320, 40, 8.88, 39.5),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 8640, 40, 17.04, 37.9),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 17280, 40, 31.35, 34.9),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 8, 8), 4096, 2560, 20, 5.46, 41.0),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (8, 8, 8), 4096, 10240, 20, 19.72, 37.0),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (10, 10, 8), 6400, 2000, 20, 4.18, 40.2),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (10, 10, 8), 6400, 16000, 20, 29.52, 35.5),
    (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, (12, 12, 12), 13824, 17280, 10, 32.17, 35.8),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (8, 8, 6), 3072, 7680, 20, 17.3, 26.8),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (8, 8, 6), 3072, 15360, 40, 33.0, 25.6),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (8, 8, 6), 3072, 30720, 80, 53.8, 20.9),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (8, 6, 9), 3456, 17280, 40, 36.5, 25.2),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (16, 8, 6), 6144, 15360, 20, 33.6, 26.0),
    (JAGUAR, CommScheme.COLLECTIVE, 40, 50, (16, 12, 8), 12288, 30720, 20, 60.3, 23.4),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (4, 4, 4), 512, 4096, 64, 4.4, 31.6),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (8, 4, 4), 1024, 8192, 64, 8.8, 31.5),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (8, 8, 4), 2048, 16384, 64, 17.5, 31.4),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (8, 8, 8), 4096, 32768, 64, 34.5, 31.1),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (16, 8, 8), 8192, 65536, 64, 60.2, 27.1),
    (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, (16, 16, 8), 16384, 131072, 64, 107.5, 24.2),
]


def _generate_table1():
    rows = []
    for machine, scheme, grid, ecut, dims, atoms, cores, npg, paper_tf, paper_pk in TABLE1_ROWS:
        wl = LS3DFWorkload(dims, grid_per_cell=grid, ecut_ry=ecut)
        point = LS3DFPerformanceModel(machine, wl, scheme).evaluate(cores, npg)
        row = point.as_row()
        row["paper Tflop/s"] = paper_tf
        row["paper % peak"] = paper_pk
        rows.append((point, row))
    return rows


@pytest.mark.paper_experiment
def test_bench_table1(benchmark, results_dir):
    rows = benchmark.pedantic(_generate_table1, rounds=1, iterations=1)
    printable = [r for _, r in rows]
    print("\nTable I (modelled vs paper):")
    print(format_table(printable, columns=list(table1_layout()) + ["paper Tflop/s", "paper % peak"]))
    save_records(
        [ResultRecord("table1", r) for r in printable], results_dir / "table1.json"
    )

    for point, row in rows:
        # %peak within 6 percentage points of the paper for every row ...
        assert abs(row["% peak"] - row["paper % peak"]) < 6.0, row
        # ... and sustained Tflop/s within a factor of ~1.6.
        assert 0.6 < row["Tflop/s"] / row["paper Tflop/s"] < 1.6, row

    # Machine-level shape: Franklin sustains the highest fraction of peak,
    # Jaguar the lowest; Intrepid delivers the highest absolute Tflop/s.
    franklin = [r for p, r in rows if r["machine"] == "Franklin"]
    jaguar = [r for p, r in rows if r["machine"] == "Jaguar"]
    intrepid = [r for p, r in rows if r["machine"] == "Intrepid"]
    def mean(rs, k):
        return sum(r[k] for r in rs) / len(rs)
    assert mean(franklin, "% peak") > mean(intrepid, "% peak") > mean(jaguar, "% peak")
    assert max(r["Tflop/s"] for r in intrepid) == max(r["Tflop/s"] for r in printable)
