"""E10 — Section IV ablation: all-band (BLAS-3) vs band-by-band (BLAS-2).

The paper's single most important node-level optimisation replaced the
band-by-band conjugate-gradient solver (BLAS-2 bound, ~15% of peak) by an
all-band block solver with overlap-matrix orthogonalisation (BLAS-3,
~45-56% of peak), a ~3-4x speedup of PEtot_F.  This benchmark runs both
eigensolvers of this repository on the same fragment-sized Hamiltonian and
checks that (i) they agree on the spectrum and (ii) the all-band solver is
substantially faster per converged calculation.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.io.results import ResultRecord, save_records
from repro.pw.basis import PlaneWaveBasis
from repro.pw.eigensolver import all_band_cg, band_by_band_cg
from repro.pw.energy import screening_potential
from repro.pw.grid import FFTGrid
from repro.pw.hamiltonian import Hamiltonian
from repro.pw.pseudopotential import default_pseudopotentials


def _setup_fragment_hamiltonian():
    structure = cscl_binary((2, 2, 1), "Zn", "Se", 6.5)
    pps = default_pseudopotentials()
    grid = FFTGrid.for_structure(structure.cell, points_per_bohr=1.6)
    basis = PlaneWaveBasis(grid, ecut=2.2)
    h = Hamiltonian.from_structure(structure, basis, pps)
    rho_ion = pps.ionic_density(structure, grid)
    rho0 = np.clip(rho_ion, 0, None)
    rho0 *= structure.total_valence_electrons() / (np.sum(rho0) * grid.dvol)
    h.set_effective_potential(screening_potential(rho0, grid, rho_ion))
    nbands = structure.total_valence_electrons() // 2 + 2
    return h, nbands


def _run_ablation():
    h, nbands = _setup_fragment_hamiltonian()
    t0 = time.perf_counter()
    allband = all_band_cg(h, nbands, max_iterations=120, tolerance=1e-5)
    t_allband = time.perf_counter() - t0
    t0 = time.perf_counter()
    bandbyband = band_by_band_cg(h, nbands, max_iterations=25, cg_steps_per_band=5,
                                 tolerance=1e-5)
    t_bandbyband = time.perf_counter() - t0
    return allband, t_allband, bandbyband, t_bandbyband


@pytest.mark.paper_experiment
def test_bench_allband_vs_bandbyband(benchmark, results_dir):
    allband, t_all, bandbyband, t_bb = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    max_dev = float(np.max(np.abs(allband.eigenvalues - bandbyband.eigenvalues)))
    speedup = t_bb / t_all
    print("\nAll-band (BLAS-3) vs band-by-band (BLAS-2) fragment solve:")
    print(f"  all-band:      {t_all:7.2f} s, {allband.iterations} iterations, "
          f"max residual {allband.residual_norms.max():.2e}")
    print(f"  band-by-band:  {t_bb:7.2f} s, {bandbyband.iterations} iterations, "
          f"max residual {bandbyband.residual_norms.max():.2e}")
    print(f"  spectral agreement: {max_dev:.2e} Ha;  wall-clock ratio {speedup:.1f}x "
          f"(paper: ~3x for PEtot_F)")
    save_records(
        [ResultRecord("allband_ablation", {
            "t_allband_s": t_all, "t_bandbyband_s": t_bb,
            "speedup": speedup, "max_eigenvalue_deviation": max_dev})],
        results_dir / "allband_ablation.json",
    )

    # Both algorithms find the same spectrum ...
    assert max_dev < 5e-3
    # ... and the all-band solver delivers the paper's qualitative win.
    assert allband.converged
    assert speedup > 1.5
