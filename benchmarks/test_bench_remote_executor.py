"""Remote-executor benchmark: dispatch latency, wire bytes, group overlap.

The ISSUE-7 multi-node backend pays a per-task round-trip over TCP; this
benchmark measures what that costs and what the two optimisations buy
back on a real (loopback) wire:

* **dispatch latency** — median round-trip of a no-op ``ping`` frame,
  the floor under every remote task;
* **install dedup** — bytes on the wire for a 2-iteration pipeline run
  with the fingerprint install channel on vs. off.  With it on, the
  global potential crosses once per worker per iteration instead of
  once per *fragment*, so the shipped-bytes ratio grows with the
  fragment count;
* **measured group overlap** — ``concurrency_efficiency`` of the
  concurrent band-group pools from the
  :class:`~repro.parallel.scheduler.GroupExecutionRecord` the SCF loop
  now records (a measurement, not a model output).

Results land in ``benchmarks/results/remote_executor.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.atoms.toy import cscl_binary
from repro.core.scf import LS3DFSCF
from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.executor import ThreadPoolFragmentExecutor
from repro.parallel.remote import (
    RemoteExecutor,
    RemoteExecutorConfig,
    start_worker_thread,
)


def _tiny_scf(executor=None, **kw) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        **kw,
    )


_RUN_KW = dict(
    max_iterations=2,
    potential_tolerance=1e-9,  # never met: fixed work per run
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)

_CONFIG = dict(
    connect_timeout=2.0,
    request_timeout=60.0,
    heartbeat_interval=1e9,
    max_retries=1,
    backoff=0.01,
)


def _remote_run(n_workers=2, **scf_kw):
    servers = [start_worker_thread() for _ in range(n_workers)]
    try:
        with RemoteExecutor(
            [s.address for s in servers], config=RemoteExecutorConfig(**_CONFIG)
        ) as executor:
            scf = _tiny_scf(executor, **scf_kw)
            result = scf.run(**_RUN_KW)
            stats = dict(
                tasks=executor.tasks_submitted,
                installs=executor.install_broadcasts,
                bytes_sent=executor.bytes_sent,
                bytes_received=executor.bytes_received,
            )
    finally:
        for server in servers:
            server.stop()
    return result, stats


def test_bench_remote_executor(results_dir):
    # -- dispatch latency: the ping round-trip floor under every task.
    server = start_worker_thread()
    try:
        with RemoteExecutor(
            [server.address], config=RemoteExecutorConfig(**_CONFIG)
        ) as executor:
            executor.heartbeat()  # connect + handshake outside the timing
            samples = []
            for _ in range(50):
                t0 = time.perf_counter()
                executor.heartbeat()
                samples.append(time.perf_counter() - t0)
    finally:
        server.stop()
    latency_us = float(np.median(samples) * 1e6)

    # -- install dedup: shipped bytes with the fingerprint channel on/off.
    on_result, on = _remote_run(pipeline=True)
    off_result, off = _remote_run(pipeline=True, install_potentials=False)
    assert on_result.total_energy == off_result.total_energy  # same physics
    assert on["installs"] > 0 and off["installs"] == 0
    savings = 1.0 - on["bytes_sent"] / off["bytes_sent"]

    # -- measured band-group overlap on a local thread pool.
    with ThreadPoolFragmentExecutor(4) as pool:
        grouped = _tiny_scf(pool, band_groups=2).run(**_RUN_KW)
    records = [t.band_schedule for t in grouped.timings]
    assert all(r.concurrent for r in records)
    efficiency = float(np.mean([r.concurrency_efficiency for r in records]))

    rows = [
        {"metric": "ping round-trip (median, us)", "value": f"{latency_us:.0f}"},
        {"metric": "pipeline bytes sent, install on", "value": f"{on['bytes_sent']:,}"},
        {"metric": "pipeline bytes sent, install off", "value": f"{off['bytes_sent']:,}"},
        {"metric": "wire savings from install dedup", "value": f"{100 * savings:.1f}%"},
        {"metric": "measured group concurrency eff.", "value": f"{efficiency:.3f}"},
    ]
    print()
    print(format_table(rows, ["metric", "value"]))

    save_records(
        [
            ResultRecord(
                "remote_executor",
                {
                    "ping_median_us": latency_us,
                    "pipeline_bytes_sent_install_on": on["bytes_sent"],
                    "pipeline_bytes_sent_install_off": off["bytes_sent"],
                    "pipeline_bytes_received": on["bytes_received"],
                    "install_broadcasts": on["installs"],
                    "install_dedup_savings": savings,
                    "tasks_submitted": on["tasks"],
                    "group_concurrency_efficiency": efficiency,
                    "group_walls": [list(r.group_walls) for r in records],
                },
            )
        ],
        results_dir / "remote_executor.json",
    )

    # Qualitative shape: dedup must actually shrink the wire traffic
    # (even on this 4-fragment system, where the potential is small next
    # to the per-task geometry; the ratio grows with fragment count),
    # and the measured overlap must be a real efficiency.
    assert savings > 0.05
    assert 0.0 < efficiency <= 1.0
