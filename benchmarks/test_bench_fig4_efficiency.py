"""E3 — Figure 4: computational efficiency versus concurrency on Franklin.

The paper plots % of peak against core count for all Franklin runs (216 to
13,824 atoms) and observes that (i) efficiency is almost independent of the
physical system size at fixed concurrency and (ii) it drops mildly at very
high concurrency, mostly due to Gen_VF / Gen_dens.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.comm import CommScheme
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN
from repro.parallel.perfmodel import LS3DFPerformanceModel

FRANKLIN_RUNS = [
    ((3, 3, 3), 270, 10), ((3, 3, 3), 540, 20), ((3, 3, 3), 1080, 40),
    ((4, 4, 4), 1280, 20), ((5, 5, 5), 2500, 20), ((6, 6, 6), 4320, 20),
    ((8, 6, 9), 1080, 40), ((8, 6, 9), 2160, 40), ((8, 6, 9), 4320, 40),
    ((8, 6, 9), 8640, 40), ((8, 6, 9), 17280, 40),
    ((8, 8, 8), 2560, 20), ((8, 8, 8), 10240, 20),
    ((10, 10, 8), 2000, 20), ((10, 10, 8), 16000, 20),
    ((12, 12, 12), 17280, 10),
]


def _efficiencies():
    rows = []
    for dims, cores, npg in FRANKLIN_RUNS:
        wl = LS3DFWorkload(dims, grid_per_cell=40, ecut_ry=50)
        p = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE).evaluate(cores, npg)
        rows.append(
            {
                "atoms": wl.natoms,
                "cores": cores,
                "Np": npg,
                "efficiency %": round(p.percent_peak, 1),
            }
        )
    return rows


@pytest.mark.paper_experiment
def test_fig4_measured_parallel_efficiency(results_dir):
    """Real (not modelled) PEtot_F parallel efficiency on local cores.

    Complements the modelled % -of-peak table with a measured number: one
    real fragment batch through the thread-pool backend, its parallel
    efficiency from per-fragment wall times, and the LPT scheduler's
    predicted load imbalance for the same batch.
    """
    from _real_tasks import make_real_tasks
    from repro.parallel.executor import ThreadPoolFragmentExecutor

    tasks = make_real_tasks((2, 2, 1))
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        report = executor.run(tasks)

    print("\nFigure 4 companion (measured PEtot_F efficiency, local threads x2):")
    print(f"  wall {report.wall_time:.2f}s  task-sum {report.total_cpu_time:.2f}s"
          f"  efficiency {report.parallel_efficiency:.2f}"
          f"  LPT imbalance {report.schedule.imbalance:.3f}")
    save_records(
        [ResultRecord("fig4_measured", {
            "wall_time": report.wall_time,
            "total_task_time": report.total_cpu_time,
            "parallel_efficiency": report.parallel_efficiency,
            "lpt_imbalance": report.schedule.imbalance,
        })],
        results_dir / "fig4_measured_efficiency.json",
    )

    assert len(report.results) == len(tasks)
    assert report.parallel_efficiency > 0
    # The LPT heuristic keeps the predicted imbalance of the mixed 1..8-cell
    # fragment classes small — the property behind the paper's >95% PEtot_F
    # efficiencies.
    assert report.schedule is not None
    assert report.schedule.imbalance < 1.25


@pytest.mark.slow
@pytest.mark.paper_experiment
def test_fig4_band_groups_largest_fragment(results_dir):
    """Figure 4 companion: the band-parallel eigensolver on the largest
    fragment.

    The measured counterpart of the paper's Np-cores-per-group design
    point: solve the single most expensive fragment of a real batch once
    on one worker and once band-sliced over a thread group, and record
    both wall times (plus the measured intra-group efficiency) to
    ``fig4_band_groups.json``.  On a single-core CI box the grouped wall
    cannot beat the ungrouped one, so no speedup is asserted — only that
    the grouped solve stays bit-identical and the record is written; on
    real multi-core hardware the recorded ratio is the point of the
    subsystem (the largest fragment stops bounding PEtot_F).
    """
    from _real_tasks import make_real_tasks
    from repro.core.fragment_task import (
        solve_fragment_task,
        solve_fragment_task_grouped,
    )
    from repro.parallel.amdahl import measured_intra_group_efficiency
    from repro.parallel.executor import ThreadPoolFragmentExecutor

    tasks = make_real_tasks((2, 2, 1))
    largest = max(tasks, key=lambda t: t.cost())
    nslices = 2

    # Warm the static-problem cache so both timings see the paper's
    # cheap-second-iteration conditions (setup excluded, solve timed).
    solve_fragment_task(largest)

    t0 = time.perf_counter()
    reference = solve_fragment_task(largest)
    ungrouped_wall = time.perf_counter() - t0

    with ThreadPoolFragmentExecutor(n_workers=nslices) as executor:
        t0 = time.perf_counter()
        grouped, stats = solve_fragment_task_grouped(largest, executor, nslices)
        grouped_wall = time.perf_counter() - t0

    np.testing.assert_array_equal(grouped.eigenvalues, reference.eigenvalues)
    np.testing.assert_array_equal(grouped.density, reference.density)

    efficiency = measured_intra_group_efficiency(
        stats.task_cpu, grouped_wall, nslices)
    record = {
        "fragment": largest.label,
        "fragment_cost": largest.cost(),
        "band_slices": nslices,
        "ungrouped_wall": ungrouped_wall,
        "grouped_wall": grouped_wall,
        "wall_reduction": ungrouped_wall / grouped_wall,
        "band_task_cpu": stats.task_cpu,
        "band_stages": stats.stages,
        "measured_intra_group_efficiency": efficiency,
    }
    print("\nFigure 4 companion (largest-fragment wall, band groups):")
    print(f"  fragment {largest.label}: 1 worker {ungrouped_wall:.2f}s,"
          f"  {nslices} band slices {grouped_wall:.2f}s"
          f"  (x{record['wall_reduction']:.2f},"
          f" intra-group eff {efficiency:.2f})")
    save_records(
        [ResultRecord("fig4_band_groups", record)],
        results_dir / "fig4_band_groups.json",
    )
    assert ungrouped_wall > 0 and grouped_wall > 0
    assert stats.submissions == stats.stages * nslices
    assert 0 < efficiency <= 1.0


@pytest.mark.paper_experiment
def test_bench_fig4_efficiency(benchmark, results_dir):
    rows = benchmark.pedantic(_efficiencies, rounds=1, iterations=1)
    print("\nFigure 4 (computational efficiency on Franklin):")
    print(format_table(rows))
    save_records([ResultRecord("fig4", {"rows": rows})], results_dir / "fig4_efficiency.json")

    eff = np.array([r["efficiency %"] for r in rows])
    cores = np.array([r["cores"] for r in rows])
    atoms = np.array([r["atoms"] for r in rows])

    # All efficiencies fall in the paper's 30-45% band.
    assert np.all(eff > 28.0) and np.all(eff < 46.0)

    # (i) At comparable concurrency the efficiency is nearly independent of
    # the system size: compare the ~1,000-2,600 core runs across systems.
    mid = (cores >= 1000) & (cores <= 2600)
    assert np.ptp(eff[mid]) < 4.0
    assert len(set(atoms[mid])) >= 4  # genuinely different systems compared

    # (ii) Efficiency decreases with concurrency for the 3,456-atom series.
    series = [(c, e) for (d, c, n), e in zip(FRANKLIN_RUNS, eff) if d == (8, 6, 9)]
    series.sort()
    effs_sorted = [e for _, e in series]
    assert effs_sorted[0] > effs_sorted[-1]
    assert effs_sorted[0] - effs_sorted[-1] > 2.0
