"""E2 — Figure 3: strong scaling of LS3DF and PEtot_F with the Amdahl fit.

The paper scales the 3,456-atom (8x6x9) problem from 1,080 to 17,280
Franklin cores at Np = 40 and reports speedups of 13.8x (LS3DF, 86.3%
efficiency) and 15.3x (PEtot_F, 95.8% efficiency) at the 16x concurrency
point, with an Amdahl's-law fit of serial fraction ~1/101,000 (LS3DF).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from _real_tasks import make_real_tasks
from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.amdahl import fit_amdahl
from repro.parallel.comm import CommScheme
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
)
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN
from repro.parallel.perfmodel import LS3DFPerformanceModel

CORES = [1080, 2160, 4320, 8640, 17280]


def _strong_scaling():
    wl = LS3DFWorkload((8, 6, 9), grid_per_cell=40, ecut_ry=50)
    model = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE)
    ls3df_tflops = []
    petot_tflops = []
    for cores in CORES:
        p = model.evaluate(cores, 40)
        ls3df_tflops.append(p.tflops)
        petot_tflops.append(model.petot_f_only_tflops(cores, 40))
    return np.array(ls3df_tflops), np.array(petot_tflops)


@pytest.mark.slow
@pytest.mark.paper_experiment
def test_fig3_measured_strong_scaling(results_dir):
    """Real (not modelled) PEtot_F strong scaling on local cores.

    Runs the same real fragment batch through the serial and process-pool
    backends and records the *measured* speedup from per-fragment wall
    times.  Marked slow: it doubles a ~30 s real workload and its timing
    ratios are sensitive to machine load (worker spawn + cold per-worker
    problem builds), so it runs with the full suite rather than tier-1;
    the fig4 companion keeps a fast measured test in the default run.
    """
    tasks = make_real_tasks((2, 2, 1))
    serial_report = SerialFragmentExecutor().run(tasks)
    with ProcessPoolFragmentExecutor(n_workers=2) as pool:
        pool_report = pool.run(tasks)

    measured = serial_report.wall_time / pool_report.wall_time
    rows = [
        {"backend": "serial", "wall [s]": round(serial_report.wall_time, 2),
         "speedup": 1.0, "efficiency": round(serial_report.parallel_efficiency, 2)},
        {"backend": "processes x2", "wall [s]": round(pool_report.wall_time, 2),
         "speedup": round(measured, 2),
         "efficiency": round(pool_report.parallel_efficiency, 2)},
    ]
    print("\nFigure 3 companion (measured PEtot_F strong scaling, local):")
    print(format_table(rows))
    save_records(
        [ResultRecord("fig3_measured", {
            "rows": rows,
            "cpu_count": os.cpu_count(),
            "fragment_wall_times": [r.wall_time for r in serial_report.results],
        })],
        results_dir / "fig3_measured_scaling.json",
    )

    # Both backends solved every fragment, identically.
    assert len(pool_report.results) == len(tasks)
    for got, ref in zip(pool_report.results, serial_report.results):
        np.testing.assert_allclose(got.eigenvalues, ref.eigenvalues, rtol=1e-10)
    # Per-fragment wall times were measured, and the 2x2x1 batch mixes
    # fragment classes whose measured costs differ substantially.
    walls = np.array([r.wall_time for r in serial_report.results])
    assert np.all(walls > 0)
    assert walls.max() > 1.5 * walls.min()
    # The measured speedup is recorded data, not a gate: it depends on the
    # core count and load of the machine running the suite (the pool also
    # pays worker startup and a cold per-worker problem build the serial
    # baseline does not).  Only guard against a catastrophically broken
    # pool path.
    assert measured > 0.3


@pytest.mark.paper_experiment
def test_fig3_measured_serial_fraction(results_dir):
    """Measured (not modelled) serial fraction of real LS3DF iterations.

    The paper's Figure-3 Amdahl fit infers the serial fraction from the
    scaling curve; here it is measured directly from per-iteration
    timings — serial driver time vs. summed per-fragment time — for the
    unfused seed path and for the fused fragment pipeline, which moves
    the Gen_VF/Gen_dens per-fragment loops out of the driver's serial
    section.  Timing ratios are recorded data, not gates (the CI box may
    have one loaded core); only structural sanity is asserted.
    """
    from repro.atoms.toy import cscl_binary
    from repro.core.scf import LS3DFSCF
    from repro.parallel.amdahl import serial_fraction_history

    def run(pipeline):
        structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
        scf = LS3DFSCF(structure, grid_dims=(2, 1, 1), ecut=2.2,
                       buffer_cells=0.5, n_empty=2, mixer="kerker",
                       pipeline=pipeline)
        return scf.run(max_iterations=2, potential_tolerance=1e-9,
                       eigensolver_tolerance=1e-4, eigensolver_iterations=40)

    unfused = run(False)
    fused = run(True)
    rows = []
    for label, result in (("unfused", unfused), ("pipeline", fused)):
        for i, est in enumerate(serial_fraction_history(result.timings), 1):
            rows.append({
                "path": label, "iteration": i,
                "serial [s]": round(est.serial_time, 4),
                "parallel cpu [s]": round(est.parallel_time, 4),
                "alpha": round(est.serial_fraction, 5),
                "max speedup": round(min(est.max_speedup, 1e6), 1),
            })
    print("\nFigure 3 companion (measured serial fraction per iteration):")
    print(format_table(rows))
    save_records(
        [ResultRecord("fig3_measured_serial_fraction", {
            "rows": rows, "cpu_count": os.cpu_count()})],
        results_dir / "fig3_measured_serial_fraction.json",
    )

    for result in (unfused, fused):
        for est in serial_fraction_history(result.timings):
            assert 0.0 < est.serial_fraction < 1.0
            assert est.parallel_time > 0
    # Identical physics on both paths (the data path equivalence that
    # makes the serial-fraction comparison meaningful).
    np.testing.assert_allclose(fused.density, unfused.density, rtol=1e-8)
    assert fused.total_energy == pytest.approx(unfused.total_energy, rel=1e-8)


@pytest.mark.paper_experiment
def test_fig3_genpot_sharding_serial_fraction(results_dir):
    """Measured serial fraction with and without GENPOT sharding.

    After the fused fragment pipeline, the serial GENPOT global step is
    what remains of the driver's per-iteration serial time; pushing it
    through the executor as per-slab tasks (``genpot_shards``) is the
    paper's dual fragment/slab layout.  This companion runs the same
    pipeline workload both ways, records every iteration's measured
    alpha, and asserts the drop on the *warm* iterations (the first
    iteration is dominated by one-off task building, exactly like the
    paper's expensive first iteration).  Results are bit-identical
    between the two runs, which is what makes the alphas comparable.
    """
    from repro.atoms.toy import cscl_binary
    from repro.core.scf import LS3DFSCF
    from repro.parallel.amdahl import serial_fraction_history

    def run(genpot_shards):
        structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
        scf = LS3DFSCF(structure, grid_dims=(2, 1, 1), ecut=2.2,
                       buffer_cells=0.5, n_empty=2, mixer="kerker",
                       pipeline=True, points_per_bohr=2.8,
                       genpot_shards=genpot_shards)
        return scf.run(max_iterations=3, potential_tolerance=1e-12,
                       eigensolver_tolerance=1e-4, eigensolver_iterations=40)

    unsharded = run(None)
    sharded = run(4)

    rows = []
    for label, result in (("serial genpot", unsharded), ("genpot_shards=4", sharded)):
        for i, (est, t) in enumerate(
            zip(serial_fraction_history(result.timings), result.timings), 1
        ):
            rows.append({
                "path": label, "iteration": i,
                "serial [ms]": round(1e3 * est.serial_time, 3),
                "parallel cpu [ms]": round(1e3 * est.parallel_time, 3),
                "genpot [ms]": round(1e3 * t.genpot, 3),
                "genpot driver [ms]": round(1e3 * t.genpot_driver, 3),
                "alpha": round(est.serial_fraction, 6),
            })
    print("\nFigure 3 companion (measured serial fraction, GENPOT sharding):")
    print(format_table(rows))

    warm = slice(1, None)  # skip the cold first iteration (one-off builds)
    alpha_serial = [t.measured_serial_fraction for t in unsharded.timings[warm]]
    alpha_sharded = [t.measured_serial_fraction for t in sharded.timings[warm]]
    save_records(
        [ResultRecord("fig3_genpot_sharding", {
            "rows": rows,
            "warm_alpha_serial_genpot": alpha_serial,
            "warm_alpha_sharded_genpot": alpha_sharded,
            "cpu_count": os.cpu_count(),
        })],
        results_dir / "fig3_genpot_sharding.json",
    )

    # Identical physics on both paths — the sharded global step is
    # bit-identical, so the alphas compare the same workload.
    np.testing.assert_array_equal(sharded.density, unsharded.density)
    assert sharded.total_energy == unsharded.total_energy
    # The sharded run really did push GENPOT through the executor...
    for t in sharded.timings:
        assert t.genpot_sharded and t.genpot_cpu > 0
        # ...and counting that work as serial again can only raise alpha
        # (the arithmetic guarantee behind the measured comparison).
        counterfactual = (t.serial_time + t.genpot_cpu) / (
            t.serial_time + t.genpot_cpu + t.petot_f_cpu
        )
        assert t.measured_serial_fraction < counterfactual
    # The measured warm-iteration serial fraction drops when the global
    # step is sharded: only the layout-conversion/reduction residue stays
    # on the driver (a stable ~25% effect — the residue is bandwidth-bound
    # copies vs. the FFT+XC compute that leaves the serial bucket).  The
    # comparison uses the *minimum* over the warm iterations: scheduler
    # noise on a loaded CI core only ever inflates a wall time (and hence
    # an alpha), so each side's minimum is its most noise-free sample and
    # the strict inequality stays robust where a mean comparison could
    # flake.  The per-iteration values are all recorded above.
    assert min(alpha_sharded) < min(alpha_serial)


@pytest.mark.paper_experiment
def test_bench_fig3_strong_scaling(benchmark, results_dir):
    ls3df, petot = benchmark.pedantic(_strong_scaling, rounds=1, iterations=1)
    cores = np.array(CORES, dtype=float)
    speedup_ls3df = ls3df / ls3df[0]
    speedup_petot = petot / petot[0]
    ideal = cores / cores[0]
    eff_ls3df = speedup_ls3df / ideal
    eff_petot = speedup_petot / ideal

    fit_ls3df = fit_amdahl(cores, ls3df)
    fit_petot = fit_amdahl(cores, petot)

    rows = [
        {
            "cores": int(c),
            "LS3DF speedup": round(float(s), 2),
            "PEtot_F speedup": round(float(sp), 2),
            "LS3DF eff %": round(100 * float(e), 1),
            "PEtot_F eff %": round(100 * float(ep), 1),
        }
        for c, s, sp, e, ep in zip(cores, speedup_ls3df, speedup_petot, eff_ls3df, eff_petot)
    ]
    print("\nFigure 3 (strong scaling, 3,456 atoms, Np=40, Franklin):")
    print(format_table(rows))
    print(
        f"Amdahl fit: LS3DF serial fraction 1/{fit_ls3df.inverse_serial_fraction:,.0f}"
        f" (paper 1/101,000); PEtot_F 1/{fit_petot.inverse_serial_fraction:,.0f}"
        f" (paper 1/362,000); mean fit deviation {100*fit_ls3df.mean_absolute_relative_deviation:.2f}%"
    )
    save_records(
        [
            ResultRecord("fig3", {"rows": rows,
                                  "ls3df_serial_fraction": fit_ls3df.serial_fraction,
                                  "petot_serial_fraction": fit_petot.serial_fraction}),
        ],
        results_dir / "fig3_strong_scaling.json",
    )

    # Paper shape: 16x more cores give >12x LS3DF speedup (86.3% efficiency)
    # and PEtot_F scales better than LS3DF overall.
    assert speedup_ls3df[-1] > 12.0
    assert eff_ls3df[-1] > 0.75
    assert speedup_petot[-1] >= speedup_ls3df[-1] - 1e-9
    assert eff_petot[-1] > 0.90
    # Amdahl's law describes the curve well, with a tiny serial fraction.
    assert fit_ls3df.mean_absolute_relative_deviation < 0.05
    assert fit_ls3df.serial_fraction < 2e-4
    assert fit_petot.serial_fraction < fit_ls3df.serial_fraction + 1e-9
