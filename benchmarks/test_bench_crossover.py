"""E8 — Section VI comparison against O(N^3) plane-wave codes.

Paper claims reproduced in shape:
* the direct-code / LS3DF time crossover sits at a few hundred atoms
  (the paper deduces ~600);
* for the 13,824-atom system LS3DF is hundreds of times faster (the paper
  estimates 400x) even granting the direct code perfect scaling;
* a fully converged 13,824-atom LS3DF calculation takes hours, the direct
  code weeks.
"""

from __future__ import annotations

import pytest

from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.comm import CommScheme
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN
from repro.parallel.perfmodel import DirectDFTCostModel, LS3DFPerformanceModel


def _crossover_experiment():
    direct = DirectDFTCostModel()
    rows = []
    for m in (2, 3, 4, 5, 6, 8, 10, 12):
        wl = LS3DFWorkload((m, m, m), grid_per_cell=40, ecut_ry=50)
        cores = 320
        model = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE)
        npg = 20 if cores % 20 == 0 else 10
        t_ls3df = sum(model.iteration_breakdown(cores, npg).values())
        t_direct = direct.time_per_iteration(wl.natoms, cores)
        rows.append(
            {
                "atoms": wl.natoms,
                "LS3DF s/iter": round(t_ls3df, 1),
                "direct s/iter": round(t_direct, 1),
                "direct / LS3DF": round(t_direct / t_ls3df, 2),
            }
        )
    crossover = direct.crossover_atoms(FRANKLIN, 320, 20)

    wl_big = LS3DFWorkload((12, 12, 12), grid_per_cell=40, ecut_ry=50)
    big_model = LS3DFPerformanceModel(FRANKLIN, wl_big, CommScheme.COLLECTIVE)
    speedup = direct.speedup_of_ls3df(big_model, 17280, 10)
    t_ls3df_full = sum(big_model.iteration_breakdown(17280, 10).values()) * 60 / 3600.0
    t_direct_full = direct.time_to_converge(wl_big.natoms, 17280, 60) / 86400.0
    return rows, crossover, speedup, t_ls3df_full, t_direct_full


@pytest.mark.paper_experiment
def test_bench_crossover_and_400x(benchmark, results_dir):
    rows, crossover, speedup, ls3df_hours, direct_days = benchmark.pedantic(
        _crossover_experiment, rounds=1, iterations=1
    )
    print("\nO(N) vs O(N^3) comparison (320 Franklin cores, per SCF iteration):")
    print(format_table(rows))
    print(f"crossover: ~{crossover:.0f} atoms (paper: ~600)")
    print(f"13,824-atom speedup on 17,280 cores: {speedup:.0f}x (paper: ~400x)")
    print(f"13,824-atom converged run: LS3DF ~{ls3df_hours:.1f} h vs direct ~{direct_days:.0f} days")
    save_records(
        [ResultRecord("crossover", {"rows": rows, "crossover_atoms": crossover,
                                    "speedup_13824": speedup,
                                    "ls3df_hours": ls3df_hours,
                                    "direct_days": direct_days})],
        results_dir / "crossover.json",
    )

    # Shape assertions.
    assert 200 < crossover < 1500
    # Below the crossover the direct code wins, far above it LS3DF wins big.
    assert rows[0]["direct / LS3DF"] < 1.0
    assert rows[-1]["direct / LS3DF"] > 50.0
    assert 200 < speedup < 1000
    # Converged 13,824-atom run: hours for LS3DF, weeks for the direct code.
    assert ls3df_hours < 12.0
    assert direct_days > 20.0
    # The ratio grows monotonically with system size (linear vs cubic).
    ratios = [r["direct / LS3DF"] for r in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
