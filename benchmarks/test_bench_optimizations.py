"""E9 — Section IV optimisation history of the four LS3DF subroutines.

The paper reports, for a 2,000-atom CdSe quantum-rod problem on 8,000
cores, the per-iteration times before and after the optimisation campaign:

    Gen_VF   22 s -> 2.5 s     (file I/O -> in-memory collectives)
    PEtot_F 170 s -> 60 s      (band-by-band BLAS-2 -> all-band BLAS-3)
    Gen_dens 19 s -> 2.2 s
    GENPOT   22 s -> 0.4 s

and, for the final point-to-point version on Intrepid (131,072 cores),
Gen_VF 0.37 s / PEtot_F 54.84 s / Gen_dens 0.56 s / GENPOT 1.23 s, i.e.
Gen_VF + Gen_dens below 2% of the iteration.
"""

from __future__ import annotations

import pytest

from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.comm import CommScheme, CommunicationModel
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN, INTREPID
from repro.parallel.perfmodel import LS3DFPerformanceModel


def _optimization_history():
    # 2,000-atom quantum-rod-like workload (250 cells) on 8,000 cores.
    wl = LS3DFWorkload((10, 5, 5), grid_per_cell=40, ecut_ry=50)
    cores, npg = 8000, 40

    def breakdown(scheme, kernel_slowdown=1.0, genpot_file_io=False):
        model = LS3DFPerformanceModel(FRANKLIN, wl, scheme)
        b = model.iteration_breakdown(cores, npg)
        b = dict(b)
        b["PEtot_F"] *= kernel_slowdown
        if genpot_file_io:
            # The pre-optimisation GENPOT passed the global density and
            # potential through the filesystem and repeated its setup every
            # call; model that as a file-I/O transfer of the two global
            # grid arrays on top of the compute time.
            io = CommunicationModel(FRANKLIN, CommScheme.FILE_IO)
            b["GENPOT"] += io.transfer_time(2 * 8.0 * wl.global_grid_points, cores)
        return b

    # Early version: file-I/O communication and the band-by-band (BLAS-2)
    # eigensolver running at ~15% of peak instead of ~42% (paper Section IV).
    before = breakdown(CommScheme.FILE_IO, kernel_slowdown=0.42 / 0.15, genpot_file_io=True)
    after = breakdown(CommScheme.COLLECTIVE, kernel_slowdown=1.0)

    # Final generation on Intrepid at 131,072 cores.
    wl_big = LS3DFWorkload((16, 16, 8), grid_per_cell=32, ecut_ry=40)
    final = LS3DFPerformanceModel(
        INTREPID, wl_big, CommScheme.POINT_TO_POINT
    ).iteration_breakdown(131072, 64)
    return before, after, final


@pytest.mark.paper_experiment
def test_bench_subroutine_optimizations(benchmark, results_dir):
    before, after, final = benchmark.pedantic(_optimization_history, rounds=1, iterations=1)
    rows = []
    paper_before = {"Gen_VF": 22.0, "PEtot_F": 170.0, "Gen_dens": 19.0, "GENPOT": 22.0}
    paper_after = {"Gen_VF": 2.5, "PEtot_F": 60.0, "Gen_dens": 2.2, "GENPOT": 0.4}
    for key in ("Gen_VF", "PEtot_F", "Gen_dens", "GENPOT"):
        rows.append(
            {
                "subroutine": key,
                "before [s]": round(before[key], 2),
                "after [s]": round(after[key], 2),
                "speedup": round(before[key] / after[key], 1),
                "paper before [s]": paper_before[key],
                "paper after [s]": paper_after[key],
                "paper speedup": round(paper_before[key] / paper_after[key], 1),
            }
        )
    print("\nSection IV optimisation history (2,000-atom problem, 8,000 cores):")
    print(format_table(rows))
    total_final = sum(final.values())
    frac_comm = (final["Gen_VF"] + final["Gen_dens"]) / total_final
    print(
        "Final Intrepid breakdown (131,072 cores): "
        + ", ".join(f"{k} {v:.2f}s" for k, v in final.items())
        + f"  (Gen_VF+Gen_dens = {100*frac_comm:.1f}% of iteration; paper <2%)"
    )
    save_records(
        [ResultRecord("optimizations", {"rows": rows, "final_breakdown": final})],
        results_dir / "optimizations.json",
    )

    # Shape: every subroutine got faster; the communication steps improved
    # by an order of magnitude; PEtot_F by a factor of a few.
    for row in rows:
        assert row["after [s]"] < row["before [s]"]
    speedups = {r["subroutine"]: r["speedup"] for r in rows}
    assert speedups["Gen_VF"] > 4.0
    assert speedups["Gen_dens"] > 4.0
    assert speedups["GENPOT"] > 3.0
    assert 1.5 < speedups["PEtot_F"] < 5.0
    # PEtot_F dominates the optimised iteration, as in the paper.
    assert after["PEtot_F"] > 5 * (after["Gen_VF"] + after["Gen_dens"])
    # Final generation: Gen_VF + Gen_dens below a few % of the iteration.
    assert frac_comm < 0.05
