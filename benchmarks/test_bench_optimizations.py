"""E9 — Section IV optimisation history of the four LS3DF subroutines.

The paper reports, for a 2,000-atom CdSe quantum-rod problem on 8,000
cores, the per-iteration times before and after the optimisation campaign:

    Gen_VF   22 s -> 2.5 s     (file I/O -> in-memory collectives)
    PEtot_F 170 s -> 60 s      (band-by-band BLAS-2 -> all-band BLAS-3)
    Gen_dens 19 s -> 2.2 s
    GENPOT   22 s -> 0.4 s

and, for the final point-to-point version on Intrepid (131,072 cores),
Gen_VF 0.37 s / PEtot_F 54.84 s / Gen_dens 0.56 s / GENPOT 1.23 s, i.e.
Gen_VF + Gen_dens below 2% of the iteration.

``test_bench_kernel_pack`` is this reproduction's own measured analogue:
the PR 6 hot-path kernel pack (install-once potentials, FFT workspace
reuse, blocked nonlocal projection, stacked small-fragment tasks) with
before/after per-stage timings, shipped payload bytes, accumulator
allocations and pool submissions, written to
``benchmarks/results/kernel_pack.json``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import potential_fingerprint
from repro.core.patching import (
    patch_contributions,
    reduce_stats,
    reset_reduce_stats,
)
from repro.core.scf import LS3DFSCF
from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.comm import CommScheme, CommunicationModel
from repro.parallel.executor import ThreadPoolFragmentExecutor
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN, INTREPID
from repro.parallel.perfmodel import LS3DFPerformanceModel
from repro.parallel.scheduler import pack_stacks
from repro.pw import fftcache


def _optimization_history():
    # 2,000-atom quantum-rod-like workload (250 cells) on 8,000 cores.
    wl = LS3DFWorkload((10, 5, 5), grid_per_cell=40, ecut_ry=50)
    cores, npg = 8000, 40

    def breakdown(scheme, kernel_slowdown=1.0, genpot_file_io=False):
        model = LS3DFPerformanceModel(FRANKLIN, wl, scheme)
        b = model.iteration_breakdown(cores, npg)
        b = dict(b)
        b["PEtot_F"] *= kernel_slowdown
        if genpot_file_io:
            # The pre-optimisation GENPOT passed the global density and
            # potential through the filesystem and repeated its setup every
            # call; model that as a file-I/O transfer of the two global
            # grid arrays on top of the compute time.
            io = CommunicationModel(FRANKLIN, CommScheme.FILE_IO)
            b["GENPOT"] += io.transfer_time(2 * 8.0 * wl.global_grid_points, cores)
        return b

    # Early version: file-I/O communication and the band-by-band (BLAS-2)
    # eigensolver running at ~15% of peak instead of ~42% (paper Section IV).
    before = breakdown(CommScheme.FILE_IO, kernel_slowdown=0.42 / 0.15, genpot_file_io=True)
    after = breakdown(CommScheme.COLLECTIVE, kernel_slowdown=1.0)

    # Final generation on Intrepid at 131,072 cores.
    wl_big = LS3DFWorkload((16, 16, 8), grid_per_cell=32, ecut_ry=40)
    final = LS3DFPerformanceModel(
        INTREPID, wl_big, CommScheme.POINT_TO_POINT
    ).iteration_breakdown(131072, 64)
    return before, after, final


@pytest.mark.paper_experiment
def test_bench_subroutine_optimizations(benchmark, results_dir):
    before, after, final = benchmark.pedantic(_optimization_history, rounds=1, iterations=1)
    rows = []
    paper_before = {"Gen_VF": 22.0, "PEtot_F": 170.0, "Gen_dens": 19.0, "GENPOT": 22.0}
    paper_after = {"Gen_VF": 2.5, "PEtot_F": 60.0, "Gen_dens": 2.2, "GENPOT": 0.4}
    for key in ("Gen_VF", "PEtot_F", "Gen_dens", "GENPOT"):
        rows.append(
            {
                "subroutine": key,
                "before [s]": round(before[key], 2),
                "after [s]": round(after[key], 2),
                "speedup": round(before[key] / after[key], 1),
                "paper before [s]": paper_before[key],
                "paper after [s]": paper_after[key],
                "paper speedup": round(paper_before[key] / paper_after[key], 1),
            }
        )
    print("\nSection IV optimisation history (2,000-atom problem, 8,000 cores):")
    print(format_table(rows))
    total_final = sum(final.values())
    frac_comm = (final["Gen_VF"] + final["Gen_dens"]) / total_final
    print(
        "Final Intrepid breakdown (131,072 cores): "
        + ", ".join(f"{k} {v:.2f}s" for k, v in final.items())
        + f"  (Gen_VF+Gen_dens = {100*frac_comm:.1f}% of iteration; paper <2%)"
    )
    save_records(
        [ResultRecord("optimizations", {"rows": rows, "final_breakdown": final})],
        results_dir / "optimizations.json",
    )

    # Shape: every subroutine got faster; the communication steps improved
    # by an order of magnitude; PEtot_F by a factor of a few.
    for row in rows:
        assert row["after [s]"] < row["before [s]"]
    speedups = {r["subroutine"]: r["speedup"] for r in rows}
    assert speedups["Gen_VF"] > 4.0
    assert speedups["Gen_dens"] > 4.0
    assert speedups["GENPOT"] > 3.0
    assert 1.5 < speedups["PEtot_F"] < 5.0
    # PEtot_F dominates the optimised iteration, as in the paper.
    assert after["PEtot_F"] > 5 * (after["Gen_VF"] + after["Gen_dens"])
    # Final generation: Gen_VF + Gen_dens below a few % of the iteration.
    assert frac_comm < 0.05


# ---------------------------------------------------------------------------
# PR 6: measured effect of the hot-path kernel pack
# ---------------------------------------------------------------------------

_KERNEL_PACK_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-12,  # never met: both runs do identical work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


def _kernel_pack_scf(executor, **kwargs) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        pipeline=True,
        **kwargs,
    )


def _run_kernel_pack_experiment():
    measurements = {}

    def measure(tag, optimized):
        fftcache.configure(enabled=optimized)
        fftcache.clear()
        fftcache.reset_stats()
        reset_reduce_stats()
        try:
            with ThreadPoolFragmentExecutor(
                2, stack_small_tasks=optimized
            ) as ex:
                scf = _kernel_pack_scf(
                    ex,
                    install_potentials=optimized,
                    sliced_nonlocal=optimized,
                )
                result = scf.run(**_KERNEL_PACK_RUN_KW)
                stages = {
                    stage: sum(getattr(t, stage) for t in result.timings)
                    for stage in ("gen_vf", "petot_f", "gen_dens", "genpot")
                }
                measurements[tag] = {
                    "result": result,
                    "stages": stages,
                    "tasks_submitted": ex.tasks_submitted,
                    "pool_submissions": ex.pool_submissions,
                    "fft": fftcache.stats(),
                    "reduce": reduce_stats(),
                }
        finally:
            fftcache.configure(enabled=True)

    measure("before", optimized=False)
    measure("after", optimized=True)

    # Shipped bytes per pipeline submission: inline potential vs install key.
    scf = _kernel_pack_scf(None)
    v_in = scf.genpot.initial_potential()
    inline = scf.fragment_solver.make_pipeline_task(scf.fragments[0], v_in)
    keyed = scf.fragment_solver.make_pipeline_task(
        scf.fragments[0], v_in,
        global_potential_key=potential_fingerprint(v_in),
    )
    measurements["payload_bytes"] = {
        "inline": len(pickle.dumps(inline)),
        "keyed": len(pickle.dumps(keyed)),
        "potential_bytes": int(v_in.nbytes),
    }

    # Gen_dens accumulator allocations on a fixed 11-chunk reduction: the
    # seed allocated one partial per chunk; the recycling pool needs
    # O(log chunks).
    contribs = [
        ((np.array([i % 6]), np.array([0]), np.array([0])), np.ones((1, 1, 1)))
        for i in range(33)
    ]
    reset_reduce_stats()
    patch_contributions((6, 6, 6), iter(contribs), chunk_size=3)
    micro = reduce_stats()
    measurements["gen_dens_allocations"] = {
        "chunks": 11,
        "before": 11,  # one fresh np.zeros per chunk
        "after": micro["allocations"],
        "reused": micro["reused"],
    }

    # Submission stacking on a mixed batch: two big + four small fragments
    # on two workers.
    costs = [100.0, 100.0, 1.0, 1.0, 1.0, 1.0]
    groups = pack_stacks(costs, 2)
    measurements["submissions"] = {
        "logical_tasks": len(costs),
        "physical_submissions": len(groups),
    }
    return measurements


@pytest.mark.paper_experiment
def test_bench_kernel_pack(benchmark, results_dir):
    m = benchmark.pedantic(_run_kernel_pack_experiment, rounds=1, iterations=1)
    before, after = m["before"], m["after"]
    rows = [
        {
            "stage": stage,
            "before [s]": round(before["stages"][stage], 4),
            "after [s]": round(after["stages"][stage], 4),
        }
        for stage in ("gen_vf", "petot_f", "gen_dens", "genpot")
    ]
    print("\nPR 6 kernel pack (3 SCF iterations, 2 fragments, 2 threads):")
    print(format_table(rows))
    payload = m["payload_bytes"]
    print(
        f"pipeline submission payload: {payload['inline']} B inline -> "
        f"{payload['keyed']} B keyed "
        f"(potential itself: {payload['potential_bytes']} B)"
    )
    print(
        "fft pool (after): "
        f"{after['fft']['hits']} hits, {after['fft']['misses']} misses, "
        f"{after['fft']['reused_bytes']} B reused"
    )
    print(
        "gen_dens accumulators (11 chunks): "
        f"{m['gen_dens_allocations']['before']} -> "
        f"{m['gen_dens_allocations']['after']} allocations"
    )
    print(
        "mixed batch submissions: "
        f"{m['submissions']['logical_tasks']} logical -> "
        f"{m['submissions']['physical_submissions']} physical"
    )
    save_records(
        [
            ResultRecord(
                "kernel_pack",
                {
                    "stage_timings": rows,
                    "payload_bytes": payload,
                    "fft_pool": {
                        k: after["fft"][k]
                        for k in ("hits", "misses", "reused_bytes")
                    },
                    "gen_dens_allocations": m["gen_dens_allocations"],
                    "submissions": m["submissions"],
                    "total_energy": after["result"].total_energy,
                },
            )
        ],
        results_dir / "kernel_pack.json",
    )

    # The pack must not move a single bit of the physics.
    np.testing.assert_array_equal(
        after["result"].density, before["result"].density
    )
    assert after["result"].total_energy == before["result"].total_energy
    # Install channel: a keyed submission ships without the global grid.
    assert payload["keyed"] < payload["inline"]
    assert payload["inline"] - payload["keyed"] > 0.5 * payload["potential_bytes"]
    # FFT pool: the optimised run actually reused workspace buffers.
    assert after["fft"]["hits"] > 0 and after["fft"]["reused_bytes"] > 0
    assert before["fft"]["hits"] == 0  # disabled = the allocating seed path
    # Gen_dens: O(log chunks) accumulator allocations instead of one per chunk.
    assert m["gen_dens_allocations"]["after"] < m["gen_dens_allocations"]["before"]
    # Stacking: fewer physical submissions than logical tasks.
    assert (
        m["submissions"]["physical_submissions"]
        < m["submissions"]["logical_tasks"]
    )
    # Logical accounting is backend-invariant: one task per fragment per
    # iteration, stacked or not.
    assert after["tasks_submitted"] == before["tasks_submitted"]
