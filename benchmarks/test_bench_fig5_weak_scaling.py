"""E4 — Figure 5: weak-scaling flop rates on Franklin, Jaguar and Intrepid.

The paper plots total Tflop/s against cores at a constant atoms-per-core
ratio for each machine; the nearly straight lines (on a log-log plot) are
the evidence that LS3DF is ready for petascale machines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.comm import CommScheme
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.machine import FRANKLIN, INTREPID, JAGUAR
from repro.parallel.perfmodel import LS3DFPerformanceModel

WEAK_SCALING_SERIES = {
    "Franklin": (FRANKLIN, CommScheme.COLLECTIVE, 40, 50, 20,
                 [((3, 3, 3), 1080), ((4, 4, 4), 2560), ((6, 6, 6), 8640), ((8, 8, 8), 20480 // 2)]),
    "Jaguar": (JAGUAR, CommScheme.COLLECTIVE, 40, 50, 20,
               [((8, 8, 6), 7680), ((16, 8, 6), 15360), ((16, 12, 8), 30720)]),
    "Intrepid": (INTREPID, CommScheme.POINT_TO_POINT, 32, 40, 64,
                 [((4, 4, 4), 4096), ((8, 4, 4), 8192), ((8, 8, 4), 16384),
                  ((8, 8, 8), 32768), ((16, 8, 8), 65536), ((16, 16, 8), 131072)]),
}


def _weak_scaling():
    out = {}
    for name, (machine, scheme, grid, ecut, npg, runs) in WEAK_SCALING_SERIES.items():
        rows = []
        for dims, cores in runs:
            wl = LS3DFWorkload(dims, grid_per_cell=grid, ecut_ry=ecut)
            p = LS3DFPerformanceModel(machine, wl, scheme).evaluate(cores, npg)
            rows.append({"machine": name, "cores": cores, "atoms": wl.natoms,
                         "Tflop/s": round(p.tflops, 2)})
        out[name] = rows
    return out


@pytest.mark.paper_experiment
def test_bench_fig5_weak_scaling(benchmark, results_dir):
    series = benchmark.pedantic(_weak_scaling, rounds=1, iterations=1)
    all_rows = [r for rows in series.values() for r in rows]
    print("\nFigure 5 (weak scaling Tflop/s):")
    print(format_table(all_rows))
    save_records([ResultRecord("fig5", {"series": series})], results_dir / "fig5_weak_scaling.json")

    for name, rows in series.items():
        cores = np.array([r["cores"] for r in rows], dtype=float)
        tflops = np.array([r["Tflop/s"] for r in rows], dtype=float)
        # Straight line on log-log with slope ~1 (linear weak scaling).
        slope = np.polyfit(np.log(cores), np.log(tflops), 1)[0]
        assert 0.85 < slope < 1.05, (name, slope)
        # Performance strictly increases with machine partition size.
        assert np.all(np.diff(tflops) > 0)

    # Machine ordering of the largest runs matches the paper:
    # Intrepid's largest partition delivers the highest total rate.
    best = {name: max(r["Tflop/s"] for r in rows) for name, rows in series.items()}
    assert best["Intrepid"] > best["Jaguar"] > best["Franklin"]
    # And the headline number is ~100 Tflop/s on 131,072 cores.
    assert best["Intrepid"] > 80.0
