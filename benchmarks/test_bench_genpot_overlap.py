"""GENPOT conversion/compute overlap — the PR 8 streaming engine measured.

The paper's Section IV reduces GENPOT from 22 s to 0.4 s per iteration
partly by overlapping the slab layout conversions (the all-to-all
transposes of the distributed FFT) with the per-slab compute, so the
driver-side serial residue — the Amdahl ``alpha`` of the global steps —
nearly vanishes.

This benchmark runs one kerker-mixed GENPOT evaluation on a thread pool
twice: with the synchronous PR 3 phase-barrier path
(``overlap=False``) and with the PR 8 streaming engine (resident slabs,
incremental exchanges, fused finish stage).  Both produce bit-identical
fields; what changes is the accounting.  It records per-stage walls,
the streaming occupancy and measured layout-conversion seconds, and the
measured driver-side serial residue / alpha for both modes, written to
``benchmarks/results/genpot_overlap.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.genpot import GlobalPotentialSolver
from repro.io.results import ResultRecord, save_records
from repro.io.tables import format_table
from repro.parallel.executor import ThreadPoolFragmentExecutor
from repro.pw.grid import FFTGrid
from repro.pw.pseudopotential import default_pseudopotentials

GRID_SHAPE = (32, 32, 64)
SHARDS = 8
WORKERS = 2
REPEATS = 5


def _measure(overlap: bool) -> dict:
    """Best-of-``REPEATS`` GENPOT timing breakdown for one overlap mode.

    Each repeat rebuilds the solver (so no FFT workspace or mixer state
    leaks between modes) but reuses one thread pool; the repeat with the
    smallest driver residue is kept, the usual best-of-N defence against
    scheduler noise on shared machines.
    """
    grid = FFTGrid((12.0, 12.0, 24.0), GRID_SHAPE)
    rng = np.random.default_rng(42)
    rho = rng.random(GRID_SHAPE)
    v_in = rng.standard_normal(GRID_SHAPE)
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    executor = ThreadPoolFragmentExecutor(WORKERS)
    best = None
    try:
        for _ in range(REPEATS):
            solver = GlobalPotentialSolver(
                structure,
                grid,
                default_pseudopotentials(),
                mixer="kerker",
                shards=SHARDS,
                executor=executor,
                overlap=overlap,
            )
            out = solver.evaluate(rho, v_in)
            tm = out.timings
            alpha = tm.driver / (tm.driver + tm.task_cpu) if tm.task_cpu > 0 else 1.0
            rec = {
                "overlap": tm.overlap,
                "poisson [s]": tm.poisson,
                "xc [s]": tm.xc,
                "mix [s]": tm.mix,
                "task_cpu [s]": tm.task_cpu,
                "driver [s]": tm.driver,
                "alpha": alpha,
                "layout_conversion [s]": tm.layout_conversion,
                "wait [s]": tm.wait,
                "busy [s]": tm.busy,
                "occupancy": tm.occupancy,
                "tasks": len(tm.task_times),
            }
            if best is None or rec["driver [s]"] < best["driver [s]"]:
                best = rec
    finally:
        executor.close()
    return best


@pytest.mark.paper_experiment
def test_bench_genpot_overlap(benchmark, results_dir):
    sync, stream = benchmark.pedantic(
        lambda: (_measure(overlap=False), _measure(overlap=True)),
        rounds=1,
        iterations=1,
    )

    rows = []
    for mode, rec in (("synchronous", sync), ("streaming", stream)):
        rows.append(
            {
                "mode": mode,
                "poisson [ms]": round(1e3 * rec["poisson [s]"], 2),
                "xc [ms]": round(1e3 * rec["xc [s]"], 2),
                "mix [ms]": round(1e3 * rec["mix [s]"], 2),
                "driver [ms]": round(1e3 * rec["driver [s]"], 2),
                "alpha": round(rec["alpha"], 4),
                "conv [ms]": round(1e3 * rec["layout_conversion [s]"], 2),
                "occupancy": round(rec["occupancy"], 3),
            }
        )
    print(
        f"\nGENPOT overlap ({GRID_SHAPE} grid, {SHARDS} slabs, "
        f"{WORKERS} threads, kerker; best of {REPEATS}):"
    )
    print(format_table(rows))
    print(
        "driver-side serial residue: "
        f"{1e3 * sync['driver [s]']:.2f} ms sync -> "
        f"{1e3 * stream['driver [s]']:.2f} ms streamed "
        f"(alpha {sync['alpha']:.4f} -> {stream['alpha']:.4f})"
    )
    save_records(
        [
            ResultRecord(
                "genpot_overlap",
                {
                    "grid_shape": list(GRID_SHAPE),
                    "shards": SHARDS,
                    "workers": WORKERS,
                    "repeats": REPEATS,
                    "mixer": "kerker",
                    "synchronous": sync,
                    "streaming": stream,
                },
            )
        ],
        results_dir / "genpot_overlap.json",
    )

    # Shape: the streaming engine actually streamed (it measured its
    # conversion copies and a non-degenerate occupancy), and its
    # driver-side serial residue — the alpha the paper's overlap attacks
    # — is below the phase-barrier path's.
    assert not sync["overlap"] and stream["overlap"]
    assert sync["layout_conversion [s]"] == 0.0
    assert stream["layout_conversion [s]"] > 0.0
    assert 0.0 < stream["occupancy"] <= 1.0
    assert stream["tasks"] == 9 * SHARDS
    assert stream["driver [s]"] < sync["driver [s]"]
    assert stream["alpha"] < sync["alpha"]
