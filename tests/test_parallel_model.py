"""Tests for the parallel-machine substrate (machines, groups, scheduler,
flop counts, communication model, performance model, Amdahl fits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fragments import enumerate_fragments
from repro.parallel.amdahl import amdahl_performance, amdahl_speedup, fit_amdahl
from repro.parallel.comm import CommScheme, CommunicationModel
from repro.parallel.flops import LS3DFWorkload
from repro.parallel.groups import GroupDecomposition, choose_group_size
from repro.parallel.machine import FRANKLIN, INTREPID, JAGUAR, all_machines, machine_by_name
from repro.parallel.perfmodel import DirectDFTCostModel, LS3DFPerformanceModel
from repro.parallel.scheduler import FragmentScheduler


# --- machines -----------------------------------------------------------------

def test_machine_peaks_match_paper():
    # Paper: Franklin 101.5 Tflop/s, Jaguar ~263, Intrepid 556.
    assert FRANKLIN.peak_tflops() == pytest.approx(101.5, rel=0.03)
    assert JAGUAR.peak_tflops() == pytest.approx(263.0, rel=0.03)
    assert INTREPID.peak_tflops() == pytest.approx(556.0, rel=0.03)


def test_machine_lookup_and_validation():
    assert machine_by_name("franklin").name == "Franklin"
    with pytest.raises(KeyError):
        machine_by_name("Summit")
    assert len(all_machines()) == 3
    with pytest.raises(ValueError):
        FRANKLIN.peak_tflops(10**9)


# --- groups ----------------------------------------------------------------------

def test_group_decomposition_basics():
    d = GroupDecomposition(17280, 40)
    assert d.ngroups == 432
    assert d.group_of_rank(0) == 0
    assert d.group_of_rank(17279) == 431
    assert list(d.ranks_of_group(1))[:2] == [40, 41]
    with pytest.raises(ValueError):
        GroupDecomposition(100, 7)


def test_intra_group_efficiency_decreases_with_np():
    effs = [
        GroupDecomposition(busy * 960, busy).intra_group_efficiency(JAGUAR.core_peak_gflops)
        for busy in (10, 20, 40, 80)
    ]
    assert all(np.diff(effs) <= 0)
    assert effs[0] > 0.95
    assert effs[-1] < effs[1]


def test_choose_group_size_prefers_moderate_np():
    np_choice = choose_group_size(FRANKLIN.core_peak_gflops, nfragments=3456, total_cores=17280)
    assert np_choice in (40, 64, 80, 128)
    with pytest.raises(ValueError):
        choose_group_size(FRANKLIN.core_peak_gflops, nfragments=0, total_cores=0)


# --- workload / flops ---------------------------------------------------------------

def test_workload_counts_follow_paper_conventions():
    wl = LS3DFWorkload((8, 6, 9))
    assert wl.natoms == 3456
    assert wl.ncells == 432
    assert wl.nfragments == 8 * 432
    assert wl.global_grid_points == 432 * 40**3


def test_fragment_work_scales_with_size():
    wl = LS3DFWorkload((4, 4, 4))
    small = wl.fragment_work((1, 1, 1))
    large = wl.fragment_work((2, 2, 2))
    assert large.flops_per_iteration > small.flops_per_iteration
    assert large.nbands == pytest.approx(8 * small.nbands / 1.0, rel=0.01) or large.nbands > small.nbands


def test_total_flops_scale_linearly_with_system_size():
    f1 = LS3DFWorkload((4, 4, 4)).total_flops_per_iteration()
    f2 = LS3DFWorkload((8, 4, 4)).total_flops_per_iteration()
    assert f2 == pytest.approx(2.0 * f1, rel=0.02)


def test_flops_per_iteration_magnitude_matches_paper():
    # Paper: 31.35 Tflop/s * ~60 s/iteration ~ 1.9e15 flops for 3,456 atoms.
    wl = LS3DFWorkload((8, 6, 9), grid_per_cell=40, ecut_ry=50)
    total = wl.total_flops_per_iteration()
    assert 0.8e15 < total < 4e15


# --- scheduler ----------------------------------------------------------------------

def test_scheduler_balances_homogeneous_costs():
    sched = FragmentScheduler()
    summary = sched.schedule_by_costs([1.0] * 64, ngroups=8)
    assert summary.imbalance == pytest.approx(1.0)
    assert all(len(a) == 8 for a in summary.assignments)


def test_scheduler_with_fragment_objects_and_workload():
    wl = LS3DFWorkload((2, 2, 2))
    frags = enumerate_fragments((2, 2, 2))
    sched = FragmentScheduler(wl)
    summary = sched.schedule(frags, ngroups=8)
    # Every corner's 8 fragments have the same total cost -> good balance.
    assert summary.imbalance < 1.15
    assert sum(len(a) for a in summary.assignments) == len(frags)


def test_scheduler_validation():
    sched = FragmentScheduler()
    with pytest.raises(ValueError):
        sched.schedule_by_costs([1.0], ngroups=0)
    with pytest.raises(ValueError):
        sched.schedule_by_costs([-1.0], ngroups=1)


@settings(max_examples=25, deadline=None)
@given(
    ncosts=st.integers(min_value=1, max_value=60),
    ngroups=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_lpt_schedule_bounds(ncosts, ngroups, seed):
    """LPT makespan is within 4/3 of the lower bound max(mean, max_cost)."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.1, 10.0, size=ncosts)
    summary = FragmentScheduler().schedule_by_costs(costs, ngroups)
    lower_bound = max(costs.sum() / ngroups, costs.max())
    assert summary.makespan <= (4.0 / 3.0) * lower_bound + 1e-9
    assert summary.makespan >= lower_bound - 1e-9


# --- communication -------------------------------------------------------------------

def test_comm_schemes_ranked_as_in_paper():
    """file I/O slower than collectives, collectives slower than isend/irecv
    at scale — the paper's three optimisation generations."""
    wl = LS3DFWorkload((10, 10, 8))
    data = wl.gen_vf_data_bytes()
    cores = 8000
    t_file = CommunicationModel(FRANKLIN, CommScheme.FILE_IO).transfer_time(data, cores)
    t_coll = CommunicationModel(FRANKLIN, CommScheme.COLLECTIVE).transfer_time(data, cores)
    t_p2p = CommunicationModel(FRANKLIN, CommScheme.POINT_TO_POINT).transfer_time(data, cores)
    assert t_file > t_coll > t_p2p


def test_comm_validation_and_allreduce():
    comm = CommunicationModel(FRANKLIN)
    with pytest.raises(ValueError):
        comm.transfer_time(-1.0, 10)
    with pytest.raises(ValueError):
        comm.transfer_time(1.0, 0)
    assert comm.allreduce_time(1e6, 1024) > 0
    assert comm.barrier_time(1024) > 0


# --- performance model ------------------------------------------------------------------

def test_perfmodel_percent_peak_in_paper_range():
    wl = LS3DFWorkload((8, 6, 9), grid_per_cell=40, ecut_ry=50)
    model = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE)
    low = model.evaluate(1080, 40)
    high = model.evaluate(17280, 40)
    # Paper: 40.5% at 1,080 cores, 34.9% at 17,280 cores.
    assert 36.0 < low.percent_peak < 45.0
    assert 29.0 < high.percent_peak < 39.0
    assert low.percent_peak > high.percent_peak
    assert high.tflops > low.tflops


def test_perfmodel_intrepid_largest_run_matches_headline():
    # Paper headline: 107.5 Tflop/s on 131,072 Intrepid cores (24.2% peak).
    wl = LS3DFWorkload((16, 16, 8), grid_per_cell=32, ecut_ry=40)
    p = LS3DFPerformanceModel(INTREPID, wl, CommScheme.POINT_TO_POINT).evaluate(131072, 64)
    assert 80.0 < p.tflops < 140.0
    assert 20.0 < p.percent_peak < 30.0


def test_perfmodel_weak_scaling_is_nearly_flat():
    points = []
    for dims, cores in [((4, 4, 4), 4096), ((8, 8, 4), 16384), ((8, 8, 8), 32768)]:
        wl = LS3DFWorkload(dims, grid_per_cell=32, ecut_ry=40)
        points.append(
            LS3DFPerformanceModel(INTREPID, wl, CommScheme.POINT_TO_POINT).evaluate(cores, 64)
        )
    eff = [p.percent_peak for p in points]
    assert max(eff) - min(eff) < 5.0
    # Total Tflop/s grows nearly linearly with cores.
    assert points[-1].tflops / points[0].tflops == pytest.approx(8.0, rel=0.2)


def test_perfmodel_breakdown_dominated_by_petot_f():
    wl = LS3DFWorkload((8, 8, 8), grid_per_cell=32, ecut_ry=40)
    b = LS3DFPerformanceModel(INTREPID, wl).iteration_breakdown(32768, 64)
    assert b["PEtot_F"] > 10 * (b["Gen_VF"] + b["Gen_dens"])
    assert b["GENPOT"] < b["PEtot_F"]


def test_perfmodel_np80_less_efficient_than_np40_on_jaguar():
    wl = LS3DFWorkload((8, 8, 6))
    model = LS3DFPerformanceModel(JAGUAR, wl, CommScheme.COLLECTIVE)
    p40 = model.evaluate(15360, 40)
    p80 = model.evaluate(30720, 80)
    assert p80.percent_peak < p40.percent_peak


def test_perfmodel_validation():
    wl = LS3DFWorkload((2, 2, 2))
    model = LS3DFPerformanceModel(FRANKLIN, wl)
    with pytest.raises(ValueError):
        model.iteration_breakdown(100, 7)


# --- direct O(N^3) comparison ---------------------------------------------------------------

def test_direct_cost_model_cubic_scaling():
    model = DirectDFTCostModel()
    t1 = model.time_per_iteration(512, 320)
    t2 = model.time_per_iteration(1024, 320)
    assert t2 == pytest.approx(8.0 * t1, rel=1e-9)
    assert model.time_per_iteration(512, 640) == pytest.approx(t1 / 2.0)
    assert model.time_to_converge(512, 320, 60) == pytest.approx(60 * t1)


def test_ls3df_speedup_and_crossover_shape():
    """Paper: crossover ~600 atoms; ~400x faster at 13,824 atoms."""
    direct = DirectDFTCostModel()
    wl = LS3DFWorkload((12, 12, 12), grid_per_cell=40)
    model = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE)
    speedup = direct.speedup_of_ls3df(model, 17280, 10)
    assert 200 < speedup < 1000
    crossover = direct.crossover_atoms(FRANKLIN, 320, 20)
    assert 200 < crossover < 1500


# --- Amdahl -----------------------------------------------------------------------------

def test_amdahl_speedup_limits():
    assert amdahl_speedup(1, 0.01) == pytest.approx(1.0)
    assert amdahl_speedup(10**9, 0.01) == pytest.approx(100.0, rel=1e-3)
    with pytest.raises(ValueError):
        amdahl_speedup(8, -0.1)


def test_fit_amdahl_recovers_injected_parameters():
    cores = np.array([1080, 2160, 4320, 8640, 17280], dtype=float)
    p_s, alpha = 2.4e-3, 1.0e-5  # Tflop/s per core, serial fraction
    perf = amdahl_performance(cores, p_s, alpha)
    fit = fit_amdahl(cores, perf)
    assert fit.single_core_performance == pytest.approx(p_s, rel=1e-4)
    assert fit.serial_fraction == pytest.approx(alpha, rel=1e-3)
    assert fit.mean_absolute_relative_deviation < 1e-6
    assert fit.inverse_serial_fraction == pytest.approx(1.0 / alpha, rel=1e-3)


def test_fit_amdahl_on_model_strong_scaling_is_tight():
    """The model's strong-scaling curve must be well described by Amdahl's
    law, as the paper found (mean deviation 0.26%)."""
    wl = LS3DFWorkload((8, 6, 9))
    model = LS3DFPerformanceModel(FRANKLIN, wl, CommScheme.COLLECTIVE)
    cores = [1080, 2160, 4320, 8640, 17280]
    perf = [model.evaluate(c, 40).tflops for c in cores]
    fit = fit_amdahl(np.array(cores, float), np.array(perf))
    assert fit.mean_absolute_relative_deviation < 0.05
    assert fit.serial_fraction < 1e-3


def test_fit_amdahl_validation():
    with pytest.raises(ValueError):
        fit_amdahl(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_amdahl(np.array([1.0, -2.0]), np.array([1.0, 2.0]))
