"""Tests for the streaming GENPOT engine (PR 8).

Covers the acceptance criteria of the streaming tentpole:

* :class:`repro.parallel.streaming.SlabExchangeBuffer` assembles, from
  source slabs arriving in *any* order, exactly the bytes of the
  synchronous :meth:`DistributedField.exchange`.
* The streamed GENPOT evaluation is bit-identical (``==``, not allclose)
  to the PR 3 synchronous sharded path — and hence to the serial path —
  across the serial / thread / process / remote-socket backends, shard
  counts {1, 2, 3, nz}, the kerker / linear / anderson mixers and
  overlap on/off, including full SCF iterate histories through
  :class:`repro.core.scf.LS3DFSCF`.
* A worker killed mid-stream is resubmitted to the survivors (and the
  local fallback drains the queue when no worker survives), with
  bit-identical results either way.
* The opt-in real-FFT density path (``REPRO_REAL_FFT``): off by
  default, tolerance-equal to the complex transforms, and the streamed
  half-spectrum chain bit-identical to the serial real-FFT branch.
* The new overlap accounting: occupancy in [0, 1], measured layout
  conversion, and the overlapped pipeline reduce's wait/busy split.
"""

import contextlib
import os

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.genpot import GlobalPotentialSolver
from repro.core.scf import LS3DFSCF
from repro.parallel.distributed import DistributedField
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.remote import (
    RemoteExecutor,
    RemoteExecutorConfig,
    start_worker_thread,
)
from repro.parallel.streaming import (
    SlabExchangeBuffer,
    stream_genpot,
    streaming_supported,
)
from repro.pw import fftcache
from repro.pw.grid import FFTGrid
from repro.pw.hartree import hartree_potential, poisson_residual
from repro.pw.mixing import make_mixer
from repro.pw.pseudopotential import default_pseudopotentials

GRID_SHAPE = (4, 6, 8)


@pytest.fixture
def grid() -> FFTGrid:
    return FFTGrid((7.0, 9.0, 11.0), GRID_SHAPE)


@pytest.fixture
def fields(grid):
    rng = np.random.default_rng(42)
    rho = rng.random(grid.shape)
    v_in = rng.standard_normal(grid.shape)
    return rho, v_in


def _make_solver(grid, mixer, shards=None, executor=None, overlap=True):
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    return GlobalPotentialSolver(
        structure,
        grid,
        default_pseudopotentials(),
        mixer=mixer,
        shards=shards,
        executor=executor,
        overlap=overlap,
    )


def _config(**kw) -> RemoteExecutorConfig:
    base = dict(
        connect_timeout=2.0,
        request_timeout=60.0,
        heartbeat_interval=1e9,
        max_retries=1,
        backoff=0.01,
    )
    base.update(kw)
    return RemoteExecutorConfig(**base)


@contextlib.contextmanager
def _cluster(n=2, plans=None, fallback="serial", **cfg):
    plans = plans or {}
    servers = [start_worker_thread(fault_plan=plans.get(i)) for i in range(n)]
    executor = RemoteExecutor(
        [s.address for s in servers], config=_config(**cfg), fallback=fallback
    )
    try:
        yield executor, servers
    finally:
        executor.close()
        for server in servers:
            server.stop()


def _assert_outputs_equal(got, want):
    """Bit-identity of two GENPOT evaluations (the `==` criterion)."""
    assert np.array_equal(got.output_potential, want.output_potential)
    assert np.array_equal(got.next_input_potential, want.next_input_potential)
    assert got.potential_difference == want.potential_difference
    assert got.electrostatic_energy == want.electrostatic_energy
    assert got.xc_energy == want.xc_energy


# --- incremental exchange ---------------------------------------------------------


@pytest.mark.parametrize("axes", [(2, 0), (0, 2)])
@pytest.mark.parametrize("nshards", [1, 2, 3, 5, 8])
def test_exchange_buffer_matches_synchronous_exchange(axes, nshards):
    """Out-of-order incremental assembly == DistributedField.exchange bytes."""
    src_axis, dst_axis = axes
    rng = np.random.default_rng(7)
    field = rng.standard_normal(GRID_SHAPE) + 1j * rng.standard_normal(GRID_SHAPE)
    sync = DistributedField.scatter(field, nshards, axis=src_axis).exchange(dst_axis)

    buffer = SlabExchangeBuffer(GRID_SHAPE, src_axis, dst_axis, nshards)
    slabs = DistributedField.scatter(field, nshards, axis=src_axis).slabs
    completed = {}
    # Arrival order reversed: completion must not depend on source order.
    for i in reversed(range(nshards)):
        for j in buffer.add(i, slabs[i]):
            completed[j] = buffer.take(j)
    assert sorted(completed) == list(range(nshards))
    for j in range(nshards):
        np.testing.assert_array_equal(completed[j], sync.slabs[j])


def test_exchange_buffer_guards():
    with pytest.raises(ValueError, match="distinct axes"):
        SlabExchangeBuffer(GRID_SHAPE, 2, 2, 2)
    buffer = SlabExchangeBuffer(GRID_SHAPE, 0, 2, 2)
    with pytest.raises(RuntimeError, match="not complete"):
        buffer.take(0)
    slabs = DistributedField.scatter(np.zeros(GRID_SHAPE), 2, axis=0).slabs
    buffer.add(0, slabs[0])
    ready = buffer.add(1, slabs[1])
    assert ready == [0, 1]
    buffer.take(0)
    with pytest.raises(RuntimeError, match="already taken"):
        buffer.take(0)


# --- streamed evaluation: the backend x shards x mixer x overlap matrix -----------


@pytest.mark.parametrize("mixer", ["linear", "kerker", "anderson"])
@pytest.mark.parametrize("shards", [2, 3, GRID_SHAPE[2]])
def test_streaming_evaluate_bit_identical_serial(grid, fields, mixer, shards):
    """Streamed == synchronous sharded == serial, for every mixer and shards."""
    rho, v_in = fields
    serial = _make_solver(grid, mixer).evaluate(rho, v_in)
    sync = _make_solver(grid, mixer, shards=shards, overlap=False).evaluate(rho, v_in)
    streamed = _make_solver(grid, mixer, shards=shards).evaluate(rho, v_in)
    _assert_outputs_equal(sync, serial)
    _assert_outputs_equal(streamed, serial)
    assert streamed.timings.overlap
    assert not sync.timings.overlap


@pytest.mark.parametrize("mixer", ["linear", "kerker", "anderson"])
def test_streaming_evaluate_bit_identical_pools(grid, fields, mixer):
    """Thread and process pools stream to the same bits as the serial path."""
    rho, v_in = fields
    reference = _make_solver(grid, mixer, shards=3).evaluate(rho, v_in)
    with ThreadPoolFragmentExecutor(n_workers=3) as threads:
        threaded = _make_solver(grid, mixer, shards=3, executor=threads).evaluate(
            rho, v_in
        )
    with ProcessPoolFragmentExecutor(n_workers=2) as procs:
        pooled = _make_solver(grid, mixer, shards=3, executor=procs).evaluate(
            rho, v_in
        )
    _assert_outputs_equal(threaded, reference)
    _assert_outputs_equal(pooled, reference)


def test_streaming_evaluate_bit_identical_remote(grid, fields):
    """The socket backend streams to the same bits, shards 1..nz."""
    rho, v_in = fields
    with _cluster(2) as (executor, _):
        assert streaming_supported(executor)
        for shards in (1, 2, 3, GRID_SHAPE[2]):
            reference = _make_solver(grid, "kerker", shards=shards).evaluate(
                rho, v_in
            )
            remote = _make_solver(
                grid, "kerker", shards=shards, executor=executor
            ).evaluate(rho, v_in)
            _assert_outputs_equal(remote, reference)


def test_streaming_falls_back_without_futures_surface(grid, fields):
    """An executor without submit_global silently takes the synchronous path."""
    rho, v_in = fields

    class BatchOnly:
        n_workers = 1

        def __init__(self):
            self._inner = SerialFragmentExecutor()

        def run_global(self, tasks):
            return self._inner.run_global(tasks)

    executor = BatchOnly()
    assert not streaming_supported(executor)
    solver = _make_solver(grid, "kerker", shards=3, executor=executor)
    out = solver.evaluate(rho, v_in)
    assert not out.timings.overlap
    _assert_outputs_equal(out, _make_solver(grid, "kerker", shards=3).evaluate(rho, v_in))


# --- overlap accounting -----------------------------------------------------------


def test_streaming_timing_counters(grid, fields):
    rho, v_in = fields
    out = _make_solver(grid, "kerker", shards=3).evaluate(rho, v_in)
    t = out.timings
    assert t.overlap and t.sharded and t.shards == 3
    assert t.wait >= 0.0 and t.busy >= 0.0
    assert 0.0 <= t.occupancy <= 1.0
    assert t.layout_conversion > 0.0
    assert len(t.task_times) == 9 * 3  # 5 resident stages + 4 spectral-mix
    assert t.poisson > 0.0 and t.xc > 0.0 and t.mix > 0.0
    assert t.driver >= 0.0
    # The synchronous path leaves the overlap meters untouched.
    t_sync = _make_solver(grid, "kerker", shards=3, overlap=False).evaluate(
        rho, v_in
    ).timings
    assert not t_sync.overlap
    assert t_sync.occupancy == 0.0 and t_sync.layout_conversion == 0.0


# --- full SCF: streamed iterates == synchronous iterates --------------------------


def _scf(executor=None, **kw) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        **kw,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


def _assert_runs_equal(got, want):
    assert got.convergence_history == want.convergence_history
    assert got.energy_history == want.energy_history
    np.testing.assert_array_equal(got.density, want.density)
    np.testing.assert_array_equal(got.potential, want.potential)
    assert got.total_energy == want.total_energy


@pytest.fixture(scope="module")
def scf_reference():
    """Synchronous sharded pipeline run (the PR 3 scheduling)."""
    scf = _scf(
        SerialFragmentExecutor(),
        pipeline=True,
        genpot_shards=4,
        genpot_overlap=False,
    )
    return scf.run(**_RUN_KW)


def test_scf_streaming_bit_identical_serial(scf_reference):
    scf = _scf(SerialFragmentExecutor(), pipeline=True, genpot_shards=4)
    result = scf.run(**_RUN_KW)
    _assert_runs_equal(result, scf_reference)
    t = result.timings[0]
    assert t.overlap and t.genpot_overlap
    assert 0.0 <= t.overlap_occupancy <= 1.0
    assert t.layout_conversion > 0.0
    # The synchronous reference recorded no overlap.
    assert not scf_reference.timings[0].overlap


def test_scf_streaming_bit_identical_threads(scf_reference):
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        result = _scf(executor, pipeline=True, genpot_shards=4).run(**_RUN_KW)
    _assert_runs_equal(result, scf_reference)


def test_scf_streaming_bit_identical_process(scf_reference):
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        result = _scf(executor, pipeline=True, genpot_shards=4).run(**_RUN_KW)
    _assert_runs_equal(result, scf_reference)


def test_scf_streaming_bit_identical_remote(scf_reference):
    with _cluster(2) as (executor, _):
        result = _scf(executor, pipeline=True, genpot_shards=4).run(**_RUN_KW)
    _assert_runs_equal(result, scf_reference)


# --- fault tolerance mid-stream ---------------------------------------------------


def test_stream_resubmits_after_worker_death(grid, fields):
    """A worker killed mid-stream loses nothing: survivors re-run its slabs."""
    rho, v_in = fields
    reference = _make_solver(grid, "kerker", shards=4).evaluate(rho, v_in)
    plans = {0: FaultPlan(kill_at=(2,)), 1: FaultPlan(delay_at={0: 0.2})}
    with _cluster(2, plans=plans) as (executor, _):
        out = _make_solver(grid, "kerker", shards=4, executor=executor).evaluate(
            rho, v_in
        )
        assert executor.workers_lost >= 1
        assert executor.resubmissions >= 1
    _assert_outputs_equal(out, reference)


def test_stream_degrades_to_fallback_when_all_workers_die(grid, fields):
    """With no survivors the queue drains through the local fallback."""
    rho, v_in = fields
    reference = _make_solver(grid, "kerker", shards=4).evaluate(rho, v_in)
    with _cluster(1, plans={0: FaultPlan(kill_at=(1,))}) as (executor, _):
        out = _make_solver(grid, "kerker", shards=4, executor=executor).evaluate(
            rho, v_in
        )
        assert executor.workers_lost == 1
        assert executor.degraded_tasks > 0
        # Later submissions short-circuit to the fallback immediately.
        again = _make_solver(grid, "kerker", shards=4, executor=executor).evaluate(
            rho, v_in
        )
    _assert_outputs_equal(out, reference)
    _assert_outputs_equal(again, reference)


# --- real-FFT density path --------------------------------------------------------


def test_real_fft_knob_defaults_off(monkeypatch):
    monkeypatch.delenv("REPRO_REAL_FFT", raising=False)
    assert not fftcache.real_fft_enabled()
    monkeypatch.setenv("REPRO_REAL_FFT", "1")
    assert fftcache.real_fft_enabled()
    monkeypatch.setenv("REPRO_REAL_FFT", "off")
    assert not fftcache.real_fft_enabled()
    fftcache.configure_real_fft(True)
    try:
        assert fftcache.real_fft_enabled()
    finally:
        fftcache.configure_real_fft(None)
    assert not fftcache.real_fft_enabled()


def test_real_fft_roundtrip_and_poisson_property(grid):
    rng = np.random.default_rng(3)
    x = rng.standard_normal(grid.shape)
    np.testing.assert_allclose(
        fftcache.irfftn(fftcache.rfftn(x), grid.shape), x, atol=1e-12
    )
    rho = rng.random(grid.shape)
    fftcache.configure_real_fft(True)
    try:
        v = hartree_potential(rho, grid)
    finally:
        fftcache.configure_real_fft(None)
    # The real-FFT solution still solves the periodic Poisson equation.
    assert poisson_residual(v, rho, grid) < 1e-8


def test_real_fft_matches_complex_to_tolerance(grid, fields):
    """Same mathematics, different round-off: close but not bit-identical."""
    rho, _ = fields
    v_complex = hartree_potential(rho, grid)
    fftcache.configure_real_fft(True)
    try:
        v_real = hartree_potential(rho, grid)
    finally:
        fftcache.configure_real_fft(None)
    np.testing.assert_allclose(v_real, v_complex, atol=1e-12)
    assert not np.array_equal(v_real, v_complex)


@pytest.mark.parametrize("shards", [1, 2, 3, GRID_SHAPE[2]])
def test_streamed_real_fft_bit_identical_to_serial_real(grid, fields, shards):
    """The half-spectrum streamed chain == the serial rfftn branch, bitwise."""
    rho, v_in = fields
    fftcache.configure_real_fft(True)
    try:
        serial = _make_solver(grid, "kerker").evaluate(rho, v_in)
        streamed = _make_solver(grid, "kerker", shards=shards).evaluate(rho, v_in)
        with ThreadPoolFragmentExecutor(n_workers=3) as threads:
            threaded = _make_solver(
                grid, "kerker", shards=shards, executor=threads
            ).evaluate(rho, v_in)
    finally:
        fftcache.configure_real_fft(None)
    _assert_outputs_equal(streamed, serial)
    _assert_outputs_equal(threaded, serial)


def test_stream_genpot_serial_mixer_returns_none(grid, fields):
    """Serial (Anderson) mixing stays a driver-side sync point."""
    rho, v_in = fields
    net = rho - 0.5
    mixer = make_mixer("anderson", grid=grid)
    _, _, _, v_next = stream_genpot(
        net, rho, v_in, grid.g2, 3, SerialFragmentExecutor(), mixer=mixer
    )
    assert v_next is None


def test_real_fft_env_knob_end_to_end(grid, fields, monkeypatch):
    """REPRO_REAL_FFT=1 routes the streamed solver without configure calls."""
    rho, v_in = fields
    monkeypatch.setenv("REPRO_REAL_FFT", "1")
    streamed = _make_solver(grid, "linear", shards=3).evaluate(rho, v_in)
    serial = _make_solver(grid, "linear").evaluate(rho, v_in)
    monkeypatch.delenv("REPRO_REAL_FFT")
    complex_ref = _make_solver(grid, "linear").evaluate(rho, v_in)
    _assert_outputs_equal(streamed, serial)
    assert not np.array_equal(
        streamed.output_potential, complex_ref.output_potential
    )
    np.testing.assert_allclose(
        streamed.output_potential, complex_ref.output_potential, atol=1e-12
    )
