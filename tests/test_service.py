"""SCF-as-a-service: daemon/client tests, in-process and kill -9.

The in-process half boots :class:`repro.store.server.StoreServer`
inside the test process (real loopback sockets, threaded runners, tiny
0.25 s solves) and proves the service contract: submit/status/events/
result round-trips, two identical submissions sharing one solve, a
service result bit-identical (``==``, no tolerances) to a direct
:class:`~repro.core.scf.LS3DFSCF` run, and auto-resume of interrupted
runs at startup.  These run in tier 1 — they are also what puts the
``repro/store`` server/client files under the coverage gate.

The ``service``-marked half (CI service-smoke job) boots real
``repro-serve`` subprocesses and enacts the acceptance criterion:
``kill -9`` the daemon mid-solve, restart it over the same store, and
the resumed run's final density equals an uninterrupted run's exactly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.store import RunStore, build_solver
from repro.store.client import ServiceClient, ServiceError, client_main
from repro.store.server import StoreServer, serve_main

SPEC_FAST = {
    "builder": "cscl_binary",
    "builder_args": {"dims": [1, 1, 1], "cation": "Zn", "anion": "O",
                     "lattice_constant": 6.0},
    "solver": {"grid_dims": [1, 1, 1], "ecut": 2.0, "n_empty": 1,
               "mixer": "linear"},
    # Genuinely converges at iteration 2 (|dV| drops 23.4 -> 11.6), so a
    # run checkpoints once and then ends with converged: True.
    "run": {"max_iterations": 4, "potential_tolerance": 12.0,
            "eigensolver_tolerance": 1e-4, "eigensolver_iterations": 40},
}

# Long enough (~1 s/iteration, 3 iterations) that a kill -9 reliably
# lands mid-solve after the first checkpoint.
SPEC_KILL = {
    "builder": "cscl_binary",
    "builder_args": {"dims": [2, 1, 1], "cation": "Zn", "anion": "O",
                     "lattice_constant": 6.0},
    "solver": {"grid_dims": [2, 1, 1], "ecut": 2.2, "buffer_cells": 0.5,
               "n_empty": 2, "mixer": "kerker"},
    "run": {"max_iterations": 3, "potential_tolerance": 1e-9,
            "eigensolver_tolerance": 1e-4, "eigensolver_iterations": 40,
            "checkpoint_every": 1},
}


def _direct_result(spec):
    """Reference solve: the same spec run directly, no service, no store."""
    solver, run_kwargs = build_solver(spec)
    return solver.run(**run_kwargs)


def _spec_variant(spec, max_iterations):
    out = json.loads(json.dumps(spec))
    out["run"]["max_iterations"] = max_iterations
    return out


# ---------------------------------------------------------------------------
# In-process service (tier 1)
# ---------------------------------------------------------------------------


@pytest.fixture()
def server(tmp_path):
    srv = StoreServer(tmp_path / "store")
    srv.start()
    yield srv
    srv.stop()


def _client(server, name="test"):
    return ServiceClient(server.address, client=name)


class TestServiceInProcess:
    def test_submit_streams_events_to_result(self, server):
        with _client(server) as client:
            reply = client.submit(SPEC_FAST)
            assert not reply["attached"] and reply["queued"]
            head = client.wait(reply["run_id"], timeout=60)
            assert head["status"] == "converged"
            kinds = [e["kind"] for e in client.events(reply["run_id"])]
            assert kinds[0] == "submitted"
            assert kinds[1] == "scheduled"
            assert "iteration" in kinds and "checkpointed" in kinds
            assert kinds[-1] == "converged"
            result = client.result(reply["run_id"])
            assert result["converged"] and result["iterations"] == head["iteration"]
            assert result["density"].ndim == 3

    def test_two_identical_submissions_share_one_solve(self, server):
        # Acceptance criterion: one event stream, dedup counter == 1.
        with _client(server, "alice") as alice, _client(server, "bob") as bob:
            first = alice.submit(SPEC_FAST)
            second = bob.submit(SPEC_FAST)
            assert first["run_id"] == second["run_id"]
            assert not first["attached"] and second["attached"]
            head = alice.wait(first["run_id"], timeout=60)
            assert head["clients"] == 2
            assert head["solves"] == 1  # the dedup counter
            events = alice.events(first["run_id"])
            fresh_schedules = [
                e for e in events
                if e["kind"] == "scheduled" and not e["data"]["resumed"]
            ]
            assert len(fresh_schedules) == 1
            assert len(alice.runs()) == 1
            assert alice.stats()["jobs_started"] == 1

    def test_distinct_problem_gets_its_own_run(self, server):
        with _client(server) as client:
            first = client.submit(SPEC_FAST)
            second = client.submit(_spec_variant(SPEC_FAST, 3))
            assert first["run_id"] != second["run_id"]
            assert not second["attached"]
            client.wait(first["run_id"], timeout=60)
            client.wait(second["run_id"], timeout=60)
            assert sorted(client.runs().values()) == ["converged", "converged"]

    def test_service_result_equals_direct_solve_bitwise(self, server):
        reference = _direct_result(SPEC_FAST)
        with _client(server) as client:
            run_id = client.submit(SPEC_FAST)["run_id"]
            client.wait(run_id, timeout=60)
            result = client.result(run_id)
        assert np.array_equal(result["density"], reference.density)
        assert np.array_equal(result["potential"], reference.potential)
        assert result["energy"] == reference.total_energy

    def test_startup_scan_resumes_interrupted_run(self, tmp_path):
        # A run killed mid-solve (here: stopped after one checkpointed
        # iteration) must be picked up by a fresh daemon with no client
        # involvement and finish bit-identical to a never-interrupted run.
        root = tmp_path / "store"
        store = RunStore(root)
        receipt = store.submit(SPEC_FAST, client="alice")
        stream = store.stream(receipt.run_id)
        stream.append("scheduled", {"resumed": False, "pid": os.getpid()})
        solver, run_kwargs = build_solver(SPEC_FAST)
        run_kwargs["max_iterations"] = 1  # the "interrupted" first leg
        solver.run(
            checkpoint_dir=store.checkpoint_dir(receipt.run_id),
            resume=True,
            event_hook=lambda kind, data: stream.append(kind, data),
            **run_kwargs,
        )
        assert store.pending_runs() == [receipt.run_id]

        srv = StoreServer(root)
        srv.start()
        try:
            with ServiceClient(srv.address) as client:
                head = client.wait(receipt.run_id, timeout=60)
                events = client.events(receipt.run_id)
        finally:
            srv.stop()
        assert head["status"] == "converged"
        resumed = [e for e in events if e["kind"] == "scheduled"
                   and e["data"]["resumed"]]
        assert len(resumed) == 1
        reference = _direct_result(SPEC_FAST)
        result = RunStore(root).result(receipt.run_id)
        assert np.array_equal(result["density"], reference.density)
        assert result["energy"] == reference.total_energy

    def test_solve_failure_lands_as_failed_event(self, tmp_path):
        # A job slot whose executor is garbage fails the solve; the
        # stream must record a terminal failed event, and result() must
        # surface it as an error instead of hanging.
        srv = StoreServer(tmp_path / "store", executor_factory=lambda: object())
        srv.start()
        try:
            with ServiceClient(srv.address) as client:
                run_id = client.submit(SPEC_FAST)["run_id"]
                head = client.wait(run_id, timeout=60)
                assert head["status"] == "failed"
                assert head["error"]
                with pytest.raises(ServiceError):
                    client.result(run_id)
        finally:
            srv.stop()

    def test_bad_requests_surface_as_service_errors(self, server):
        with _client(server) as client:
            with pytest.raises(ServiceError, match="unknown builder"):
                client.submit({"builder": "nope"})
            with pytest.raises(ServiceError, match="unknown op"):
                client._request({"op": "bogus"})
            assert client.ping()["ok"]

    def test_shutdown_op_stops_the_server(self, server):
        with _client(server) as client:
            assert client.shutdown()["ok"]
        server.join(timeout=5.0)
        assert server._stop.is_set()


class TestCommandLineClients:
    def test_serve_and_submit_cli_round_trip(self, tmp_path, capsys):
        # serve_main in a thread (port picked beforehand), client_main
        # driving it: the exact shell workflow of the README quickstart.
        import socket as socketlib

        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        thread = threading.Thread(
            target=serve_main,
            args=(["--root", str(tmp_path / "store"), "--port", str(port)],),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with ServiceClient(("127.0.0.1", port)) as client:
                    client.ping()
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        # Drain serve_main's own "REPRO-SERVE LISTENING" line so each
        # client_main call below reads back pure JSON.
        time.sleep(0.2)
        capsys.readouterr()

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(SPEC_FAST))
        assert client_main(["--port", str(port), "submit", str(spec_file),
                            "--wait"]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["head"]["status"] == "converged"
        run_id = reply["run_id"]

        assert client_main(["--port", str(port), "status", run_id]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "converged"

        assert client_main(["--port", str(port), "events", run_id]) == 0
        kinds = [e["kind"] for e in json.loads(capsys.readouterr().out)]
        assert kinds[-1] == "converged"

        saved = tmp_path / "out.npz"
        assert client_main(["--port", str(port), "result", run_id,
                            "--save", str(saved)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["converged"] and summary["saved"] == str(saved)
        with np.load(saved) as data:
            assert data["density"].ndim == 3

        assert client_main(["--port", str(port), "runs"]) == 0
        assert json.loads(capsys.readouterr().out) == {run_id: "converged"}

        assert client_main(["--port", str(port), "shutdown"]) == 0
        capsys.readouterr()
        thread.join(timeout=10.0)
        assert not thread.is_alive()


# ---------------------------------------------------------------------------
# Real daemon subprocesses + kill -9 (service marker; CI service-smoke job)
# ---------------------------------------------------------------------------

_SERVE_STUB = (
    "import sys; from repro.store.server import serve_main; "
    "sys.exit(serve_main(sys.argv[1:]))"
)


def _python_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _boot_daemon(root):
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVE_STUB, "--root", str(root)],
        env=_python_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("REPRO-SERVE LISTENING"):
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {line!r} / "
                           f"{proc.stderr.read()}")
    _, _, host, port = line.split()
    return proc, (host, int(port))


@pytest.mark.service
class TestDaemonKillBattery:
    def test_kill_nine_mid_solve_then_restart_is_bit_identical(self, tmp_path):
        # THE acceptance criterion: SIGKILL the daemon after the run's
        # first checkpoint, restart over the same store, and the resumed
        # solve must finish with a final density equal (==) to an
        # uninterrupted run's.
        root = tmp_path / "store"
        daemon, address = _boot_daemon(root)
        try:
            with ServiceClient(address, client="alice") as client:
                run_id = client.submit(SPEC_KILL)["run_id"]
                deadline = time.monotonic() + 120.0
                while True:
                    head = client.status(run_id)
                    if head["checkpointed_iteration"] >= 1:
                        break
                    assert head["status"] not in ("converged", "failed"), head
                    assert time.monotonic() < deadline, "no checkpoint in time"
                    time.sleep(0.05)
        finally:
            daemon.kill()  # SIGKILL: no atexit, no cleanup, mid-iteration
            daemon.wait(timeout=30)

        store = RunStore(root)
        head = store.read_head(run_id)  # the store survived the kill readable
        assert head["status"] in ("scheduled", "running")
        assert head["checkpointed_iteration"] >= 1

        daemon2, address2 = _boot_daemon(root)
        try:
            with ServiceClient(address2, client="alice") as client:
                final = client.wait(run_id, timeout=240)
                events = client.events(run_id)
                result = client.result(run_id)
                client.shutdown()
        finally:
            daemon2.kill()
            daemon2.wait(timeout=30)

        assert final["status"] == "converged"
        resumed = [e for e in events if e["kind"] == "scheduled"
                   and e["data"]["resumed"]]
        assert len(resumed) >= 1
        reference = _direct_result(SPEC_KILL)
        assert np.array_equal(result["density"], reference.density)
        assert np.array_equal(result["potential"], reference.potential)
        assert result["energy"] == reference.total_energy

    def test_kill_before_first_schedule_still_recovers(self, tmp_path):
        # Kill in the submit->schedule window: the restarted daemon's
        # startup scan must find the never-started run and solve it.
        root = tmp_path / "store"
        store = RunStore(root)
        receipt = store.submit(SPEC_FAST, client="alice")  # no daemon at all
        daemon, address = _boot_daemon(root)
        try:
            with ServiceClient(address) as client:
                head = client.wait(receipt.run_id, timeout=120)
                result = client.result(receipt.run_id)
                client.shutdown()
        finally:
            daemon.kill()
            daemon.wait(timeout=30)
        assert head["status"] == "converged"
        reference = _direct_result(SPEC_FAST)
        assert np.array_equal(result["density"], reference.density)
