"""Tests for the spatial division, Gen_VF restriction and Gen_dens patching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atoms.toy import cscl_binary, simple_cubic
from repro.atoms.zincblende import zincblende_supercell
from repro.core.division import SpatialDivision
from repro.core.fragments import enumerate_fragments
from repro.core.passivation import passivate_fragment
from repro.core.patching import (
    patch_fragment_fields,
    patching_identity_residual,
    restrict_to_fragment,
)
from repro.pw.grid import FFTGrid


def make_division(dims=(2, 2, 1), points_per_cell=6, buffer_cells=0.5):
    structure = cscl_binary(dims, "Zn", "O", 6.0)
    shape = tuple(points_per_cell * m for m in dims)
    grid = FFTGrid(structure.cell, shape)
    return SpatialDivision(structure, dims, grid, buffer_cells)


def test_division_requires_commensurate_grid():
    structure = cscl_binary((2, 2, 2), "Zn", "O", 6.0)
    bad_grid = FFTGrid(structure.cell, (10, 10, 9))
    with pytest.raises(ValueError):
        SpatialDivision(structure, (2, 2, 2), bad_grid)


def test_atom_assignment_covers_all_atoms():
    division = make_division((2, 2, 2))
    counts = 0
    for i in range(2):
        for j in range(2):
            for k in range(2):
                counts += len(division.atoms_in_cell((i, j, k)))
    assert counts == division.structure.natoms
    # Each CsCl cell holds exactly two atoms.
    assert len(division.atoms_in_cell((0, 0, 0))) == 2


def test_atoms_in_fragment_union_of_cells():
    division = make_division((2, 2, 2))
    frag = [f for f in enumerate_fragments((2, 2, 2)) if f.size == (2, 1, 1)][0]
    atoms = division.atoms_in_fragment(frag)
    assert len(atoms) == 4  # two cells x two atoms


def test_fragment_box_geometry_and_interior_slice():
    division = make_division((2, 2, 1), points_per_cell=6, buffer_cells=0.5)
    frag = enumerate_fragments((2, 2, 1))[0]
    box = division.fragment_box(frag)
    assert box.buffer_points == (3, 3, 3)
    interior = box.interior_slice
    npoints = box.npoints
    assert (interior[0].stop - interior[0].start) == npoints[0] - 6
    grid = division.fragment_grid(frag)
    assert grid.compatible_with(division.global_grid)


def test_fragment_structure_atoms_inside_box():
    division = make_division((3, 2, 1))
    for frag in enumerate_fragments((3, 2, 1))[:12]:
        fs = division.fragment_structure(frag)
        assert fs.natoms == len(division.atoms_in_fragment(frag))
        box = division.fragment_box(frag)
        assert np.allclose(fs.cell, box.cell)


def test_restriction_matches_direct_indexing():
    division = make_division((2, 2, 1))
    rng = np.random.default_rng(0)
    field = rng.standard_normal(division.global_grid.shape)
    frag = enumerate_fragments((2, 2, 1))[5]
    restricted = restrict_to_fragment(division, frag, field)
    box = division.fragment_box(frag)
    assert restricted.shape == box.npoints
    ix, iy, iz = division.global_indices(frag)
    assert np.allclose(restricted, field[np.ix_(ix, iy, iz)])


def test_patching_identity_for_random_field():
    division = make_division((2, 2, 1))
    rng = np.random.default_rng(1)
    field = rng.standard_normal(division.global_grid.shape)
    assert patching_identity_residual(division, field) < 1e-12


def test_patching_conserves_integral():
    division = make_division((2, 2, 2), points_per_cell=4)
    fragments = enumerate_fragments((2, 2, 2))
    rng = np.random.default_rng(2)
    field = np.abs(rng.standard_normal(division.global_grid.shape))
    restricted = [restrict_to_fragment(division, f, field) for f in fragments]
    patched = patch_fragment_fields(division, fragments, restricted)
    assert np.sum(patched) == pytest.approx(np.sum(field), rel=1e-12)


def test_patching_shape_validation():
    division = make_division((2, 2, 1))
    fragments = enumerate_fragments((2, 2, 1))
    with pytest.raises(ValueError):
        patch_fragment_fields(division, fragments, [np.zeros((2, 2, 2))] * len(fragments))
    with pytest.raises(ValueError):
        patch_fragment_fields(division, fragments, [])


@settings(max_examples=12, deadline=None)
@given(
    m1=st.integers(min_value=1, max_value=3),
    m2=st.integers(min_value=1, max_value=3),
    m3=st.integers(min_value=1, max_value=2),
    ppc=st.sampled_from([4, 6]),
    buffer_frac=st.sampled_from([0.0, 0.5]),
)
def test_property_restrict_patch_roundtrip(m1, m2, m3, ppc, buffer_frac):
    """Gen_dens(Gen_VF(field)) == field for any grid shape and buffer."""
    dims = (m1, m2, m3)
    structure = simple_cubic(dims, "Si", 5.0)
    grid = FFTGrid(structure.cell, tuple(ppc * m for m in dims))
    division = SpatialDivision(structure, dims, grid, buffer_frac)
    rng = np.random.default_rng(m1 * 100 + m2 * 10 + m3)
    field = rng.standard_normal(grid.shape)
    assert patching_identity_residual(division, field) < 1e-10


# --- passivation ------------------------------------------------------------------

def test_passivation_adds_hydrogens_on_cut_bonds():
    structure = zincblende_supercell((2, 2, 2), "Zn", "Te")
    dims = (2, 2, 2)
    grid = FFTGrid(structure.cell, (16, 16, 16))
    division = SpatialDivision(structure, dims, grid, 0.5)
    frag = [f for f in enumerate_fragments(dims) if f.size == (1, 1, 1)][0]
    result = passivate_fragment(division, frag)
    assert result.n_passivants > 0
    assert result.structure.natoms == 8 + result.n_passivants
    # All passivants are pseudo-hydrogen species.
    for idx in result.passivant_indices:
        assert result.structure.symbols[idx] in {"H", "H_cation", "H_anion"}
    # Polar passivation: cut bonds toward cations terminated by H_anion etc.
    kinds = {result.structure.symbols[i] for i in result.passivant_indices}
    assert kinds <= {"H_cation", "H_anion"}


def test_passivation_nonpolar_uses_plain_hydrogen():
    structure = zincblende_supercell((2, 2, 2), "Zn", "Te")
    grid = FFTGrid(structure.cell, (16, 16, 16))
    division = SpatialDivision(structure, (2, 2, 2), grid, 0.5)
    frag = enumerate_fragments((2, 2, 2))[0]
    result = passivate_fragment(division, frag, polar=False)
    kinds = {result.structure.symbols[i] for i in result.passivant_indices}
    assert kinds == {"H"}


def test_passivation_bond_fraction_validation():
    structure = zincblende_supercell((2, 2, 2), "Zn", "Te")
    grid = FFTGrid(structure.cell, (16, 16, 16))
    division = SpatialDivision(structure, (2, 2, 2), grid, 0.5)
    frag = enumerate_fragments((2, 2, 2))[0]
    with pytest.raises(ValueError):
        passivate_fragment(division, frag, bond_fraction=1.5)


def test_whole_system_fragment_needs_no_passivation():
    # A fragment covering the entire (periodic) supercell has no cut bonds.
    structure = zincblende_supercell((2, 1, 1), "Zn", "Te")
    grid = FFTGrid(structure.cell, (16, 8, 8))
    division = SpatialDivision(structure, (2, 1, 1), grid, 0.0)
    frag = [f for f in enumerate_fragments((2, 1, 1)) if f.size == (2, 1, 1)][0]
    result = passivate_fragment(division, frag)
    assert result.n_passivants == 0
