"""Crash/concurrency battery for the event-sourced run store.

Three families of proof:

* **Durability unit tests** — the record framing round-trips and every
  torn-byte prefix is detected; ``write_npz_atomic`` /
  ``write_text_atomic`` follow the full tmp-write -> fsync(file) ->
  rename -> fsync(directory) sequence (the rename itself lives in the
  directory entry table, so skipping the directory fsync can lose the
  *name* of a perfectly synced file).
* **Kill-mid-append** — a fault-injecting append dies after an exact
  byte count; replay must land on the last consistent snapshot, the
  next locked append must truncate the torn tail and continue with a
  contiguous sequence, and ``read_head`` must absorb the
  stale-snapshot window.
* **Multi-process contention** — two real writer processes hammer one
  stream's lock (no lost, duplicated or reordered events), and two
  concurrent submits of one problem signature produce exactly one run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro.io.gridio as gridio
from repro.io.gridio import write_npz_atomic, write_text_atomic
from repro.store import (
    AppendFaultPlan,
    Event,
    EventStream,
    FileLock,
    KilledAppend,
    LockTimeoutError,
    RunStore,
    StoreIndex,
    TornRecordError,
    canonical_spec,
    decode_record,
    encode_record,
    problem_signature,
)
from repro.store.stream import StoreCorruptionError

SPEC = {
    "builder": "cscl_binary",
    "builder_args": {"dims": [1, 1, 1], "cation": "Zn", "anion": "O",
                     "lattice_constant": 6.0},
    "solver": {"grid_dims": [1, 1, 1], "ecut": 2.0, "n_empty": 1,
               "mixer": "linear"},
    "run": {"max_iterations": 2, "potential_tolerance": 1e-9,
            "eigensolver_tolerance": 1e-4, "eigensolver_iterations": 40},
}


def _event(seq: int, kind: str = "iteration", **data) -> Event:
    return Event(seq=seq, kind=kind, ts=123.25, data=data)


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


class TestRecordFormat:
    def test_roundtrip(self):
        event = _event(3, "iteration", iteration=3, potential_difference=0.5)
        assert decode_record(encode_record(event)) == event

    def test_payload_roundtrip(self):
        event = Event(seq=0, kind="converged", ts=1.0, data={"energy": -1.5},
                      payload="payload-000000.npz")
        assert decode_record(encode_record(event)).payload == "payload-000000.npz"

    @pytest.mark.parametrize("cut", [0, 3, 5, 12, 22, 30])
    def test_every_torn_prefix_is_detected(self, cut):
        record = encode_record(_event(0, iteration=1))
        assert cut < len(record)
        with pytest.raises(TornRecordError):
            decode_record(record[:cut])

    def test_missing_newline_detected(self):
        record = encode_record(_event(0))
        with pytest.raises(TornRecordError, match="newline"):
            decode_record(record[:-1])

    def test_flipped_body_byte_fails_checksum(self):
        record = bytearray(encode_record(_event(0, iteration=7)))
        record[-3] ^= 0x01
        with pytest.raises(TornRecordError, match="checksum|JSON"):
            decode_record(bytes(record))

    def test_bad_magic_detected(self):
        record = b"XXX1" + encode_record(_event(0))[4:]
        with pytest.raises(TornRecordError, match="magic"):
            decode_record(record)


# ---------------------------------------------------------------------------
# File lock
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_context_manager_and_reacquire(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.held
        assert not lock.held
        with lock:
            assert lock.held

    def test_second_holder_times_out(self, tmp_path):
        first = FileLock(tmp_path / "x.lock").acquire()
        try:
            second = FileLock(tmp_path / "x.lock", timeout=0.2)
            start = time.monotonic()
            with pytest.raises(LockTimeoutError):
                second.acquire()
            assert time.monotonic() - start >= 0.15
        finally:
            first.release()

    def test_release_unblocks_waiter(self, tmp_path):
        first = FileLock(tmp_path / "x.lock").acquire()
        acquired = threading.Event()

        def waiter():
            with FileLock(tmp_path / "x.lock", timeout=5.0):
                acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        first.release()
        thread.join(timeout=5.0)
        assert acquired.is_set()

    def test_double_acquire_is_an_error(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock").acquire()
        try:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()
        finally:
            lock.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock").acquire()
        lock.release()
        lock.release()


# ---------------------------------------------------------------------------
# Durable writers (satellite: directory fsync after rename)
# ---------------------------------------------------------------------------


class _FsyncRecorder:
    """Traces the fsync/replace sequence beneath the atomic writers."""

    def __init__(self, monkeypatch, directory: Path):
        self.calls: list[tuple] = []
        self.directory = Path(directory)
        real_fsync, real_replace = os.fsync, os.replace
        real_open = os.open

        def traced_open(path, flags, *a, **k):
            fd = real_open(path, flags, *a, **k)
            if Path(path) == self.directory:
                self.dir_fds.add(fd)
            return fd

        def traced_fsync(fd):
            self.calls.append(("fsync_dir" if fd in self.dir_fds else "fsync_file",))
            real_fsync(fd)

        def traced_replace(src, dst):
            self.calls.append(("replace", str(src), str(dst)))
            real_replace(src, dst)

        self.dir_fds: set[int] = set()
        monkeypatch.setattr(os, "open", traced_open)
        monkeypatch.setattr(os, "fsync", traced_fsync)
        monkeypatch.setattr(os, "replace", traced_replace)

    @property
    def kinds(self) -> list[str]:
        return [c[0] for c in self.calls]


class TestAtomicWriters:
    def test_npz_fsync_rename_dirsync_sequence(self, tmp_path, monkeypatch):
        rec = _FsyncRecorder(monkeypatch, tmp_path)
        target = tmp_path / "state.npz"
        write_npz_atomic(target, rho=np.arange(6.0).reshape(2, 3))
        # The exact durability ladder: file flushed+fsynced, renamed into
        # place, then the *directory* fsynced (the rename lives there).
        assert rec.kinds == ["fsync_file", "replace", "fsync_dir"]
        replace = rec.calls[1]
        assert replace[2] == str(target)
        assert replace[1] != replace[2] and replace[1].startswith(str(tmp_path))
        with np.load(target) as data:
            np.testing.assert_array_equal(data["rho"], np.arange(6.0).reshape(2, 3))
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]  # no tmp left

    def test_text_fsync_rename_dirsync_sequence(self, tmp_path, monkeypatch):
        rec = _FsyncRecorder(monkeypatch, tmp_path)
        target = write_text_atomic(tmp_path / "head.json", '{"seq": 1}\n')
        assert rec.kinds == ["fsync_file", "replace", "fsync_dir"]
        assert target.read_text() == '{"seq": 1}\n'
        assert [p.name for p in tmp_path.iterdir()] == ["head.json"]

    def test_fsync_directory_tolerates_missing_dir(self, tmp_path):
        gridio.fsync_directory(tmp_path / "nope")  # must not raise


# ---------------------------------------------------------------------------
# Event stream: append / replay / snapshot catch-up
# ---------------------------------------------------------------------------


class TestEventStream:
    def test_append_replay_roundtrip(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        stream.append("submitted", {"client": "a"})
        stream.append("scheduled", {"resumed": False})
        stream.append("iteration", {"iteration": 1, "potential_difference": 0.5,
                                    "energy": -1.0})
        events = stream.replay()
        assert [e.seq for e in events] == [0, 1, 2]
        assert [e.kind for e in events] == ["submitted", "scheduled", "iteration"]
        assert stream.replay(since_seq=2)[0].data["iteration"] == 1

    def test_head_folds_counters_and_status(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        stream.append("submitted", {"client": "a"})
        stream.append("attached", {"client": "b"})
        stream.append("scheduled", {"resumed": False})
        stream.append("iteration", {"iteration": 1, "potential_difference": 0.5,
                                    "energy": -1.0})
        stream.append("checkpointed", {"iteration": 1})
        head = stream.read_head()
        assert head["status"] == "running"
        assert head["clients"] == 2
        assert head["solves"] == 1
        assert head["iteration"] == 1
        assert head["checkpointed_iteration"] == 1
        assert head["offset"] == stream.log_path.stat().st_size
        assert not stream.is_terminal()

    def test_resumed_schedule_does_not_count_a_second_solve(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        stream.append("submitted", {"client": "a"})
        stream.append("scheduled", {"resumed": False})
        stream.append("scheduled", {"resumed": True})
        assert stream.read_head()["solves"] == 1

    def test_terminal_head_references_payload(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        stream.append("submitted", {})
        event = stream.append("converged", {"converged": True, "iterations": 2,
                                            "energy": -2.5},
                              payload_arrays={"density": np.ones((2, 2))})
        head = stream.read_head()
        assert head["status"] == "converged"
        assert head["result_payload"] == event.payload
        assert stream.is_terminal()
        np.testing.assert_array_equal(stream.load_payload(event)["density"],
                                      np.ones((2, 2)))

    def test_read_head_catches_up_past_stale_snapshot(self, tmp_path):
        # A writer killed between the log append and the head update
        # leaves a stale snapshot; read_head must fold the delta.
        stream = EventStream(
            tmp_path / "run",
            fault_plan=AppendFaultPlan(skip_head_update_at=(1,)),
        )
        stream.append("submitted", {})
        with pytest.raises(KilledAppend):
            stream.append("scheduled", {"resumed": False})
        assert json.loads(stream.head_path.read_text())["seq"] == 0  # stale
        head = stream.read_head()
        assert head["seq"] == 1 and head["status"] == "scheduled"
        # The next locked append heals the snapshot too.
        stream.fault_plan = None
        stream.append("iteration", {"iteration": 1})
        assert json.loads(stream.head_path.read_text())["seq"] == 2

    def test_read_head_never_opens_payloads(self, tmp_path, monkeypatch):
        # Regression (satellite): a status query is snapshot-only — it
        # must not load a single .npz payload however large the run.
        store = RunStore(tmp_path / "store")
        receipt = store.submit(SPEC, client="a")
        store.stream(receipt.run_id).append(
            "converged", {"converged": True, "iterations": 1, "energy": -1.0},
            payload_arrays={"density": np.ones((4, 4, 4))})

        def forbidden_load(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("read_head opened a payload .npz")

        monkeypatch.setattr(np, "load", forbidden_load)
        head = store.read_head(receipt.run_id)
        assert head["status"] == "converged"
        assert head["result_payload"] is not None

    def test_missing_head_is_rebuilt_from_log(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        for k in range(3):
            stream.append("iteration", {"iteration": k})
        stream.head_path.unlink()
        assert stream.read_head()["seq"] == 2
        assert stream.append("checkpointed", {"iteration": 2}).seq == 3

    def test_corruption_before_tail_raises(self, tmp_path):
        stream = EventStream(tmp_path / "run")
        for k in range(3):
            stream.append("iteration", {"iteration": k})
        raw = bytearray(stream.log_path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF  # flip a byte in an *interior* record
        stream.log_path.write_bytes(bytes(raw))
        stream.head_path.unlink()
        with pytest.raises(StoreCorruptionError):
            stream.replay()


# ---------------------------------------------------------------------------
# Kill-mid-append: the crash battery proper
# ---------------------------------------------------------------------------


class TestKillMidAppend:
    @pytest.mark.parametrize("torn_bytes", [0, 2, 10, 25, "all_but_newline"])
    def test_replay_lands_on_last_consistent_snapshot(self, tmp_path, torn_bytes):
        run_dir = tmp_path / "run"
        healthy = EventStream(run_dir)
        healthy.append("submitted", {"client": "a"})
        healthy.append("scheduled", {"resumed": False})
        victim_record = encode_record(_event(2, iteration=1))
        cut = len(victim_record) - 1 if torn_bytes == "all_but_newline" else torn_bytes
        victim = EventStream(run_dir, fault_plan=AppendFaultPlan(torn_at={2: cut}))
        with pytest.raises(KilledAppend):
            victim.append("iteration", {"iteration": 1})
        # The torn tail is on disk (a fresh reader sees it) ...
        survivor = EventStream(run_dir)
        assert [e.seq for e in survivor.replay()] == [0, 1]
        head = survivor.read_head()
        assert head["seq"] == 1 and head["status"] == "scheduled"

    def test_next_append_truncates_and_continues_contiguously(self, tmp_path):
        run_dir = tmp_path / "run"
        EventStream(run_dir).append("submitted", {"client": "a"})
        victim = EventStream(run_dir, fault_plan=AppendFaultPlan(torn_at={1: 17}))
        with pytest.raises(KilledAppend):
            victim.append("iteration", {"iteration": 1})
        clean_size_plus_tear = run_dir.joinpath("events.log").stat().st_size
        survivor = EventStream(run_dir)
        event = survivor.append("scheduled", {"resumed": True})
        assert event.seq == 1  # the torn event never happened
        assert run_dir.joinpath("events.log").stat().st_size < \
            clean_size_plus_tear + len(encode_record(event))
        events = survivor.replay()
        assert [e.seq for e in events] == [0, 1]
        assert events[1].kind == "scheduled"

    def test_resume_after_crash_is_bit_identical_to_uninterrupted(self, tmp_path):
        # The same post-crash append sequence must produce a log whose
        # decoded history equals the never-crashed one field for field
        # (timestamps excluded: they record wall-clock, not history).
        def history(run_dir, plan=None):
            stream = EventStream(run_dir, fault_plan=plan)
            stream.append("submitted", {"client": "a"})
            if plan is not None:
                with pytest.raises(KilledAppend):
                    stream.append("iteration", {"iteration": 1})
                stream = EventStream(run_dir)  # the restarted writer
            stream.append("iteration", {"iteration": 1})
            stream.append("converged", {"converged": True, "iterations": 1,
                                        "energy": -1.0})
            return [(e.seq, e.kind, e.data, e.payload)
                    for e in stream.replay()], stream.read_head()

        crashed, crashed_head = history(
            tmp_path / "crashed", AppendFaultPlan(torn_at={1: 30}))
        clean, clean_head = history(tmp_path / "clean")
        assert crashed == clean
        # offset is a byte position and timestamps vary in printed width,
        # so compare the folded history fields, not the raw offsets.
        for key in ("seq", "status", "iteration", "clients", "solves"):
            assert crashed_head[key] == clean_head[key]

    def test_killed_payload_write_leaves_no_dangling_reference(self, tmp_path):
        # Payloads are written *before* their event: a kill between the
        # two leaves an orphan .npz (harmless) but never an event whose
        # payload is missing.
        run_dir = tmp_path / "run"
        stream = EventStream(run_dir, fault_plan=AppendFaultPlan(torn_at={0: 0}))
        with pytest.raises(KilledAppend):
            stream.append("converged", {"converged": True},
                          payload_arrays={"density": np.ones(3)})
        assert (run_dir / "payload-000000.npz").exists()  # orphan
        assert EventStream(run_dir).replay() == []
        # The reused seq writes a fresh payload atomically over the orphan.
        event = EventStream(run_dir).append(
            "converged", {"converged": True},
            payload_arrays={"density": np.full(3, 2.0)})
        assert event.seq == 0
        np.testing.assert_array_equal(
            EventStream(run_dir).load_payload(event)["density"], np.full(3, 2.0))


# ---------------------------------------------------------------------------
# Multi-process contention
# ---------------------------------------------------------------------------

_WRITER_SCRIPT = """
import sys
from repro.store import EventStream
run_dir, writer, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
stream = EventStream(run_dir, lock_timeout=60.0)
for n in range(count):
    stream.append("iteration", {"writer": writer, "n": n})
"""

_SUBMIT_SCRIPT = """
import json, sys
from repro.store import RunStore
root, client = sys.argv[1], sys.argv[2]
spec = json.loads(sys.stdin.read())
receipt = RunStore(root, lock_timeout=60.0).submit(spec, client=client)
print(json.dumps({"run_id": receipt.run_id, "attached": receipt.attached}))
"""


def _python_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestConcurrentWriters:
    def test_two_processes_share_one_stream_without_loss(self, tmp_path):
        # Satellite: two writer processes contend on one stream's lock;
        # afterwards the log holds every event exactly once, the
        # sequence is contiguous, and each writer's own events are in
        # its submission order.
        run_dir = tmp_path / "run"
        count = 25
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(run_dir), str(w),
                 str(count)],
                env=_python_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE)
            for w in (0, 1)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        events = EventStream(run_dir).replay()
        assert len(events) == 2 * count  # none lost, none duplicated
        assert [e.seq for e in events] == list(range(2 * count))  # no reorder
        for writer in (0, 1):
            ours = [e.data["n"] for e in events if e.data["writer"] == writer]
            assert ours == list(range(count))  # per-writer order preserved
        head = EventStream(run_dir).read_head()
        assert head["seq"] == 2 * count - 1
        assert head["offset"] == (run_dir / "events.log").stat().st_size

    def test_dedup_race_runs_exactly_one_solve(self, tmp_path):
        # Satellite: two processes submit the identical spec at once;
        # exactly one creates the run, the other attaches to it.
        root = tmp_path / "store"
        payload = json.dumps(SPEC).encode()
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _SUBMIT_SCRIPT, str(root), name],
                env=_python_env(), stdin=subprocess.PIPE,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for name in ("alice", "bob")
        ]
        receipts = []
        for proc in procs:
            out, err = proc.communicate(payload, timeout=120)
            assert proc.returncode == 0, err.decode()
            receipts.append(json.loads(out))
        assert receipts[0]["run_id"] == receipts[1]["run_id"]
        assert sorted(r["attached"] for r in receipts) == [False, True]
        store = RunStore(root)
        assert store.run_ids() == [receipts[0]["run_id"]]  # one indexed run
        events = store.events(receipts[0]["run_id"])
        assert [e.kind for e in events] == ["submitted", "attached"]
        head = store.read_head(receipts[0]["run_id"])
        assert head["clients"] == 2 and head["solves"] == 0


# ---------------------------------------------------------------------------
# Store facade / index / spec
# ---------------------------------------------------------------------------


class TestRunStore:
    def test_submit_creates_then_attaches(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first = store.submit(SPEC, client="a")
        second = store.submit(SPEC, client="b")
        assert not first.attached and second.attached
        assert first.run_id == second.run_id
        assert first.run_id == f"run-{first.signature[:16]}"
        assert store.spec(first.run_id) == canonical_spec(SPEC)
        assert store.pending_runs() == [first.run_id]

    def test_different_run_params_get_different_runs(self, tmp_path):
        store = RunStore(tmp_path / "store")
        other = json.loads(json.dumps(SPEC))
        other["run"]["max_iterations"] = 3
        first = store.submit(SPEC)
        second = store.submit(other)
        assert first.run_id != second.run_id
        assert len(store.run_ids()) == 2

    def test_result_lifecycle(self, tmp_path):
        store = RunStore(tmp_path / "store")
        receipt = store.submit(SPEC)
        assert store.result(receipt.run_id) is None
        stream = store.stream(receipt.run_id)
        stream.append("converged", {"converged": True, "iterations": 2,
                                    "energy": -2.5},
                      payload_arrays={"density": np.ones((2, 2)),
                                      "potential": np.zeros((2, 2)),
                                      "energy": np.float64(-2.5)})
        result = store.result(receipt.run_id)
        assert result["energy"] == -2.5 and result["iterations"] == 2
        np.testing.assert_array_equal(result["density"], np.ones((2, 2)))
        assert store.pending_runs() == []

    def test_failed_run_raises_on_result(self, tmp_path):
        store = RunStore(tmp_path / "store")
        receipt = store.submit(SPEC)
        store.stream(receipt.run_id).append("failed", {"error": "boom"})
        with pytest.raises(RuntimeError, match="boom"):
            store.result(receipt.run_id)

    def test_index_conflicting_registration_rejected(self, tmp_path):
        index = StoreIndex(tmp_path)
        index.register("run-aaaa", "sig-1", ts=1.0)
        index.register("run-aaaa", "sig-1", ts=2.0)  # idempotent re-register
        with pytest.raises(ValueError, match="different signature"):
            index.register("run-aaaa", "sig-2", ts=3.0)
        assert index.lookup("sig-1") == "run-aaaa"
        assert index.lookup("sig-x") is None


class TestSpecValidation:
    def test_signature_is_stable_across_key_order(self):
        shuffled = {"run": dict(SPEC["run"]), "solver": dict(SPEC["solver"]),
                    "builder_args": dict(SPEC["builder_args"]),
                    "builder": SPEC["builder"]}
        assert problem_signature(SPEC) == problem_signature(shuffled)

    @pytest.mark.parametrize("mutate, match", [
        (lambda s: s.update(builder="nope"), "unknown builder"),
        (lambda s: s.update(extra=1), "unknown spec keys"),
        (lambda s: s["builder_args"].pop("dims"), "dims"),
        (lambda s: s["solver"].pop("grid_dims"), "grid_dims"),
        (lambda s: s["solver"].update(executor="x"), "unsupported solver"),
        (lambda s: s["run"].update(resume=True), "unsupported run"),
    ])
    def test_invalid_specs_rejected(self, mutate, match):
        spec = json.loads(json.dumps(SPEC))
        mutate(spec)
        with pytest.raises(ValueError, match=match):
            canonical_spec(spec)

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            canonical_spec(["not", "a", "spec"])
