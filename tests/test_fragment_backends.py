"""Tests for the pluggable fragment-execution backend layer.

Covers the ISSUE-1 acceptance criteria: picklable task round-trips, the
serial / thread / process backends all running the one shared kernel and
producing identical results (also end-to-end through LS3DFSCF), LPT load
balancing, and warm-start reuse across outer iterations.
"""

import pickle

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import (
    FragmentExecutor,
    FragmentStateCache,
    FragmentTask,
    solve_fragment_task,
)
from repro.core.scf import LS3DFSCF
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.pw.grid import FFTGrid


def _make_task(label="frag", ncells=1) -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.zeros(grid.shape),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-4,
        max_iterations=40,
        ncells=ncells,
    )


def _tiny_scf(executor=None) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


# --- task / kernel ----------------------------------------------------------------

def test_fragment_task_pickle_roundtrip():
    task = _make_task()
    task.initial_coefficients = np.zeros((3, 5), dtype=complex)
    clone = pickle.loads(pickle.dumps(task))
    assert clone.label == task.label
    assert clone.static_fingerprint() == task.static_fingerprint()
    assert np.array_equal(clone.positions, task.positions)
    assert np.array_equal(clone.screening_potential, task.screening_potential)
    assert np.array_equal(clone.initial_coefficients, task.initial_coefficients)


def test_fingerprint_ignores_iteration_state_but_not_geometry():
    a, b = _make_task(), _make_task()
    b.screening_potential = np.ones(b.grid_shape)
    b.tolerance = 1e-9
    b.initial_coefficients = np.zeros((2, 2), dtype=complex)
    assert a.static_fingerprint() == b.static_fingerprint()
    c = _make_task()
    c.positions = c.positions + 0.1
    assert c.static_fingerprint() != a.static_fingerprint()


def test_all_backends_run_the_same_kernel_identically():
    tasks = [_make_task(f"f{i}") for i in range(3)]
    reference = [solve_fragment_task(t) for t in tasks]
    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=2),
        ProcessPoolFragmentExecutor(n_workers=2),
    ):
        with executor:
            report = executor.run(tasks)
        assert [r.label for r in report.results] == [t.label for t in tasks]
        for got, ref in zip(report.results, reference):
            np.testing.assert_allclose(got.eigenvalues, ref.eigenvalues, rtol=1e-10)
            np.testing.assert_allclose(got.density, ref.density, rtol=1e-10)
            assert got.quantum_energy == pytest.approx(ref.quantum_energy, rel=1e-10)


def test_thread_backend_same_fingerprint_tasks_do_not_race():
    # Two tasks sharing one static fingerprint (same label + geometry) but
    # different potentials share one cached Hamiltonian; the per-problem
    # lock must serialise them so concurrent execution stays correct.
    task_a = _make_task("same")
    task_b = _make_task("same")
    task_b.screening_potential = np.full(task_b.grid_shape, 0.05)
    assert task_a.static_fingerprint() == task_b.static_fingerprint()
    ref_a = solve_fragment_task(task_a)
    ref_b = solve_fragment_task(task_b)
    assert not np.allclose(ref_a.eigenvalues, ref_b.eigenvalues)
    for _ in range(3):  # a few rounds to give a race a chance to show
        with ThreadPoolFragmentExecutor(n_workers=2) as executor:
            report = executor.run([task_a, task_b])
        np.testing.assert_allclose(report.results[0].eigenvalues, ref_a.eigenvalues, rtol=1e-10)
        np.testing.assert_allclose(report.results[1].eigenvalues, ref_b.eigenvalues, rtol=1e-10)


def test_executors_satisfy_protocol():
    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=1),
        ProcessPoolFragmentExecutor(n_workers=1),
    ):
        assert isinstance(executor, FragmentExecutor)


def test_worker_count_spellings_and_validation():
    assert ProcessPoolFragmentExecutor(n_workers=3).n_workers == 3
    assert ProcessPoolFragmentExecutor(nworkers=3).n_workers == 3  # legacy
    assert ProcessPoolFragmentExecutor(nworkers=3).nworkers == 3
    with pytest.raises(ValueError):
        ProcessPoolFragmentExecutor(n_workers=0)
    with pytest.raises(ValueError):
        ThreadPoolFragmentExecutor(nworkers=-1)


def test_pool_report_carries_lpt_schedule():
    # Mixed fragment classes: costs differ, LPT must balance the groups.
    tasks = [_make_task(f"f{i}", ncells=c) for i, c in enumerate([8, 1, 1, 8, 2, 4])]
    for t in tasks:
        t.cost_hint = float(t.ncells)
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        report = executor.run(tasks)
    assert report.schedule is not None
    assigned = sorted(i for group in report.schedule.assignments for i in group)
    assert assigned == list(range(len(tasks)))
    assert report.schedule.imbalance < 1.5
    assert len(report.results) == len(tasks)


# --- SCF equivalence (acceptance criterion) ---------------------------------------

def test_scf_process_pool_matches_serial():
    serial = _tiny_scf().run(**_RUN_KW)
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        pooled = _tiny_scf(executor=executor).run(**_RUN_KW)
    assert pooled.iterations == serial.iterations
    np.testing.assert_allclose(pooled.density, serial.density, rtol=1e-8)
    assert pooled.total_energy == pytest.approx(serial.total_energy, rel=1e-8)
    assert pooled.quantum_energy == pytest.approx(serial.quantum_energy, rel=1e-8)
    np.testing.assert_allclose(
        pooled.convergence_history, serial.convergence_history, rtol=1e-8
    )


def test_scf_thread_pool_matches_serial():
    serial = _tiny_scf().run(**_RUN_KW)
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        threaded = _tiny_scf(executor=executor).run(**_RUN_KW)
    np.testing.assert_allclose(threaded.density, serial.density, rtol=1e-8)
    assert threaded.total_energy == pytest.approx(serial.total_energy, rel=1e-8)


# --- warm starts ------------------------------------------------------------------

class _RecordingExecutor(SerialFragmentExecutor):
    """Serial backend that records every task batch it executes."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def run(self, tasks):
        self.batches.append(list(tasks))
        return super().run(tasks)


def test_warm_start_cache_reused_across_outer_iterations():
    recorder = _RecordingExecutor()
    scf = _tiny_scf(executor=recorder)
    result = scf.run(max_iterations=2, potential_tolerance=1e-9,
                     eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    assert result.iterations == 2
    assert len(recorder.batches) == 2
    first, second = recorder.batches
    # Iteration 1 starts cold, iteration 2 warm-starts from the cache.
    assert all(t.initial_coefficients is None for t in first)
    assert all(t.initial_coefficients is not None for t in second)
    assert len(scf.state_cache) == scf.nfragments
    for frag in scf.fragments:
        assert frag.label in scf.state_cache
    # Warm starts make the second iteration no more expensive than the first
    # (the paper's "second iteration is cheap" property).
    assert result.timings[0].petot_f_fragments
    assert result.timings[1].petot_f_cpu <= result.timings[0].petot_f_cpu * 1.5


def test_state_cache_api():
    cache = FragmentStateCache()
    assert cache.get("x") is None and len(cache) == 0
    task = _make_task("x")
    res = solve_fragment_task(task)
    cache.update([res])
    assert "x" in cache and cache.get("x") is not None
    cache.clear()
    assert len(cache) == 0


def test_timings_record_per_fragment_wall_times():
    scf = _tiny_scf()
    result = scf.run(max_iterations=1, potential_tolerance=1e-9,
                     eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    t = result.timings[0]
    assert len(t.petot_f_fragments) == scf.nfragments
    assert all(w > 0 for w in t.petot_f_fragments)
    assert t.petot_f_cpu <= t.petot_f * 1.05  # serial: summed ~<= wall
    assert t.petot_f_workers == 1
    assert t.petot_f_speedup > 0
