"""Tests for the pluggable fragment-execution backend layer.

Covers the ISSUE-1 acceptance criteria: picklable task round-trips, the
serial / thread / process backends all running the one shared kernel and
producing identical results (also end-to-end through LS3DFSCF), LPT load
balancing, and warm-start reuse across outer iterations.

Also covers the ISSUE-2 fused fragment pipeline: the backend-equivalence
matrix (serial / thread / process / remote-socket pipeline runs
bit-identical to each other and within 1e-8 of the seed serial path,
the remote rows crossing real loopback TCP), exactly one executor
submission per fragment per SCF iteration, in-worker Gen_VF / Gen_dens
timing capture, and the warm-start fix that skips the redundant
per-iteration passivation-potential rebuild.

Note the CI container may have a single core (``os.cpu_count() == 1``):
nothing here asserts a measured parallel speedup, only correctness and
accounting, so the matrix is meaningful on any machine.
"""

import pickle

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import (
    FragmentExecutor,
    FragmentPipelineResult,
    FragmentStateCache,
    FragmentTask,
    PipelineFragmentExecutor,
    run_fragment_pipeline_task,
    solve_fragment_task,
)
from repro.core.scf import LS3DFSCF
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.pw.grid import FFTGrid


def _make_task(label="frag", ncells=1) -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.zeros(grid.shape),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-4,
        max_iterations=40,
        ncells=ncells,
    )


def _tiny_scf(executor=None, pipeline=False) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        pipeline=pipeline,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


# --- task / kernel ----------------------------------------------------------------

def test_fragment_task_pickle_roundtrip():
    task = _make_task()
    task.initial_coefficients = np.zeros((3, 5), dtype=complex)
    clone = pickle.loads(pickle.dumps(task))
    assert clone.label == task.label
    assert clone.static_fingerprint() == task.static_fingerprint()
    assert np.array_equal(clone.positions, task.positions)
    assert np.array_equal(clone.screening_potential, task.screening_potential)
    assert np.array_equal(clone.initial_coefficients, task.initial_coefficients)


def test_fingerprint_ignores_iteration_state_but_not_geometry():
    a, b = _make_task(), _make_task()
    b.screening_potential = np.ones(b.grid_shape)
    b.tolerance = 1e-9
    b.initial_coefficients = np.zeros((2, 2), dtype=complex)
    assert a.static_fingerprint() == b.static_fingerprint()
    c = _make_task()
    c.positions = c.positions + 0.1
    assert c.static_fingerprint() != a.static_fingerprint()


def test_all_backends_run_the_same_kernel_identically():
    tasks = [_make_task(f"f{i}") for i in range(3)]
    reference = [solve_fragment_task(t) for t in tasks]
    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=2),
        ProcessPoolFragmentExecutor(n_workers=2),
    ):
        with executor:
            report = executor.run(tasks)
        assert [r.label for r in report.results] == [t.label for t in tasks]
        for got, ref in zip(report.results, reference):
            np.testing.assert_allclose(got.eigenvalues, ref.eigenvalues, rtol=1e-10)
            np.testing.assert_allclose(got.density, ref.density, rtol=1e-10)
            assert got.quantum_energy == pytest.approx(ref.quantum_energy, rel=1e-10)


def test_thread_backend_same_fingerprint_tasks_do_not_race():
    # Two tasks sharing one static fingerprint (same label + geometry) but
    # different potentials share one cached Hamiltonian; the per-problem
    # lock must serialise them so concurrent execution stays correct.
    task_a = _make_task("same")
    task_b = _make_task("same")
    task_b.screening_potential = np.full(task_b.grid_shape, 0.05)
    assert task_a.static_fingerprint() == task_b.static_fingerprint()
    ref_a = solve_fragment_task(task_a)
    ref_b = solve_fragment_task(task_b)
    assert not np.allclose(ref_a.eigenvalues, ref_b.eigenvalues)
    for _ in range(3):  # a few rounds to give a race a chance to show
        with ThreadPoolFragmentExecutor(n_workers=2) as executor:
            report = executor.run([task_a, task_b])
        np.testing.assert_allclose(report.results[0].eigenvalues, ref_a.eigenvalues, rtol=1e-10)
        np.testing.assert_allclose(report.results[1].eigenvalues, ref_b.eigenvalues, rtol=1e-10)


def test_executors_satisfy_protocol():
    from repro.parallel.remote import RemoteExecutor

    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=1),
        ProcessPoolFragmentExecutor(n_workers=1),
        RemoteExecutor([]),
    ):
        assert isinstance(executor, FragmentExecutor)


def test_worker_count_spellings_and_validation():
    assert ProcessPoolFragmentExecutor(n_workers=3).n_workers == 3
    assert ProcessPoolFragmentExecutor(nworkers=3).n_workers == 3  # legacy
    assert ProcessPoolFragmentExecutor(nworkers=3).nworkers == 3
    with pytest.raises(ValueError):
        ProcessPoolFragmentExecutor(n_workers=0)
    with pytest.raises(ValueError):
        ThreadPoolFragmentExecutor(nworkers=-1)


def test_pool_report_carries_lpt_schedule():
    # Mixed fragment classes: costs differ, LPT must balance the groups.
    tasks = [_make_task(f"f{i}", ncells=c) for i, c in enumerate([8, 1, 1, 8, 2, 4])]
    for t in tasks:
        t.cost_hint = float(t.ncells)
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        report = executor.run(tasks)
    assert report.schedule is not None
    assigned = sorted(i for group in report.schedule.assignments for i in group)
    assert assigned == list(range(len(tasks)))
    assert report.schedule.imbalance < 1.5
    assert len(report.results) == len(tasks)


# --- SCF equivalence (acceptance criterion) ---------------------------------------

@pytest.fixture(scope="module")
def seed_run():
    """The seed path: unfused serial LS3DFSCF on the tiny reference system."""
    return _tiny_scf().run(**_RUN_KW)


def test_scf_process_pool_matches_serial(seed_run):
    serial = seed_run
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        pooled = _tiny_scf(executor=executor).run(**_RUN_KW)
    assert pooled.iterations == serial.iterations
    np.testing.assert_allclose(pooled.density, serial.density, rtol=1e-8)
    assert pooled.total_energy == pytest.approx(serial.total_energy, rel=1e-8)
    assert pooled.quantum_energy == pytest.approx(serial.quantum_energy, rel=1e-8)
    np.testing.assert_allclose(
        pooled.convergence_history, serial.convergence_history, rtol=1e-8
    )


def test_scf_thread_pool_matches_serial(seed_run):
    serial = seed_run
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        threaded = _tiny_scf(executor=executor).run(**_RUN_KW)
    np.testing.assert_allclose(threaded.density, serial.density, rtol=1e-8)
    assert threaded.total_energy == pytest.approx(serial.total_energy, rel=1e-8)


# --- warm starts ------------------------------------------------------------------

class _RecordingExecutor(SerialFragmentExecutor):
    """Serial backend that records every task batch it executes."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def run(self, tasks):
        self.batches.append(list(tasks))
        return super().run(tasks)


def test_warm_start_cache_reused_across_outer_iterations():
    recorder = _RecordingExecutor()
    scf = _tiny_scf(executor=recorder)
    result = scf.run(max_iterations=2, potential_tolerance=1e-9,
                     eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    assert result.iterations == 2
    assert len(recorder.batches) == 2
    first, second = recorder.batches
    # Iteration 1 starts cold, iteration 2 warm-starts from the cache.
    assert all(t.initial_coefficients is None for t in first)
    assert all(t.initial_coefficients is not None for t in second)
    assert len(scf.state_cache) == scf.nfragments
    for frag in scf.fragments:
        assert frag.label in scf.state_cache
    # Warm starts make the second iteration no more expensive than the first
    # (the paper's "second iteration is cheap" property).
    assert result.timings[0].petot_f_fragments
    assert result.timings[1].petot_f_cpu <= result.timings[0].petot_f_cpu * 1.5


def test_state_cache_api():
    cache = FragmentStateCache()
    assert cache.get("x") is None and len(cache) == 0
    task = _make_task("x")
    res = solve_fragment_task(task)
    cache.update([res])
    assert "x" in cache and cache.get("x") is not None
    cache.clear()
    assert len(cache) == 0


# --- fused fragment pipeline (ISSUE-2 tentpole) -----------------------------------

def _pipeline_task(scf: LS3DFSCF, fragment_index=0):
    v_in = scf.genpot.initial_potential()
    return scf.fragment_solver.make_pipeline_task(
        scf.fragments[fragment_index], v_in,
        eigensolver_tolerance=1e-4, eigensolver_iterations=40,
    )


def test_pipeline_task_pickle_roundtrip_and_cost():
    scf = _tiny_scf()
    ptask = _pipeline_task(scf)
    clone = pickle.loads(pickle.dumps(ptask))
    assert clone.label == ptask.label == scf.fragments[0].label
    assert clone.cost() == ptask.cost() == ptask.task.cost()
    assert np.array_equal(clone.global_potential, ptask.global_potential)
    for got, ref in zip(clone.box_indices, ptask.box_indices):
        assert np.array_equal(got, ref)
    assert clone.interior_slice == ptask.interior_slice
    assert np.array_equal(clone.passivation_potential, ptask.passivation_potential)
    # The inner solve task ships without a screening potential: the worker
    # assembles it from the global potential and the index maps.
    assert clone.task.screening_potential is None


def test_pipeline_kernel_matches_unfused_steps():
    """restrict -> solve -> weighted-interior, fused == step by step."""
    from repro.core.patching import restrict_to_fragment

    scf = _tiny_scf()
    fragment = scf.fragments[0]
    v_in = scf.genpot.initial_potential()
    pres: FragmentPipelineResult = run_fragment_pipeline_task(
        _pipeline_task(scf))
    # Unfused reference: driver-side Gen_VF then the plain solve kernel.
    restricted = restrict_to_fragment(scf.division, fragment, v_in)
    task = scf.fragment_solver.make_task(
        fragment, restricted, eigensolver_tolerance=1e-4,
        eigensolver_iterations=40)
    ref = solve_fragment_task(task)
    np.testing.assert_array_equal(pres.result.density, ref.density)
    np.testing.assert_array_equal(pres.result.eigenvalues, ref.eigenvalues)
    assert pres.result.quantum_energy == ref.quantum_energy
    # The contribution is the alpha-weighted region interior of the density.
    box = scf.division.fragment_box(fragment)
    expected = fragment.weight * np.real(ref.density[box.interior_slice])
    np.testing.assert_array_equal(pres.contribution, expected)
    assert pres.wall_time >= pres.result.wall_time


@pytest.fixture(scope="module")
def pipeline_matrix():
    """One pipeline run per backend on the tiny reference system.

    Each entry is ``(result, tasks_submitted, nfragments)``; shared
    (module scope) because the three SCF runs dominate this file's cost.
    """
    runs = {}
    executor = SerialFragmentExecutor()
    scf = _tiny_scf(executor, pipeline=True)
    runs["serial"] = (scf.run(**_RUN_KW), executor.tasks_submitted, scf.nfragments)
    with ThreadPoolFragmentExecutor(n_workers=2) as executor:
        scf = _tiny_scf(executor, pipeline=True)
        runs["threads"] = (scf.run(**_RUN_KW), executor.tasks_submitted, scf.nfragments)
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        scf = _tiny_scf(executor, pipeline=True)
        runs["processes"] = (scf.run(**_RUN_KW), executor.tasks_submitted, scf.nfragments)
    from repro.parallel.remote import (
        RemoteExecutor,
        RemoteExecutorConfig,
        start_worker_thread,
    )

    servers = [start_worker_thread() for _ in range(2)]
    try:
        config = RemoteExecutorConfig(
            connect_timeout=2.0, request_timeout=60.0,
            heartbeat_interval=1e9, max_retries=1, backoff=0.01)
        with RemoteExecutor([s.address for s in servers], config=config) as executor:
            scf = _tiny_scf(executor, pipeline=True)
            runs["remote"] = (
                scf.run(**_RUN_KW), executor.tasks_submitted, scf.nfragments)
            assert executor.workers_lost == 0 and executor.degraded_tasks == 0
    finally:
        for server in servers:
            server.stop()
    return runs


def test_pipeline_backend_equivalence_matrix(seed_run, pipeline_matrix):
    """Serial, thread and process pipeline runs are bit-identical, and all
    agree with the seed (unfused serial) path at 1e-8 or tighter."""
    reference = pipeline_matrix["serial"][0]
    for name, (result, _, _) in pipeline_matrix.items():
        # Bit-identical across backends: same tasks, same deterministic
        # chunked tree-reduce, no summation-order freedom left.
        np.testing.assert_array_equal(
            result.density, reference.density, err_msg=f"density ({name})")
        np.testing.assert_array_equal(
            result.potential, reference.potential, err_msg=f"potential ({name})")
        assert result.total_energy == reference.total_energy, name
        assert result.quantum_energy == reference.quantum_energy, name
        assert result.convergence_history == reference.convergence_history, name
        # Acceptance criterion: every combination within 1e-8 of the seed.
        np.testing.assert_allclose(result.density, seed_run.density, rtol=1e-8)
        np.testing.assert_allclose(
            result.potential, seed_run.potential, rtol=1e-8, atol=1e-10)
        assert result.total_energy == pytest.approx(seed_run.total_energy, rel=1e-8)
        np.testing.assert_allclose(
            result.convergence_history, seed_run.convergence_history, rtol=1e-8)


def test_pipeline_one_submission_per_fragment_per_iteration(pipeline_matrix):
    """Acceptance criterion: pipeline=True issues exactly one executor
    submission per fragment per SCF iteration — on the process pool and on
    every other backend."""
    for name, (result, submitted, nfragments) in pipeline_matrix.items():
        assert result.iterations == 3, name
        assert submitted == nfragments * result.iterations, name


def test_pipeline_requires_capable_executor():
    class RunOnly:
        n_workers = 1

        def run(self, tasks):  # pragma: no cover - never called
            raise AssertionError

    assert isinstance(RunOnly(), FragmentExecutor)
    assert not isinstance(RunOnly(), PipelineFragmentExecutor)
    with pytest.raises(TypeError, match="run_pipeline"):
        _tiny_scf(RunOnly(), pipeline=True)
    from repro.parallel.remote import RemoteExecutor

    for executor in (
        SerialFragmentExecutor(),
        ThreadPoolFragmentExecutor(n_workers=1),
        ProcessPoolFragmentExecutor(n_workers=1),
        RemoteExecutor([]),
    ):
        assert isinstance(executor, PipelineFragmentExecutor)


def test_pipeline_timings_record_in_worker_steps(seed_run, pipeline_matrix):
    result, _, nfragments = pipeline_matrix["serial"]
    for t in result.timings:
        assert t.pipeline
        assert len(t.gen_vf_fragments) == nfragments
        assert len(t.gen_dens_fragments) == nfragments
        assert len(t.petot_f_fragments) == nfragments
        # The fused per-fragment wall time contains its restrict and patch.
        for w, vf, dens in zip(t.petot_f_fragments, t.gen_vf_fragments,
                               t.gen_dens_fragments):
            assert w >= vf + dens
        assert 0.0 <= t.measured_serial_fraction < 1.0
        assert t.serial_time == t.gen_vf + t.gen_dens + t.genpot
    # The unfused path keeps the seed timing shape (no in-worker entries).
    assert not seed_run.timings[0].pipeline
    assert seed_run.timings[0].gen_vf_fragments == []


def test_pipeline_moves_gen_vf_work_into_the_fragments(seed_run, pipeline_matrix):
    """The point of the fusion, asserted structurally (wall-clock ratios
    on a loaded 1-core CI box are too noisy to gate on): with the
    pipeline, real restriction work happens *inside* the per-fragment
    tasks, and the driver's own Gen_VF no longer performs any per-fragment
    array restriction — its residue is accounted separately from the
    in-fragment times.  A deliberately coarse 2x wall-clock guard catches
    only catastrophic regressions of the driver residue."""
    pipe_t = pipeline_matrix["serial"][0].timings[-1]
    seed_t = seed_run.timings[-1]
    # In-worker restriction happened and is accounted per fragment...
    assert sum(pipe_t.gen_vf_fragments) > 0
    # ...while the unfused path has no in-fragment restrict/patch entries.
    assert seed_t.gen_vf_fragments == [] and seed_t.gen_dens_fragments == []
    # Coarse driver-residue guard (not a shrinkage proof; see docstring).
    # Both residues are sub-millisecond on the tiny system, where a single
    # scheduler stall would swamp any ratio — hence the absolute floor.
    assert pipe_t.gen_vf + pipe_t.gen_dens < max(
        2.0 * (seed_t.gen_vf + seed_t.gen_dens), 0.05)


def test_pipeline_warm_starts_across_iterations():
    executor = SerialFragmentExecutor()
    scf = _tiny_scf(executor, pipeline=True)
    result = scf.run(max_iterations=2, potential_tolerance=1e-9,
                     eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    assert result.iterations == 2
    assert len(scf.state_cache) == scf.nfragments
    assert executor.tasks_submitted == scf.nfragments * 2
    # Warm starts keep the second iteration from costing more than the first.
    assert result.timings[1].petot_f_cpu <= result.timings[0].petot_f_cpu * 1.5


def test_warm_iterations_skip_redundant_gen_vf_passivation_work(monkeypatch):
    """Regression (ISSUE-2 fix): the fixed passivation potential Delta V_F
    is built once per passivated fragment, not rebuilt by Gen_VF every
    iteration — the per-run Hartree-solve count is iteration-independent."""
    import repro.core.fragment_solver as fragment_solver_module

    calls = {"n": 0}
    real_hartree = fragment_solver_module.hartree_potential

    def counting_hartree(*args, **kwargs):
        calls["n"] += 1
        return real_hartree(*args, **kwargs)

    monkeypatch.setattr(
        fragment_solver_module, "hartree_potential", counting_hartree)

    scf = _tiny_scf()
    scf.run(max_iterations=1, potential_tolerance=1e-9,
            eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    calls_one_iteration = calls["n"]
    # Not every fragment needs passivants (fragments spanning a full
    # periodic axis have no cut bonds), but some must.
    assert 0 < calls_one_iteration <= scf.nfragments

    calls["n"] = 0
    result = scf = None  # noqa: F841 - drop, then rerun from scratch
    scf = _tiny_scf()
    result = scf.run(**_RUN_KW)
    assert result.iterations == 3
    # One Hartree solve per passivated fragment for the whole run; warm
    # iterations reuse the cached array instead of redoing Gen_VF setup.
    assert calls["n"] == calls_one_iteration


def test_timings_record_per_fragment_wall_times():
    scf = _tiny_scf()
    result = scf.run(max_iterations=1, potential_tolerance=1e-9,
                     eigensolver_tolerance=1e-4, eigensolver_iterations=40)
    t = result.timings[0]
    assert len(t.petot_f_fragments) == scf.nfragments
    assert all(w > 0 for w in t.petot_f_fragments)
    assert t.petot_f_cpu <= t.petot_f * 1.05  # serial: summed ~<= wall
    assert t.petot_f_workers == 1
    assert t.petot_f_speedup > 0
