"""Regenerate the golden-value regression fixtures (ISSUE-2 satellite).

Runs the fixed golden protocol — the *seed-identical* serial LS3DF path —
on two toy systems and stores total energy, patched quantum energy,
per-iteration convergence/energy histories and folded-spectrum band-edge
eigenvalues as JSON under ``tests/golden/``.

``tests/test_golden_regression.py`` re-runs the same protocol and compares
at 1e-10, so any refactor that silently changes physics (summation order,
potential assembly, eigensolver behaviour) fails loudly.  Regenerate ONLY
when a change is *supposed* to move the numbers, and say why in the
commit:

    PYTHONPATH=src python tests/golden/generate.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(GOLDEN_DIR.parents[1] / "src"))

from repro.atoms.toy import cscl_binary  # noqa: E402
from repro.core.driver import LS3DF  # noqa: E402

#: The two seed systems and the exact run protocol (fixed forever; the
#: test re-runs precisely this).  Deliberately small: the fixtures anchor
#: drift, they do not claim converged physics.  Keep every system at
#: <= 8 fragments (the default patch_chunk_size): that makes the fused
#: pipeline bit-compatible with these seed-path fixtures, which
#: test_golden_regression exploits (and asserts).
SYSTEMS = {
    "zno_2x1x1": dict(cation="Zn", anion="O", lattice=6.0, dims=(2, 1, 1)),
    "gaas_1x1x2": dict(cation="Ga", anion="As", lattice=6.5, dims=(1, 1, 2)),
}
PROTOCOL = dict(
    ecut=2.2,
    buffer_cells=0.5,
    n_empty=2,
    mixer="kerker",
    run=dict(
        max_iterations=5,
        potential_tolerance=1e-6,
        eigensolver_tolerance=1e-5,
        eigensolver_iterations=50,
    ),
    band_edge=dict(n_states=2, tolerance=1e-6, max_iterations=80),
)


def run_protocol(name: str, pipeline: bool = False):
    """One golden run; the regression test calls this too."""
    spec = SYSTEMS[name]
    structure = cscl_binary(spec["dims"], spec["cation"], spec["anion"], spec["lattice"])
    ls3df = LS3DF(
        structure,
        grid_dims=spec["dims"],
        ecut=PROTOCOL["ecut"],
        buffer_cells=PROTOCOL["buffer_cells"],
        n_empty=PROTOCOL["n_empty"],
        mixer=PROTOCOL["mixer"],
        pipeline=pipeline,
    )
    result = ls3df.run(**PROTOCOL["run"])
    states = ls3df.band_edge_states(result, **PROTOCOL["band_edge"])
    return ls3df, result, states


def golden_payload(name: str) -> dict:
    _, result, states = run_protocol(name)
    return {
        "system": name,
        "protocol": PROTOCOL,
        "total_energy": result.total_energy,
        "quantum_energy": result.quantum_energy,
        "iterations": result.iterations,
        "converged": result.converged,
        "convergence_history": list(result.convergence_history),
        "energy_history": list(result.energy_history),
        "band_edge_energies": [float(e) for e in states.energies],
        "band_edge_reference": float(states.reference_energy),
    }


def main() -> None:
    for name in SYSTEMS:
        payload = golden_payload(name)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}  E={payload['total_energy']:.12f} "
              f"band edges={payload['band_edge_energies']}")


if __name__ == "__main__":
    main()
