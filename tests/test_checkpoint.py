"""Checkpoint/restart tests (ISSUE 4).

Covers the three state-holding layers (mixer ``state_dict`` round trips
for all three mixers, the fragment warm-start cache, the checkpoint
file format with its manifest validation) and the acceptance criterion:
an LS3DF run killed after iteration k and resumed with ``resume=True``
produces bit-identical densities/potentials/histories from iteration
k+1 onward versus an uninterrupted run — for all three mixers on the
serial backend and for the process-pool backend.

Everything asserts with ``==`` (no tolerances): resume is replay, not
approximation.
"""

import json

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.scf import LS3DFSCF
from repro.io.checkpoint import (
    CheckpointMismatchError,
    SCFCheckpoint,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.io.gridio import write_npz_atomic
from repro.pw.grid import FFTGrid
from repro.pw.mixing import AndersonMixer, KerkerMixer, LinearMixer, Mixer, make_mixer


# ---------------------------------------------------------------------------
# Mixer state_dict / load_state_dict


def _exercise(mixer, rng, shape=(6, 6, 6), steps=4):
    out = None
    for _ in range(steps):
        out = mixer.mix(rng.random(shape), rng.random(shape))
    return out


def _mixer_pair(kind):
    grid = FFTGrid((6.0, 6.0, 6.0), (6, 6, 6))
    if kind == "kerker":
        return make_mixer(kind, grid=grid), make_mixer(kind, grid=grid)
    return make_mixer(kind), make_mixer(kind)


@pytest.mark.parametrize("kind", ["linear", "kerker", "anderson"])
def test_mixer_state_roundtrip_preserves_future_mixes(kind):
    source, target = _mixer_pair(kind)
    rng = np.random.default_rng(7)
    _exercise(source, rng)
    target.load_state_dict(source.state_dict())
    probe_rng = np.random.default_rng(11)
    v_in, v_out = probe_rng.random((6, 6, 6)), probe_rng.random((6, 6, 6))
    assert np.array_equal(source.mix(v_in, v_out), target.mix(v_in, v_out))


def test_anderson_state_carries_the_bounded_history():
    mixer = AndersonMixer(history=3)
    rng = np.random.default_rng(0)
    _exercise(mixer, rng, steps=5)  # overflow the deque: only 3 entries kept
    state = mixer.state_dict()
    assert state["v_in_stack"].shape[0] == 3
    assert state["residual_stack"].shape == state["v_in_stack"].shape
    empty = AndersonMixer(history=3)
    assert empty.state_dict()["v_in_stack"].shape[0] == 0


@pytest.mark.parametrize(
    "kind, build_other",
    [
        ("linear", lambda: LinearMixer(alpha=0.9)),
        ("kerker", lambda: KerkerMixer(FFTGrid((6.0,) * 3, (6,) * 3), q0=0.3)),
        ("anderson", lambda: AndersonMixer(history=2)),
    ],
)
def test_mixer_rejects_state_of_differently_configured_mixer(kind, build_other):
    source, _ = _mixer_pair(kind)
    with pytest.raises(ValueError):
        build_other().load_state_dict(source.state_dict())


def test_protocol_default_state_dict_is_empty_and_strict():
    class Custom(Mixer):
        kind = "custom"
        sharding = "serial"

        def reset(self):
            pass

        def mix(self, v_in, v_out):
            return v_out

    mixer = Custom()
    assert mixer.state_dict() == {}
    mixer.load_state_dict({})  # round trip of the empty snapshot is fine
    with pytest.raises(ValueError):
        mixer.load_state_dict({"alpha": np.float64(0.5)})


# ---------------------------------------------------------------------------
# Checkpoint file format


def _dummy_checkpoint(iteration=3, shape=(4, 4, 4), signature="sig-a"):
    rng = np.random.default_rng(iteration)
    return SCFCheckpoint(
        iteration=iteration,
        v_in=rng.random(shape),
        mixer_kind="anderson",
        division_signature=signature,
        mixer_state={
            "alpha": np.float64(0.4),
            "history": np.int64(5),
            "v_in_stack": rng.random((2, *shape)),
            "residual_stack": rng.random((2, *shape)),
        },
        fragment_coefficients={
            "F(0,0,0)x111": rng.random((5, 3)) + 1j * rng.random((5, 3)),
            "F(1,0,0)x211": rng.random((7, 4)) + 1j * rng.random((7, 4)),
        },
        convergence_history=[3.0, 2.0, 1.0],
        energy_history=[-1.0, -1.1, -1.2],
    )


def test_write_npz_atomic_roundtrip_and_no_tmp_left(tmp_path):
    path = write_npz_atomic(tmp_path / "sub" / "a.npz", x=np.arange(5), y=np.eye(2))
    assert path.is_file()
    assert not list(path.parent.glob("*.tmp"))
    with np.load(path) as payload:
        assert np.array_equal(payload["x"], np.arange(5))
        assert np.array_equal(payload["y"], np.eye(2))


def test_checkpoint_roundtrip_is_exact(tmp_path):
    original = _dummy_checkpoint()
    assert not has_checkpoint(tmp_path)
    save_checkpoint(tmp_path, original)
    assert has_checkpoint(tmp_path)
    loaded = load_checkpoint(
        tmp_path, grid_shape=(4, 4, 4), division_signature="sig-a",
        mixer_kind="anderson",
    )
    assert loaded.iteration == original.iteration
    assert loaded.mixer_kind == original.mixer_kind
    assert loaded.division_signature == original.division_signature
    assert loaded.convergence_history == original.convergence_history
    assert loaded.energy_history == original.energy_history
    assert np.array_equal(loaded.v_in, original.v_in)
    assert set(loaded.mixer_state) == set(original.mixer_state)
    for key, value in original.mixer_state.items():
        assert np.array_equal(loaded.mixer_state[key], value)
    assert set(loaded.fragment_coefficients) == set(original.fragment_coefficients)
    for label, coeffs in original.fragment_coefficients.items():
        assert np.array_equal(loaded.fragment_coefficients[label], coeffs)


def test_checkpoint_replaces_previous_and_prunes_stale_payloads(tmp_path):
    save_checkpoint(tmp_path, _dummy_checkpoint(iteration=1))
    # Orphan from a hypothetical kill between tmp-write and replace.
    (tmp_path / "state-000001.npz.tmp").write_bytes(b"half-written")
    save_checkpoint(tmp_path, _dummy_checkpoint(iteration=2))
    assert [p.name for p in sorted(tmp_path.glob("state-*"))] == ["state-000002.npz"]
    assert load_checkpoint(tmp_path).iteration == 2


def test_checkpoint_mismatches_fail_loudly(tmp_path):
    save_checkpoint(tmp_path, _dummy_checkpoint())
    with pytest.raises(CheckpointMismatchError, match="global grid"):
        load_checkpoint(tmp_path, grid_shape=(8, 4, 4))
    with pytest.raises(CheckpointMismatchError, match="different structure"):
        load_checkpoint(tmp_path, division_signature="sig-b")
    with pytest.raises(CheckpointMismatchError, match="mixer"):
        load_checkpoint(tmp_path, mixer_kind="kerker")


def test_checkpoint_rejects_foreign_versions_and_tampered_pairs(tmp_path):
    save_checkpoint(tmp_path, _dummy_checkpoint())
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())

    bad = dict(manifest, version=99)
    manifest_path.write_text(json.dumps(bad))
    with pytest.raises(CheckpointMismatchError, match="version"):
        load_checkpoint(tmp_path)

    bad = dict(manifest, iteration=manifest["iteration"] + 1)
    manifest_path.write_text(json.dumps(bad))
    with pytest.raises(CheckpointMismatchError, match="iteration"):
        load_checkpoint(tmp_path)


def test_load_checkpoint_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(tmp_path / "nope")


# ---------------------------------------------------------------------------
# Kill-at-iteration-k resume: bit-identical to the uninterrupted run


def _solver(mixer, executor=None):
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer=mixer,
        executor=executor,
    )


_RUN_KW = dict(
    potential_tolerance=1e-9,  # never met: fixed iteration count
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)

# (mixer, kill after iteration k, uninterrupted run length n)
_RESUME_CASES = [("linear", 1, 3), ("kerker", 1, 3), ("anderson", 2, 4)]


@pytest.fixture(scope="module")
def fresh_runs():
    """Uninterrupted serial reference runs, one per mixer."""
    return {
        mixer: _solver(mixer).run(max_iterations=n, **_RUN_KW)
        for mixer, _, n in _RESUME_CASES
    }


def _assert_bit_identical(resumed, fresh, executed_iterations):
    assert resumed.convergence_history == fresh.convergence_history
    assert resumed.energy_history == fresh.energy_history
    assert np.array_equal(resumed.density, fresh.density)
    assert np.array_equal(resumed.potential, fresh.potential)
    assert resumed.iterations == fresh.iterations
    assert len(resumed.timings) == executed_iterations


@pytest.mark.parametrize("mixer,k,n", _RESUME_CASES)
def test_killed_run_resumes_bit_identically_serial(tmp_path, fresh_runs, mixer, k, n):
    # "Kill" after iteration k: a capped run that checkpoints every iteration.
    partial = _solver(mixer).run(
        max_iterations=k, checkpoint_dir=tmp_path, **_RUN_KW
    )
    assert partial.convergence_history == fresh_runs[mixer].convergence_history[:k]
    assert has_checkpoint(tmp_path)
    assert all(t.checkpoint_io > 0 for t in partial.timings)
    # Checkpoint I/O is serial work in the Amdahl accounting.
    assert partial.timings[0].serial_time >= partial.timings[0].checkpoint_io

    resumed = _solver(mixer).run(
        max_iterations=n, checkpoint_dir=tmp_path, resume=True, **_RUN_KW
    )
    _assert_bit_identical(resumed, fresh_runs[mixer], executed_iterations=n - k)


def test_killed_run_resumes_bit_identically_process_backend(tmp_path, fresh_runs):
    from repro.parallel.executor import ProcessPoolFragmentExecutor

    mixer, k, n = "kerker", 1, 3
    with ProcessPoolFragmentExecutor(n_workers=2) as executor:
        _solver(mixer, executor=executor).run(
            max_iterations=k, checkpoint_dir=tmp_path, **_RUN_KW
        )
        resumed = _solver(mixer, executor=executor).run(
            max_iterations=n, checkpoint_dir=tmp_path, resume=True, **_RUN_KW
        )
    _assert_bit_identical(resumed, fresh_runs[mixer], executed_iterations=n - k)


def test_resume_validates_against_the_running_problem(tmp_path, fresh_runs):
    _solver("kerker").run(max_iterations=1, checkpoint_dir=tmp_path, **_RUN_KW)
    # Same grid and division, different mixer kind: must refuse.
    with pytest.raises(CheckpointMismatchError, match="mixer"):
        _solver("linear").run(
            max_iterations=3, checkpoint_dir=tmp_path, resume=True, **_RUN_KW
        )
    # Different structure (hence division signature): must refuse.
    other = LS3DFSCF(
        cscl_binary((2, 1, 1), "Zn", "Se", 6.0),
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
    )
    with pytest.raises(CheckpointMismatchError, match="different structure"):
        other.run(max_iterations=3, checkpoint_dir=tmp_path, resume=True, **_RUN_KW)
    # Same geometry but different band count: the saved warm-start
    # wavefunctions have the wrong shape, so the (ecut/n_empty-salted)
    # problem signature must refuse up front, not crash mid-solve.
    wrong_bands = LS3DFSCF(
        cscl_binary((2, 1, 1), "Zn", "O", 6.0),
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=3,
        mixer="kerker",
    )
    with pytest.raises(CheckpointMismatchError, match="different structure"):
        wrong_bands.run(
            max_iterations=3, checkpoint_dir=tmp_path, resume=True, **_RUN_KW
        )


def test_resume_argument_validation(tmp_path):
    scf = _solver("kerker")
    with pytest.raises(ValueError, match="checkpoint_dir"):
        scf.run(max_iterations=2, resume=True, **_RUN_KW)
    with pytest.raises(ValueError, match="checkpoint_every"):
        scf.run(max_iterations=2, checkpoint_dir=tmp_path, checkpoint_every=0,
                **_RUN_KW)


def test_resume_with_empty_directory_starts_fresh(tmp_path, fresh_runs):
    result = _solver("linear").run(
        max_iterations=3, checkpoint_dir=tmp_path / "new", resume=True, **_RUN_KW
    )
    assert result.convergence_history == fresh_runs["linear"].convergence_history


def test_checkpoint_every_skips_intermediate_iterations(tmp_path):
    partial = _solver("linear").run(
        max_iterations=3, checkpoint_dir=tmp_path, checkpoint_every=2, **_RUN_KW
    )
    assert load_checkpoint(tmp_path).iteration == 2
    assert [t.checkpoint_io > 0 for t in partial.timings] == [False, True, False]


def test_resume_beyond_max_iterations_fails_loudly(tmp_path):
    _solver("linear").run(max_iterations=2, checkpoint_dir=tmp_path, **_RUN_KW)
    with pytest.raises(ValueError, match="max_iterations"):
        _solver("linear").run(
            max_iterations=2, checkpoint_dir=tmp_path, resume=True, **_RUN_KW
        )
