"""Tests for FFT grids and the plane-wave basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pw.basis import PlaneWaveBasis
from repro.pw.grid import FFTGrid


def test_grid_basic_properties():
    grid = FFTGrid([10.0, 12.0, 8.0], (10, 12, 8))
    assert grid.npoints == 960
    assert grid.volume == pytest.approx(960.0)
    assert grid.dvol == pytest.approx(1.0)
    assert np.allclose(grid.spacing, 1.0)


def test_grid_validation():
    with pytest.raises(ValueError):
        FFTGrid([10.0, -1.0, 8.0], (10, 10, 10))
    with pytest.raises(ValueError):
        FFTGrid([10.0, 10.0, 10.0], (10, 1, 10))


def test_grid_fft_roundtrip():
    grid = FFTGrid([6.0, 6.0, 6.0], (8, 8, 8))
    rng = np.random.default_rng(0)
    field = rng.standard_normal(grid.shape)
    back = grid.to_real(grid.to_reciprocal(field))
    assert np.allclose(back.real, field, atol=1e-12)


def test_grid_integrate_constant_field():
    grid = FFTGrid([5.0, 5.0, 5.0], (6, 6, 6))
    field = np.full(grid.shape, 2.0)
    assert grid.integrate(field) == pytest.approx(2.0 * grid.volume)


def test_grid_g_vectors_nyquist():
    grid = FFTGrid([10.0, 10.0, 10.0], (10, 10, 10))
    assert grid.gmax2 == pytest.approx((np.pi * 10 / 10.0) ** 2)
    assert grid.g2.min() == pytest.approx(0.0)


def test_grid_for_structure_even_and_compatible():
    grid = FFTGrid.for_structure([11.0, 11.0, 11.0], points_per_bohr=1.5)
    assert all(n % 2 == 0 for n in grid.shape)
    grid2 = FFTGrid(grid.cell, grid.shape)
    assert grid.compatible_with(grid2)


def test_basis_cutoff_selection():
    grid = FFTGrid([8.0, 8.0, 8.0], (12, 12, 12))
    basis = PlaneWaveBasis(grid, ecut=2.0)
    assert basis.npw > 1
    assert np.all(0.5 * basis.g2 <= 2.0 + 1e-10)
    assert basis.g2[basis.gzero_index] == pytest.approx(0.0)


def test_basis_cutoff_too_large_for_grid():
    grid = FFTGrid([8.0, 8.0, 8.0], (6, 6, 6))
    with pytest.raises(ValueError):
        PlaneWaveBasis(grid, ecut=50.0)


def test_basis_grid_scatter_gather_roundtrip():
    grid = FFTGrid([8.0, 8.0, 8.0], (10, 10, 10))
    basis = PlaneWaveBasis(grid, ecut=2.5)
    rng = np.random.default_rng(1)
    coeffs = rng.standard_normal(basis.npw) + 1j * rng.standard_normal(basis.npw)
    assert np.allclose(basis.from_grid(basis.to_grid(coeffs)), coeffs)


def test_basis_real_space_normalization():
    grid = FFTGrid([9.0, 9.0, 9.0], (12, 12, 12))
    basis = PlaneWaveBasis(grid, ecut=2.0)
    c = basis.random_coefficients(3, rng=0)
    # Orthonormal coefficients -> real-space orbitals normalised to 1.
    psi = basis.to_real_space(c)
    norms = np.sum(np.abs(psi) ** 2, axis=(1, 2, 3)) * grid.dvol
    assert np.allclose(norms, 1.0, atol=1e-10)
    # Round trip back to coefficients.
    back = basis.from_real_space(psi)
    assert np.allclose(back, c, atol=1e-10)


def test_random_coefficients_are_orthonormal():
    grid = FFTGrid([9.0, 9.0, 9.0], (12, 12, 12))
    basis = PlaneWaveBasis(grid, ecut=2.0)
    c = basis.random_coefficients(5, rng=3)
    overlap = c.conj() @ c.T
    assert np.allclose(overlap, np.eye(5), atol=1e-10)


def test_orthonormalize_restores_orthonormality():
    grid = FFTGrid([9.0, 9.0, 9.0], (12, 12, 12))
    basis = PlaneWaveBasis(grid, ecut=2.0)
    c = basis.random_coefficients(4, rng=5)
    skewed = c.copy()
    skewed[1] = 0.7 * c[0] + 0.3 * c[1]
    fixed = basis.orthonormalize(skewed)
    overlap = fixed.conj() @ fixed.T
    assert np.allclose(overlap, np.eye(4), atol=1e-10)


def test_orthonormalize_rejects_degenerate_block():
    grid = FFTGrid([9.0, 9.0, 9.0], (12, 12, 12))
    basis = PlaneWaveBasis(grid, ecut=2.0)
    c = basis.random_coefficients(2, rng=7)
    c[1] = c[0]
    with pytest.raises(np.linalg.LinAlgError):
        basis.orthonormalize(c)


@settings(max_examples=20, deadline=None)
@given(
    nx=st.integers(min_value=6, max_value=14),
    ny=st.integers(min_value=6, max_value=14),
    nz=st.integers(min_value=6, max_value=14),
)
def test_property_parseval_fft_grid(nx, ny, nz):
    """Parseval: sum |f|^2 dvol equals sum |f_G|^2 * dvol / N (fftn norm)."""
    grid = FFTGrid([7.0, 8.0, 9.0], (nx, ny, nz))
    rng = np.random.default_rng(nx * 100 + ny * 10 + nz)
    f = rng.standard_normal(grid.shape)
    fg = grid.to_reciprocal(f)
    lhs = np.sum(f * f) * grid.dvol
    rhs = np.sum(np.abs(fg) ** 2) / grid.npoints * grid.dvol
    assert lhs == pytest.approx(rhs, rel=1e-10)
