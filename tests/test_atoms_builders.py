"""Tests for the zinc-blende / alloy / toy crystal builders."""

import numpy as np
import pytest

from repro.atoms.alloy import (
    alloy_composition_summary,
    build_znteo_alloy,
    oxygen_site_indices,
    substitute_anions,
)
from repro.atoms.toy import cscl_binary, simple_cubic
from repro.atoms.zincblende import (
    supercell_atom_cell_indices,
    zincblende_supercell,
    zincblende_unit_cell,
)


def test_unit_cell_has_eight_atoms_and_correct_bond_length():
    cell = zincblende_unit_cell("Zn", "Te")
    assert cell.natoms == 8
    a = cell.cell[0]
    # Nearest-neighbour (cation-anion) distance is a * sqrt(3) / 4.
    d = cell.minimum_image_distance(0, 4)
    assert d == pytest.approx(a * np.sqrt(3.0) / 4.0, rel=1e-10)


def test_unit_cell_unknown_compound_requires_lattice_constant():
    with pytest.raises(KeyError):
        zincblende_unit_cell("Zn", "As")
    cell = zincblende_unit_cell("Zn", "As", lattice_constant=10.0)
    assert cell.cell[0] == pytest.approx(10.0)


def test_supercell_atom_count_follows_paper_convention():
    # The paper: total atoms = 8 * m1 * m2 * m3.
    for dims in [(1, 1, 1), (2, 1, 1), (2, 2, 2), (3, 2, 1)]:
        sc = zincblende_supercell(dims, "Zn", "Te")
        assert sc.natoms == 8 * np.prod(dims)


def test_supercell_cell_indices_match_positions():
    dims = (2, 2, 1)
    sc = zincblende_supercell(dims, "Zn", "Te")
    idx = supercell_atom_cell_indices(dims)
    assert idx.shape == (sc.natoms, 3)
    a = zincblende_unit_cell("Zn", "Te").cell[0]
    frac_cell = np.floor(sc.positions / a).astype(int)
    assert np.array_equal(frac_cell, idx)


def test_substitute_anions_counts_and_reproducibility():
    host = zincblende_supercell((2, 2, 2), "Zn", "Te")
    alloy1 = substitute_anions(host, "Te", "O", 0.25, rng=42)
    alloy2 = substitute_anions(host, "Te", "O", 0.25, rng=42)
    assert alloy1.symbols == alloy2.symbols
    n_te_host = host.species_counts()["Te"]
    counts = alloy1.species_counts()
    assert counts["O"] == round(0.25 * n_te_host)
    assert counts["Te"] + counts["O"] == n_te_host
    # Host untouched.
    assert "O" not in host.species_counts()


def test_substitute_anions_validation():
    host = zincblende_supercell((1, 1, 1), "Zn", "Te")
    with pytest.raises(ValueError):
        substitute_anions(host, "Te", "O", 1.5)
    with pytest.raises(ValueError):
        substitute_anions(host, "As", "O", 0.1)


def test_build_znteo_alloy_three_percent():
    alloy = build_znteo_alloy((3, 3, 3), oxygen_fraction=0.03, rng=0)
    assert alloy.natoms == 216
    counts = alloy.species_counts()
    # 3% of 108 Te sites -> 3 oxygen atoms.
    assert counts["O"] == 3
    assert len(oxygen_site_indices(alloy)) == 3
    comp = alloy_composition_summary(alloy)
    assert comp["Zn"] == pytest.approx(0.5)
    assert comp["O"] == pytest.approx(3 / 216)


def test_cscl_and_simple_cubic_builders():
    toy = cscl_binary((2, 2, 1), "Zn", "O", 6.0)
    assert toy.natoms == 8
    assert toy.cell[0] == pytest.approx(12.0)
    assert toy.cell[2] == pytest.approx(6.0)
    sc = simple_cubic((2, 1, 1), "Si", 5.0)
    assert sc.natoms == 2
    assert sc.total_valence_electrons() == 8
    with pytest.raises(ValueError):
        cscl_binary((0, 1, 1))
    with pytest.raises(ValueError):
        simple_cubic((1, 1, 1), lattice_constant=-2.0)
