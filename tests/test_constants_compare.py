"""Tests for unit conversions and the LS3DF-vs-direct comparison helpers."""

import numpy as np
import pytest

from repro.constants import (
    ANGSTROM_TO_BOHR,
    BOHR_TO_ANGSTROM,
    EV_TO_HARTREE,
    HARTREE_TO_EV,
    HARTREE_TO_RYDBERG,
    RYDBERG_TO_HARTREE,
)
from repro.core.compare import dipole_moment
from repro.pw.grid import FFTGrid


def test_unit_conversions_are_inverses():
    assert HARTREE_TO_EV * EV_TO_HARTREE == pytest.approx(1.0)
    assert BOHR_TO_ANGSTROM * ANGSTROM_TO_BOHR == pytest.approx(1.0)
    assert RYDBERG_TO_HARTREE * HARTREE_TO_RYDBERG == pytest.approx(1.0)
    assert HARTREE_TO_EV == pytest.approx(27.211, rel=1e-4)


def test_dipole_moment_of_symmetric_density_is_zero():
    grid = FFTGrid([8.0] * 3, (12, 12, 12))
    rho = np.ones(grid.shape)
    dip = dipole_moment(rho, grid)
    assert np.allclose(dip, 0.0, atol=1e-8)


def test_dipole_moment_of_offset_density():
    grid = FFTGrid([8.0] * 3, (16, 16, 16))
    coords = grid.real_coordinates
    grid_center = coords.reshape(-1, 3).mean(axis=0)
    # A Gaussian displaced along +x from the grid centre.
    center = grid_center + np.array([1.25, 0.0, 0.0])
    d = coords - center[None, None, None, :]
    rho = np.exp(-np.einsum("...i,...i->...", d, d))
    dip = dipole_moment(rho, grid)
    assert dip[0] > 0.1
    assert abs(dip[1]) < 1e-6 and abs(dip[2]) < 1e-6
