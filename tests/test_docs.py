"""Documentation health: links resolve and architecture doctests pass.

The same checks run as a dedicated CI docs job; keeping them in tier-1
as well means a broken link or a stale code snippet in
``docs/ARCHITECTURE.md`` fails locally before it ever reaches CI.
"""

import doctest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs_links import broken_links, default_paths, iter_links  # noqa: E402


def test_readme_and_docs_links_resolve():
    paths = default_paths(REPO_ROOT)
    assert (REPO_ROOT / "README.md") in paths
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in paths
    assert broken_links(paths) == []


def test_link_scanner_sees_links_and_flags_missing_targets(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ok](real.md) [web](https://example.com) [gone](missing.md#sec)"
    )
    (tmp_path / "real.md").write_text("hi")
    assert iter_links(doc.read_text()) == [
        "real.md", "https://example.com", "missing.md#sec",
    ]
    assert broken_links([doc]) == [f"{doc}: missing.md#sec"]


def test_architecture_doctests_pass():
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "ARCHITECTURE.md"), module_relative=False
    )
    assert results.attempted > 0
    assert results.failed == 0
