"""Tests for the PR 6 hot-path kernel pack.

Four cooperating optimisations, all opt-in-by-default and all required to
be *bit-identical* to the un-optimised paths:

* the :mod:`repro.pw.fftcache` shape-keyed FFT workspace pool (and the
  empirical numpy property it rests on: ``np.fft.*`` write bit-identical
  results into ``out=`` buffers);
* the blocked fixed-shape nonlocal kernel
  (:meth:`repro.pw.hamiltonian.Hamiltonian.add_nonlocal`) and the BLAS
  GEMM content-independence property that makes it row-slice stable;
* the install-once potential channel (fingerprint-keyed worker state plus
  the executor's resubmit-with-payload self-healing);
* stacked small-fragment pipeline submissions (``pack_stacks`` binning,
  physical vs logical submission accounting).

Plus the satellite regressions: grid-level memoisation cache hits, the
Gen_dens accumulator-reuse byte-identity and allocation bounds, and the
end-to-end backend x knob equivalence matrix through LS3DFSCF.
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.fragment_task import (
    FragmentTask,
    PotentialNotInstalledError,
    StackedPipelineTask,
    build_task_problem,
    clear_installed_potentials,
    clear_problem_cache,
    fetch_potential,
    get_task_problem,
    install_potential,
    installed_potential_count,
    potential_fingerprint,
    run_fragment_pipeline_task,
    run_stacked_pipeline_task,
    solve_fragment_task,
    solve_fragment_task_grouped,
)
from repro.core.patching import (
    patch_contributions,
    reduce_stats,
    reset_reduce_stats,
    tree_reduce_fields,
)
from repro.core.scf import LS3DFSCF
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.parallel.scheduler import pack_stacks
from repro.pw import fftcache
from repro.pw.grid import FFTGrid, clear_grid_memo, grid_memo_stats
from repro.pw.hamiltonian import default_nonlocal_block


def _bits(a: np.ndarray) -> bytes:
    """Exact byte image — the strictest form of 'bit-identical'."""
    return np.ascontiguousarray(a).tobytes()


def _make_task(label="frag") -> FragmentTask:
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (10, 10, 10))
    return FragmentTask(
        label=label,
        cell=tuple(structure.cell),
        grid_shape=grid.shape,
        symbols=structure.symbols,
        positions=structure.positions,
        screening_potential=np.full(grid.shape, 0.02),
        ecut=2.0,
        n_empty=1,
        tolerance=1e-4,
        max_iterations=40,
    )


def _tiny_scf(executor=None, **kwargs) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        pipeline=True,
        **kwargs,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,  # never met in 3 iterations: fixed work
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


# ---------------------------------------------------------------------------
# fftcache: the workspace pool itself
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh_pool():
    """Pristine, enabled pool around a test; defaults restored afterwards."""
    fftcache.configure(enabled=True, max_per_key=4, max_keys=32)
    fftcache.clear()
    fftcache.reset_stats()
    yield
    fftcache.configure(enabled=True, max_per_key=4, max_keys=32)
    fftcache.clear()
    fftcache.reset_stats()


def test_fftcache_env_parsing(monkeypatch):
    for value in ("0", "false", "OFF", " no "):
        monkeypatch.setenv("REPRO_FFT_CACHE", value)
        assert not fftcache._env_enabled()
    for value in ("1", "true", "anything"):
        monkeypatch.setenv("REPRO_FFT_CACHE", value)
        assert fftcache._env_enabled()
    monkeypatch.delenv("REPRO_FFT_CACHE", raising=False)
    assert fftcache._env_enabled()  # default on


def test_fftcache_acquire_release_roundtrip(fresh_pool):
    a = fftcache.acquire((4, 5))
    assert a.shape == (4, 5) and a.dtype == np.complex128
    assert fftcache.stats()["misses"] == 1
    fftcache.release(a)
    assert fftcache.stats()["pooled_buffers"] == 1
    assert fftcache.stats()["pooled_bytes"] == a.nbytes
    b = fftcache.acquire((4, 5))
    assert b is a  # the exact buffer came back
    stats = fftcache.stats()
    assert stats["hits"] == 1
    assert stats["reused_bytes"] == a.nbytes
    # dtype is part of the key: no cross-dtype reuse
    c = fftcache.acquire((4, 5), dtype=np.float64)
    assert c.dtype == np.float64
    assert fftcache.stats()["misses"] == 2


def test_fftcache_release_rejects_views_and_noncontiguous(fresh_pool):
    base = np.empty((6, 6), dtype=complex)
    fftcache.release(base[::2])  # view: pooling it would alias `base`
    fftcache.release(np.asfortranarray(np.empty((3, 4), dtype=complex)))
    fftcache.release("not an array")
    assert fftcache.stats()["pooled_buffers"] == 0


def test_fftcache_bucket_and_key_caps(fresh_pool):
    fftcache.configure(max_per_key=2, max_keys=3)
    for _ in range(4):
        fftcache.release(np.empty((7,), dtype=complex))
    assert fftcache.stats()["pooled_buffers"] == 2  # bucket capped
    for n in range(1, 6):  # five distinct keys through a 3-key pool
        fftcache.release(np.empty((n, 2), dtype=complex))
    assert fftcache.stats()["evictions"] >= 2


def test_fftcache_scratch_returns_buffer(fresh_pool):
    with fftcache.scratch((8,)) as buf:
        assert buf.shape == (8,)
    assert fftcache.acquire((8,)) is buf


def test_fftcache_disabled_is_plain_numpy(fresh_pool):
    fftcache.release(np.empty((4,), dtype=complex))  # pre-populate
    fftcache.configure(enabled=False)
    assert not fftcache.enabled()
    assert fftcache.stats()["pooled_buffers"] == 0  # disabling drops buffers
    a = fftcache.acquire((4,))
    assert a.shape == (4,) and a.dtype == np.complex128
    fftcache.release(a)
    assert fftcache.stats()["pooled_buffers"] == 0  # release is a no-op
    # wrappers ignore out= and reproduce the allocating numpy path exactly
    rng = np.random.default_rng(0)
    x = rng.standard_normal((5, 6)) + 1j * rng.standard_normal((5, 6))
    out = np.empty_like(x)
    got = fftcache.fftn(x, out=out)
    assert got is not out
    assert _bits(got) == _bits(np.fft.fftn(x))


def test_fft_wrappers_bit_identical_with_out(fresh_pool):
    """The numpy property the whole pool rests on: out= changes where the
    result lives, never one bit of what it is."""
    rng = np.random.default_rng(1)
    shape = (6, 5, 4)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    r = rng.standard_normal(shape)  # float input -> complex out promotion
    batched = rng.standard_normal((3,) + shape) + 1j * rng.standard_normal(
        (3,) + shape
    )
    cases = [
        (fftcache.fftn, np.fft.fftn, x, {}),
        (fftcache.ifftn, np.fft.ifftn, x, {}),
        (fftcache.fftn, np.fft.fftn, r, {}),
        (fftcache.fftn, np.fft.fftn, batched, {"axes": (-3, -2, -1)}),
        (fftcache.ifftn, np.fft.ifftn, batched, {"axes": (-3, -2, -1)}),
        (fftcache.fft, np.fft.fft, x, {"axis": 0}),
        (fftcache.ifft, np.fft.ifft, x, {"axis": -1}),
    ]
    for wrapped, reference, arg, kw in cases:
        ref = reference(arg, **kw)
        with fftcache.scratch(ref.shape) as work:
            work.fill(1234.5)  # dirty buffer must not leak into the result
            got = wrapped(arg, out=work, **kw)
            assert got is work
            assert _bits(got) == _bits(ref)


# ---------------------------------------------------------------------------
# Blocked nonlocal projection
# ---------------------------------------------------------------------------


def test_gemm_column_content_independence():
    """The BLAS property the blocked kernel rests on: at fixed operand
    shapes and fixed column position, a GEMM output column depends only on
    its own input column's content — through both projection GEMMs."""
    rng = np.random.default_rng(7)
    nproj, npw, blk = 6, 40, 8
    proj = rng.standard_normal((nproj, npw)) + 1j * rng.standard_normal(
        (nproj, npw)
    )
    strengths = rng.standard_normal((nproj, 1))

    def kb_pipeline(cols):  # the two GEMMs of add_nonlocal
        beta = proj.conj() @ cols
        return proj.T @ (strengths * beta)

    cols = rng.standard_normal((npw, blk)) + 1j * rng.standard_normal(
        (npw, blk)
    )
    ref = kb_pipeline(cols)
    for j in range(blk):
        noise = rng.standard_normal((npw, blk)) + 1j * rng.standard_normal(
            (npw, blk)
        )
        noise[:, j] = cols[:, j]
        assert _bits(kb_pipeline(noise)[:, j]) == _bits(ref[:, j])
    zeroed = cols.copy()
    zeroed[:, 3] = 0.0
    assert not kb_pipeline(zeroed)[:, 3].any()  # zero columns stay exact zeros


def _fresh_problem(label):
    clear_problem_cache()
    task = _make_task(label)
    problem = get_task_problem(task)
    problem.hamiltonian.set_effective_potential(
        np.asarray(task.screening_potential)
    )
    return problem


def test_blocked_nonlocal_row_slice_stable():
    problem = _fresh_problem("nl-sliced")
    h = problem.hamiltonian
    assert h.nonlocal_block == default_nonlocal_block() > 0
    nbands = problem.nbands
    rng = np.random.default_rng(2)
    block = rng.standard_normal((nbands, h.basis.npw)) + 1j * rng.standard_normal(
        (nbands, h.basis.npw)
    )
    full = h.apply(block)
    for nslices in (1, 2, nbands):
        bounds = np.linspace(0, nbands, nslices + 1).astype(int)
        parts = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            part = h.apply_local(block[lo:hi])
            h.add_nonlocal(part, block[lo:hi], band_offset=int(lo))
            parts.append(part)
        assert _bits(np.concatenate(parts, axis=0)) == _bits(full)


def test_nonlocal_block_zero_restores_single_gemm(monkeypatch):
    problem = _fresh_problem("nl-blk0")
    h = problem.hamiltonian
    rng = np.random.default_rng(3)
    block = rng.standard_normal((problem.nbands, h.basis.npw)) * (1 + 0j)
    blocked = h.apply_local(block)
    h.add_nonlocal(blocked, block)
    h.nonlocal_block = 0
    fallback = h.apply_local(block)
    h.add_nonlocal(fallback, block)
    # Different summation order: same physics, not (necessarily) same bits.
    np.testing.assert_allclose(fallback, blocked, rtol=1e-10, atol=1e-12)
    # The env knob is read per construction.
    monkeypatch.setenv("REPRO_NONLOCAL_BLOCK", "0")
    assert default_nonlocal_block() == 0
    monkeypatch.setenv("REPRO_NONLOCAL_BLOCK", "5")
    assert default_nonlocal_block() == 5
    monkeypatch.setenv("REPRO_NONLOCAL_BLOCK", "garbage")
    assert default_nonlocal_block() == 8
    monkeypatch.delenv("REPRO_NONLOCAL_BLOCK")
    assert default_nonlocal_block() == 8


def test_grouped_solve_bit_identical_across_slice_counts():
    """Band-sliced solves (which run the KB term inside slices) match the
    single-process solve bit for bit at 1, 2 and nbands slices."""
    task = _make_task("grouped-slices")
    clear_problem_cache()
    ref = solve_fragment_task(task)
    problem = get_task_problem(task)
    for nslices in (1, 2, problem.nbands):
        with SerialFragmentExecutor() as ex:
            got, _ = solve_fragment_task_grouped(task, ex, band_slices=nslices)
        np.testing.assert_array_equal(got.eigenvalues, ref.eigenvalues)
        np.testing.assert_array_equal(got.density, ref.density)
        np.testing.assert_array_equal(got.coefficients, ref.coefficients)
        assert got.quantum_energy == ref.quantum_energy


# ---------------------------------------------------------------------------
# Grid-level memoisation
# ---------------------------------------------------------------------------


def test_grid_memo_serves_rebuilt_problems_from_cache():
    clear_grid_memo()
    clear_problem_cache()
    task = _make_task("memo")
    p1 = build_task_problem(task)
    a = p1.hamiltonian.preconditioner()
    first = grid_memo_stats()
    assert first["misses"] > 0  # form factors + preconditioner populated it
    # A rebuilt problem (fresh grid/basis objects, same geometry) re-derives
    # nothing: every g2-derived array comes back from the memo.
    clear_problem_cache()
    p2 = build_task_problem(task)
    b = p2.hamiltonian.preconditioner()
    second = grid_memo_stats()
    assert second["misses"] == first["misses"]
    assert second["hits"] > first["hits"]
    assert _bits(a) == _bits(b)
    # Memoised values are frozen: nobody can corrupt a shared array.
    assert not a.flags.writeable


# ---------------------------------------------------------------------------
# Install-once potential channel
# ---------------------------------------------------------------------------


def test_potential_fingerprint_and_install_lru():
    rng = np.random.default_rng(4)
    v = rng.standard_normal((5, 4, 3))
    key = potential_fingerprint(v)
    assert key == potential_fingerprint(v.copy())
    assert key != potential_fingerprint(v + 1e-12)  # content-sensitive
    assert key != potential_fingerprint(v.reshape(3, 4, 5))  # shape-sensitive
    assert key != potential_fingerprint(v.astype(np.float32))  # dtype-sensitive

    clear_installed_potentials()
    try:
        assert install_potential(key, v) == key
        assert installed_potential_count() == 1
        np.testing.assert_array_equal(fetch_potential(key), v)
        with pytest.raises(PotentialNotInstalledError) as err:
            fetch_potential("no-such-key")
        assert err.value.key == "no-such-key"
        for i in range(40):  # the worker-side store is a bounded LRU
            install_potential(f"key-{i}", np.zeros(1))
        assert installed_potential_count() == 32
    finally:
        clear_installed_potentials()


def test_missing_worker_install_heals_by_retry(tmp_path):
    """If a worker never saw an install (restart, late join), the kernel
    raises and the executor resubmits once with the payload attached —
    same bits, one extra physical submission per healed task."""
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    key = potential_fingerprint(v_in)
    keyed = [
        scf.fragment_solver.make_pipeline_task(
            f, v_in, eigensolver_tolerance=1e-4, eigensolver_iterations=40,
            global_potential_key=key,
        )
        for f in scf.fragments
    ]
    inline = [
        scf.fragment_solver.make_pipeline_task(
            f, v_in, eigensolver_tolerance=1e-4, eigensolver_iterations=40,
        )
        for f in scf.fragments
    ]
    ref = [run_fragment_pipeline_task(t) for t in inline]
    try:
        with ThreadPoolFragmentExecutor(2) as ex:
            ex.install_state(key, v_in)
            clear_installed_potentials()  # simulate worker amnesia
            report = ex.run_pipeline(keyed)
        assert ex.tasks_submitted == len(keyed)
        # every task failed once and was resubmitted with the payload
        assert ex.pool_submissions == 2 * len(keyed)
        for got, want in zip(report.results, ref):
            np.testing.assert_array_equal(got.contribution, want.contribution)
            np.testing.assert_array_equal(
                got.result.density, want.result.density
            )
    finally:
        clear_installed_potentials()


# ---------------------------------------------------------------------------
# Stacked small-fragment tasks
# ---------------------------------------------------------------------------


def test_pack_stacks_bins_smalls_and_keeps_bigs_alone():
    groups = pack_stacks([8.0, 8.0, 1.0, 1.0, 1.0, 1.0], 2)
    assert sorted(i for g in groups for i in g) == [0, 1, 2, 3, 4, 5]
    assert [0] in groups and [1] in groups  # bigs stay singletons
    small_bins = [g for g in groups if g[0] >= 2]
    assert len(small_bins) == 2  # four smalls share two submissions
    assert all(len(g) == 2 for g in small_bins)
    # Edge cases: equal costs never pack; a lone small stays single.
    assert pack_stacks([3.0, 3.0, 3.0], 4) == [[0], [1], [2]]
    assert pack_stacks([9.0, 9.0, 1.0], 4) == [[0], [1], [2]]
    assert pack_stacks([], 2) == []
    with pytest.raises(ValueError):
        pack_stacks([1.0], 0)


def _varied_cost_tasks(scf, v_in, costs):
    tasks = []
    for i, cost in enumerate(costs):
        fragment = scf.fragments[i % len(scf.fragments)]
        ptask = scf.fragment_solver.make_pipeline_task(
            fragment, v_in, eigensolver_tolerance=1e-4,
            eigensolver_iterations=40,
        )
        inner = replace(
            ptask.task, label=f"{ptask.task.label}#{i}", cost_hint=cost
        )
        tasks.append(replace(ptask, task=inner))
    return tasks


def test_stacked_pipeline_task_unit():
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    tasks = _varied_cost_tasks(scf, v_in, [2.0, 1.0])
    stacked = StackedPipelineTask(tasks)
    assert stacked.cost() == 3.0
    assert all(t.label in stacked.label for t in tasks)
    clone = pickle.loads(pickle.dumps(stacked))  # rides the process pool
    assert clone.label == stacked.label
    ref = [run_fragment_pipeline_task(t) for t in tasks]
    got = run_stacked_pipeline_task(stacked)
    for g, w in zip(got.results, ref):
        assert g.label == w.label
        np.testing.assert_array_equal(g.contribution, w.contribution)
    # with_potential_payload maps over the members
    key = potential_fingerprint(v_in)
    keyed = StackedPipelineTask(
        [replace(t, global_potential=None, global_potential_key=key)
         for t in tasks]
    )
    healed = keyed.with_potential_payload(key, v_in)
    assert all(t.global_potential is not None for t in healed.tasks)


def test_stacked_submissions_accounting_and_bit_identity():
    scf = _tiny_scf()
    v_in = scf.genpot.initial_potential()
    costs = [100.0, 100.0, 1.0, 1.0, 1.0, 1.0]
    tasks = _varied_cost_tasks(scf, v_in, costs)
    groups = pack_stacks(costs, 2)
    assert any(len(g) > 1 for g in groups)
    ref = [run_fragment_pipeline_task(t) for t in tasks]

    with ThreadPoolFragmentExecutor(2) as ex:
        report = ex.run_pipeline(tasks)
    assert ex.tasks_submitted == len(tasks)  # logical accounting unchanged
    assert ex.pool_submissions == len(groups) < len(tasks)
    assert [r.label for r in report.results] == [t.label for t in tasks]
    for got, want in zip(report.results, ref):
        np.testing.assert_array_equal(got.contribution, want.contribution)
        np.testing.assert_array_equal(got.result.density, want.result.density)
        assert got.result.quantum_energy == want.result.quantum_energy

    with ThreadPoolFragmentExecutor(2, stack_small_tasks=False) as ex2:
        unstacked = ex2.run_pipeline(tasks)
    assert ex2.pool_submissions == len(tasks)  # knob off: one sub per task
    for got, want in zip(unstacked.results, report.results):
        np.testing.assert_array_equal(got.contribution, want.contribution)


# ---------------------------------------------------------------------------
# Gen_dens accumulator reuse
# ---------------------------------------------------------------------------


def test_tree_reduce_in_place_matches_allocating_bitwise():
    rng = np.random.default_rng(5)
    for n in (1, 2, 5, 8, 16, 33):
        arrays = [rng.standard_normal((4, 5, 6)) for _ in range(n)]
        ref = tree_reduce_fields([a.copy() for a in arrays])
        released = []
        got = tree_reduce_fields(
            [a.copy() for a in arrays], in_place=True, release=released.append
        )
        assert _bits(got) == _bits(ref)
        assert len(released) == n - 1  # every consumed input handed back
    with pytest.raises(ValueError):
        tree_reduce_fields([])


def test_patch_contributions_recycles_accumulators():
    rng = np.random.default_rng(6)
    shape = (6, 6, 6)
    contribs = [
        (
            (np.array([i % 6]), np.array([(2 * i) % 6]), np.array([0])),
            rng.integers(-8, 8, size=(1, 1, 1)).astype(float),
        )
        for i in range(33)
    ]
    reset_reduce_stats()
    chunked = patch_contributions(shape, iter(contribs), chunk_size=3)
    stats = reduce_stats()  # 11 chunks
    assert stats["allocations"] + stats["reused"] == 11
    assert stats["allocations"] == 4  # O(log chunks), not one per chunk
    sequential = patch_contributions(shape, contribs)
    assert _bits(chunked) == _bits(sequential)


# ---------------------------------------------------------------------------
# End-to-end: backend x knob equivalence matrix
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def knob_matrix():
    runs = {}
    runs["serial-off"] = _tiny_scf(
        executor=SerialFragmentExecutor(),
        install_potentials=False,
        sliced_nonlocal=False,
    ).run(**_RUN_KW)
    runs["serial-on"] = _tiny_scf(executor=SerialFragmentExecutor()).run(
        **_RUN_KW
    )
    fftcache.configure(enabled=False)
    try:
        runs["serial-nofftcache"] = _tiny_scf(
            executor=SerialFragmentExecutor()
        ).run(**_RUN_KW)
    finally:
        fftcache.configure(enabled=True)
    with ThreadPoolFragmentExecutor(2) as ex:
        runs["threads-on"] = _tiny_scf(executor=ex).run(**_RUN_KW)
    with ThreadPoolFragmentExecutor(2, stack_small_tasks=False) as ex:
        runs["threads-off"] = _tiny_scf(
            executor=ex, install_potentials=False, sliced_nonlocal=False
        ).run(**_RUN_KW)
    with ProcessPoolFragmentExecutor(2) as ex:
        runs["processes-on"] = _tiny_scf(executor=ex).run(**_RUN_KW)
        assert ex.install_broadcasts > 0  # the install fan-out really ran
    from repro.parallel.remote import (
        RemoteExecutor,
        RemoteExecutorConfig,
        start_worker_thread,
    )

    servers = [start_worker_thread() for _ in range(2)]
    try:
        config = RemoteExecutorConfig(
            connect_timeout=2.0, request_timeout=60.0,
            heartbeat_interval=1e9, max_retries=1, backoff=0.01)
        with RemoteExecutor([s.address for s in servers], config=config) as ex:
            runs["remote-on"] = _tiny_scf(executor=ex).run(**_RUN_KW)
            # The fingerprint install channel crossed the wire, once per
            # worker per iteration, instead of riding along in each task.
            assert ex.install_broadcasts > 0
            assert ex.workers_lost == 0 and ex.degraded_tasks == 0
    finally:
        for server in servers:
            server.stop()
    return runs


def test_knob_matrix_bit_identical(knob_matrix):
    """Every backend, with every optimisation on or off (including the FFT
    pool disabled entirely), lands on the same bits."""
    ref = knob_matrix["serial-off"]
    for name, result in knob_matrix.items():
        np.testing.assert_array_equal(
            result.density, ref.density, err_msg=name
        )
        np.testing.assert_array_equal(
            result.potential, ref.potential, err_msg=name
        )
        assert result.total_energy == ref.total_energy, name
