"""Unit tests for repro.atoms.structure."""

import numpy as np
import pytest

from repro.atoms.structure import (
    Atom,
    Structure,
    concatenate_structures,
    get_species,
)
from repro.constants import ANGSTROM_TO_BOHR


def test_species_lookup_known_and_unknown():
    assert get_species("Zn").valence == 2
    assert get_species("Te").valence == 6
    with pytest.raises(KeyError):
        get_species("Unobtainium")


def test_atom_position_validation():
    atom = Atom("Zn", [1.0, 2.0, 3.0])
    assert atom.species.symbol == "Zn"
    with pytest.raises(ValueError):
        Atom("Zn", [1.0, 2.0])


def test_structure_basic_properties():
    s = Structure([10.0, 10.0, 10.0], ["Zn", "Te"], [[1, 1, 1], [5, 5, 5]])
    assert s.natoms == 2
    assert s.volume == pytest.approx(1000.0)
    assert s.total_valence_electrons() == 8
    assert s.species_counts() == {"Zn": 1, "Te": 1}
    assert "Te1" in s.formula() and "Zn1" in s.formula()


def test_structure_wraps_positions_into_cell():
    s = Structure([10.0, 10.0, 10.0], ["Zn"], [[12.0, -3.0, 25.0]])
    pos = s.positions[0]
    assert np.all(pos >= 0) and np.all(pos < 10.0)
    assert pos[0] == pytest.approx(2.0)
    assert pos[1] == pytest.approx(7.0)
    assert pos[2] == pytest.approx(5.0)


def test_structure_validation_errors():
    with pytest.raises(ValueError):
        Structure([10.0, 10.0], ["Zn"], [[0, 0, 0]])
    with pytest.raises(ValueError):
        Structure([10.0, 10.0, -1.0], ["Zn"], [[0, 0, 0]])
    with pytest.raises(ValueError):
        Structure([10.0, 10.0, 10.0], ["Zn", "Te"], [[0, 0, 0]])
    with pytest.raises(KeyError):
        Structure([10.0, 10.0, 10.0], ["Xx"], [[0, 0, 0]])


def test_minimum_image_distance():
    s = Structure([10.0, 10.0, 10.0], ["Zn", "Te"], [[0.5, 0, 0], [9.5, 0, 0]])
    assert s.minimum_image_distance(0, 1) == pytest.approx(1.0)
    vec = s.minimum_image_vector(0, 1)
    assert vec[0] == pytest.approx(-1.0)


def test_fractional_positions_and_from_angstrom():
    s = Structure.from_angstrom([1.0, 1.0, 1.0], ["H"], [[0.5, 0.5, 0.5]])
    assert s.cell[0] == pytest.approx(ANGSTROM_TO_BOHR)
    frac = s.fractional_positions
    assert np.allclose(frac, 0.5)


def test_displaced_and_copy_are_independent():
    s = Structure([10.0, 10.0, 10.0], ["Zn"], [[1, 1, 1]])
    moved = s.displaced(np.array([[1.0, 0.0, 0.0]]))
    assert moved.positions[0][0] == pytest.approx(2.0)
    assert s.positions[0][0] == pytest.approx(1.0)
    c = s.copy()
    c.set_positions(np.array([[3.0, 3.0, 3.0]]))
    assert s.positions[0][0] == pytest.approx(1.0)


def test_iteration_and_indexing():
    s = Structure([10.0, 10.0, 10.0], ["Zn", "Te"], [[1, 1, 1], [2, 2, 2]])
    atoms = list(s)
    assert len(atoms) == 2
    assert atoms[1].symbol == "Te"
    assert s[0].tag == 0
    assert len(s) == 2


def test_concatenate_structures():
    a = Structure([10.0] * 3, ["Zn"], [[1, 1, 1]])
    b = Structure([10.0] * 3, ["H"], [[2, 2, 2]])
    merged = concatenate_structures([a, b])
    assert merged.natoms == 2
    assert merged.symbols == ["Zn", "H"]
    c = Structure([11.0] * 3, ["H"], [[2, 2, 2]])
    with pytest.raises(ValueError):
        concatenate_structures([a, c])


def test_pairwise_min_image_antisymmetry():
    s = Structure([8.0] * 3, ["Zn", "Te", "O"], [[1, 1, 1], [4, 4, 4], [7, 7, 7]])
    d = s.pairwise_min_image()
    assert np.allclose(d, -np.transpose(d, (1, 0, 2)))
    assert np.allclose(np.diagonal(d, axis1=0, axis2=1), 0.0)
