"""Physical-invariant tests for the Gen_VF / Gen_dens data path (ISSUE-2).

LS3DF's correctness rests on three exact properties of the restriction and
patching operators, independent of any eigensolver:

* **Charge conservation** — the (2x-x) alpha weights make every global
  grid point counted exactly once, so the patched field carries exactly
  the summed weighted charge of the fragment interiors, and the chunked
  tree-reduce must preserve that to the last ulp-scale rounding.
* **The fragment-cancellation identity** — restricting any global field
  to all fragments and patching the restrictions back reproduces the
  field exactly (``patching_identity_residual == 0``); this is the
  discrete statement of the paper's artificial-boundary cancellation.
* **Restrict -> patch round-trip consistency per fragment shape** — the
  gather and scatter index maps of each of the eight fragment classes
  (1x1x1 ... 2x2x2 cells) address exactly the box and region they claim.

These are pure array properties, so they run on full 2x2x2 divisions
(all eight fragment shapes present) at negligible cost.
"""

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary, simple_cubic
from repro.core.division import SpatialDivision
from repro.core.fragments import enumerate_fragments
from repro.core.patching import (
    patch_contributions,
    patch_fragment_fields,
    patching_identity_residual,
    restrict_to_fragment,
    tree_reduce_fields,
)
from repro.pw.grid import FFTGrid


def _division(dims=(2, 2, 2), points_per_cell=6, buffer_cells=0.5):
    structure = simple_cubic(dims, "Si", 5.5)
    shape = tuple(points_per_cell * m for m in dims)
    grid = FFTGrid(structure.cell, shape)
    return SpatialDivision(structure, dims, grid, buffer_cells)


def _weighted_contributions(division, fragments, fields):
    out = []
    for fragment, field in zip(fragments, fields):
        box = division.fragment_box(fragment)
        indices = division.global_indices(fragment, interior_only=True)
        out.append((indices, fragment.weight * np.real(field[box.interior_slice])))
    return out


# --- tree reduce ------------------------------------------------------------------

def test_tree_reduce_fields_matches_plain_sum():
    rng = np.random.default_rng(3)
    partials = [rng.normal(size=(5, 4, 3)) for _ in range(7)]
    reduced = tree_reduce_fields(partials)
    np.testing.assert_allclose(reduced, np.sum(partials, axis=0), rtol=1e-13)


def test_tree_reduce_fields_edge_cases():
    one = np.ones((2, 2, 2))
    np.testing.assert_array_equal(tree_reduce_fields([one]), one)
    with pytest.raises(ValueError):
        tree_reduce_fields([])


def test_tree_reduce_is_deterministic_in_input_order_only():
    rng = np.random.default_rng(7)
    partials = [rng.normal(size=(4, 4, 4)) for _ in range(5)]
    a = tree_reduce_fields(partials)
    b = tree_reduce_fields([p.copy() for p in partials])
    np.testing.assert_array_equal(a, b)


# --- chunked tree-reduce patching -------------------------------------------------

def test_patch_contributions_chunked_matches_sequential():
    division = _division()
    fragments = enumerate_fragments(division.grid_dims)
    rng = np.random.default_rng(11)
    fields = [
        rng.normal(size=division.fragment_box(f).npoints) for f in fragments
    ]
    contributions = _weighted_contributions(division, fragments, fields)
    sequential = patch_contributions(
        division.global_grid.shape, contributions, chunk_size=None)
    for chunk_size in (1, 3, 8, 64):
        chunked = patch_contributions(
            division.global_grid.shape, contributions, chunk_size=chunk_size)
        np.testing.assert_allclose(chunked, sequential, rtol=1e-12, atol=1e-13)


def test_patch_contributions_validation_and_empty():
    division = _division()
    shape = division.global_grid.shape
    with pytest.raises(ValueError):
        patch_contributions(shape, [], chunk_size=0)
    np.testing.assert_array_equal(
        patch_contributions(shape, [], chunk_size=4), np.zeros(shape))


def test_patch_fragment_fields_chunk_size_paths_agree():
    division = _division()
    fragments = enumerate_fragments(division.grid_dims)
    rng = np.random.default_rng(13)
    fields = [
        rng.normal(size=division.fragment_box(f).npoints) for f in fragments
    ]
    default = patch_fragment_fields(division, fragments, fields)
    chunked = patch_fragment_fields(
        division, fragments, fields, chunk_size=8)
    np.testing.assert_allclose(chunked, default, rtol=1e-12, atol=1e-13)


# --- charge conservation ----------------------------------------------------------

def test_charge_conservation_through_chunked_tree_reduce():
    """Total patched charge == summed weighted interior charge, for the
    sequential and every chunked tree-reduce summation alike."""
    division = _division()
    fragments = enumerate_fragments(division.grid_dims)
    rng = np.random.default_rng(17)
    # Strictly positive "densities", as in a real Gen_dens batch.
    fields = [
        rng.uniform(0.5, 2.0, size=division.fragment_box(f).npoints)
        for f in fragments
    ]
    contributions = _weighted_contributions(division, fragments, fields)
    expected_charge = sum(float(c.sum()) for _, c in contributions)
    for chunk_size in (None, 1, 4, 8):
        patched = patch_contributions(
            division.global_grid.shape, contributions, chunk_size=chunk_size)
        assert float(patched.sum()) == pytest.approx(expected_charge, rel=1e-12)


def test_alpha_weights_count_every_point_once():
    """Patching per-fragment constant-1 fields yields exactly 1 everywhere:
    the (2x-x) weight pattern counts every global point exactly once."""
    for dims in [(2, 2, 2), (2, 1, 1), (3, 2, 1)]:
        division = _division(dims)
        fragments = enumerate_fragments(dims)
        fields = [
            np.ones(division.fragment_box(f).npoints) for f in fragments
        ]
        patched = patch_fragment_fields(division, fragments, fields, chunk_size=8)
        np.testing.assert_allclose(patched, np.ones(division.global_grid.shape),
                                   rtol=0, atol=1e-12)


# --- fragment-cancellation identity ----------------------------------------------

@pytest.mark.parametrize("dims", [(2, 2, 2), (2, 1, 1), (1, 1, 2), (3, 2, 2)])
def test_patching_identity_residual_is_zero_on_seed_systems(dims):
    """The paper's (2x-x) cancellation: restrict-then-patch reproduces any
    global field exactly.  Exercised on divisions of both toy crystals."""
    for structure in (simple_cubic(dims, "Si", 5.5),
                      cscl_binary(dims, "Zn", "O", 6.0)):
        shape = tuple(6 * m for m in dims)
        grid = FFTGrid(structure.cell, shape)
        division = SpatialDivision(structure, dims, grid, 0.5)
        rng = np.random.default_rng(19)
        field = rng.normal(size=shape)
        assert patching_identity_residual(division, field) == 0.0


# --- restrict -> patch round trip per fragment shape ------------------------------

def test_restrict_patch_round_trip_every_fragment_shape():
    """Per-shape consistency: each fragment's gather map returns exactly
    its box, the interior slice returns exactly its region, and scattering
    the interior back lands on the same global points it came from."""
    division = _division()  # 2x2x2: all eight shapes 1x1x1 ... 2x2x2 occur
    fragments = enumerate_fragments(division.grid_dims)
    shapes = {f.size for f in fragments}
    assert len(shapes) == 8
    rng = np.random.default_rng(23)
    field = rng.normal(size=division.global_grid.shape)
    for fragment in fragments:
        box = division.fragment_box(fragment)
        restricted = restrict_to_fragment(division, fragment, field)
        assert restricted.shape == box.npoints
        interior = restricted[box.interior_slice]
        ix, iy, iz = division.global_indices(fragment, interior_only=True)
        assert interior.shape == (len(ix), len(iy), len(iz))
        # The interior of the restriction is the restriction to the region.
        np.testing.assert_array_equal(interior, field[np.ix_(ix, iy, iz)])
        # Scatter-gather closes: put the interior back on its own points
        # and read it off again unchanged.
        scratch = np.zeros_like(field)
        np.add.at(scratch, np.ix_(ix, iy, iz), interior)
        np.testing.assert_array_equal(scratch[np.ix_(ix, iy, iz)], interior)


def test_pipeline_task_maps_match_division(tmp_path):
    """The index maps a FragmentPipelineTask ships equal the division's —
    the worker-side Gen_VF/Gen_dens address exactly the driver's points."""
    from repro.core.scf import LS3DFSCF

    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    scf = LS3DFSCF(structure, grid_dims=(2, 1, 1), ecut=2.2, pipeline=True)
    v_in = scf.genpot.initial_potential()
    for fragment in scf.fragments:
        ptask = scf.fragment_solver.make_pipeline_task(fragment, v_in)
        box = scf.division.fragment_box(fragment)
        assert ptask.interior_slice == box.interior_slice
        for got, ref in zip(
            ptask.box_indices,
            scf.division.global_indices(fragment, interior_only=False),
        ):
            np.testing.assert_array_equal(got, ref)
        restricted = restrict_to_fragment(scf.division, fragment, v_in)
        ix, iy, iz = ptask.box_indices
        np.testing.assert_array_equal(
            ptask.global_potential[np.ix_(ix, iy, iz)], restricted)
