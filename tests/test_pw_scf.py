"""Integration tests of the direct (conventional) SCF driver."""

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.pw.scf import DirectSCF


@pytest.fixture(scope="module")
def scf_result():
    structure = cscl_binary((1, 1, 1), "Zn", "Se", 6.5)
    scf = DirectSCF(structure, ecut=2.5, n_empty=4, mixer="anderson")
    result = scf.run(
        max_scf_iterations=25,
        potential_tolerance=5e-3,
        eigensolver_tolerance=1e-5,
    )
    return structure, scf, result


def test_scf_converges_small_system(scf_result):
    _, _, result = scf_result
    assert result.converged
    assert result.convergence_history[-1] < 5e-3
    # The convergence metric must have decreased substantially overall.
    assert result.convergence_history[-1] < 0.1 * result.convergence_history[0]


def test_scf_energy_is_stable_at_convergence(scf_result):
    _, _, result = scf_result
    tail = result.energy_history[-3:]
    assert max(tail) - min(tail) < 5e-2
    assert np.isfinite(result.total_energy)


def test_scf_density_charge_conservation(scf_result):
    structure, scf, result = scf_result
    total = np.sum(result.density) * scf.grid.dvol
    assert total == pytest.approx(structure.total_valence_electrons(), rel=1e-6)
    assert np.all(result.density >= -1e-10)


def test_scf_band_gap_positive(scf_result):
    structure, _, result = scf_result
    gap = result.band_gap(structure.total_valence_electrons())
    assert gap > 0.0


def test_scf_eigenvalues_sorted(scf_result):
    _, _, result = scf_result
    ev = result.eigenvalues
    assert np.all(np.diff(ev) >= -1e-10)


def test_scf_restart_from_converged_potential_is_fast(scf_result):
    structure, scf, result = scf_result
    scf2 = DirectSCF(structure, ecut=2.5, grid=scf.grid, n_empty=4, mixer="anderson")
    restarted = scf2.run(
        max_scf_iterations=10,
        potential_tolerance=5e-3,
        eigensolver_tolerance=1e-5,
        initial_potential=result.potential,
    )
    assert restarted.converged
    assert restarted.iterations <= 4
    assert restarted.total_energy == pytest.approx(result.total_energy, abs=5e-2)


def test_scf_validation_errors():
    structure = cscl_binary((1, 1, 1), "Zn", "Se", 6.5)
    with pytest.raises(ValueError):
        DirectSCF(structure, ecut=2.5, nbands=1)
    with pytest.raises(ValueError):
        DirectSCF(structure, ecut=2.5, eigensolver="magic")
