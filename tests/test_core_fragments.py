"""Tests (incl. property-based) of the LS3DF fragment combinatorics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fragments import (
    Fragment,
    coverage_map,
    enumerate_fragments,
    fragment_weight,
    fragments_by_weight,
    iter_corner_fragments,
)


def test_fragment_weight_3d_pattern():
    # The paper's alpha_S: +1 for 2x2x2 and 2x1x1-types, -1 for 2x2x1-types and 1x1x1.
    assert fragment_weight((2, 2, 2)) == 1
    assert fragment_weight((2, 2, 1)) == -1
    assert fragment_weight((2, 1, 2)) == -1
    assert fragment_weight((1, 2, 2)) == -1
    assert fragment_weight((2, 1, 1)) == 1
    assert fragment_weight((1, 1, 1)) == -1


def test_fragment_weight_2d_pattern_matches_figure1():
    # With one degenerate axis (m=1), the 2D weights of Figure 1 appear:
    # +1 for 1x1 and 2x2, -1 for 1x2 and 2x1.
    dims = (4, 4, 1)
    assert fragment_weight((1, 1, 1), dims) == 1
    assert fragment_weight((2, 2, 1), dims) == 1
    assert fragment_weight((1, 2, 1), dims) == -1
    assert fragment_weight((2, 1, 1), dims) == -1


def test_fragment_weight_validation():
    with pytest.raises(ValueError):
        fragment_weight((3, 1, 1))


def test_per_corner_signed_cell_count_is_one():
    # 8 - 3*4 + 3*2 - 1 = 1 (the identity quoted in the paper/DESIGN.md).
    total = 0
    for frag in iter_corner_fragments((0, 0, 0), (5, 5, 5)):
        total += frag.weight * frag.ncells
    assert total == 1


def test_enumerate_fragments_count():
    # 8 fragments per corner for a full 3D grid.
    assert len(enumerate_fragments((3, 3, 3))) == 8 * 27
    assert len(enumerate_fragments((2, 2, 2))) == 8 * 8
    # Degenerate axes reduce the per-corner count.
    assert len(enumerate_fragments((4, 4, 1))) == 4 * 16
    assert len(enumerate_fragments((1, 1, 1))) == 1


def test_fragment_dataclass_validation():
    with pytest.raises(ValueError):
        Fragment((0, 0, 0), (3, 1, 1), 1, (2, 2, 2))
    with pytest.raises(ValueError):
        Fragment((5, 0, 0), (1, 1, 1), -1, (2, 2, 2))
    with pytest.raises(ValueError):
        Fragment((0, 0, 0), (1, 1, 1), 1, (2, 2, 2))  # wrong weight


def test_covered_cells_and_covers_cell_wrap_around():
    frag = Fragment((2, 0, 0), (2, 1, 1), 1, (3, 1, 1))
    cells = frag.covered_cells()
    assert (2, 0, 0) in cells and (0, 0, 0) in cells  # wraps around
    assert frag.covers_cell((0, 0, 0))
    assert not frag.covers_cell((1, 0, 0))


def test_fragments_by_weight_split():
    frags = enumerate_fragments((2, 2, 2))
    split = fragments_by_weight(frags)
    assert len(split[1]) + len(split[-1]) == len(frags)
    assert len(split[1]) == len(split[-1])  # 4 of each sign per corner in 3D


def test_fragment_labels_unique():
    frags = enumerate_fragments((3, 2, 2))
    labels = [f.label for f in frags]
    assert len(set(labels)) == len(labels)


@settings(max_examples=40, deadline=None)
@given(
    m1=st.integers(min_value=1, max_value=6),
    m2=st.integers(min_value=1, max_value=6),
    m3=st.integers(min_value=1, max_value=6),
)
def test_property_coverage_identity(m1, m2, m3):
    """sum_F alpha_F 1_F(cell) == 1 for every cell and every grid shape.

    This is the central combinatorial invariant of the LS3DF patching
    scheme: each point of the supercell is represented exactly once.
    """
    cov = coverage_map((m1, m2, m3))
    assert np.all(cov == 1)


@settings(max_examples=30, deadline=None)
@given(
    m1=st.integers(min_value=2, max_value=5),
    m2=st.integers(min_value=2, max_value=5),
    m3=st.integers(min_value=2, max_value=5),
)
def test_property_signed_cell_volume_sums_to_system(m1, m2, m3):
    """sum_F alpha_F |F| equals the number of cells of the supercell."""
    frags = enumerate_fragments((m1, m2, m3))
    signed_volume = sum(f.weight * f.ncells for f in frags)
    assert signed_volume == m1 * m2 * m3
