"""Integration tests of the LS3DF driver on a tiny toy system."""

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.driver import LS3DF
from repro.core.genpot import GlobalPotentialSolver
from repro.pw.grid import FFTGrid
from repro.pw.pseudopotential import default_pseudopotentials


@pytest.fixture(scope="module")
def tiny_ls3df():
    """A 4-atom CsCl toy solved with a (2,1,1) fragment grid (4 fragments)."""
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    ls3df = LS3DF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
    )
    result = ls3df.run(
        max_iterations=8,
        potential_tolerance=1e-2,
        eigensolver_tolerance=1e-4,
        eigensolver_iterations=40,
    )
    return structure, ls3df, result


def test_ls3df_runs_and_produces_density(tiny_ls3df):
    structure, ls3df, result = tiny_ls3df
    assert result.nfragments == ls3df.nfragments == 4
    assert result.density.shape == ls3df.global_grid.shape
    total = np.sum(result.density) * ls3df.global_grid.dvol
    assert total == pytest.approx(structure.total_valence_electrons(), rel=1e-6)
    assert np.all(result.density >= -1e-10)


def test_ls3df_convergence_metric_decreases(tiny_ls3df):
    _, _, result = tiny_ls3df
    hist = result.convergence_history
    assert len(hist) == result.iterations
    assert hist[-1] < hist[0]
    assert min(hist) < 0.5 * hist[0]


def test_ls3df_energy_finite_and_stabilises(tiny_ls3df):
    _, _, result = tiny_ls3df
    assert np.isfinite(result.total_energy)
    tail = result.energy_history[-2:]
    assert abs(tail[-1] - tail[0]) < 1.0


def test_ls3df_timings_follow_paper_structure(tiny_ls3df):
    _, _, result = tiny_ls3df
    t = result.timings[-1]
    # The fragment solves dominate, just as PEtot_F dominates in the paper.
    assert t.petot_f > t.gen_vf
    assert t.petot_f > t.gen_dens
    assert t.petot_f > t.genpot
    assert set(t.as_dict()) == {"Gen_VF", "PEtot_F", "Gen_dens", "GENPOT", "total"}


def test_ls3df_fragment_results_weights(tiny_ls3df):
    _, ls3df, result = tiny_ls3df
    weights = sorted(r.fragment.weight for r in result.fragment_results)
    assert weights.count(1) == 2 and weights.count(-1) == 2
    summary = ls3df.fragment_summary()
    assert len(summary) == 4
    assert all(row["plane_waves"] > row["bands"] for row in summary)


def test_ls3df_band_edge_states(tiny_ls3df):
    structure, ls3df, result = tiny_ls3df
    states = ls3df.band_edge_states(result, n_states=2, max_iterations=80, tolerance=1e-6)
    assert states.energies.shape == (2,)
    dens = states.densities_on_grid()
    assert dens.shape[0] == 2
    norms = np.sum(dens, axis=(1, 2, 3)) * ls3df.global_grid.dvol
    assert np.allclose(norms, 1.0, atol=1e-6)


def test_ls3df_warm_restart_converges_quickly(tiny_ls3df):
    structure, ls3df, result = tiny_ls3df
    restart = ls3df.run(
        max_iterations=4,
        potential_tolerance=result.convergence_history[-1] * 1.5,
        eigensolver_tolerance=1e-4,
        initial_potential=result.potential,
    )
    assert restart.iterations <= 2


def test_repeated_runs_of_one_solver_match_fresh_solver_runs(tiny_ls3df):
    """run() clears mixer history and warm-start cache unless resuming.

    A solver reused for a second run must behave exactly like a freshly
    built one — previously the Anderson/Kerker history and the warm-start
    wavefunctions of the first run leaked into the second.  The module
    fixture's result *is* the fresh-solver reference.
    """
    structure, ls3df, result = tiny_ls3df
    rerun = ls3df.run(
        max_iterations=8,
        potential_tolerance=1e-2,
        eigensolver_tolerance=1e-4,
        eigensolver_iterations=40,
    )
    assert rerun.convergence_history == result.convergence_history
    assert rerun.energy_history == result.energy_history
    assert np.array_equal(rerun.density, result.density)
    assert np.array_equal(rerun.potential, result.potential)


def test_genpot_solver_initial_potential_and_evaluate():
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    grid = FFTGrid(structure.cell, (12, 6, 6))
    genpot = GlobalPotentialSolver(structure, grid, default_pseudopotentials())
    v0 = genpot.initial_potential()
    assert v0.shape == grid.shape
    rho = np.clip(genpot.ionic_density, 0, None)
    out = genpot.evaluate(rho, v0)
    assert out.potential_difference >= 0
    assert np.isfinite(out.electrostatic_energy)
    assert np.isfinite(out.xc_energy)
    with pytest.raises(ValueError):
        genpot.evaluate(np.zeros((2, 2, 2)), v0)
