"""Distributed slab layout + sharded GENPOT: bit-identity and accounting.

The sharded global step's contract is exact: for any shard count and any
execution backend, the slab-transpose distributed FFT, the per-slab
Poisson/XC kernels and the shard-wise mixers must reproduce the serial
single-array path **bit for bit** (the acceptance bar of the paper's dual
fragment/slab layout reproduction — no tolerance, ``==``).  No measured-
speedup assertions anywhere: CI may have a single loaded core; only
accounting identities are checked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.genpot import GlobalPotentialSolver
from repro.core.scf import LS3DFSCF
from repro.parallel.amdahl import (
    measured_serial_fraction,
    serial_fraction_history,
    sharded_genpot_estimate,
)
from repro.parallel.comm import CommScheme, CommunicationModel
from repro.parallel.distributed import (
    DistributedField,
    GlobalStepTask,
    distributed_fftn,
    distributed_ifftn,
    run_global_step_task,
    sharded_hartree_potential,
    sharded_mix,
    sharded_xc,
    slab_bounds,
)
from repro.parallel.executor import (
    ProcessPoolFragmentExecutor,
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.parallel.machine import FRANKLIN
from repro.pw.grid import FFTGrid
from repro.pw.hartree import hartree_potential
from repro.pw.mixing import AndersonMixer, KerkerMixer, LinearMixer, Mixer, make_mixer
from repro.pw.pseudopotential import default_pseudopotentials
from repro.pw.xc import lda_xc

# Deliberately anisotropic, non-power-of-two, with nx < max shard count so
# the transposed (x-slab) layout exercises empty shards.
GRID_SHAPE = (4, 6, 8)
SHARD_COUNTS = [1, 2, 3, 7, GRID_SHAPE[2]]


@pytest.fixture(scope="module")
def grid() -> FFTGrid:
    return FFTGrid((7.0, 9.0, 11.0), GRID_SHAPE)


@pytest.fixture(scope="module")
def fields(grid):
    rng = np.random.default_rng(42)
    rho = np.abs(rng.standard_normal(grid.shape)) * 0.1
    v_in = rng.standard_normal(grid.shape)
    v_out = rng.standard_normal(grid.shape)
    return rho, v_in, v_out


# ---------------------------------------------------------------------------
# Slab decomposition primitives


def test_slab_bounds_cover_exactly_once():
    for n in (1, 5, 8, 13):
        for nshards in (1, 2, 3, 7, 16):
            bounds = slab_bounds(n, nshards)
            assert len(bounds) == nshards
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
                assert hi == lo2 and lo <= hi
            sizes = [hi - lo for lo, hi in bounds]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1


def test_slab_bounds_validation():
    with pytest.raises(ValueError):
        slab_bounds(4, 0)
    with pytest.raises(ValueError):
        slab_bounds(-1, 2)


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_scatter_gather_exchange_roundtrip_bitexact(nshards):
    rng = np.random.default_rng(0)
    a = rng.standard_normal(GRID_SHAPE)
    f = DistributedField.scatter(a, nshards, axis=2)
    assert f.nshards == nshards
    assert np.array_equal(f.gather(), a)
    # z-slabs -> x-slabs -> z-slabs is pure data movement: exact.
    g = f.exchange(0)
    assert g.axis == 0
    assert np.array_equal(g.gather(), a)
    assert np.array_equal(g.exchange(2).gather(), a)
    # exchange onto the same axis is a no-op.
    assert f.exchange(2) is f


def test_charge_conservation_per_slab(grid, fields):
    """Scatter conserves the represented charge exactly, slab by slab."""
    rho, _, _ = fields
    total = float(np.sum(rho) * grid.dvol)
    for nshards in SHARD_COUNTS:
        f = DistributedField.scatter(rho, nshards, axis=2)
        slab_charges = [float(np.sum(s) * grid.dvol) for s in f.slabs]
        assert np.isclose(sum(slab_charges), total, rtol=1e-13, atol=1e-15)
        # Every slab's planes carry exactly the charge of those planes.
        for (lo, hi), q in zip(f.bounds, slab_charges):
            expected = float(np.sum(rho[:, :, lo:hi]) * grid.dvol)
            assert q == expected


# ---------------------------------------------------------------------------
# Distributed FFT


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_distributed_fftn_bit_identical(nshards):
    rng = np.random.default_rng(3)
    executor = SerialFragmentExecutor()
    real = rng.standard_normal(GRID_SHAPE)
    cplx = rng.standard_normal(GRID_SHAPE) + 1j * rng.standard_normal(GRID_SHAPE)
    for a in (real, cplx):
        f = DistributedField.scatter(a, nshards, axis=2)
        fwd = distributed_fftn(f, executor)
        assert fwd.axis == 2
        assert np.array_equal(fwd.gather(), np.fft.fftn(a))
        back = distributed_ifftn(fwd, executor)
        assert np.array_equal(back.gather(), np.fft.ifftn(np.fft.fftn(a)))


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_sharded_hartree_bit_identical(grid, fields, nshards):
    rho, _, _ = fields
    executor = SerialFragmentExecutor()
    v = sharded_hartree_potential(rho, grid.g2, nshards, executor)
    assert np.array_equal(v, hartree_potential(rho, grid))


def test_sharded_xc_bit_identical(grid, fields):
    rho, _, _ = fields
    executor = SerialFragmentExecutor()
    eps_ref, v_ref = lda_xc(rho)
    for nshards in SHARD_COUNTS:
        v_xc, eps_xc = sharded_xc(rho, nshards, executor)
        assert np.array_equal(v_xc, v_ref)
        assert np.array_equal(eps_xc, eps_ref)


def test_unknown_global_step_kind_rejected():
    task = GlobalStepTask(kind="nope", shard=0, nshards=1, data=np.zeros((2, 2, 2)))
    with pytest.raises(ValueError, match="unknown global step"):
        run_global_step_task(task)


# ---------------------------------------------------------------------------
# Mixer protocol + shard-wise mixing


def test_make_mixer_returns_mixer_protocol(grid):
    for kind, cls in (
        ("linear", LinearMixer),
        ("kerker", KerkerMixer),
        ("anderson", AndersonMixer),
    ):
        mixer = make_mixer(kind, grid=grid)
        assert isinstance(mixer, cls)
        assert isinstance(mixer, Mixer)
        # All three are registered against the protocol by explicit
        # subclassing (issubclass() is unavailable for data-member
        # protocols, so inspect the MRO directly).
        assert Mixer in cls.__mro__
    assert LinearMixer.sharding == "pointwise"
    assert KerkerMixer.sharding == "spectral"
    assert AndersonMixer.sharding == "serial"


@pytest.mark.parametrize("kind", ["linear", "kerker", "anderson"])
@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_sharded_mix_bit_identical(grid, fields, kind, nshards):
    _, v_in, v_out = fields
    executor = SerialFragmentExecutor()
    reference = make_mixer(kind, grid=grid).mix(v_in, v_out)
    sharded = sharded_mix(
        make_mixer(kind, grid=grid), v_in, v_out, nshards, executor
    )
    assert np.array_equal(sharded, reference)


def test_custom_mixer_defaults_to_serial_sharding(grid, fields):
    """A minimal protocol-only mixer works sharded via the serial fallback."""
    _, v_in, v_out = fields

    class HalfMixer:
        def reset(self):
            pass

        def mix(self, a, b):
            return 0.5 * (a + b)

    result = sharded_mix(HalfMixer(), v_in, v_out, 3, SerialFragmentExecutor())
    assert np.array_equal(result, 0.5 * (v_in + v_out))


# ---------------------------------------------------------------------------
# Sharded GENPOT evaluation


def _make_solver(grid, mixer, shards=None, executor=None, overlap=True):
    structure = cscl_binary((1, 1, 1), "Zn", "O", 6.0)
    return GlobalPotentialSolver(
        structure,
        grid,
        default_pseudopotentials(),
        mixer=mixer,
        shards=shards,
        executor=executor,
        overlap=overlap,
    )


@pytest.mark.parametrize("mixer", ["linear", "kerker", "anderson"])
@pytest.mark.parametrize("shards", [2, 3, 7, GRID_SHAPE[2]])
def test_sharded_genpot_evaluate_bit_identical(grid, fields, mixer, shards):
    rho, v_in, _ = fields
    serial = _make_solver(grid, mixer).evaluate(rho, v_in)
    sharded = _make_solver(grid, mixer, shards=shards).evaluate(rho, v_in)
    assert np.array_equal(sharded.output_potential, serial.output_potential)
    assert np.array_equal(
        sharded.next_input_potential, serial.next_input_potential
    )
    assert np.array_equal(sharded.density, serial.density)
    assert sharded.potential_difference == serial.potential_difference
    assert sharded.electrostatic_energy == serial.electrostatic_energy
    assert sharded.xc_energy == serial.xc_energy
    assert sharded.timings.sharded and sharded.timings.shards == shards
    assert not serial.timings.sharded and serial.timings.task_times == []


def test_sharded_genpot_backend_equivalence(grid, fields):
    """Thread and process backends produce the serial executor's exact bits."""
    rho, v_in, _ = fields
    reference = _make_solver(
        grid, "kerker", shards=3, executor=SerialFragmentExecutor()
    ).evaluate(rho, v_in)
    with ThreadPoolFragmentExecutor(n_workers=2) as threads:
        threaded = _make_solver(grid, "kerker", shards=3, executor=threads).evaluate(
            rho, v_in
        )
    with ProcessPoolFragmentExecutor(n_workers=2) as procs:
        pooled = _make_solver(grid, "kerker", shards=3, executor=procs).evaluate(
            rho, v_in
        )
    for got in (threaded, pooled):
        assert np.array_equal(got.output_potential, reference.output_potential)
        assert np.array_equal(
            got.next_input_potential, reference.next_input_potential
        )
        assert got.potential_difference == reference.potential_difference
        assert got.electrostatic_energy == reference.electrostatic_energy
        assert got.xc_energy == reference.xc_energy


def test_one_submission_per_slab_accounting(grid, fields):
    """Every sharded stage is exactly one executor submission per slab.

    Synchronous (overlap=False) stage counts: the Poisson solve is 4 slab
    stages (forward planes, kernelled lines, inverse planes, real lines),
    XC is 1, and the mix is 4 (spectral), 1 (pointwise) or 0 (serial
    fallback).  Streaming (the default) fuses the real-lines stage, the
    XC add and a pointwise mix into one ``genpot_finish`` task: the
    Poisson chain is 4 stages with XC's 1 alongside, plus 4 for a
    spectral mix (a pointwise mix rides the finish stage for free).
    """
    rho, v_in, _ = fields
    shards = 3
    for mixer, stages in (("kerker", 9), ("linear", 6), ("anderson", 5)):
        executor = SerialFragmentExecutor()
        solver = _make_solver(
            grid, mixer, shards=shards, executor=executor, overlap=False
        )
        out = solver.evaluate(rho, v_in)
        assert executor.tasks_submitted == stages * shards
        assert len(out.timings.task_times) == stages * shards
        assert all(t >= 0 for t in out.timings.task_times)
        # A second evaluation submits exactly the same number again.
        solver.evaluate(rho, v_in)
        assert executor.tasks_submitted == 2 * stages * shards
    for mixer, stages in (("kerker", 9), ("linear", 5), ("anderson", 5)):
        executor = SerialFragmentExecutor()
        solver = _make_solver(grid, mixer, shards=shards, executor=executor)
        out = solver.evaluate(rho, v_in)
        assert out.timings.overlap
        assert executor.tasks_submitted == stages * shards
        assert len(out.timings.task_times) == stages * shards


def test_genpot_shards_validation(grid):
    with pytest.raises(ValueError, match="shards must be positive"):
        _make_solver(grid, "kerker", shards=0)
    with pytest.raises(ValueError, match="z planes"):
        _make_solver(grid, "kerker", shards=grid.shape[2] + 1)

    class NotAnExecutor:
        n_workers = 1

    with pytest.raises(TypeError, match="run_global"):
        _make_solver(grid, "kerker", shards=2, executor=NotAnExecutor())
    # shards=1 never touches the executor, so anything goes.
    _make_solver(grid, "kerker", shards=1, executor=NotAnExecutor())


# ---------------------------------------------------------------------------
# Sharded GENPOT inside the full LS3DF loop


@pytest.fixture(scope="module")
def scf_pair():
    def run(**kwargs):
        structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
        scf = LS3DFSCF(
            structure,
            grid_dims=(2, 1, 1),
            ecut=2.2,
            buffer_cells=0.5,
            n_empty=2,
            mixer="kerker",
            **kwargs,
        )
        return scf.run(
            max_iterations=2,
            potential_tolerance=1e-12,
            eigensolver_tolerance=1e-4,
            eigensolver_iterations=40,
        )

    return run(), run(genpot_shards=3)


def test_scf_with_genpot_shards_bit_identical(scf_pair):
    default, sharded = scf_pair
    assert np.array_equal(sharded.density, default.density)
    assert np.array_equal(sharded.potential, default.potential)
    assert sharded.total_energy == default.total_energy
    assert sharded.convergence_history == default.convergence_history
    assert sharded.energy_history == default.energy_history


def test_scf_genpot_sharding_accounting(scf_pair):
    default, sharded = scf_pair
    for t in default.timings:
        assert not t.genpot_sharded
        assert t.genpot_tasks == [] and t.genpot_cpu == 0.0
        assert t.parallel_cpu == t.petot_f_cpu
        assert t.serial_time == t.gen_vf + t.gen_dens + t.genpot
    for t in sharded.timings:
        assert t.genpot_sharded
        assert len(t.genpot_tasks) > 0 and t.genpot_cpu > 0
        assert t.parallel_cpu == t.petot_f_cpu + t.genpot_cpu
        # The sharded global step leaves only the driver residue serial.
        assert t.serial_time == t.gen_vf + t.gen_dens + t.genpot_driver
        assert t.genpot_driver <= t.genpot
        # Moving the per-slab work back into the serial bucket can only
        # raise the measured alpha — the arithmetic behind the Figure-3
        # companion's with/without-sharding comparison.
        counterfactual = measured_serial_fraction(
            t.serial_time + t.genpot_cpu, t.petot_f_cpu
        )
        assert t.measured_serial_fraction < counterfactual.serial_fraction
    # serial_fraction_history consumes the new parallel_cpu accounting.
    history = serial_fraction_history(sharded.timings)
    for est, t in zip(history, sharded.timings):
        assert est.serial_fraction == t.measured_serial_fraction
        assert est.parallel_time == t.parallel_cpu


def test_iteration_timings_breakdown_populated(scf_pair):
    default, sharded = scf_pair
    for result in (default, sharded):
        for t in result.timings:
            assert t.genpot_poisson > 0
            assert t.genpot_xc > 0
            assert t.genpot_mix > 0
            assert t.genpot_poisson + t.genpot_xc + t.genpot_mix <= t.genpot + 1e-6


# ---------------------------------------------------------------------------
# Models: layout conversion cost and the sharded-alpha estimate


def test_sharded_genpot_estimate_moves_work():
    base = measured_serial_fraction(2.0, 38.0)
    sharded = sharded_genpot_estimate(base, genpot_time=1.5, conversion_time=0.1)
    assert sharded.serial_time == pytest.approx(0.6)
    assert sharded.parallel_time == pytest.approx(39.5)
    assert sharded.serial_fraction < base.serial_fraction
    with pytest.raises(ValueError):
        sharded_genpot_estimate(base, genpot_time=3.0)
    with pytest.raises(ValueError):
        sharded_genpot_estimate(base, genpot_time=-1.0)


def test_layout_conversion_time_model():
    model = CommunicationModel(FRANKLIN, CommScheme.POINT_TO_POINT)
    small = model.layout_conversion_time(1e6, 1024, nshards=16)
    big = model.layout_conversion_time(1e9, 1024, nshards=16)
    assert 0 < small < big
    # Per-shard message overhead grows with the shard count.
    more_shards = model.layout_conversion_time(1e6, 1024, nshards=512)
    assert more_shards > small
    # Defaults to one shard per node.
    assert model.layout_conversion_time(1e6, 1024) > 0
    with pytest.raises(ValueError):
        model.layout_conversion_time(-1.0, 1024)
    with pytest.raises(ValueError):
        model.layout_conversion_time(1e6, 0)
    with pytest.raises(ValueError):
        model.layout_conversion_time(1e6, 1024, nshards=0)
