"""Concurrent band-group pools (ISSUE-7 satellite).

PR 5/6 *modelled* ``IterationTimings.band_schedule`` from per-slice
wall times; this PR makes it a measurement: ``executor.partition``
splits the worker pool into per-group sub-pools, the band-grouped SCF
iteration drives one group per thread, and
:class:`~repro.parallel.scheduler.GroupExecutionRecord` records what
actually overlapped.  These tests pin down:

* the worker-splitting arithmetic (:func:`partition_worker_counts`) and
  the partition-children contract (cached, counters accumulate to the
  parent pool);
* bit-identity of the concurrent path against the serial pipeline
  reference, plus one-submission-per-slice accounting per group;
* the measured record itself (``concurrent`` flag, per-group walls,
  ``concurrency_efficiency``) and its LPT-plan delegation;
* the opt-outs: ``concurrent_groups=False`` and a serial executor both
  fall back to the sequential path, bit-identically;
* fault recovery: killing one group mid-iteration with the
  :class:`~repro.parallel.faults.FlakyExecutor` harness loses only that
  group's fragments — the PR 5 partial-checkpoint replay heals exactly
  the dead group's work on resume.
"""

import numpy as np
import pytest

from repro.atoms.toy import cscl_binary
from repro.core.scf import LS3DFSCF
from repro.io.checkpoint import load_partial_payloads
from repro.parallel.executor import (
    SerialFragmentExecutor,
    ThreadPoolFragmentExecutor,
)
from repro.parallel.faults import FlakyExecutor
from repro.parallel.groups import partition_worker_counts
from repro.parallel.remote import RemoteExecutor, RemoteExecutorConfig, start_worker_thread
from repro.parallel.scheduler import FragmentScheduler, GroupExecutionRecord


def _tiny_scf(executor=None, **kw) -> LS3DFSCF:
    structure = cscl_binary((2, 1, 1), "Zn", "O", 6.0)
    return LS3DFSCF(
        structure,
        grid_dims=(2, 1, 1),
        ecut=2.2,
        buffer_cells=0.5,
        n_empty=2,
        mixer="kerker",
        executor=executor,
        **kw,
    )


_RUN_KW = dict(
    max_iterations=3,
    potential_tolerance=1e-6,
    eigensolver_tolerance=1e-4,
    eigensolver_iterations=40,
)


def _assert_scf_identical(got, want):
    np.testing.assert_array_equal(got.density, want.density)
    np.testing.assert_array_equal(got.potential, want.potential)
    assert got.total_energy == want.total_energy
    assert got.quantum_energy == want.quantum_energy
    assert got.convergence_history == want.convergence_history
    assert got.energy_history == want.energy_history


# --- worker splitting -------------------------------------------------------------

def test_partition_worker_counts_block_distribution():
    assert partition_worker_counts(5, 2) == [3, 2]
    assert partition_worker_counts(4, 2) == [2, 2]
    assert partition_worker_counts(7, 3) == [3, 2, 2]
    # Groups never starve: fewer workers than groups still yields one each.
    assert partition_worker_counts(1, 3) == [1, 1, 1]
    assert partition_worker_counts(2, 4) == [1, 1, 1, 1]


def test_partition_worker_counts_rejects_bad_input():
    with pytest.raises(ValueError):
        partition_worker_counts(0, 2)
    with pytest.raises(ValueError):
        partition_worker_counts(4, 0)


def test_partition_children_are_cached_and_split_the_pool():
    pool = ThreadPoolFragmentExecutor(4)
    try:
        children = pool.partition(2)
        assert len(children) == 2
        assert [c.n_workers for c in children] == [2, 2]
        assert pool.partition(2) is children  # cached, not rebuilt
        assert pool.partition(3) is not children
        assert [c.n_workers for c in pool.partition(3)] == [2, 1, 1]
    finally:
        pool.close()


def test_partition_child_counters_accumulate_to_parent():
    from repro.core.fragment_task import potential_fingerprint

    pool = ThreadPoolFragmentExecutor(2)
    try:
        a, b = pool.partition(2)
        scf = _tiny_scf()
        v = scf.genpot.initial_potential()
        tasks = [
            scf.fragment_solver.make_pipeline_task(
                f, v, eigensolver_tolerance=1e-4, eigensolver_iterations=40)
            for f in scf.fragments[:2]
        ]
        a.run_pipeline(tasks[:1])
        b.run_pipeline(tasks[1:])
        # Submissions land on the shared parent counters: the groups are
        # sub-pools of one pool, not independent executors.
        assert pool.tasks_submitted == 2
        assert pool.pool_submissions == 2
        key = potential_fingerprint(v)
        try:
            a.install_state(key, v)
            b.install_state(key, v)
            # Thread workers share the process store: installs are local,
            # never broadcast, and the second one is a dedup no-op.
            assert pool.install_broadcasts == 0
            from repro.core.fragment_task import fetch_potential

            np.testing.assert_array_equal(fetch_potential(key), v)
        finally:
            from repro.core.fragment_task import clear_installed_potentials

            clear_installed_potentials()
    finally:
        pool.close()


def test_serial_executor_partition_shares_the_single_worker():
    serial = SerialFragmentExecutor()
    children = serial.partition(2)
    assert len(children) == 2
    assert all(c.n_workers == 1 for c in children)


class _CostedTask:
    def __init__(self, cost):
        self._cost = float(cost)

    def cost(self):
        return self._cost


def test_grouped_schedule_is_deterministic_lpt():
    tasks = [_CostedTask(c) for c in (5.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0)]
    scheduler = FragmentScheduler()
    plans = [
        scheduler.schedule_grouped(tasks, total_cores=4, cores_per_group=2)
        for _ in range(3)
    ]
    assert plans[0].cores_per_group == 2
    assert len(plans[0].assignments) == 2
    first = [tuple(g) for g in plans[0].assignments]
    assert all([tuple(g) for g in p.assignments] == first for p in plans[1:])


# --- the measured concurrent path -------------------------------------------------

@pytest.fixture(scope="module")
def pipeline_reference():
    return _tiny_scf(SerialFragmentExecutor(), pipeline=True).run(**_RUN_KW)


@pytest.fixture(scope="module")
def grouped_concurrent():
    pool = ThreadPoolFragmentExecutor(4)
    try:
        scf = _tiny_scf(pool, band_groups=2)
        result = scf.run(**_RUN_KW)
        stats = dict(tasks=pool.tasks_submitted, nfragments=scf.nfragments)
    finally:
        pool.close()
    return result, stats


def test_concurrent_groups_bit_identical(pipeline_reference, grouped_concurrent):
    result, _ = grouped_concurrent
    _assert_scf_identical(result, pipeline_reference)


def test_band_schedule_is_a_measured_record(grouped_concurrent):
    result, _ = grouped_concurrent
    for t in result.timings:
        record = t.band_schedule
        assert isinstance(record, GroupExecutionRecord)
        assert record.concurrent  # groups genuinely overlapped
        assert len(record.group_walls) == 2
        assert all(w > 0.0 for w in record.group_walls)
        assert record.wall_time > 0.0
        # Measured quantities, not model outputs.
        assert record.measured_makespan == max(record.group_walls)
        assert record.measured_imbalance >= 1.0
        assert 0.0 < record.concurrency_efficiency <= 1.0
        # Plan delegation still exposes the LPT bookkeeping.
        assert record.cores_per_group == 2
        assert len(record.assignments) == 2
        assert 0.0 < record.intra_group_efficiency <= 1.0


def test_concurrent_groups_one_submission_per_slice(grouped_concurrent):
    result, stats = grouped_concurrent
    stages = sum(t.band_stages for t in result.timings)
    assert stages > 0
    # Every sliced stage scatters exactly band_groups=2 slice tasks, and
    # nothing else reaches the pool: one submission per slice per stage.
    assert stats["tasks"] == stages * 2


def test_concurrent_groups_opt_out(pipeline_reference):
    pool = ThreadPoolFragmentExecutor(4)
    try:
        scf = _tiny_scf(pool, band_groups=2, concurrent_groups=False)
        assert scf.concurrent_groups is False
        result = scf.run(**_RUN_KW)
    finally:
        pool.close()
    _assert_scf_identical(result, pipeline_reference)
    assert all(not t.band_schedule.concurrent for t in result.timings)


def test_serial_executor_runs_groups_sequentially(pipeline_reference):
    scf = _tiny_scf(SerialFragmentExecutor(), band_groups=2)
    result = scf.run(**_RUN_KW)
    _assert_scf_identical(result, pipeline_reference)
    # One worker -> one effective group: the sequential path, still with
    # a real (non-concurrent) measured record.
    for t in result.timings:
        assert not t.band_schedule.concurrent
        assert t.band_schedule.wall_time > 0.0


def test_remote_partition_children_and_concurrent_groups(pipeline_reference):
    servers = [start_worker_thread() for _ in range(4)]
    config = RemoteExecutorConfig(
        connect_timeout=2.0, request_timeout=60.0, heartbeat_interval=1e9,
        max_retries=1, backoff=0.01)
    try:
        with RemoteExecutor([s.address for s in servers], config=config) as ex:
            children = ex.partition(2)
            assert len(children) == 2
            assert [c.n_workers for c in children] == [2, 2]
            assert ex.partition(2) is children
            scf = _tiny_scf(ex, band_groups=2)
            result = scf.run(**_RUN_KW)
            assert ex.workers_lost == 0 and ex.degraded_tasks == 0
            assert ex.tasks_submitted == sum(
                t.band_stages for t in result.timings) * 2
    finally:
        for server in servers:
            server.stop()
    _assert_scf_identical(result, pipeline_reference)
    assert any(t.band_schedule.concurrent for t in result.timings)


# --- fault injection: losing one group mid-iteration ------------------------------

def test_flaky_executor_kills_at_scheduled_batches():
    from repro.parallel.remote import WorkerDiedError

    inner = SerialFragmentExecutor()
    flaky = FlakyExecutor(inner, kill_at=(1,))
    assert flaky.n_workers == inner.n_workers  # delegation
    flaky.run_pipeline([])  # batch 0: survives
    with pytest.raises(WorkerDiedError, match="injected fault"):
        flaky.run_pipeline([])  # batch 1: dies
    flaky.run_pipeline([])  # batch 2: healed


def test_flaky_executor_partition_wraps_only_the_doomed_group():
    from repro.parallel.remote import WorkerDiedError

    pool = ThreadPoolFragmentExecutor(4)
    try:
        flaky = FlakyExecutor(pool, kill_at=(0,), kill_group=1)
        children = flaky.partition(2)
        assert flaky.partition(2) is children  # cached: ticks accumulate
        children[0].run_pipeline([])  # healthy group never faults
        with pytest.raises(WorkerDiedError):
            children[1].run_pipeline([])
    finally:
        pool.close()


def test_killed_group_heals_from_partial_checkpoint(tmp_path, pipeline_reference):
    """Kill group 1 on its first batch of iteration 1: group 0's solved
    fragments persist as partials, and resuming with a healthy pool
    replays exactly the dead group's lost fragments — not the whole
    iteration."""
    import hashlib

    from repro.parallel.remote import WorkerDiedError

    pool = ThreadPoolFragmentExecutor(4)
    try:
        flaky = FlakyExecutor(pool, kill_at=(0,), kill_group=1)
        scf = _tiny_scf(flaky, band_groups=2)
        with pytest.raises(WorkerDiedError, match="injected fault"):
            scf.run(checkpoint_dir=tmp_path, resume=True, **_RUN_KW)
        # The grouped path salts its partials with the solve inputs.
        fp = hashlib.sha256()
        fp.update(np.ascontiguousarray(scf.genpot.initial_potential()).tobytes())
        fp.update(np.float64(_RUN_KW["eigensolver_tolerance"]).tobytes())
        fp.update(np.int64(_RUN_KW["eigensolver_iterations"]).tobytes())
        saved = load_partial_payloads(
            tmp_path, 1, scf._problem_signature(),
            state_fingerprint=fp.hexdigest())
        # Only the surviving group's fragments made it to disk.
        assert 0 < len(saved) < scf.nfragments
    finally:
        pool.close()

    pool = ThreadPoolFragmentExecutor(4)
    try:
        resumed = _tiny_scf(pool, band_groups=2).run(
            checkpoint_dir=tmp_path, resume=True, **_RUN_KW)
    finally:
        pool.close()
    # The replay healed exactly the dead group's fragments.
    assert resumed.timings[0].band_replayed == len(saved)
    _assert_scf_identical(resumed, pipeline_reference)
